"""Ablation A5 — is the all-device taskgroup barrier really the mechanism?

The model explains Table II's "Two Buffers does not beat One Buffer" with
the paper's own statement that its taskgroup barrier synchronizes *all*
devices.  This ablation flips the runtime to spec-pure taskgroups (waiting
only for the group's members) and re-runs Two Buffers: the cross-half
overlap the paper hoped for reappears, and Two Buffers pulls ahead of One
Buffer — i.e. the barrier, not the directive design, is what ate the
benefit.  An experiment only the simulation can run, validating the causal
story rather than just the numbers.
"""

import numpy as np
import pytest

from conftest import N_FUNCTIONAL, STEPS, run_once

from repro.bench.machines import paper_devices, paper_machine, paper_somier_config
from repro.somier import run_somier
from repro.util.format import format_hms


def run(impl: str, gpus: int, global_drain: bool):
    topo, cm = paper_machine(gpus, n_functional=N_FUNCTIONAL)
    cfg = paper_somier_config(n_functional=N_FUNCTIONAL, steps=STEPS)
    return run_somier(impl, cfg, devices=paper_devices(gpus), topology=topo,
                      cost_model=cm, trace=False,
                      taskgroup_global_drain=global_drain)


def test_global_drain_is_the_mechanism(benchmark, paper_runs, capsys):
    one = run_once(benchmark, paper_runs.get, "one_buffer", 2)
    two_paper = paper_runs.get("two_buffers", 2)
    two_pure = run("two_buffers", 2, global_drain=False)

    benchmark.extra_info["one_buffer"] = one.elapsed
    benchmark.extra_info["two_buffers_drain"] = two_paper.elapsed
    benchmark.extra_info["two_buffers_pure"] = two_pure.elapsed
    with capsys.disabled():
        print("\n\nABLATION A5 — all-device taskgroup drain (2 GPUs)")
        print(f"  one_buffer (B)                    : {format_hms(one.elapsed)}")
        print(f"  two_buffers, drain (paper runtime): "
              f"{format_hms(two_paper.elapsed)}")
        print(f"  two_buffers, spec-pure taskgroups : "
              f"{format_hms(two_pure.elapsed)}")

    # with the paper's barrier, Two Buffers loses to One Buffer...
    assert two_paper.elapsed > one.elapsed
    # ...without it, the intended overlap makes it win
    assert two_pure.elapsed < one.elapsed
    # and the physics is unchanged either way
    assert np.allclose(two_pure.centers, two_paper.centers, rtol=1e-9)
