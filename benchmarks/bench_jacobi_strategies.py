"""Data-management strategies for a device-resident workload (Jacobi).

Somier must remap every buffer (the problem exceeds device memory); Jacobi
represents the complementary regime where the grid fits and the data can
stay resident, with ``target update spread`` exchanging only halo rows.
This bench quantifies the gap on the calibrated machine — the directive-set
capability (Listing 7) that the paper's evaluation never gets to exercise.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.apps import JacobiConfig, run_jacobi
from repro.bench.machines import paper_machine
from repro.util.format import format_hms, format_table

CFG = JacobiConfig(n=96, iterations=50)
GPUS = 4


def run_strategy(strategy: str):
    topo, cm = paper_machine(GPUS, n_functional=CFG.n)
    return run_jacobi(CFG, strategy=strategy, devices=list(range(GPUS)),
                      topology=topo, cost_model=cm)


def test_resident_vs_remap(benchmark, capsys):
    results = {}

    def collect():
        for strategy in ("resident", "remap"):
            results[strategy] = run_strategy(strategy)
        return results

    run_once(benchmark, collect)
    rows = []
    for strategy, res in results.items():
        rows.append((strategy, format_hms(res.elapsed),
                     f"{res.stats['h2d_bytes'] / 1e9:.1f} GB",
                     f"{res.stats['d2h_bytes'] / 1e9:.1f} GB",
                     res.stats["memcpy_calls"]))
    speedup = results["remap"].elapsed / results["resident"].elapsed
    benchmark.extra_info["resident_virtual_s"] = results["resident"].elapsed
    benchmark.extra_info["remap_virtual_s"] = results["remap"].elapsed
    benchmark.extra_info["speedup"] = speedup
    with capsys.disabled():
        print(f"\n\nJACOBI — data-resident halo exchange vs per-iteration "
              f"remapping ({CFG.n}^2 grid at paper scale, "
              f"{CFG.iterations} iterations, {GPUS} GPUs)")
        print(format_table(
            ["strategy", "virtual time", "H2D", "D2H", "memcpys"], rows))
        print(f"resident is {speedup:.1f}x faster")

    # identical physics, radically less traffic
    assert np.array_equal(results["resident"].grid, results["remap"].grid)
    assert results["resident"].stats["h2d_bytes"] < \
        0.2 * results["remap"].stats["h2d_bytes"]
    assert results["resident"].stats["d2h_bytes"] < \
        0.2 * results["remap"].stats["d2h_bytes"]
    assert speedup > 1.5


@pytest.mark.parametrize("gpus", [1, 2, 4])
def test_resident_scaling(benchmark, gpus, capsys):
    topo, cm = paper_machine(gpus, n_functional=CFG.n)
    res = run_once(benchmark, run_jacobi, CFG, "resident",
                   list(range(gpus)), topo, cm)
    benchmark.extra_info["virtual_s"] = res.elapsed
    with capsys.disabled():
        print(f"\n  jacobi resident x{gpus} GPUs: {format_hms(res.elapsed)}")
    assert np.array_equal(res.grid, CFG.reference())
