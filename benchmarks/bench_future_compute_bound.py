"""§IX future experimentation: a compute-dominated Somier.

The paper closes with: "research has to be done on problems where the
computation dominates the execution time over the data transfers, in order
to see if a double buffering implementation performs better."

This bench runs that experiment on the same simulated node with kernels
50x more expensive (iters_per_second / 50), so the transfer:kernel ratio
flips from ~1.7:1 to ~1:14.  Findings (asserted below):

* **double buffering now wins**: the prefetched half's transfers hide
  inside the long kernels, making it the fastest variant — confirming the
  paper's hypothesis;
* the ``data_depend`` extension is **not** automatically a win here:
  issuing a whole step's directives up front means every half's transfers
  claim their in-order stream slots *before* the kernels, so transfers end
  up exposed ahead of the compute instead of interleaved with it.  Chunk
  dependences remove barrier idle time (the transfer-bound case, ablation
  A1) but need issue throttling to coexist with stream ordering — exactly
  the kind of second-order effect the paper's cautious future-work framing
  anticipates.
"""

import pytest

from conftest import N_FUNCTIONAL, run_once

from repro.bench.machines import (
    ITERS_PER_SECOND,
    LINK_BANDWIDTH,
    PER_CALL_LATENCY,
    STAGING_BANDWIDTH,
    paper_devices,
    paper_somier_config,
)
from repro.sim.costmodel import CostModel
from repro.sim.topology import cte_power_node
from repro.sim.trace import TraceAnalysis
from repro.somier import run_somier
from repro.util.format import format_hms, format_table

NF = 64
STEPS = 8
GPUS = 4
SLOWDOWN = 50.0


def run_compute_bound(impl: str, data_depend: bool = False,
                      trace: bool = False):
    topo = cte_power_node(GPUS,
                          link_bandwidth=LINK_BANDWIDTH,
                          staging_bandwidth=STAGING_BANDWIDTH,
                          per_call_latency=PER_CALL_LATENCY,
                          iters_per_second=ITERS_PER_SECOND / SLOWDOWN)
    cfg = paper_somier_config(n_functional=NF, steps=STEPS)
    return run_somier(impl, cfg, devices=paper_devices(GPUS), topology=topo,
                      cost_model=CostModel(scale=(1200 / NF) ** 3),
                      data_depend=data_depend, trace=trace)


def test_compute_bound_regime_flips_dominance(benchmark):
    """Sanity: kernels, not transfers, dominate this configuration."""
    res = run_once(benchmark, run_compute_bound, "one_buffer", False, True)
    ta = TraceAnalysis(res.runtime.trace)
    agg = ta.transfer_dominance(res.devices)
    benchmark.extra_info["transfer_over_kernel"] = round(agg["ratio"], 3)
    assert agg["ratio"] < 0.2


def test_double_buffering_wins_when_compute_dominates(benchmark, capsys):
    results = {}

    def collect():
        for impl in ("one_buffer", "two_buffers", "double_buffering"):
            results[impl] = run_compute_bound(impl)
        return results

    run_once(benchmark, collect)
    rows = [(impl, format_hms(res.elapsed),
             f"{results['one_buffer'].elapsed / res.elapsed:.3f}x")
            for impl, res in results.items()]
    with capsys.disabled():
        print("\n\n§IX EXPERIMENT — compute-dominated Somier "
              f"(kernels {SLOWDOWN:.0f}x heavier, {GPUS} GPUs)")
        print(format_table(["implementation", "virtual time",
                            "vs one_buffer"], rows))

    one = results["one_buffer"].elapsed
    dbl = results["double_buffering"].elapsed
    benchmark.extra_info["double_buffering_gain"] = (one - dbl) / one
    # the paper's hypothesis: double buffering performs better here
    assert dbl < one


def test_data_depend_needs_issue_throttling_here(benchmark, capsys):
    """The eager dependence-driven variant exposes transfers ahead of the
    kernels on the in-order streams — slower in this regime."""
    plain = run_once(benchmark, run_compute_bound, "double_buffering")
    eager = run_compute_bound("double_buffering", data_depend=True)
    with capsys.disabled():
        print(f"\n  double buffering, taskgroups : {format_hms(plain.elapsed)}")
        print(f"  double buffering, depends    : {format_hms(eager.elapsed)}"
              " (transfers claim stream slots ahead of kernels)")
    benchmark.extra_info["plain_virtual_s"] = plain.elapsed
    benchmark.extra_info["eager_virtual_s"] = eager.elapsed
    assert eager.elapsed > plain.elapsed
