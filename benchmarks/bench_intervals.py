#!/usr/bin/env python
"""Interval-math microbenchmark: scalar vs vectorized overlap testing.

The macro-op replay engine and the executor's wave planner both lean on
the NumPy batch helpers in :mod:`repro.util.intervals` (``pack_intervals``,
``batch_overlap_matrix``, ``batch_widths``).  This script times the
all-pairs overlap test both ways — per-pair ``Interval.overlaps`` calls vs
one vectorized matrix — asserts they agree, and updates the ``intervals``
key of ``BENCH_wallclock.json`` in place (the rest of the file is
untouched, so the full track does not need to re-run)::

    PYTHONPATH=src python benchmarks/bench_intervals.py
    PYTHONPATH=src python benchmarks/bench_intervals.py \
        --n 512 --repeats 9 --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench.wallclock import intervals_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_wallclock.json",
                    help="JSON file to update (the 'intervals' key); "
                         "created fresh if missing")
    ap.add_argument("--n", type=int, default=256,
                    help="number of pseudo-random intervals (n*n pairs)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="repeats per arm (min is reported)")
    ap.add_argument("--seed", type=int, default=12345,
                    help="PRNG seed for the interval set")
    args = ap.parse_args(argv)

    result = intervals_bench(n=args.n, repeats=args.repeats, seed=args.seed)
    result["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    print(f"n={result['n']} intervals, {result['pairs']} pairs, "
          f"best of {result['repeats']}:")
    print(f"  scalar Interval.overlaps: {result['scalar_s'] * 1e3:8.2f} ms "
          f"({result['scalar_pairs_per_s']:.2e} pairs/s)")
    print(f"  batch_overlap_matrix:     {result['vector_s'] * 1e3:8.2f} ms "
          f"({result['vector_pairs_per_s']:.2e} pairs/s)")
    print(f"  pack_intervals:           {result['pack_s'] * 1e3:8.2f} ms")
    print(f"  vectorized speedup:       {result['speedup']:.1f}x")

    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as f:
            doc = json.load(f)
    doc["intervals"] = result
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"updated 'intervals' in {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
