#!/usr/bin/env python
"""Event-engine microbenchmark: calendar-queue throughput in events/s.

Times the :class:`repro.sim.engine.Simulator` dispatch loop directly —
no devices, no directives — over the two workload shapes that bracket a
calendar queue: every event at a distinct timestamp (one heap operation
per event) and many events tied to few timestamps (a whole bucket drains
per heap operation).  Optionally measures the fused-timeline end-to-end
ablation and merges the result into an existing ``BENCH_wallclock.json``
under its ``engine`` key::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py \
        --events 200000 --e2e --merge BENCH_wallclock.json

See ``docs/performance.md`` ("Fused-timeline engine") for how to read
the output.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.wallclock import end_to_end, engine_microbench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--events", type=int, default=50000,
                    help="total timeout events per arm")
    ap.add_argument("--procs", type=int, default=16,
                    help="concurrent generator processes")
    ap.add_argument("--repeats", type=int, default=5,
                    help="repeats per arm (min is reported)")
    ap.add_argument("--e2e", action="store_true",
                    help="also run the fused-timeline end-to-end ablation "
                         "(one Somier run fused on and one fused off)")
    ap.add_argument("--merge", metavar="JSON", default=None,
                    help="merge the result into this BENCH_wallclock.json "
                         "under the 'engine' key")
    args = ap.parse_args(argv)

    eng = engine_microbench(events=args.events, procs=args.procs,
                            repeats=args.repeats)
    print(f"distinct-time: {eng['seq_events_per_s']:.2e} events/s "
          f"(mean batch {eng['seq_mean_batch']:.2f})")
    print(f"tied-time:     {eng['tie_events_per_s']:.2e} events/s "
          f"(mean batch {eng['tie_mean_batch']:.1f}, "
          f"{eng['tie_speedup']:.2f}x vs distinct)")
    print(f"timeout freelist reuse: {eng['timeout_reuse_frac']:.1%}")

    if args.e2e:
        on = end_to_end(True)
        off = end_to_end(True, fused_timeline=False)
        ratio = off["wall_s"] / on["wall_s"] if on["wall_s"] else 0.0
        eng["e2e_fused_on_wall_s"] = on["wall_s"]
        eng["e2e_fused_off_wall_s"] = off["wall_s"]
        eng["e2e_fused_speedup"] = ratio
        assert on["virtual_s"] == off["virtual_s"], \
            "fused on/off virtual time diverged"
        print(f"end-to-end: {on['wall_s']:.3f}s fused "
              f"({on['engine_fused_segments']} segments) vs "
              f"{off['wall_s']:.3f}s generators ({ratio:.2f}x); "
              f"virtual_s identical")

    if args.merge:
        with open(args.merge) as f:
            payload = json.load(f)
        payload["engine"] = eng
        with open(args.merge, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"merged into {args.merge}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
