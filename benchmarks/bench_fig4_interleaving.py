"""Fig. 4 — a single GPU's timeline in the Two Buffers run.

The paper's three observations about this trace sample:

1. "The five kernel computations were not executed subsequently, but
   interleaved with data transfers from a different buffer."
2. "Overlap of computation and transfers from different buffers happened in
   very rare occasions."
3. "Transfers from different buffers did not overlap."

All three are asserted quantitatively on the simulated trace.
"""

from conftest import run_once

from repro.sim.trace import TraceAnalysis
from repro.util.format import format_table


def test_fig4_single_gpu_interleaving(benchmark, paper_runs, capsys):
    result = run_once(benchmark, paper_runs.get, "two_buffers", 4,
                      trace=True)
    trace = result.runtime.trace
    ta = TraceAnalysis(trace)

    rows = []
    for d in result.devices:
        kernels = len([e for e in trace.by_device(d)
                       if e.category == "kernel"])
        rows.append((d, kernels, ta.interleave_count(d),
                     f"{ta.compute_transfer_overlap(d):.3f}s"))
    benchmark.extra_info["interleave_counts"] = [r[2] for r in rows]

    # single-device excerpt, like the paper's zoomed figure
    dev_events = trace.by_device(result.devices[0])
    sample = dev_events[40:64]
    with capsys.disabled():
        print("\n\nFIG. 4 — single-GPU event sequence (Two Buffers, 4 GPUs)")
        print(format_table(
            ["device", "kernels", "kernel<->transfer alternations",
             "same-device compute/transfer overlap"], rows))
        print(f"\nevent sample (device {result.devices[0]}):")
        for e in sample:
            print(f"  {e.start:10.3f}s  {e.category:6s} {e.name}")

    for d in result.devices:
        # 1. heavy interleaving: far more alternations than buffer count
        assert ta.interleave_count(d) > result.plan.num_buffers
        # 2. same-device compute/transfer overlap: none (in-order queue)
        assert ta.compute_transfer_overlap(d) == 0.0
    # 3. transfers on one socket never overlap on the wire
    assert ta.transfer_transfer_overlap([0, 1]) == 0.0
    assert ta.transfer_transfer_overlap([2, 3]) == 0.0


def test_fig4_kernels_wait_behind_foreign_transfers(benchmark, paper_runs):
    """The mechanism behind observation 1: between a device's consecutive
    kernels there are transfer events belonging to a *different* chunk of
    the iteration space."""
    result = run_once(benchmark, paper_runs.get, "two_buffers", 4, trace=True)
    trace = result.runtime.trace
    d = result.devices[0]
    events = trace.by_device(d)
    last_kernel = max(i for i, e in enumerate(events)
                      if e.category == "kernel")
    sandwiched = sum(
        1 for i in range(len(events) - 1)
        if events[i].category == "kernel"
        and events[i + 1].category in ("h2d", "d2h")
        and i + 1 < last_kernel)
    assert sandwiched > 10
