#!/usr/bin/env python
"""Wall-clock benchmark script: spread launch-plan cache speedup.

Unlike the pytest-benchmark modules next to it (which report *virtual*
seconds), this script measures **real** host-side seconds — the cost of
lowering spread directives with and without the launch-plan cache — and
persists the result as ``BENCH_wallclock.json``::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        --repeats 10 --n-functional 18 --steps 6 --out /tmp/bench.json

See ``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.wallclock import run_wallclock


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_wallclock.json",
                    help="where to write the JSON result")
    ap.add_argument("--n", type=int, default=4096,
                    help="microbench loop extent")
    ap.add_argument("--devices", type=int, default=4,
                    help="microbench device count")
    ap.add_argument("--repeats", type=int, default=30,
                    help="microbench batches (first is the cold sample)")
    ap.add_argument("--launches", type=int, default=5,
                    help="nowait launches per timed batch")
    ap.add_argument("--n-functional", type=int, default=24,
                    help="end-to-end Somier functional grid edge")
    ap.add_argument("--steps", type=int, default=12,
                    help="end-to-end Somier timesteps")
    ap.add_argument("--workers", default="1,2,4",
                    help="comma-separated workers values for the sweep")
    ap.add_argument("--sweep-n-functional", type=int, default=96,
                    help="functional grid edge for the workers sweep "
                         "(kernel-dominated)")
    ap.add_argument("--sweep-steps", type=int, default=4,
                    help="timesteps for the workers sweep")
    ap.add_argument("--analyzer-runs", type=int, default=3,
                    help="repeats per arm of the analyzer-overhead bench "
                         "(min is reported)")
    ap.add_argument("--max-analyze-overhead", type=float, default=None,
                    metavar="FRAC",
                    help="fail (exit 1) if causal-edge recording costs more "
                         "than FRAC of the traced wall time (the documented "
                         "budget is 0.05; CI passes headroom for noisy "
                         "runners)")
    ap.add_argument("--min-warm-speedup", type=float, default=None,
                    metavar="X",
                    help="fail (exit 1) if the warm-launch speedup of the "
                         "cached+macro path over the uncached path falls "
                         "below X (the plan-cache/macro-replay regression "
                         "gate; CI uses 5)")
    ap.add_argument("--min-e2e-speedup", type=float, default=None,
                    metavar="X",
                    help="fail (exit 1) if the fused-timeline end-to-end "
                         "speedup (fused off / fused on wall time) falls "
                         "below X (the fused-timeline regression gate; see "
                         "docs/performance.md for the measured ratio and "
                         "what CI uses)")
    args = ap.parse_args(argv)

    result = run_wallclock(
        n=args.n, num_devices=args.devices, repeats=args.repeats,
        launches=args.launches, n_functional=args.n_functional,
        steps=args.steps,
        workers_list=[int(w) for w in args.workers.split(",")],
        sweep_n_functional=args.sweep_n_functional,
        sweep_steps=args.sweep_steps,
        analyzer_runs=args.analyzer_runs,
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"))

    micro = result["launch_microbench"]
    on, off = micro["cache_on"], micro["cache_off"]
    macro_off = micro["macro_off"]
    print(f"warm launch (macro on):  {on['warm_launch_s'] * 1e6:8.1f} us "
          f"({on['warm_launches_per_s']:.0f} launches/s, "
          f"{on['macro_replays']} replays / {on['macro_compiles']} compiles)")
    print(f"warm launch (macro off): {macro_off['warm_launch_s'] * 1e6:8.1f} us "
          f"({macro_off['warm_launches_per_s']:.0f} launches/s, "
          f"{macro_off['cache_hits']} hits / "
          f"{macro_off['cache_misses']} misses)")
    print(f"warm launch (cache off): {off['warm_launch_s'] * 1e6:8.1f} us "
          f"({off['warm_launches_per_s']:.0f} launches/s)")
    print(f"warm-launch speedup:     {result['warm_launch_speedup']:.2f}x "
          f"(macro replay vs object path: "
          f"{result['warm_macro_speedup']:.2f}x)")
    e2e = result["end_to_end"]
    print(f"end-to-end somier:       "
          f"{e2e['cache_on']['wall_s']:.3f}s on vs "
          f"{e2e['cache_off']['wall_s']:.3f}s off "
          f"({result['end_to_end_speedup']:.2f}x)")
    print(f"fused-timeline engine:   "
          f"{e2e['cache_on']['wall_s']:.3f}s fused vs "
          f"{e2e['fused_off']['wall_s']:.3f}s generators "
          f"({result['fused_e2e_speedup']:.2f}x, "
          f"{e2e['cache_on']['engine_fused_segments']} fused segments, "
          f"mean batch {e2e['cache_on']['engine_mean_batch']:.2f})")
    eng = result["engine"]
    print(f"engine throughput:       "
          f"{eng['tie_events_per_s']:.2e} events/s tied-time "
          f"(mean batch {eng['tie_mean_batch']:.1f}) vs "
          f"{eng['seq_events_per_s']:.2e} distinct-time; "
          f"timeout reuse {eng['timeout_reuse_frac']:.1%}")
    sweep = result["workers_sweep"]
    print(f"workers sweep (n={sweep['n_functional']}, "
          f"steps={sweep['steps']}, {sweep['cpu_count']} cpu cores):")
    for r in sweep["runs"]:
        util = r.get("executor_utilization")
        util_s = f", util {util:.0%}" if util is not None else ""
        print(f"  workers={r['workers']}: {r['wall_s']:.3f}s "
              f"({r['speedup_vs_1']:.2f}x vs serial{util_s})")

    ivals = result["intervals"]
    print(f"interval math:           "
          f"{ivals['vector_pairs_per_s']:.2e} pairs/s vectorized vs "
          f"{ivals['scalar_pairs_per_s']:.2e} scalar "
          f"({ivals['speedup']:.1f}x, n={ivals['n']})")

    ana = result["analyzer_overhead"]
    print(f"analyzer overhead:       "
          f"{ana['analyze_wall_s']:.3f}s recording vs "
          f"{ana['trace_only_wall_s']:.3f}s trace-only "
          f"({ana['recording_overhead']:+.1%}, budget "
          f"{ana['overhead_target']:.0%}); analysis {ana['analysis_s']:.3f}s "
          f"over {ana['events']} events / {ana['dep_edges']} dep edges")

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"written to {args.out}")
    if args.max_analyze_overhead is not None and \
            ana["recording_overhead"] > args.max_analyze_overhead:
        print(f"FAIL: recording overhead {ana['recording_overhead']:.1%} "
              f"exceeds --max-analyze-overhead "
              f"{args.max_analyze_overhead:.1%}", file=sys.stderr)
        return 1
    if args.min_warm_speedup is not None and \
            result["warm_launch_speedup"] < args.min_warm_speedup:
        print(f"FAIL: warm-launch speedup "
              f"{result['warm_launch_speedup']:.2f}x below "
              f"--min-warm-speedup {args.min_warm_speedup:.2f}x",
              file=sys.stderr)
        return 1
    if args.min_e2e_speedup is not None and \
            result["fused_e2e_speedup"] < args.min_e2e_speedup:
        print(f"FAIL: fused-timeline e2e speedup "
              f"{result['fused_e2e_speedup']:.2f}x below "
              f"--min-e2e-speedup {args.min_e2e_speedup:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
