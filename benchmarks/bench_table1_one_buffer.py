"""Table I — One Buffer: ``target`` baseline vs ``target spread`` 1/2/4 GPUs.

Paper values (total execution time):

    =========  ==========  =============================
    Directive  target (B)  target spread
    GPUs       1           1          2          4
    Time       17m40.231s  17m38.932s 13m15.486s 8m22.019s
    =========  ==========  =============================

The simulated times must reproduce the shape: negligible spread overhead at
one GPU, ~1.33x at two, ~2.1x at four, with near-linear *kernel* scaling
(the gap being the communication bottleneck).
"""

import pytest

from conftest import N_FUNCTIONAL, STEPS, paper_seconds, run_once

from repro.sim.trace import TraceAnalysis
from repro.util.format import format_hms, format_table

ROWS = [("target", 1), ("one_buffer", 1), ("one_buffer", 2),
        ("one_buffer", 4)]


@pytest.mark.parametrize("impl,gpus", ROWS)
def test_table1_row(benchmark, paper_runs, impl, gpus):
    result = run_once(benchmark, paper_runs.get, impl, gpus)
    paper = paper_seconds(impl, gpus)
    benchmark.extra_info["simulated"] = format_hms(result.elapsed)
    benchmark.extra_info["simulated_seconds"] = result.elapsed
    benchmark.extra_info["paper"] = format_hms(paper)
    benchmark.extra_info["sim_over_paper"] = result.elapsed / paper
    # shape tolerance: within 10% of the paper row at full scale
    assert result.elapsed == pytest.approx(paper, rel=0.10)


def test_table1_report(benchmark, paper_runs, capsys):
    """Print the regenerated Table I next to the paper's numbers."""
    results = {}

    def collect():
        for impl, gpus in ROWS:
            results[(impl, gpus)] = paper_runs.get(impl, gpus)
        return results

    run_once(benchmark, collect)
    rows = []
    for impl, gpus in ROWS:
        res = results[(impl, gpus)]
        paper = paper_seconds(impl, gpus)
        rows.append((impl, gpus, format_hms(res.elapsed), format_hms(paper),
                     f"{res.elapsed / paper:.3f}"))
    base = results[("target", 1)].elapsed
    speedups = [(impl, gpus, f"{base / results[(impl, gpus)].elapsed:.2f}x")
                for impl, gpus in ROWS]
    with capsys.disabled():
        print("\n\nTABLE I — One Buffer implementation "
              f"(functional grid {N_FUNCTIONAL}^3 for 1200^3, {STEPS} steps)")
        print(format_table(
            ["implementation", "GPUs", "simulated", "paper", "sim/paper"],
            rows))
        print("\nspeedups vs target(B):")
        print(format_table(["implementation", "GPUs", "speedup"], speedups))

    # the paper's headline claims
    t1 = results[("one_buffer", 1)].elapsed
    t2 = results[("one_buffer", 2)].elapsed
    t4 = results[("one_buffer", 4)].elapsed
    assert abs(t1 - base) / base < 0.01      # negligible directive overhead
    assert 1.25 < base / t2 < 1.45           # ~1.4X with two GPUs
    assert 2.0 < base / t4 < 2.25            # >2X with four GPUs


def test_table1_kernel_speedup_near_linear(benchmark, paper_runs, capsys):
    """Section VI-A: kernels scale near-linearly; communication caps the
    overall speedup."""
    res1 = run_once(benchmark, paper_runs.get, "one_buffer", 1, trace=True)
    res4 = paper_runs.get("one_buffer", 4, trace=True)
    ta1, ta4 = TraceAnalysis(res1.runtime.trace), TraceAnalysis(res4.runtime.trace)
    k1 = ta1.device_summary(0)["kernel"]
    k4_wall = max(ta4.device_summary(d)["kernel"] for d in range(4))
    kernel_speedup = k1 / k4_wall
    overall = res1.elapsed / res4.elapsed
    with capsys.disabled():
        print(f"\nkernel-time speedup 1->4 GPUs: {kernel_speedup:.2f}x "
              f"(overall: {overall:.2f}x)")
    assert kernel_speedup > 3.5   # near-linear
    assert overall < 2.5          # overall capped by transfers
