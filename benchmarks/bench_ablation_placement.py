"""Ablation A4 — NUMA placement of a 2-GPU run.

The calibrated model explains the paper's weak 2-GPU transfer scaling by
both GPUs sharing one socket link (the AC922 wiring for devices 0,1).  If
the two GPUs sat on *different* sockets, the aggregate would instead be
capped by the host staging path (~1.43x one link).  This bench runs the
counterfactual — an experiment the paper's fixed testbed could not vary.
"""

from conftest import N_FUNCTIONAL, STEPS, run_once

from repro.bench.machines import (
    ITERS_PER_SECOND,
    LINK_BANDWIDTH,
    PER_CALL_LATENCY,
    STAGING_BANDWIDTH,
    paper_somier_config,
)
from repro.sim.costmodel import CostModel
from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec, NodeTopology
from repro.somier import run_somier
from repro.util.format import format_hms


def two_gpu_topology(same_socket: bool) -> NodeTopology:
    spec = DeviceSpec(memory_bytes=16e9, iters_per_second=ITERS_PER_SECOND)
    sockets = [[0, 1]] if same_socket else [[0], [1]]
    links = [LinkSpec(name=f"socket{i}-link",
                      bandwidth_bytes_per_s=LINK_BANDWIDTH,
                      per_call_latency=PER_CALL_LATENCY)
             for i in range(len(sockets))]
    return NodeTopology(device_specs=[spec, spec], sockets=sockets,
                        link_specs=links,
                        host_spec=HostSpec(
                            staging_bandwidth_bytes_per_s=STAGING_BANDWIDTH))


def run_placement(same_socket: bool) -> float:
    cfg = paper_somier_config(n_functional=N_FUNCTIONAL, steps=STEPS)
    scale = (1200 / N_FUNCTIONAL) ** 3
    res = run_somier("one_buffer", cfg, devices=[0, 1],
                     topology=two_gpu_topology(same_socket),
                     cost_model=CostModel(scale=scale), trace=False)
    return res.elapsed


def test_cross_socket_placement_beats_shared_link(benchmark, capsys):
    shared = run_once(benchmark, run_placement, True)
    split = run_placement(False)
    benchmark.extra_info["same_socket_virtual_s"] = shared
    benchmark.extra_info["cross_socket_virtual_s"] = split
    with capsys.disabled():
        print("\n\nABLATION A4 — 2-GPU NUMA placement (One Buffer)")
        print(f"  same socket (paper) : {format_hms(shared)}")
        print(f"  one per socket      : {format_hms(split)} "
              f"({(1 - split / shared) * 100:+.1f}%)")
    # splitting the GPUs across sockets lifts the wire cap to the staging
    # cap -> a real speedup, bounded by staging/link = ~1.43x on transfers
    assert split < shared * 0.95
