#!/usr/bin/env python
"""Validate a ``repro analyze --json`` payload against its checked-in schema.

Stdlib-only (CI's non-test jobs install nothing beyond numpy): implements
the draft-07 subset the schema uses — ``type`` (including union lists),
``required``, ``properties``, ``items``, ``const``, ``minimum`` and local
``$ref`` into ``definitions`` — then asserts the analyzer's numeric
invariants, which no structural schema can express:

* the critical path tiles the run: ``critical_path.length_s`` equals
  ``makespan_s`` within tolerance;
* attribution is exhaustive: every lane's compute + transfer + retry +
  contention + idle buckets sum to ``makespan_s``, and the totals row sums
  to ``makespan_s`` x lanes.

Usage::

    PYTHONPATH=src python -m repro analyze --gpus 4 --json > critpath.json
    python benchmarks/validate_critpath.py critpath.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
    "null": type(None),
}

_BUCKETS = ("compute_s", "transfer_s", "retry_s", "contention_s", "idle_s")


def _type_ok(value: Any, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[name])


def validate(value: Any, schema: dict, root: dict, path: str,
             errors: List[str]) -> None:
    ref = schema.get("$ref")
    if ref is not None:
        node = root
        for part in ref.lstrip("#/").split("/"):
            node = node[part]
        validate(value, node, root, path, errors)
        return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    stype = schema.get("type")
    if stype is not None:
        names = stype if isinstance(stype, list) else [stype]
        if not any(_type_ok(value, n) for n in names):
            errors.append(f"{path}: expected {'/'.join(names)}, "
                          f"got {type(value).__name__}")
            return
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, root, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]", errors)


def check_invariants(payload: dict, tolerance: float,
                     errors: List[str]) -> None:
    makespan = payload["makespan_s"]
    scale = max(1.0, abs(makespan))
    cp = payload["critical_path"]
    if abs(cp["length_s"] - makespan) > tolerance * scale:
        errors.append(f"critical_path.length_s {cp['length_s']} != "
                      f"makespan_s {makespan}")
    lanes = payload["attribution"]["lanes"]
    for row in lanes:
        total = sum(row[k] for k in _BUCKETS)
        if abs(total - makespan) > tolerance * scale:
            errors.append(f"attribution lane {row['lane']}: buckets sum to "
                          f"{total}, expected makespan {makespan}")
    totals = payload["attribution"]["totals"]
    lane_seconds = makespan * len(lanes)
    grand = sum(totals[k] for k in _BUCKETS)
    if abs(grand - lane_seconds) > tolerance * scale * max(1, len(lanes)):
        errors.append(f"attribution totals sum to {grand}, expected "
                      f"makespan x lanes = {lane_seconds}")
    if abs(totals["lane_seconds"] - lane_seconds) > \
            tolerance * scale * max(1, len(lanes)):
        errors.append(f"totals.lane_seconds {totals['lane_seconds']} != "
                      f"makespan x lanes = {lane_seconds}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report", help="repro analyze --json output file")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__), "..",
                                         "docs", "schemas",
                                         "critpath-1.schema.json"),
                    help="schema file (default: the checked-in copy)")
    ap.add_argument("--tolerance", type=float, default=1e-6,
                    help="relative tolerance for the numeric invariants")
    args = ap.parse_args(argv)

    with open(args.report) as f:
        payload = json.load(f)
    with open(args.schema) as f:
        schema = json.load(f)

    errors: List[str] = []
    validate(payload, schema, schema, "$", errors)
    if not errors:
        check_invariants(payload, args.tolerance, errors)
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    lanes = len(payload["attribution"]["lanes"])
    print(f"OK: {args.report} valid against {payload['schema']}; "
          f"critical path tiles makespan {payload['makespan_s']:.6f}s, "
          f"{lanes} lane(s) of attribution buckets sum exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
