"""Fig. 3 — nsys-style traces of the three implementations at 4 GPUs.

The paper's reading of its traces: "the execution time was mainly dominated
by memory transfers and not by kernel computations" for all three Somier
variants.  This bench regenerates per-device busy fractions (H2D / D2H /
kernel) from the simulated traces, prints an ASCII timeline excerpt per
implementation (the analogue of the 10-second nsys windows), and asserts
transfer dominance.
"""

import pytest

from conftest import run_once

from repro.sim.trace import TraceAnalysis
from repro.util.format import format_table

IMPLS = ["one_buffer", "two_buffers", "double_buffering"]


@pytest.mark.parametrize("impl", IMPLS)
def test_fig3_trace(benchmark, paper_runs, impl, capsys):
    result = run_once(benchmark, paper_runs.get, impl, 4, trace=True)
    ta = TraceAnalysis(result.runtime.trace)
    rows = []
    for d in result.devices:
        s = ta.device_summary(d)
        rows.append((d, f"{s['h2d']:.0f}s", f"{s['d2h']:.0f}s",
                     f"{s['kernel']:.0f}s",
                     f"{ta.idle_fraction(d) * 100:.0f}%"))
    agg = ta.transfer_dominance(result.devices)
    benchmark.extra_info["transfer_seconds"] = round(agg["transfer"], 1)
    benchmark.extra_info["kernel_seconds"] = round(agg["kernel"], 1)
    benchmark.extra_info["transfer_over_kernel"] = round(agg["ratio"], 2)

    # a 10-virtual-second window of the trace, like the paper's figures
    span = result.runtime.trace.makespan()
    t0 = span * 0.4
    with capsys.disabled():
        print(f"\n\nFIG. 3 ({impl}) — busy time per device, 4 GPUs")
        print(format_table(["device", "H2D", "D2H", "kernel", "idle"], rows))
        print(f"transfer/kernel ratio: {agg['ratio']:.2f}")
        print(f"\n10 virtual seconds of the trace "
              f"[{t0:.1f}s .. {t0 + 10:.1f}s]:")
        print(result.runtime.trace.to_ascii(width=100, t0=t0, t1=t0 + 10))

    # the paper's conclusion: transfers dominate
    assert agg["ratio"] > 1.5


def test_fig3_chrome_trace_export(benchmark, paper_runs, tmp_path):
    """The traces also export to Chrome-trace JSON for offline viewing."""
    result = run_once(benchmark, paper_runs.get, "one_buffer", 4, trace=True)
    out = tmp_path / "one_buffer_4gpu.json"
    out.write_text(result.runtime.trace.to_chrome_trace())
    assert out.stat().st_size > 10_000
