"""Table II — One Buffer vs Two Buffers vs Double Buffering at 2 and 4 GPUs.

Paper values (baseline = One Buffer with target spread):

    ================  ==========  =========
    Directive         target spread
    GPUs              2           4
    One Buffer (B)    13m15.486s  8m22.019s
    Two Buffers       14m29.599s  8m26.674s
    Double Buffering  14m04.230s  8m51.176s
    ================  ==========  =========

Shape to reproduce: the half-buffer variants do **not** beat One Buffer at
2 GPUs (the hoped-for overlap does not materialize; synchronization and
granularity eat it), and the three converge at 4 GPUs.  Known residual
deviation: our simulated Double Buffering *does* realize overlap at 4 GPUs
(see EXPERIMENTS.md for the analysis); the assertion below encodes what our
model reproduces.
"""

import pytest

from conftest import paper_seconds, run_once

from repro.util.format import format_hms, format_table

ROWS = [("one_buffer", 2), ("one_buffer", 4),
        ("two_buffers", 2), ("two_buffers", 4),
        ("double_buffering", 2), ("double_buffering", 4)]


@pytest.mark.parametrize("impl,gpus", ROWS)
def test_table2_row(benchmark, paper_runs, impl, gpus):
    result = run_once(benchmark, paper_runs.get, impl, gpus)
    paper = paper_seconds(impl, gpus)
    benchmark.extra_info["simulated"] = format_hms(result.elapsed)
    benchmark.extra_info["paper"] = format_hms(paper)
    benchmark.extra_info["sim_over_paper"] = result.elapsed / paper


def test_table2_report(benchmark, paper_runs, capsys):
    results = {}

    def collect():
        for impl, gpus in ROWS:
            results[(impl, gpus)] = paper_runs.get(impl, gpus)
        return results

    run_once(benchmark, collect)
    rows = []
    for impl, gpus in ROWS:
        res = results[(impl, gpus)]
        paper = paper_seconds(impl, gpus)
        rows.append((impl, gpus, format_hms(res.elapsed), format_hms(paper),
                     f"{res.elapsed / paper:.3f}"))
    with capsys.disabled():
        print("\n\nTABLE II — Somier implementations (target spread)")
        print(format_table(
            ["implementation", "GPUs", "simulated", "paper", "sim/paper"],
            rows))

    one2 = results[("one_buffer", 2)].elapsed
    two2 = results[("two_buffers", 2)].elapsed
    dbl2 = results[("double_buffering", 2)].elapsed
    one4 = results[("one_buffer", 4)].elapsed
    two4 = results[("two_buffers", 4)].elapsed

    # 2 GPUs: One Buffer is the fastest (the paper's headline for Table II)
    assert two2 > one2
    assert dbl2 >= one2 * 0.999
    # 4 GPUs: One Buffer and Two Buffers converge (within ~3%)
    assert abs(two4 - one4) / one4 < 0.03


def test_table2_functional_equivalence(benchmark, paper_runs):
    """All implementations advance the same physics: centers agree."""
    import numpy as np

    ref = run_once(benchmark, paper_runs.get, "one_buffer", 2).centers
    for impl, gpus in ROWS:
        centers = paper_runs.get(impl, gpus).centers
        assert np.allclose(centers, ref, rtol=1e-9), (impl, gpus)
