#!/usr/bin/env python
"""Cluster-scale sweep: Somier on simulated multi-node machines.

Runs the One Buffer implementation on a sweep of ``cluster:NxM`` shapes
(default 1x4 → 16x4 → 64x4, i.e. 4 → 64 → 256 simulated GPUs), each node
carrying the Table-I CTE-POWER calibration behind an InfiniBand-class
fabric (see :func:`repro.bench.machines.paper_cluster_machine`), and
persists the result as ``BENCH_cluster.json``::

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python benchmarks/bench_cluster.py \
        --shapes 1x4,4x4 --n-functional 24 --steps 2 --out /tmp/c.json

Reported per shape: virtual makespan, scaling vs the single-node shape,
how many bytes crossed the inter-node fabric, and the host wall-clock the
simulation itself took.  The sweep quantifies the regime the paper's §IX
points at: strong scaling holds while per-node work dominates, then the
fixed-size problem drowns in halo/staging traffic that must cross the
network — which the critical-path analyzer attributes natively because
the fabric is a first-class simulated resource.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import machines
from repro.somier import run_somier
from repro.util.format import format_hms


def parse_shapes(text):
    shapes = []
    for part in text.split(","):
        n, _, m = part.strip().partition("x")
        shapes.append((int(n), int(m)))
    return shapes


def run_shape(nodes, per_node, n_functional, steps):
    topo, cm = machines.paper_cluster_machine(nodes, per_node,
                                              n_functional=n_functional)
    cfg = machines.paper_somier_config(n_functional=n_functional,
                                       steps=steps)
    t0 = time.perf_counter()
    res = run_somier("one_buffer", cfg, topology=topo, cost_model=cm,
                     trace=False)
    wall = time.perf_counter() - t0
    rt = res.runtime
    return {
        "shape": f"{nodes}x{per_node}",
        "nodes": nodes,
        "devices_per_node": per_node,
        "gpus": nodes * per_node,
        "virtual_s": res.elapsed,
        "network_bytes": sum(dev.net_bytes for dev in rt.devices),
        "network_grants": sum(net.grant_count for net in rt.networks
                              if net is not None),
        "h2d_bytes": res.stats["h2d_bytes"],
        "d2h_bytes": res.stats["d2h_bytes"],
        "kernels_launched": res.stats["kernels_launched"],
        "wall_s": wall,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_cluster.json",
                    help="where to write the JSON result")
    ap.add_argument("--shapes", default="1x4,16x4,64x4",
                    help="comma-separated NxM cluster shapes to sweep")
    ap.add_argument("--n-functional", type=int, default=48,
                    help="functional grid edge standing in for 1200")
    ap.add_argument("--steps", type=int, default=2,
                    help="Somier timesteps per shape")
    args = ap.parse_args(argv)

    shapes = parse_shapes(args.shapes)
    sweep = []
    for nodes, per_node in shapes:
        entry = run_shape(nodes, per_node, args.n_functional, args.steps)
        sweep.append(entry)
        print(f"cluster:{entry['shape']} ({entry['gpus']} GPUs): "
              f"{format_hms(entry['virtual_s'])} virtual, "
              f"{entry['network_bytes'] / 1e9:.1f} GB over the fabric, "
              f"{entry['wall_s']:.1f}s wall")

    base = sweep[0]
    for entry in sweep:
        entry["speedup_vs_first"] = base["virtual_s"] / entry["virtual_s"]

    result = {
        "schema": "repro-cluster-1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": {
            "impl": "one_buffer",
            "n_functional": args.n_functional,
            "steps": args.steps,
            "network_bandwidth_bytes_per_s": machines.NETWORK_BANDWIDTH,
            "network_latency_s": machines.NETWORK_LATENCY,
        },
        "sweep": sweep,
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"result written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
