"""Fig. 2 — bar chart of the Somier implementation times (Table II data).

Regenerates the chart's series and renders it as an ASCII bar chart; the
series values are the simulated totals that bench_table2 also reports.
"""

from conftest import paper_seconds, run_once

from repro.util.format import format_hms

IMPLS = ["one_buffer", "two_buffers", "double_buffering"]
GPUS = [2, 4]


def test_fig2_series(benchmark, paper_runs, capsys):
    def collect():
        return {
            impl: [paper_runs.get(impl, g).elapsed for g in GPUS]
            for impl in IMPLS
        }

    series = run_once(benchmark, collect)
    benchmark.extra_info["series"] = {
        impl: [round(v, 1) for v in vals] for impl, vals in series.items()
    }

    max_v = max(v for vals in series.values() for v in vals)
    width = 50
    with capsys.disabled():
        print("\n\nFIG. 2 — Time comparison of the Somier implementations")
        for gi, g in enumerate(GPUS):
            print(f"\n  {g} GPUs")
            for impl in IMPLS:
                sim = series[impl][gi]
                paper = paper_seconds(impl, g)
                bar = "#" * max(1, int(sim / max_v * width))
                print(f"    {impl:18s} |{bar:<{width}}| "
                      f"{format_hms(sim)}  (paper {format_hms(paper)})")

    # the series is monotone in GPUs for every implementation
    for impl in IMPLS:
        assert series[impl][1] < series[impl][0]
