"""Ablation A1 — §IX future work: ``depend`` on the spread data directives.

The paper: chunk-level dependences on ``target enter/exit data spread``
"will effectively eliminate the gaps in time where some of the devices
remain idle while waiting for the full transfer to finish", making the
enclosing taskgroup (a barrier that synchronizes all devices) unnecessary.

This bench runs One Buffer with and without the extension and reports the
idle-gap reduction — the experiment the paper proposes but could not run.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.sim.trace import TraceAnalysis
from repro.util.format import format_hms, format_table


@pytest.mark.parametrize("gpus", [2, 4])
def test_data_depend_removes_barrier_idle(benchmark, paper_runs, gpus,
                                          capsys):
    plain = run_once(benchmark, paper_runs.get, "one_buffer", gpus,
                     trace=True)
    depend = paper_runs.get("one_buffer", gpus, trace=True,
                            data_depend=True)

    ta_p = TraceAnalysis(plain.runtime.trace)
    ta_d = TraceAnalysis(depend.runtime.trace)
    rows = []
    for d in plain.devices:
        rows.append((d, f"{ta_p.idle_fraction(d) * 100:.1f}%",
                     f"{ta_d.idle_fraction(d) * 100:.1f}%"))
    gain = (plain.elapsed - depend.elapsed) / plain.elapsed
    benchmark.extra_info["taskgroup_virtual_s"] = plain.elapsed
    benchmark.extra_info["data_depend_virtual_s"] = depend.elapsed
    benchmark.extra_info["improvement"] = gain

    with capsys.disabled():
        print(f"\n\nABLATION A1 — taskgroup barrier vs chunk-level depends "
              f"({gpus} GPUs)")
        print(f"  taskgroup barriers: {format_hms(plain.elapsed)}")
        print(f"  data-directive depends: {format_hms(depend.elapsed)} "
              f"({gain * 100:+.1f}%)")
        print(format_table(["device", "idle (taskgroup)", "idle (depend)"],
                           rows))

    # the extension must never be slower, and results stay identical
    assert depend.elapsed <= plain.elapsed
    assert np.allclose(depend.centers, plain.centers, rtol=1e-9)


def test_data_depend_restores_half_buffer_determinism(benchmark, paper_runs):
    """Bonus claim: the same dependences also make the racy Two Buffers
    variant exactly reproduce the sequential sweep (see tests/somier)."""
    res = run_once(benchmark, paper_runs.get, "two_buffers", 4,
                   data_depend=True)
    from repro.somier import SomierState, run_reference

    ref = SomierState(res.config)
    run_reference(ref, res.plan.halves())
    assert all(np.array_equal(res.state.grids[n], ref.grids[n])
               for n in ref.grids)
