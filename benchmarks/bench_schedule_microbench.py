"""Listing 3 distribution semantics + schedule-computation microbenchmarks.

Verifies the exact chunk->device assignments the paper walks through in
Section III-B.1 and measures the (host-side) cost of computing schedules —
part of the "negligible overhead" story.
"""

from conftest import run_once

from repro.spread.schedule import StaticSchedule, spread_schedule
from repro.util.format import format_table


def test_listing3_distribution(benchmark, capsys):
    """N=14, loop 1..N-1, devices(2,0,1): the paper's two worked examples."""
    def compute():
        return (StaticSchedule(4).chunks(1, 13, [2, 0, 1]),
                StaticSchedule(2).chunks(1, 13, [2, 0, 1]))

    chunk4, chunk2 = run_once(benchmark, compute)

    rows4 = [(f"{c.interval.start}..{c.interval.stop - 1}", c.device)
             for c in chunk4]
    rows2 = [(f"{c.interval.start}..{c.interval.stop - 1}", c.device)
             for c in chunk2]
    with capsys.disabled():
        print("\n\nLISTING 3 — spread_schedule(static, 4), devices(2,0,1):")
        print(format_table(["iterations", "device"], rows4))
        print("\nspread_schedule(static, 2):")
        print(format_table(["iterations", "device"], rows2))

    assert rows4 == [("1..4", 2), ("5..8", 0), ("9..12", 1)]
    assert rows2 == [("1..2", 2), ("3..4", 0), ("5..6", 1),
                     ("7..8", 2), ("9..10", 0), ("11..12", 1)]


def test_schedule_computation_throughput(benchmark):
    """Chunking a large iteration space is cheap (host-side overhead)."""
    sched = spread_schedule("static", 128)

    def compute():
        return sched.chunks(0, 1_000_000, [1, 0, 3, 2])

    chunks = benchmark(compute)
    assert len(chunks) == 1_000_000 // 128 + 1
