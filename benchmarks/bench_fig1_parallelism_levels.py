"""Fig. 1 — the extended offloading model's four levels of parallelism.

Fig. 1 is a diagram: ``target spread`` adds a *multiple devices* level on
top of teams / threads / SIMD.  This bench makes the diagram executable:
starting from a fully serial configuration it enables one level at a time
on a fixed compute-bound stencil and asserts every level contributes a
speedup —

    1 device, 1 team, 1 thread, no simd
    -> + threads               (parallel for)
    -> + simd                  (multiple vector lanes)
    -> + teams                 (teams distribute)
    -> + devices               (target spread)
"""

import numpy as np
import pytest

from conftest import run_once

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.costmodel import CostModel
from repro.sim.topology import DeviceSpec, uniform_node
from repro.spread import (
    omp_spread_size as Z,
    omp_spread_start as S,
    target_spread,
)
from repro.util.format import format_table

N = 16386
SPEC = DeviceSpec(num_sms=8, max_threads_per_sm=64, simd_width=8,
                  iters_per_second=5e6, memory_bytes=1e9,
                  kernel_launch_latency=0.0, kernel_issue_latency=0.0,
                  alloc_latency=0.0, free_latency=0.0)

#: (label, devices, num_teams, threads_per_team, simd)
LEVELS = [
    ("serial",                 1, 1,    1, False),
    ("+ parallel for",         1, 1,   64, False),
    ("+ simd",                 1, 1,   64, True),
    ("+ teams distribute",     1, 8,   64, True),
    ("+ target spread (x4)",   4, 8,   64, True),
]


def run_level(devices, teams, threads, simd) -> float:
    from repro.device.kernel import LaunchConfig

    rt = OpenMPRuntime(
        topology=uniform_node(4, device_specs=[SPEC] * 4,
                              link_bandwidth=1e12, staging_bandwidth=1e13),
        cost_model=CostModel(), trace_enabled=False)
    A, B = np.arange(float(N)), np.zeros(N)
    vA, vB = Var("A", A), Var("B", B)

    def body(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]

    def program(omp):
        yield from target_spread(
            omp, KernelSpec("stencil", body), 1, N - 1,
            list(range(devices)),
            maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))],
            launch=LaunchConfig(num_teams=teams, threads_per_team=threads,
                                simd=simd))

    rt.run(program)
    expect = A[0:N - 2] + A[1:N - 1] + A[2:N]
    assert np.array_equal(B[1:N - 1], expect)
    return rt.elapsed


def test_fig1_each_level_contributes(benchmark, capsys):
    def collect():
        return [(label, run_level(d, t, th, s))
                for label, d, t, th, s in LEVELS]

    times = run_once(benchmark, collect)
    serial = times[0][1]
    rows = [(label, f"{t * 1e3:.3f} ms", f"{serial / t:8.1f}x")
            for label, t in times]
    benchmark.extra_info["speedups"] = {label: round(serial / t, 1)
                                        for label, t in times}
    with capsys.disabled():
        print("\n\nFIG. 1 — levels of parallelism, enabled one at a time")
        print(format_table(["configuration", "virtual time",
                            "speedup vs serial"], rows))

    for (label_a, ta), (label_b, tb) in zip(times, times[1:]):
        assert tb < ta, f"{label_b} did not improve on {label_a}"
    # the spread level multiplies by the device count (compute-bound)
    assert times[-2][1] / times[-1][1] == pytest.approx(4.0, rel=0.2)
