"""Directive-overhead microbenchmark (Section VI-A's negligible-overhead
claim, isolated from Somier).

Runs the same 1-D stencil through (a) the plain ``target`` directives and
(b) ``target spread`` restricted to one device, on identical simulated
hardware: the virtual-time difference is the spread machinery's overhead.
Also measures the pragma frontend (parse + sema) against the programmatic
API.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.openmp.target import target_teams_distribute_parallel_for
from repro.pragma import parse_pragma
from repro.pragma.sema import check_directive
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size,
    omp_spread_start,
    target_spread_teams_distribute_parallel_for,
)

S, Z = omp_spread_start, omp_spread_size
N = 4096
SWEEPS = 50


def _run(spread: bool) -> float:
    rt = OpenMPRuntime(topology=cte_power_node(1, memory_bytes=1e9),
                       trace_enabled=False)
    A, B = np.arange(float(N)), np.zeros(N)
    vA, vB = Var("A", A), Var("B", B)
    kern = KernelSpec("stencil", lambda lo, hi, env: None)

    def program(omp):
        for _ in range(SWEEPS):
            if spread:
                yield from target_spread_teams_distribute_parallel_for(
                    omp, kern, 1, N - 1, [0],
                    maps=[Map.to(vA, (S - 1, Z + 2)),
                          Map.from_(vB, (S, Z))])
            else:
                yield from target_teams_distribute_parallel_for(
                    omp, device=0, kernel=kern, lo=1, hi=N - 1,
                    maps=[Map.to(vA, (1 - 1, (N - 2) + 2)),
                          Map.from_(vB, (1, N - 2))])

    rt.run(program)
    return rt.elapsed


def test_spread_overhead_on_one_device(benchmark, capsys):
    spread_t = run_once(benchmark, _run, True)
    target_t = _run(False)
    overhead = (spread_t - target_t) / target_t
    benchmark.extra_info["target_virtual_s"] = target_t
    benchmark.extra_info["spread_virtual_s"] = spread_t
    benchmark.extra_info["relative_overhead"] = overhead
    with capsys.disabled():
        print(f"\n\nOVERHEAD — 1-device stencil x{SWEEPS}: "
              f"target={target_t:.6f}s  spread={spread_t:.6f}s  "
              f"overhead={overhead * 100:.2f}%")
    # "a negligible overhead is introduced by using these new directives"
    assert abs(overhead) < 0.01


def test_pragma_frontend_throughput(benchmark):
    """Parsing + checking a Listing-4-sized pragma, per call."""
    src = ("omp target spread teams distribute parallel for "
           "devices(2,0,1) spread_schedule(static, 4) num_teams(2) "
           "map(to: A[omp_spread_start-1:omp_spread_size+2]) "
           "map(from: B[omp_spread_start:omp_spread_size]) nowait")

    def frontend():
        check_directive(parse_pragma(src))

    benchmark(frontend)
