"""Shared infrastructure for the paper-reproduction benchmarks.

Every module regenerates one table or figure of the paper.  Simulated
(virtual) execution times are the scientific output — they are printed as
paper-vs-measured tables and attached to pytest-benchmark's ``extra_info``;
the wall-clock numbers pytest-benchmark itself reports measure the
simulator.

A session-scoped cache shares the expensive full-scale runs (Table I/II and
the trace analyses reuse the same simulations).
"""

from __future__ import annotations

import pytest

from repro.bench.machines import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    paper_devices,
    paper_machine,
    paper_somier_config,
)
from repro.obs import MetricsTool
from repro.somier import run_somier

#: functional grid standing in for the paper's 1200^3 (see repro.bench)
N_FUNCTIONAL = 96
STEPS = 31


class PaperRuns:
    """Lazily-computed, cached full-scale Somier runs."""

    def __init__(self):
        self._cache = {}

    def get(self, impl: str, gpus: int, trace: bool = False,
            data_depend: bool = False, fuse_transfers: bool = False,
            n_functional: int = N_FUNCTIONAL, steps: int = STEPS):
        key = (impl, gpus, trace, data_depend, fuse_transfers,
               n_functional, steps)
        if key not in self._cache:
            topo, cm = paper_machine(gpus, n_functional=n_functional)
            cfg = paper_somier_config(n_functional=n_functional, steps=steps)
            # Attach the metrics tool so BENCH_*.json runs carry counter
            # snapshots (tool callbacks never advance virtual time, so the
            # reported elapsed seconds are unaffected).
            self._cache[key] = run_somier(
                impl, cfg, devices=paper_devices(gpus), topology=topo,
                cost_model=cm, trace=trace, data_depend=data_depend,
                fuse_transfers=fuse_transfers, tools=(MetricsTool(),))
        return self._cache[key]


@pytest.fixture(scope="session")
def paper_runs():
    return PaperRuns()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a simulation exactly once (runs are seconds-long and
    deterministic, repetition adds nothing)."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    metrics = getattr(result, "metrics", None)
    if metrics:
        benchmark.extra_info["metrics"] = metrics["counters"]
    return result


def paper_seconds(impl: str, gpus: int) -> float:
    table = dict(PAPER_TABLE1)
    table.update(PAPER_TABLE2)
    return table[(impl, gpus)]
