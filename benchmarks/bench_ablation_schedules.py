"""Ablation A2 — §IX future work: non-static spread schedules.

"Dynamic scheduling is also an important issue that must be addressed in
order to mitigate the slowdown cause by load imbalance."  This bench builds
the imbalanced node the paper hypothesizes (one device 3x slower) and
compares static round-robin against the dynamic-pull extension, plus an
irregular static schedule tuned to the imbalance.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.topology import DeviceSpec, uniform_node
from repro.spread import (
    omp_spread_size,
    omp_spread_start,
    spread_schedule,
    target_spread_teams_distribute_parallel_for,
)
from repro.spread import extensions as ext
from repro.util.format import format_hms

S, Z = omp_spread_start, omp_spread_size
N = 2050
SWEEPS = 2

#: device 1 computes at 1/3 the speed of device 0
FAST = DeviceSpec(iters_per_second=3e8, memory_bytes=1e9)
SLOW = DeviceSpec(iters_per_second=1e8, memory_bytes=1e9)


def run_schedule(schedule) -> float:
    rt = OpenMPRuntime(topology=uniform_node(
        2, device_specs=[FAST, SLOW], memory_bytes=1e9,
        link_bandwidth=1e12, staging_bandwidth=1e13),
        trace_enabled=False)
    ext.enable(rt, schedules=True)
    A, B = np.arange(float(N)), np.zeros(N)
    vA, vB = Var("A", A), Var("B", B)

    def body(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]

    kern = KernelSpec("stencil", body, work_per_iter=1e5)

    def program(omp):
        for _ in range(SWEEPS):
            yield from target_spread_teams_distribute_parallel_for(
                omp, kern, 1, N - 1, [0, 1], schedule=schedule,
                maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))])

    rt.run(program)
    expect = A[0:N - 2] + A[1:N - 1] + A[2:N]
    assert np.array_equal(B[1:N - 1], expect)
    return rt.elapsed


def test_dynamic_schedule_mitigates_imbalance(benchmark, capsys):
    static_t = run_once(benchmark, run_schedule, spread_schedule("static", 64))
    dynamic_t = run_schedule(spread_schedule("dynamic", 64))
    # irregular static: deal 3 chunks to the fast device per slow chunk
    irregular_t = run_schedule(
        spread_schedule("static_irregular", [192, 64]))

    benchmark.extra_info["static_virtual_s"] = static_t
    benchmark.extra_info["dynamic_virtual_s"] = dynamic_t
    benchmark.extra_info["irregular_virtual_s"] = irregular_t
    with capsys.disabled():
        print("\n\nABLATION A2 — schedules on an imbalanced node "
              "(device 1 is 3x slower)")
        print(f"  static round-robin : {format_hms(static_t)}")
        print(f"  dynamic pull       : {format_hms(dynamic_t)} "
              f"({(1 - dynamic_t / static_t) * 100:+.1f}%)")
        print(f"  irregular 3:1      : {format_hms(irregular_t)} "
              f"({(1 - irregular_t / static_t) * 100:+.1f}%)")

    # "evaluate how poorly the static round-robin schedule performs"
    assert dynamic_t < static_t * 0.85
    assert irregular_t < static_t * 0.85


def test_static_balanced_node_unharmed(benchmark):
    """On a balanced node, static keeps up with dynamic (no pull overhead
    is modelled, so they tie; the check guards the functional path)."""
    global SLOW
    balanced = DeviceSpec(iters_per_second=3e8, memory_bytes=1e9)
    old = SLOW
    try:
        SLOW = balanced
        static_t = run_once(benchmark, run_schedule,
                            spread_schedule("static", 64))
        dynamic_t = run_schedule(spread_schedule("dynamic", 64))
        assert static_t == pytest.approx(dynamic_t, rel=0.05)
    finally:
        SLOW = old
