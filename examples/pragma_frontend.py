#!/usr/bin/env python
"""Using the compiler frontend: paper listings as literal pragma strings.

The :mod:`repro.pragma` package reproduces the paper's Clang pipeline
(lexer -> parser -> AST -> sema -> codegen), so the directives can be
written exactly as in the listings.  This example:

* runs Listing 6's enter/exit data spread + a spread kernel through
  ``execute_pragma``;
* shows the semantic checker rejecting the constructs the paper's
  prototype rejects (with caret diagnostics from the lexer/parser).
"""

import numpy as np

from repro.device.kernel import KernelSpec
from repro.openmp import OpenMPRuntime, Var
from repro.pragma import execute_pragma, parse_pragma
from repro.pragma.sema import check_directive
from repro.sim.topology import cte_power_node
from repro.util.errors import OmpSemaError, OmpSyntaxError

N = 26


def main():
    rt = OpenMPRuntime(topology=cte_power_node(4))
    A = np.arange(float(N))
    B = np.zeros(N)
    symbols = {"A": Var("A", A), "B": Var("B", B), "N": N}

    def stencil(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]

    kernel = KernelSpec("stencil", stencil)

    def program(omp):
        # Listing 6, enter side (line continuations copied verbatim)
        yield from execute_pragma(omp, r"""
            #pragma omp target enter data spread \
              devices(2,0,1) \
              range(1:N-2) \
              chunk_size(4) \
              map(to:A[omp_spread_start-1:omp_spread_size+2])
        """, symbols)

        # the associated loop of a target spread directive
        yield from execute_pragma(omp, r"""
            #pragma omp target spread teams distribute parallel for \
              devices(2,0,1) \
              spread_schedule(static, 4) \
              map(to: A[omp_spread_start-1:omp_spread_size+2]) \
              map(from:B[omp_spread_start :omp_spread_size ])
        """, symbols, body=kernel, loop=(1, N - 1))

        # Listing 6, exit side
        yield from execute_pragma(omp, r"""
            #pragma omp target exit data spread \
              devices(2,0,1) \
              range(1:N-2) \
              chunk_size(4) \
              map(release:A[omp_spread_start-1:omp_spread_size+2])
        """, symbols)

    rt.run(program)
    expect = np.zeros(N)
    expect[1:N - 1] = A[0:N - 2] + A[1:N - 1] + A[2:N]
    assert np.array_equal(B, expect)
    print(f"Listing 6 + spread kernel executed from pragma strings "
          f"({rt.elapsed * 1e6:.1f} virtual us); result verified.\n")

    # --- diagnostics ---------------------------------------------------
    print("Semantic checks the paper's prototype enforces:\n")
    bad_pragmas = [
        ("nowait on target data spread (Section III-B.3)",
         "omp target data spread devices(0,1) range(1:24) chunk_size(4) "
         "map(tofrom: A[omp_spread_start:omp_spread_size]) nowait"),
        ("depend on enter data spread (Section IX future work)",
         "omp target enter data spread devices(0) range(0:26) chunk_size(13)"
         " map(to: A[omp_spread_start:omp_spread_size])"
         " depend(out: A[omp_spread_start:omp_spread_size])"),
        ("non-static spread schedule",
         "omp target spread devices(0,1) spread_schedule(dynamic, 4)"),
        ("omp_spread_start outside a spread directive",
         "omp target map(to: A[omp_spread_start:4])"),
    ]
    for title, src in bad_pragmas:
        try:
            check_directive(parse_pragma(src))
            print(f"  [UNEXPECTEDLY ACCEPTED] {title}")
        except OmpSemaError as err:
            print(f"  rejected — {title}:\n      {err}\n")

    print("And a syntax error with its caret diagnostic:\n")
    try:
        parse_pragma("omp target spread devices(0,1 map(to: A)")
    except OmpSyntaxError as err:
        for line in str(err).splitlines():
            print(f"  {line}")


if __name__ == "__main__":
    main()
