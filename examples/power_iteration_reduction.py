#!/usr/bin/env python
"""Distributed power iteration — the §IX reduction clause in action.

The paper lists a cross-device ``reduction`` clause as future work ("would
facilitate even more the implementation of complex algorithms").  This
example runs the classic dominant-eigenpair solver with the matrix rows
spread over four simulated GPUs, the iteration vector broadcast with
``target update spread``, and the vector norm computed by the implemented
reduction extension — then checks the answer against NumPy's ``eigh``.
"""

import numpy as np

from repro.apps import PowerIterationConfig, run_power_iteration
from repro.sim.topology import cte_power_node


def main():
    cfg = PowerIterationConfig(n=96, iterations=50, gap=3.0)
    A = cfg.matrix()
    exact = np.linalg.eigvalsh(A)[-1]

    print(f"power iteration on a {cfg.n}x{cfg.n} symmetric matrix, "
          f"{cfg.iterations} iterations\n")
    for gpus in (1, 2, 4):
        res = run_power_iteration(cfg, devices=list(range(gpus)),
                                  topology=cte_power_node(4))
        print(f"  {gpus} GPU(s): lambda = {res.eigenvalue:.12f} "
              f"(exact {exact:.12f}), residual "
              f"{res.residual(A):.2e}, virtual {res.elapsed * 1e3:.2f} ms, "
              f"{res.stats['memcpy_calls']} memcpys")
        assert abs(res.eigenvalue - exact) < 1e-8

    print("\nThe matrix is transferred once per device chunk; each "
          "iteration moves only the vector (update spread) and the "
          "reduction partials.  (At this tiny size the run is launch-"
          "latency bound, so adding GPUs does not speed it up — the "
          "point here is the reduction clause's correctness.)")


if __name__ == "__main__":
    main()
