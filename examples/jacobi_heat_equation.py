#!/usr/bin/env python
"""2-D Jacobi heat diffusion with resident data + distributed halo updates.

A different usage pattern from Somier: the grid stays *resident* on the
devices for the whole run (one ``target enter data spread`` up front), and
each iteration refreshes only the one-row halos through
``target update spread`` — the paper's Listing 7 directive doing real work.

Per iteration (ping-pong between U and V):

1. ``target spread teams distribute parallel for`` computes the 5-point
   stencil into the other buffer;
2. ``target update spread from(...)`` copies each device's fresh rows back
   to the host;
3. two ``target update spread to(...)`` push the two boundary rows of each
   chunk (sections ``[omp_spread_start-1 : 1]`` and
   ``[omp_spread_start+omp_spread_size : 1]``) so every device sees its
   neighbours' updates.

The result is validated against a pure-NumPy Jacobi loop.
"""

import numpy as np

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size as Z,
    omp_spread_start as S,
    spread_schedule,
    target_enter_data_spread,
    target_exit_data_spread,
    target_spread_teams_distribute_parallel_for,
    target_update_spread,
)

N = 64
ITERS = 20
DEVICES = [0, 1, 2, 3]
CHUNK = (N - 2 + len(DEVICES) - 1) // len(DEVICES)


def jacobi_body(lo, hi, env):
    u, v = env["src"], env["dst"]
    v[lo:hi, 1:N - 1] = 0.25 * (u[lo - 1:hi - 1, 1:N - 1]
                                + u[lo + 1:hi + 1, 1:N - 1]
                                + u[lo:hi, 0:N - 2]
                                + u[lo:hi, 2:N])


def reference(u0):
    u = u0.copy()
    v = u0.copy()
    for _ in range(ITERS):
        v[1:N - 1, 1:N - 1] = 0.25 * (u[0:N - 2, 1:N - 1]
                                      + u[2:N, 1:N - 1]
                                      + u[1:N - 1, 0:N - 2]
                                      + u[1:N - 1, 2:N])
        u, v = v, u
    return u


def main():
    # hot edge at row 0, cold elsewhere
    U = np.zeros((N, N))
    U[0, :] = 100.0
    V = U.copy()
    u0 = U.copy()
    vU, vV = Var("U", U), Var("V", V)

    rt = OpenMPRuntime(topology=cte_power_node(4))
    halo_section = (S - 1, Z + 2)
    chunk_section = (S, Z)
    range_ = (1, N - 2)
    sched = spread_schedule("static", CHUNK)

    def program(omp):
        # map both buffers once, with halos; they stay resident
        yield from target_enter_data_spread(
            omp, devices=DEVICES, range_=range_, chunk_size=CHUNK,
            maps=[Map.to(vU, halo_section), Map.to(vV, halo_section)])

        src, dst = vU, vV
        for _ in range(ITERS):
            # the kernel body is written over "src"/"dst" roles; bind the
            # mapped Var names of this ping-pong phase to those roles
            kern = KernelSpec(
                "jacobi",
                lambda lo, hi, env, s=src.name, d=dst.name: jacobi_body(
                    lo, hi, {"src": env[s], "dst": env[d]}),
                work_per_iter=float(N))
            yield from target_spread_teams_distribute_parallel_for(
                omp, kern, 1, N - 1, DEVICES, schedule=sched,
                maps=[Map.to(src, halo_section), Map.to(dst, halo_section)])

            # pull each chunk's fresh rows to the host...
            yield from target_update_spread(
                omp, devices=DEVICES, range_=range_, chunk_size=CHUNK,
                from_=[(dst, chunk_section)])
            # ...and push the two halo rows of every chunk back down
            yield from target_update_spread(
                omp, devices=DEVICES, range_=range_, chunk_size=CHUNK,
                to=[(dst, (S - 1, 1))])
            yield from target_update_spread(
                omp, devices=DEVICES, range_=range_, chunk_size=CHUNK,
                to=[(dst, (S + Z, 1))])
            src, dst = dst, src

        yield from target_exit_data_spread(
            omp, devices=DEVICES, range_=range_, chunk_size=CHUNK,
            maps=[Map.release(vU, halo_section),
                  Map.release(vV, halo_section)])

    rt.run(program)

    result = U if ITERS % 2 == 0 else V
    expect = reference(u0)
    err = np.abs(result - expect).max()
    print(f"2-D Jacobi, {N}x{N} grid, {ITERS} iterations on "
          f"{len(DEVICES)} simulated GPUs")
    print(f"virtual time: {rt.elapsed * 1e3:.3f} ms")
    print(f"max |simulated - numpy reference| = {err:.3e}")
    assert err == 0.0, "device decomposition diverged from the reference!"
    print("bitwise identical to the single-array NumPy Jacobi — halo "
          "updates are exact.")
    h2d = sum(d.h2d_bytes for d in rt.devices)
    d2h = sum(d.d2h_bytes for d in rt.devices)
    print(f"traffic: {h2d / 1e6:.2f} MB H2D, {d2h / 1e6:.2f} MB D2H "
          f"(halos only, after the initial map)")


if __name__ == "__main__":
    main()
