#!/usr/bin/env python
"""Somier across 1, 2 and 4 simulated GPUs — a miniature Table I.

Runs the spring-grid mini-app with the paper's One Buffer strategy (plus
the ``target`` baseline) on the calibrated CTE-POWER machine at reduced
functional resolution, validates every run bit-for-bit against the
sequential reference, and prints the speedup table.
"""

import numpy as np

from repro.bench.machines import paper_devices, paper_machine, paper_somier_config
from repro.somier import SomierState, run_reference, run_somier
from repro.util.format import format_hms, format_table

N_FUNCTIONAL = 48   # stands in for the paper's 1200^3 via the cost model
STEPS = 8


def main():
    cfg = paper_somier_config(n_functional=N_FUNCTIONAL, steps=STEPS)
    print(f"Somier: {cfg.n}^3 functional grid standing in for 1200^3, "
          f"{cfg.steps} time steps")
    print(f"problem size at paper scale: "
          f"{12 * 1200 ** 3 * 8 / 1e9:.1f} GB over 16 GB devices\n")

    rows = []
    runs = {}
    for impl, gpus in [("target", 1), ("one_buffer", 1),
                       ("one_buffer", 2), ("one_buffer", 4)]:
        topo, cm = paper_machine(gpus, n_functional=N_FUNCTIONAL)
        res = run_somier(impl, cfg, devices=paper_devices(gpus),
                         topology=topo, cost_model=cm, trace=False)
        runs[(impl, gpus)] = res

        # validate against the sequential buffered reference, bitwise
        ref = SomierState(cfg)
        run_reference(ref, res.plan.buffers)
        ok = all(np.array_equal(res.state.grids[k], ref.grids[k])
                 for k in ref.grids)
        rows.append((impl, gpus, format_hms(res.elapsed),
                     f"{res.plan.num_buffers} x {res.plan.rows_per_buffer} rows",
                     "bitwise" if ok else "MISMATCH"))
        assert ok

    base = runs[("target", 1)].elapsed
    print(format_table(
        ["implementation", "GPUs", "virtual time", "buffer plan",
         "vs reference"], rows))
    print("\nspeedups vs the target baseline:")
    for (impl, gpus), res in runs.items():
        print(f"  {impl:12s} x{gpus}: {base / res.elapsed:5.2f}x")

    centers = runs[("one_buffer", 4)].centers
    print(f"\ncenter of mass after {STEPS} steps: "
          f"({centers[-1][0]:.4f}, {centers[-1][1]:.4f}, "
          f"{centers[-1][2]:.4f})")


if __name__ == "__main__":
    main()
