#!/usr/bin/env python
"""Trace visualization: what the paper's Fig. 3 / Fig. 4 look like here.

Runs the Two Buffers Somier implementation on 4 simulated GPUs, prints the
nsys-style ASCII timeline (H2D '>' / D2H '<' / kernels '#'), the per-device
busy breakdown, and writes a Chrome-trace JSON loadable in
``chrome://tracing`` or https://ui.perfetto.dev.
"""

import pathlib

from repro.bench.machines import paper_devices, paper_machine, paper_somier_config
from repro.sim.trace import TraceAnalysis
from repro.somier import run_somier
from repro.util.format import format_table

N_FUNCTIONAL = 48
STEPS = 2
GPUS = 4


def main():
    topo, cm = paper_machine(GPUS, n_functional=N_FUNCTIONAL)
    cfg = paper_somier_config(n_functional=N_FUNCTIONAL, steps=STEPS)
    res = run_somier("two_buffers", cfg, devices=paper_devices(GPUS),
                     topology=topo, cost_model=cm, trace=True)
    trace = res.runtime.trace
    ta = TraceAnalysis(trace)

    print(f"Two Buffers, {GPUS} GPUs, {STEPS} steps — "
          f"virtual makespan {trace.makespan():.1f}s\n")

    span = trace.makespan()
    print("full-run timeline (one row per device queue):")
    print(trace.to_ascii(width=110, t0=0.0, t1=span))

    print("\nzoom into a 5%-wide window (the paper's Fig. 4 view):")
    t0 = span * 0.35
    print(trace.to_ascii(width=110, t0=t0, t1=t0 + span * 0.05))

    rows = []
    for d in res.devices:
        s = ta.device_summary(d)
        rows.append((d, f"{s['h2d']:.1f}s", f"{s['d2h']:.1f}s",
                     f"{s['kernel']:.1f}s",
                     ta.interleave_count(d),
                     f"{ta.compute_transfer_overlap(d):.2f}s"))
    print("\nper-device analysis:")
    print(format_table(
        ["device", "H2D busy", "D2H busy", "kernel busy",
         "kernel<->transfer alternations", "same-dev overlap"], rows))

    agg = ta.transfer_dominance(res.devices)
    print(f"\ntransfer vs kernel time: {agg['transfer']:.1f}s vs "
          f"{agg['kernel']:.1f}s (ratio {agg['ratio']:.2f}) — "
          "'dominated by memory transfers'")
    print(f"wire-level transfer overlap on socket 0: "
          f"{ta.transfer_transfer_overlap([0, 1]):.3f}s (never overlaps)")

    out = pathlib.Path(__file__).with_name("two_buffers_trace.json")
    out.write_text(trace.to_chrome_trace())
    print(f"\nChrome-trace written to {out} "
          f"({out.stat().st_size / 1e3:.0f} kB) — open in chrome://tracing")


if __name__ == "__main__":
    main()
