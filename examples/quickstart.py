#!/usr/bin/env python
"""Quickstart: from ``target`` to ``target spread`` (the paper's Listings 1-4).

Runs the paper's running example — the 3-point stencil
``B[i] = A[i-1] + A[i] + A[i+1]`` — four ways on a simulated 4-GPU node:

1. plain ``target`` on one device (Listing 1),
2. the combined ``target teams distribute parallel for`` (Listing 2),
3. ``target spread`` over three devices (Listing 3),
4. the combined spread directive (Listing 4),

printing the chunk distribution (matching the paper's worked example) and
the virtual execution times.
"""

import numpy as np

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.openmp.target import (
    target,
    target_teams_distribute_parallel_for,
)
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size as Z,
    omp_spread_start as S,
    spread_schedule,
    target_spread,
    target_spread_teams_distribute_parallel_for,
)

N = 14


def stencil_body(lo, hi, env):
    a, b = env["A"], env["B"]
    b[lo:hi] = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]


def fresh_arrays():
    A = np.arange(float(N))
    B = np.zeros(N)
    return Var("A", A), Var("B", B), A, B


def expected(A):
    out = np.zeros(N)
    out[1:N - 1] = A[0:N - 2] + A[1:N - 1] + A[2:N]
    return out


def run(title, program_factory):
    rt = OpenMPRuntime(topology=cte_power_node(4))
    vA, vB, A, B = fresh_arrays()
    kernel = KernelSpec("stencil", stencil_body)
    handle = rt.run(program_factory(vA, vB, kernel))
    assert np.array_equal(B, expected(A)), f"{title}: wrong result!"
    print(f"{title:55s} {rt.elapsed * 1e6:9.2f} virtual us")
    return handle


def main():
    print(f"3-point stencil, N={N}, on a simulated CTE-POWER node "
          "(4x V100)\n")

    # Listing 1: plain target — the whole loop, serially, on device 0
    def listing1(vA, vB, kernel):
        def program(omp):
            yield from target(omp, device=0, kernel=kernel, lo=1, hi=N - 1,
                              maps=[Map.to(vA, (0, N)),
                                    Map.from_(vB, (1, N - 2))])
        return program

    run("Listing 1: target (serial on one device)", listing1)

    # Listing 2: the combined directive — full intra-device parallelism
    def listing2(vA, vB, kernel):
        def program(omp):
            yield from target_teams_distribute_parallel_for(
                omp, device=0, kernel=kernel, lo=1, hi=N - 1, num_teams=2,
                maps=[Map.to(vA, (0, N)), Map.from_(vB, (1, N - 2))])
        return program

    run("Listing 2: target teams distribute parallel for", listing2)

    # Listing 3: target spread — the multi-device level of parallelism.
    # Sections use omp_spread_start / omp_spread_size per chunk.
    def listing3(vA, vB, kernel):
        def program(omp):
            handle = yield from target_spread(
                omp, kernel, 1, N - 1, devices=[2, 0, 1],
                schedule=spread_schedule("static", 4),
                maps=[Map.to(vA, (S - 1, Z + 2)),
                      Map.from_(vB, (S, Z))])
            return handle
        return program

    handle = run("Listing 3: target spread devices(2,0,1)", listing3)
    print("\n  chunk distribution (compare with the paper's Section "
          "III-B.1):")
    for chunk in handle.chunks:
        print(f"    iterations {chunk.interval.start:2d}..."
              f"{chunk.interval.stop - 1:2d}  ->  device {chunk.device}")
    print()

    # Listing 4: the combined spread directive
    def listing4(vA, vB, kernel):
        def program(omp):
            handle = yield from target_spread_teams_distribute_parallel_for(
                omp, kernel, 1, N - 1, devices=[2, 0, 1],
                schedule=spread_schedule("static", 4), num_teams=2,
                maps=[Map.to(vA, (S - 1, Z + 2)),
                      Map.from_(vB, (S, Z))])
            return handle
        return program

    run("Listing 4: target spread teams distribute parallel for", listing4)
    print("\nAll four variants produced identical results.")


if __name__ == "__main__":
    main()
