"""Unit tests for Somier state, kernels and physics invariants."""

import numpy as np
import pytest

from repro.somier.config import SomierConfig
from repro.somier.kernels import make_kernels
from repro.somier.state import GRID_NAMES, SomierState


@pytest.fixture
def cfg():
    return SomierConfig(n=10, steps=2)


@pytest.fixture
def state(cfg):
    return SomierState(cfg)


def host_env(state):
    env = dict(state.grids)
    env["partials"] = state.partials
    return env


class TestConfig:
    def test_loop_bounds(self, cfg):
        assert cfg.loop_lo == 1 and cfg.loop_hi == 9

    def test_byte_accounting(self):
        cfg = SomierConfig(n=1200, steps=31)
        # the paper's 154.5 GB: 8 bytes x 1200^3 x 3 x 4
        assert cfg.total_bytes == 8 * 1200 ** 3 * 3 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SomierConfig(n=3)
        with pytest.raises(ValueError):
            SomierConfig(steps=0)
        with pytest.raises(ValueError):
            SomierConfig(dt=-1.0)


class TestState:
    def test_twelve_grids(self, state):
        assert len(state.grids) == 12
        assert set(state.grids) == set(GRID_NAMES)
        for arr in state.grids.values():
            assert arr.shape == (10, 10, 10)

    def test_lattice_initialization(self, state, cfg):
        px = state.grids["pos_x"]
        assert px[3, 0, 0] == pytest.approx(3 * cfg.spacing)
        py = state.grids["pos_y"]
        assert py[0, 7, 0] == pytest.approx(7 * cfg.spacing)

    def test_perturbation_vanishes_at_boundary(self, state):
        pz = state.grids["pos_z"]
        idx = np.arange(10) * state.config.spacing
        assert np.allclose(pz[0], idx[None, :] * 0 + idx[None, :].T * 0
                           + idx[None, :] * 0 + pz[0])
        # boundary planes must be the unperturbed lattice
        assert np.allclose(pz[0, :, :], np.broadcast_to(idx, (10, 10)))
        assert np.allclose(pz[-1, :, :], np.broadcast_to(idx, (10, 10)))

    def test_interior_is_perturbed(self, state):
        pz = state.grids["pos_z"]
        idx = np.arange(10) * state.config.spacing
        assert not np.allclose(pz[5, :, :], np.broadcast_to(idx, (10, 10)))

    def test_copy_is_independent(self, state):
        clone = state.copy()
        clone.grids["pos_x"][2, 2, 2] = 999.0
        assert state.grids["pos_x"][2, 2, 2] != 999.0

    def test_snapshot_contains_all(self, state):
        snap = state.snapshot()
        assert set(snap) == set(GRID_NAMES) | {"partials"}


class TestKernels:
    def test_forces_zero_at_rest_without_perturbation(self):
        cfg = SomierConfig(n=8, steps=1, amplitude=0.0)
        state = SomierState(cfg)
        kernels = make_kernels(cfg)
        env = host_env(state)
        kernels.forces.run(1, 7, env)
        assert np.allclose(state.grids["force_x"], 0.0)
        assert np.allclose(state.grids["force_y"], 0.0)
        assert np.allclose(state.grids["force_z"], 0.0)

    def test_forces_pull_perturbed_node_back(self):
        cfg = SomierConfig(n=8, steps=1, amplitude=0.0)
        state = SomierState(cfg)
        state.grids["pos_z"][4, 4, 4] += 0.2  # displaced upward
        kernels = make_kernels(cfg)
        kernels.forces.run(1, 7, host_env(state))
        assert state.grids["force_z"][4, 4, 4] < 0  # restoring force

    def test_forces_symmetric_on_neighbours(self):
        cfg = SomierConfig(n=8, steps=1, amplitude=0.0)
        state = SomierState(cfg)
        state.grids["pos_z"][4, 4, 4] += 0.2
        kernels = make_kernels(cfg)
        kernels.forces.run(1, 7, host_env(state))
        fz = state.grids["force_z"]
        # the two axis-0 neighbours feel equal upward pulls
        assert fz[3, 4, 4] == pytest.approx(fz[5, 4, 4])
        assert fz[3, 4, 4] > 0

    def test_pointwise_chain(self):
        cfg = SomierConfig(n=8, steps=1)
        state = SomierState(cfg)
        env = host_env(state)
        kernels = make_kernels(cfg)
        state.grids["force_x"][2] = 4.0
        kernels.accelerations.run(2, 3, env)
        assert np.allclose(state.grids["acc_x"][2], 4.0 / cfg.mass)
        kernels.velocities.run(2, 3, env)
        assert np.allclose(state.grids["vel_x"][2], cfg.dt * 4.0 / cfg.mass)
        before = state.grids["pos_x"][2].copy()
        kernels.positions.run(2, 3, env)
        assert np.allclose(state.grids["pos_x"][2] - before,
                           cfg.dt * state.grids["vel_x"][2])

    def test_centers_row_sums(self):
        cfg = SomierConfig(n=8, steps=1)
        state = SomierState(cfg)
        kernels = make_kernels(cfg)
        kernels.centers.run(1, 7, host_env(state))
        for i in range(1, 7):
            assert state.partials[i, 0] == pytest.approx(
                state.grids["pos_x"][i].sum())
        assert np.all(state.partials[0] == 0.0)

    def test_reduce_centers_normalizes(self):
        cfg = SomierConfig(n=8, steps=1, amplitude=0.0)
        state = SomierState(cfg)
        kernels = make_kernels(cfg)
        kernels.centers.run(1, 7, host_env(state))
        centers = state.reduce_centers()
        # at rest, the x-center over interior rows is the mean row coord
        assert centers[0] == pytest.approx(np.arange(1, 7).mean()
                                           * 8 ** 2 / 8 ** 2)

    def test_kernel_order(self):
        kernels = make_kernels(SomierConfig(n=8, steps=1))
        names = [k.name for k in kernels.in_order()]
        assert names == ["forces", "accelerations", "velocities",
                         "positions", "centers"]

    def test_work_weights(self):
        kernels = make_kernels(SomierConfig(n=8, steps=1))
        assert kernels.forces.work_per_iter == 6.0 * 64
        assert kernels.positions.work_per_iter == 1.0 * 64
