"""Tests for the sequential-reference helpers and sweep semantics."""

import numpy as np
import pytest

from repro.somier import SomierConfig, SomierState, run_reference
from repro.somier.reference import run_reference_fresh


class TestReferenceHelpers:
    def test_fresh_equals_manual(self):
        cfg = SomierConfig(n=12, steps=3)
        manual = SomierState(cfg)
        run_reference(manual, [(1, 10)])
        fresh = run_reference_fresh(cfg, [(1, 10)])
        for name in manual.grids:
            assert np.array_equal(manual.grids[name], fresh.grids[name])

    def test_steps_override(self):
        cfg = SomierConfig(n=12, steps=10)
        state = SomierState(cfg)
        run_reference(state, [(1, 10)], steps=2)
        assert len(state.centers) == 2

    def test_buffer_order_matters_within_a_step(self):
        """The buffered sweep is order-sensitive (Gauss-Seidel-like halo
        coupling): sweeping bottom-up vs top-down differs — which is
        exactly why the device implementations must match the reference's
        order, not just 'do the same work'."""
        cfg = SomierConfig(n=12, steps=3)
        forward = run_reference_fresh(cfg, [(1, 5), (6, 5)])
        backward = run_reference_fresh(cfg, [(6, 5), (1, 5)])
        assert not np.array_equal(forward.grids["pos_z"],
                                  backward.grids["pos_z"])

    def test_single_buffer_equals_unbuffered(self):
        """One buffer covering the whole range is the canonical
        per-step sweep."""
        cfg = SomierConfig(n=12, steps=3)
        whole = run_reference_fresh(cfg, [(1, 10)])
        assert len(whole.centers) == 3
        # energy sanity: the perturbation keeps moving
        assert whole.grids["vel_z"].any()

    def test_centers_recorded_per_step(self):
        cfg = SomierConfig(n=12, steps=4)
        state = run_reference_fresh(cfg, [(1, 10)])
        centers = np.array(state.centers)
        assert centers.shape == (4, 3)
        # z-center oscillates as the membrane springs back
        assert centers[:, 2].std() > 0
