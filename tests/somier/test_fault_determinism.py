"""Property tests: fault injection is seeded, deterministic and replayable.

The resilience subsystem's testing contract: the same fault spec + seed
must reproduce a bit-identical run — same grids, centers, virtual
makespan and trace events — across repeated runs *and* across host worker
counts (the injector draws inside simulator processes whose order the
engine fixes; the worker pool only changes wall-clock).  A zero-rate
injector must leave the run byte-identical to no injector at all, and a
mid-run device loss must complete on the survivors with results identical
to the fault-free run.
"""

import numpy as np
import pytest

from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, run_somier
from repro.util.errors import OmpRuntimeError

CFG = SomierConfig(n=18, steps=3)


@pytest.fixture(autouse=True)
def _hermetic_fault_env(monkeypatch):
    """Each scenario here builds its own spec/seed; the CI fault-leg env
    (``REPRO_FAULTS=transfer:0.01``) must not leak into the baselines."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)

def topo(n_dev=4):
    return cte_power_node(n_dev, memory_bytes=1e9)


def assert_bit_identical(a, b):
    for name in a.state.grids:
        assert np.array_equal(a.state.grids[name], b.state.grids[name]), name
    assert np.array_equal(a.centers, b.centers)
    assert a.elapsed == b.elapsed
    assert a.runtime.trace.events == b.runtime.trace.events


def run(**kw):
    kw.setdefault("topology", topo())
    return run_somier("one_buffer", CFG, **kw)


class TestSeededReplay:
    def test_same_seed_bit_identical_across_runs(self):
        a = run(faults="transfer:0.02,kernel:0.01", fault_seed=11)
        b = run(faults="transfer:0.02,kernel:0.01", fault_seed=11)
        assert a.stats["faults_injected"] > 0  # the scenario is non-trivial
        assert a.stats["faults_injected"] == b.stats["faults_injected"]
        assert a.stats["fault_retries"] == b.stats["fault_retries"]
        assert_bit_identical(a, b)

    def test_same_seed_bit_identical_across_worker_counts(self):
        serial = run(faults="transfer:0.02,kernel:0.01", fault_seed=11,
                     workers=1)
        parallel = run(faults="transfer:0.02,kernel:0.01", fault_seed=11,
                       workers=4)
        assert serial.stats["faults_injected"] > 0
        assert serial.stats["faults_injected"] == \
            parallel.stats["faults_injected"]
        assert_bit_identical(serial, parallel)

    def test_different_seed_different_schedule(self):
        a = run(faults="transfer:0.05", fault_seed=1)
        b = run(faults="transfer:0.05", fault_seed=2)
        assert a.stats["faults_injected"] != b.stats["faults_injected"] \
            or a.runtime.trace.events != b.runtime.trace.events

    def test_device_loss_replay_across_workers(self):
        a = run(faults="device@1:#10", workers=1)
        b = run(faults="device@1:#10", workers=4)
        assert a.stats["devices_lost"] == b.stats["devices_lost"] == 1
        assert a.stats["fault_failovers"] == b.stats["fault_failovers"] > 0
        assert_bit_identical(a, b)


class TestZeroRateIsFree:
    def test_zero_rate_injection_byte_identical_to_no_injector(self):
        base = run()
        zero = run(faults="transfer:0.0,kernel:0.0,device:0.0")
        assert zero.stats["faults_injected"] == 0
        assert zero.stats["fault_retries"] == 0
        assert zero.stats["fault_failovers"] == 0
        assert_bit_identical(base, zero)


class TestDeviceLossRecovery:
    def test_mid_run_loss_completes_identically_on_survivors(self):
        """The acceptance scenario: device 1 dies mid-run; the run
        finishes on the survivors with results identical to fault-free."""
        clean = run()
        lossy = run(faults="device@1:#40")
        assert lossy.stats["devices_lost"] == 1
        assert lossy.stats["fault_failovers"] > 1  # genuinely mid-run
        for name in clean.state.grids:
            assert np.array_equal(lossy.state.grids[name],
                                  clean.state.grids[name]), name
        assert np.array_equal(lossy.centers, clean.centers)
        assert 1 in lossy.runtime.lost_devices
        assert lossy.runtime.dataenvs[1].is_empty()

    def test_loss_at_first_op_still_identical(self):
        clean = run()
        lossy = run(faults="device@1:#1")
        for name in clean.state.grids:
            assert np.array_equal(lossy.state.grids[name],
                                  clean.state.grids[name]), name


class TestPaperMachineLoss:
    """Device loss on the *calibrated* paper machine (the CLI's default).

    This configuration is adversarial in two ways the generous test
    topologies above are not: chunks are sized to nearly fill the real
    16 GB devices (so failover scratch cannot charge device capacity
    without deadlocking against the exit-data barrier), and the NUMA
    device order [1, 0, 3, 2] plus halo'd position maps make a lost
    chunk's rows *contained in a survivor's own halo'd entry* (so a
    re-routed exit/update must be a no-op, not a presence-checked pass
    that would release the survivor's entry).
    """

    def _run(self, **kw):
        from repro.bench import machines

        topo, cm = machines.paper_machine(4, n_functional=24)
        cfg = machines.paper_somier_config(n_functional=24, steps=2)
        return run_somier("one_buffer", cfg,
                          devices=machines.paper_devices(4),
                          topology=topo, cost_model=cm, **kw)

    def test_early_loss_completes_identically(self):
        clean = self._run()
        lossy = self._run(faults="device@1:#6")
        assert lossy.stats["devices_lost"] == 1
        assert lossy.stats["fault_failovers"] > 0
        for name in clean.state.grids:
            assert np.array_equal(lossy.state.grids[name],
                                  clean.state.grids[name]), name

    def test_scratch_consumes_no_device_capacity(self):
        lossy = self._run(faults="device@1:#1")
        for dev in lossy.runtime.devices:
            assert dev.allocator.used_bytes == 0
            assert dev.allocator.peak_bytes <= dev.allocator.capacity_bytes


class TestKnobValidation:
    def test_bad_spec_is_clean_runtime_error(self):
        with pytest.raises(OmpRuntimeError, match="invalid faults spec"):
            run(faults="warp:0.1")

    def test_env_spec_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "transfer:0.0")
        res = run()
        assert res.stats["faults_injected"] == 0  # injector was attached

    def test_env_bad_spec_is_clean_runtime_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "transfer:lots")
        with pytest.raises(OmpRuntimeError, match="invalid REPRO_FAULTS"):
            run()

    def test_env_bad_seed_is_clean_runtime_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "eleven")
        with pytest.raises(OmpRuntimeError, match="REPRO_FAULT_SEED"):
            run(faults="transfer:0.0")
