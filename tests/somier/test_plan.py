"""Unit tests for the Somier buffer planner."""

import pytest

from repro.somier.config import SomierConfig
from repro.somier.plan import chunk_footprint_bytes, plan_buffers
from repro.util.errors import OmpAllocationError


def footprint(n, rows):
    return chunk_footprint_bytes(SomierConfig(n=n), rows)


class TestFootprint:
    def test_formula(self):
        cfg = SomierConfig(n=10)
        plane = 100 * 8
        expected = 3 * (4 + 2) * plane + 9 * 4 * plane + 4 * 24
        assert chunk_footprint_bytes(cfg, 4) == expected

    def test_monotone_in_rows(self):
        assert footprint(10, 5) > footprint(10, 4)


class TestPlanBuffers:
    def test_partition_covers_interior_exactly(self):
        cfg = SomierConfig(n=20)
        plan = plan_buffers(cfg, 2, capacity_bytes=footprint(20, 4) * 2.5)
        covered = []
        for start, size in plan.buffers:
            covered.extend(range(start, start + size))
        assert covered == list(range(1, 19))

    def test_chunk_respects_capacity(self):
        cfg = SomierConfig(n=20)
        cap = footprint(20, 3) / 0.85 + 1
        plan = plan_buffers(cfg, 1, capacity_bytes=cap)
        assert plan.chunk_rows == 3
        assert plan.rows_per_buffer == 3

    def test_buffer_scales_with_devices(self):
        cfg = SomierConfig(n=20)
        cap = footprint(20, 3) / 0.85 + 1
        plan1 = plan_buffers(cfg, 1, capacity_bytes=cap)
        plan4 = plan_buffers(cfg, 4, capacity_bytes=cap)
        assert plan4.rows_per_buffer == 4 * plan1.rows_per_buffer
        assert plan4.num_buffers < plan1.num_buffers

    def test_chunk_capped_by_total_rows(self):
        cfg = SomierConfig(n=10)
        plan = plan_buffers(cfg, 2, capacity_bytes=1e15)
        # 8 interior rows over 2 devices -> 4 rows per chunk, one buffer
        assert plan.chunk_rows == 4
        assert plan.num_buffers == 1

    def test_scale_applies_to_virtual_bytes(self):
        cfg = SomierConfig(n=20)
        cap = footprint(20, 6) / 0.85 + 1
        with_scale = plan_buffers(cfg, 1, capacity_bytes=cap, scale=2.0)
        without = plan_buffers(cfg, 1, capacity_bytes=cap, scale=1.0)
        assert without.chunk_rows == 6
        # doubling virtual bytes at least halves the rows (halo overhead
        # makes two 3-row chunks cost more than one 6-row chunk)
        assert with_scale.chunk_rows == 2

    def test_concurrent_chunks_halves_budget(self):
        cfg = SomierConfig(n=20)
        cap = footprint(20, 6) / 0.85 + 1
        one = plan_buffers(cfg, 1, capacity_bytes=cap, concurrent_chunks=1)
        two = plan_buffers(cfg, 1, capacity_bytes=cap, concurrent_chunks=2)
        assert two.chunk_rows <= one.chunk_rows

    def test_too_small_capacity_raises(self):
        cfg = SomierConfig(n=20)
        with pytest.raises(OmpAllocationError, match="exceeds"):
            plan_buffers(cfg, 1, capacity_bytes=footprint(20, 1) * 0.5)

    def test_parameter_validation(self):
        cfg = SomierConfig(n=10)
        with pytest.raises(ValueError):
            plan_buffers(cfg, 0, capacity_bytes=1e9)
        with pytest.raises(ValueError):
            plan_buffers(cfg, 1, capacity_bytes=1e9, fill=0.0)
        with pytest.raises(ValueError):
            plan_buffers(cfg, 1, capacity_bytes=1e9, concurrent_chunks=0)


class TestHalves:
    def test_halves_cover_buffers(self):
        cfg = SomierConfig(n=20)
        plan = plan_buffers(cfg, 2, capacity_bytes=footprint(20, 4) * 3)
        halves = plan.halves()
        assert len(halves) == 2 * plan.num_buffers
        covered = []
        for start, size in halves:
            covered.extend(range(start, start + size))
        assert covered == list(range(1, 19))

    def test_odd_buffer_splits_front_heavy(self):
        from repro.somier.plan import BufferPlan
        plan = BufferPlan(buffers=((1, 5),), chunk_rows=5, num_devices=1)
        assert plan.halves() == [(1, 3), (4, 2)]

    def test_single_row_buffer_has_one_half(self):
        from repro.somier.plan import BufferPlan
        plan = BufferPlan(buffers=((1, 1),), chunk_rows=1, num_devices=1)
        assert plan.halves() == [(1, 1)]
