"""Tests for driver options and the shared implementation tables."""

import numpy as np
import pytest

from repro.openmp.mapping import MapType
from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, SomierState, run_reference, run_somier
from repro.somier import impl_common as common
from repro.somier.plan import chunk_footprint_bytes

CFG = SomierConfig(n=18, steps=2)


def topo(rows=4, n=4):
    return cte_power_node(n, memory_bytes=chunk_footprint_bytes(CFG, rows) / 0.8)


class TestDriverOptions:
    def test_fill_controls_chunk_size(self):
        tight = run_somier("one_buffer", CFG, devices=[0], topology=topo(8),
                           fill=0.4)
        roomy = run_somier("one_buffer", CFG, devices=[0], topology=topo(8),
                           fill=0.85)
        assert tight.plan.chunk_rows < roomy.plan.chunk_rows
        # both still correct
        for res in (tight, roomy):
            ref = SomierState(CFG)
            run_reference(ref, res.plan.buffers)
            assert np.array_equal(res.state.grids["pos_z"],
                                  ref.grids["pos_z"])

    def test_fuse_transfers_functionally_identical(self):
        plain = run_somier("one_buffer", CFG, devices=[0, 1], topology=topo())
        fused = run_somier("one_buffer", CFG, devices=[0, 1], topology=topo(),
                           fuse_transfers=True)
        for name in plain.state.grids:
            assert np.array_equal(plain.state.grids[name],
                                  fused.state.grids[name])
        assert fused.stats["memcpy_calls"] < plain.stats["memcpy_calls"] / 5

    def test_global_drain_flag_functionally_identical(self):
        drain = run_somier("two_buffers", CFG, devices=[0, 1, 2, 3],
                           topology=topo(8))
        pure = run_somier("two_buffers", CFG, devices=[0, 1, 2, 3],
                          topology=topo(8), taskgroup_global_drain=False)
        # physics agrees to rounding (scheduling differs, races shift)
        for name in drain.state.grids:
            assert np.allclose(drain.state.grids[name],
                               pure.state.grids[name], atol=1e-6)

    def test_trace_flag_off_records_nothing(self):
        res = run_somier("one_buffer", CFG, devices=[0], topology=topo(),
                         trace=False)
        assert res.runtime.trace.events == []
        assert res.elapsed > 0


class TestImplCommonTables:
    def setup_method(self):
        self.state = SomierState(CFG)

    def test_enter_maps_cover_thirteen_entries(self):
        maps = common.enter_maps(self.state)
        assert len(maps) == 13
        types = [m.map_type for m in maps]
        assert types.count(MapType.TO) == 12
        assert types.count(MapType.ALLOC) == 1  # partials

    def test_positions_enter_with_halo(self):
        maps = common.enter_maps(self.state)
        pos_maps = [m for m in maps if m.var.name.startswith("pos_")]
        for m in pos_maps:
            start, length = m.section
            assert start.evaluate(5, 4) == 4      # S - 1
            assert length.evaluate(5, 4) == 6     # Z + 2

    def test_exit_maps_all_from_exact_chunk(self):
        maps = common.exit_maps(self.state)
        assert len(maps) == 13
        assert all(m.map_type is MapType.FROM for m in maps)
        for m in maps:
            start, length = m.section
            assert start.evaluate(5, 4) == 5
            assert length.evaluate(5, 4) == 4

    def test_kernel_table_order_and_deps(self):
        table = common.kernel_table(self.state)
        assert len(table) == 5
        # forces reads the position halo
        _sel, maps_of, deps_of = table[0]
        deps = deps_of(self.state)
        ins = [d for d in deps if d.kind.name == "IN"]
        assert all(d.var.name.startswith("pos_") for d in ins)
        start, length = ins[0].section
        assert start.evaluate(5, 4) == 4 and length.evaluate(5, 4) == 6
        # centers writes partials
        _sel, _maps_of, deps_of = table[4]
        outs = [d for d in deps_of(self.state) if d.kind.name == "OUT"]
        assert outs[0].var.name == "partials"

    def test_materialize_maps_concrete(self):
        maps = common.materialize_maps(common.enter_maps(self.state), 5, 4)
        pos = next(m for m in maps if m.var.name == "pos_x")
        assert pos.section == (4, 6)
        vel = next(m for m in maps if m.var.name == "vel_x")
        assert vel.section == (5, 4)

    def test_enter_depends_use_exact_chunks_plus_halo_reads(self):
        deps = common.enter_depends(self.state)
        outs = [d for d in deps if d.kind.name == "OUT"]
        assert len(outs) == 13
        for d in outs:
            start, _l = d.section
            assert start.evaluate(5, 4) == 5   # never the halo
        ins = [d for d in deps if d.kind.name == "IN"]
        assert len(ins) == 3  # pos halo reads
