"""Integration tests: every Somier implementation against the reference.

These are the core functional-correctness claims of the reproduction:

* the ``target`` baseline and the One Buffer spread implementation are
  **bit-for-bit** equal to the sequential buffered reference, on any device
  count;
* Two Buffers / Double Buffering match bit-for-bit once the §IX
  ``data_depend`` extension orders the cross-half halo traffic; without it
  they race exactly as the paper's version does (tiny boundary deviations);
* the memcpy accounting matches the paper's "12 calls per mapped chunk".
"""

import numpy as np
import pytest

from repro.sim.topology import cte_power_node
from repro.somier import (
    SomierConfig,
    SomierState,
    run_reference,
    run_somier,
)
from repro.util.errors import OmpSemaError

CFG = SomierConfig(n=18, steps=3)


def topo(n_dev=4, rows=4):
    # memory for about `rows` rows per chunk (plus halo slack)
    from repro.somier.plan import chunk_footprint_bytes
    cap = chunk_footprint_bytes(CFG, rows) / 0.8
    return cte_power_node(n_dev, memory_bytes=cap)


def grids_equal(state_a, state_b):
    return all(np.array_equal(state_a.grids[name], state_b.grids[name])
               for name in state_a.grids)


class TestBaseline:
    def test_target_matches_reference_bitwise(self):
        res = run_somier("target", CFG, devices=[0], topology=topo(1))
        ref = SomierState(CFG)
        run_reference(ref, res.plan.buffers)
        assert grids_equal(res.state, ref)
        assert np.array_equal(res.centers, np.array(ref.centers))

    def test_target_requires_single_device(self):
        with pytest.raises(OmpSemaError, match="one device"):
            run_somier("target", CFG, devices=[0, 1], topology=topo(2))

    def test_memcpy_count_matches_paper_granularity(self):
        res = run_somier("target", CFG, devices=[0], topology=topo(1))
        per_buffer_enter = 12  # 4 variables x 3 grids
        per_buffer_exit = 13   # + the partials row buffer
        expected = CFG.steps * res.plan.num_buffers * (per_buffer_enter +
                                                       per_buffer_exit)
        assert res.stats["memcpy_calls"] == expected

    def test_kernel_count(self):
        res = run_somier("target", CFG, devices=[0], topology=topo(1))
        assert res.stats["kernels_launched"] == \
            CFG.steps * res.plan.num_buffers * 5


class TestOneBuffer:
    @pytest.mark.parametrize("devices", [[0], [1, 0], [1, 0, 3, 2]])
    def test_matches_reference_bitwise(self, devices):
        res = run_somier("one_buffer", CFG, devices=devices, topology=topo(4))
        ref = SomierState(CFG)
        run_reference(ref, res.plan.buffers)
        assert grids_equal(res.state, ref)
        assert np.array_equal(res.centers, np.array(ref.centers))

    def test_one_gpu_equivalent_to_baseline_result(self):
        spread = run_somier("one_buffer", CFG, devices=[0], topology=topo(1))
        base = run_somier("target", CFG, devices=[0], topology=topo(1))
        assert grids_equal(spread.state, base.state)

    def test_data_env_empty_after_run(self):
        res = run_somier("one_buffer", CFG, devices=[0, 1], topology=topo(4))
        for env in res.runtime.dataenvs:
            assert env.is_empty()
        for dev in res.runtime.devices:
            assert dev.allocator.live_allocations == 0

    def test_data_depend_mode_bitwise_and_no_barriers(self):
        res = run_somier("one_buffer", CFG, devices=[0, 1, 2, 3],
                         topology=topo(4), data_depend=True)
        ref = SomierState(CFG)
        run_reference(ref, res.plan.buffers)
        assert grids_equal(res.state, ref)


class TestHalfBufferImpls:
    # half-buffer chunks must keep a >= 2-row gap between a device's
    # consecutive chunks (position halos), so give memory for 8-row chunks
    @pytest.mark.parametrize("impl", ["two_buffers", "double_buffering"])
    def test_close_to_reference_without_data_depend(self, impl):
        res = run_somier(impl, CFG, devices=[0, 1, 2, 3],
                         topology=topo(4, rows=8))
        ref = SomierState(CFG)
        run_reference(ref, res.plan.halves())
        dev = max(np.abs(res.state.grids[n] - ref.grids[n]).max()
                  for n in ref.grids)
        # cross-half halo races shift a few boundary rows by O(dt^2 * k)
        assert dev < 1e-5

    @pytest.mark.parametrize("impl", ["two_buffers", "double_buffering"])
    def test_bitwise_with_data_depend(self, impl):
        res = run_somier(impl, CFG, devices=[0, 1, 2, 3],
                         topology=topo(4, rows=8), data_depend=True)
        ref = SomierState(CFG)
        run_reference(ref, res.plan.halves())
        assert grids_equal(res.state, ref)

    @pytest.mark.parametrize("impl", ["two_buffers", "double_buffering"])
    def test_clean_teardown(self, impl):
        res = run_somier(impl, CFG, devices=[0, 1],
                         topology=topo(4, rows=8))
        for env in res.runtime.dataenvs:
            assert env.is_empty()


class TestDriver:
    def test_unknown_impl_rejected(self):
        from repro.util.errors import OmpRuntimeError
        with pytest.raises(OmpRuntimeError, match="unknown"):
            run_somier("triple_buffers", CFG, topology=topo(1))

    def test_stats_populated(self):
        res = run_somier("one_buffer", CFG, devices=[0, 1], topology=topo(4))
        assert res.stats["h2d_bytes"] > 0
        assert res.stats["d2h_bytes"] > 0
        assert res.stats["tasks"] > 0
        assert res.elapsed > 0

    def test_centers_shape(self):
        res = run_somier("one_buffer", CFG, devices=[0], topology=topo(4))
        assert res.centers.shape == (CFG.steps, 3)

    def test_default_devices_all(self):
        res = run_somier("one_buffer", CFG, topology=topo(4))
        assert res.devices == [0, 1, 2, 3]
