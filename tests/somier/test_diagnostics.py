"""Physics-validation tests via the energy diagnostics."""

import numpy as np
import pytest

from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, SomierState, run_reference, run_somier
from repro.somier.diagnostics import energy, kinetic_energy, potential_energy
from repro.somier.plan import chunk_footprint_bytes


class TestEnergyPrimitives:
    def test_rest_lattice_has_zero_energy(self):
        state = SomierState(SomierConfig(n=10, steps=1, amplitude=0.0))
        rep = energy(state)
        assert rep.kinetic == 0.0
        assert rep.potential == pytest.approx(0.0, abs=1e-24)

    def test_perturbation_stores_potential_energy(self):
        state = SomierState(SomierConfig(n=10, steps=1, amplitude=0.1))
        assert potential_energy(state) > 0.0
        assert kinetic_energy(state) == 0.0

    def test_kinetic_scales_with_mass(self):
        s1 = SomierState(SomierConfig(n=8, steps=1, mass=1.0))
        s2 = SomierState(SomierConfig(n=8, steps=1, mass=4.0))
        s1.grids["vel_x"][:] = 1.0
        s2.grids["vel_x"][:] = 1.0
        assert kinetic_energy(s2) == pytest.approx(4 * kinetic_energy(s1))

    def test_potential_counts_each_spring_once(self):
        cfg = SomierConfig(n=4, steps=1, amplitude=0.0, k_spring=2.0)
        state = SomierState(cfg)
        # stretch one x-spring by moving one node: energy from the springs
        # touching that node only
        state.grids["pos_x"][1, 1, 1] += 0.5
        e = potential_energy(state)
        # springs to (0,1,1) and (2,1,1): stretches 0.5; springs in y/z
        # directions get length sqrt(1+0.25)
        straight = 2 * 0.5 * cfg.k_spring * 0.5 ** 2
        diag = 4 * 0.5 * cfg.k_spring * (np.sqrt(1.25) - 1.0) ** 2
        assert e == pytest.approx(straight + diag, rel=1e-12)


class TestEnergyConservation:
    def test_reference_drift_bounded(self):
        """Explicit Euler gains a little energy; a blow-up means the force
        kernel is wrong, a collapse means motion was lost."""
        cfg = SomierConfig(n=12, steps=40, dt=0.005)
        state = SomierState(cfg)
        e0 = energy(state).total
        run_reference(state, [(cfg.loop_lo, cfg.loop_hi - cfg.loop_lo)])
        e1 = energy(state).total
        assert e1 > 0
        assert abs(e1 - e0) / e0 < 0.05

    def test_energy_exchanges_between_forms(self):
        """The perturbation starts as pure potential; after some steps a
        fair share must have converted to kinetic."""
        cfg = SomierConfig(n=12, steps=100, dt=0.01)
        state = SomierState(cfg)
        assert kinetic_energy(state) == 0.0
        run_reference(state, [(cfg.loop_lo, cfg.loop_hi - cfg.loop_lo)])
        rep = energy(state)
        assert rep.kinetic > 0.25 * rep.total

    def test_distributed_run_matches_reference_energy(self):
        cfg = SomierConfig(n=16, steps=5)
        cap = chunk_footprint_bytes(cfg, 4) / 0.8
        res = run_somier("one_buffer", cfg, devices=[0, 1, 2, 3],
                         topology=cte_power_node(4, memory_bytes=cap))
        ref = SomierState(cfg)
        run_reference(ref, res.plan.buffers)
        assert energy(res.state).total == pytest.approx(
            energy(ref).total, rel=1e-12)
