"""The paper's §V-B restriction: half-buffer variants cannot run on 1 GPU.

"If we had only one GPU, the halo memories might overlap in space and the
runtime will detect it as an explicit extension of an array, which is
forbidden in OpenMP.  In order to avoid this situation, more than one GPU
has to be used."
"""

import pytest

from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, run_somier
from repro.somier.plan import chunk_footprint_bytes
from repro.util.errors import OmpMappingError

CFG = SomierConfig(n=18, steps=2)


def topo(n_dev, rows=4):
    cap = chunk_footprint_bytes(CFG, rows) / 0.8
    return cte_power_node(n_dev, memory_bytes=cap)


@pytest.mark.parametrize("impl", ["two_buffers", "double_buffering"])
class TestSingleGpuForbidden:
    def test_one_gpu_raises_extension_error(self, impl):
        with pytest.raises(OmpMappingError, match="extend"):
            run_somier(impl, CFG, devices=[0],
                       topology=topo(1, rows=8))

    def test_two_gpus_fine(self, impl):
        # "the round-robin schedule makes sure there is always a gap
        # between the array sections mapped to a particular device"
        res = run_somier(impl, CFG, devices=[0, 1], topology=topo(2, rows=8))
        assert res.elapsed > 0


class TestOneBufferSingleGpuAllowed:
    def test_one_buffer_one_gpu_is_legal(self):
        # buffers are processed strictly one at a time -> no halo coexistence
        res = run_somier("one_buffer", CFG, devices=[0], topology=topo(1))
        assert res.elapsed > 0
