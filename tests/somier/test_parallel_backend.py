"""The parallel host backend against the serial backend: bit-identity.

The executor's whole contract is that ``workers=N`` changes wall-clock
behaviour only: every Somier decomposition must produce bit-identical
grids, centers history, virtual makespan and trace events whether the real
work ran inline or on the pool.  Also covered: the aliasing fallback (two
kernels sharing a buffer are never run concurrently), workers-knob
validation, the ``REPRO_WORKERS`` environment default, and the executor
statistics surfaced on ``SomierResult.stats``.
"""

import numpy as np
import pytest

from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, run_somier
from repro.somier.plan import chunk_footprint_bytes
from repro.util.errors import OmpRuntimeError

CFG = SomierConfig(n=18, steps=3)


@pytest.fixture(autouse=True)
def _pool_everything(monkeypatch):
    # These tests exercise the pool itself; pin the size-aware small-op
    # floor off so pooling engages even on a single-core host (whose
    # machine-aware default inlines every op).
    monkeypatch.setenv("REPRO_EXECUTOR_MIN_BYTES", "0")


def topo(n_dev=4, rows=4):
    cap = chunk_footprint_bytes(CFG, rows) / 0.8
    return cte_power_node(n_dev, memory_bytes=cap)


def assert_bit_identical(a, b):
    for name in a.state.grids:
        assert np.array_equal(a.state.grids[name], b.state.grids[name]), name
    assert np.array_equal(a.centers, b.centers)
    assert a.elapsed == b.elapsed
    assert a.runtime.trace.events == b.runtime.trace.events


@pytest.mark.parametrize("impl", ["target", "one_buffer", "two_buffers",
                                  "double_buffering"])
def test_parallel_matches_serial_bitwise(impl):
    devices = [0] if impl == "target" else None
    t = topo(1 if impl == "target" else 4)
    serial = run_somier(impl, CFG, devices=devices, topology=t, workers=1)
    parallel = run_somier(impl, CFG, devices=devices, topology=t, workers=3)
    assert_bit_identical(serial, parallel)
    assert parallel.stats["workers"] == 3
    assert parallel.stats["executor_epochs"] > 0
    assert parallel.stats["executor_parallel_ops"] > 0


@pytest.mark.parametrize("kwargs", [
    {"data_depend": True},
    {"fuse_transfers": True},
    {"taskgroup_global_drain": False},
])
def test_parallel_matches_serial_across_options(kwargs):
    serial = run_somier("one_buffer", CFG, topology=topo(), workers=1,
                        **kwargs)
    parallel = run_somier("one_buffer", CFG, topology=topo(), workers=4,
                          **kwargs)
    assert_bit_identical(serial, parallel)


def test_parallel_run_is_repeatable():
    a = run_somier("one_buffer", CFG, topology=topo(), workers=4)
    b = run_somier("one_buffer", CFG, topology=topo(), workers=4)
    assert_bit_identical(a, b)


class TestWorkersValidation:
    def test_zero_rejected(self):
        with pytest.raises(OmpRuntimeError, match="workers must be >= 1"):
            run_somier("one_buffer", CFG, topology=topo(), workers=0)

    def test_negative_rejected(self):
        with pytest.raises(OmpRuntimeError, match="workers must be >= 1"):
            run_somier("one_buffer", CFG, topology=topo(), workers=-3)

    def test_non_integer_rejected(self):
        with pytest.raises(OmpRuntimeError, match="positive integer"):
            run_somier("one_buffer", CFG, topology=topo(), workers=2.5)

    def test_env_default_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        res = run_somier("one_buffer", CFG, topology=topo())
        assert res.stats["workers"] == 3
        assert res.stats["executor_parallel_ops"] > 0

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(OmpRuntimeError, match="REPRO_WORKERS"):
            run_somier("one_buffer", CFG, topology=topo())

    def test_explicit_workers_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        res = run_somier("one_buffer", CFG, topology=topo(), workers=1)
        assert res.stats["workers"] == 1
        assert "executor_epochs" not in res.stats  # serial: no executor


def test_serial_default_has_no_executor(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    res = run_somier("one_buffer", CFG, topology=topo())
    assert res.stats["workers"] == 1
    assert res.runtime.executor is None
