"""Machine-parametric verification: affine domain unit tests, the cutoff
theorem, and the satellite property tests — symbolic verdicts must agree
with concrete lint runs at N in {1,2,3,4,7,16} and cluster shapes
{1x4, 2x2, 4x4}."""

from pathlib import Path

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.linter import lint_machine_for, lint_program
from repro.analysis.program import parse_expr_text, parse_program
from repro.analysis.symbolic import (ENUMERATION_CAP, SAMPLE_CLUSTER_SHAPES,
                                     SAMPLE_DEVICE_COUNTS, Affine, NotAffine,
                                     _adjacent_disjoint, _Template, affine_of,
                                     lint_source_verdict, machine_cutoff)

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples" / "omp"
BAD = REPO / "tests" / "fixtures" / "lint" / "bad"

ALL_SHAPES = ([f"gpus:{n}" for n in SAMPLE_DEVICE_COUNTS]
              + list(SAMPLE_CLUSTER_SHAPES))


def _affine(text, scalars=None):
    return affine_of(parse_expr_text(text), scalars or {})


def _codes(source, spec, severity=None):
    program, structural = parse_program(source, path="prop.omp")
    diags = lint_program(program, structural, machine=lint_machine_for(spec))
    if severity is not None:
        diags = [d for d in diags if d.severity is severity]
    return sorted({d.code for d in diags})


class TestAffineDomain:
    def test_lowering_of_spread_symbols(self):
        a = _affine("omp_spread_start + 2")
        assert (a.p, a.q, a.r) == (1, 0, 2)
        b = _affine("3 * omp_spread_size - N", {"N": 5})
        assert (b.p, b.q, b.r) == (0, 3, -5)
        assert _affine("N * 2", {"N": 7}).is_const

    def test_product_of_spread_symbols_rejected(self):
        with pytest.raises(NotAffine):
            _affine("omp_spread_start * omp_spread_size")

    def test_undefined_identifier_rejected(self):
        with pytest.raises(NotAffine):
            _affine("mystery + 1")

    def test_extrema_match_brute_force_over_polytope(self):
        lo, hi = 2, 10
        for expr in ("omp_spread_start + omp_spread_size",
                     "omp_spread_start - 1",
                     "2 * omp_spread_size + omp_spread_start"):
            a = _affine(expr)
            values = [a.at(s, z)
                      for s in range(lo, hi)
                      for z in range(1, hi - s + 1)]
            assert a.extrema(lo, hi) == (min(values), max(values)), expr


class TestAdjacentDisjoint:
    def _tmpl(self, start, length):
        return _Template("x", "from", _affine(start), _affine(length))

    def test_own_range_chunks_are_disjoint(self):
        own = self._tmpl("omp_spread_start", "omp_spread_size")
        assert _adjacent_disjoint(own, own)

    def test_halo_section_reaches_into_next_chunk(self):
        halo = self._tmpl("omp_spread_start - 1", "omp_spread_size + 2")
        own = self._tmpl("omp_spread_start", "omp_spread_size")
        assert not _adjacent_disjoint(halo, own)

    def test_shifted_write_overlapping_next_chunk(self):
        shifted = self._tmpl("omp_spread_start + 1", "omp_spread_size")
        own = self._tmpl("omp_spread_start", "omp_spread_size")
        # shifted ends at start+size+1, next chunk begins at start+size
        assert not _adjacent_disjoint(shifted, own)
        # ...but the next chunk's own range never reaches back before
        # its start, so the reverse order is fine
        assert _adjacent_disjoint(own, shifted)


class TestCutoff:
    def test_explicit_chunk_size_fixes_the_chunk_list(self):
        source = (EXAMPLES / "spread_forall.omp").read_text()
        program, _ = parse_program(source)
        assert machine_cutoff(program) == 12  # ceil(96/8)

    def test_default_schedule_cutoff_is_the_range(self):
        source = ("declare R = 40\ndeclare x[R]\nmachine *\n"
                  "#pragma omp target spread devices(*) "
                  "map(from: x[omp_spread_start : omp_spread_size])\n"
                  "loop(0 : R)\ntaskwait\n")
        program, _ = parse_program(source)
        assert machine_cutoff(program) == 40

    def test_literal_devices_stabilize_past_the_max_id(self):
        source = ("declare N = 8\ndeclare x[N]\nmachine *\n"
                  "#pragma omp target spread devices(0,3) "
                  "spread_schedule(static, 4) "
                  "map(from: x[omp_spread_start : omp_spread_size])\n"
                  "loop(0 : N)\ntaskwait\n")
        program, _ = parse_program(source)
        assert machine_cutoff(program) == 4


class TestForallExamples:
    def test_spread_forall_proved_by_enumeration(self):
        verdict = lint_source_verdict(
            (EXAMPLES / "spread_forall.omp").read_text(), "spread_forall.omp")
        assert verdict.forall and verdict.clean
        assert verdict.proof == "enumeration(1..12)+stability"
        assert verdict.cutoff == 12
        assert verdict.to_dict()["verdict"] == "∀N"

    def test_spread_affine_proved_symbolically(self):
        verdict = lint_source_verdict(
            (EXAMPLES / "spread_affine.omp").read_text(), "spread_affine.omp")
        assert verdict.forall and verdict.clean
        assert verdict.proof == "affine"
        assert verdict.cutoff > ENUMERATION_CAP

    def test_forced_machine_downgrades_to_concrete(self):
        verdict = lint_source_verdict(
            (EXAMPLES / "spread_forall.omp").read_text(), "spread_forall.omp",
            machine="gpus:3")
        assert not verdict.forall and verdict.proof == "concrete"
        assert verdict.clean
        assert any("verified only for this machine" in n
                   for n in verdict.notes)


RACY_ENUMERABLE = (
    "declare N = 32\ndeclare x[N + 2]\nmachine *\n"
    "#pragma omp target spread devices(*) spread_schedule(static, 8) "
    "map(from: x[omp_spread_start : omp_spread_size + 1])\n"
    "loop(0 : N)\ntaskwait\n")

RACY_AFFINE_FALLBACK = (
    "declare R = 1048576\ndeclare x[R + 2]\nmachine *\n"
    "#pragma omp target spread devices(*) "
    "map(from: x[omp_spread_start : omp_spread_size + 1])\n"
    "loop(0 : R)\ntaskwait\n")


class TestShapeAgreement:
    """Satellite: a parametric verdict must agree with concrete linting
    at every sampled device count and cluster shape."""

    @pytest.mark.parametrize("example",
                             ["spread_forall.omp", "spread_affine.omp"])
    def test_forall_clean_claims_hold_at_every_shape(self, example):
        source = (EXAMPLES / example).read_text()
        verdict = lint_source_verdict(source, example)
        assert verdict.forall and verdict.clean
        for spec in ALL_SHAPES:
            assert _codes(source, spec, Severity.ERROR) == [], spec

    def test_enumerated_race_findings_hold_wherever_chunks_coexist(self):
        verdict = lint_source_verdict(RACY_ENUMERABLE, "racy.omp")
        assert verdict.forall and not verdict.clean
        assert verdict.proof.startswith("enumeration")
        codes = {d.code for d in verdict.diagnostics}
        assert "SL201" in codes
        # the explicit chunk_size(8) fixes 4 chunks at every N, so the
        # overlapping writes race at every shape; shape-dependent extras
        # (SL402 where two chunks share a device) stay within the merged
        # verdict set
        for n in SAMPLE_DEVICE_COUNTS:
            concrete = set(_codes(RACY_ENUMERABLE, f"gpus:{n}",
                                  Severity.ERROR))
            assert "SL201" in concrete, n
            assert concrete <= codes, n

    def test_affine_refutation_degrades_to_sampled_shapes(self):
        verdict = lint_source_verdict(RACY_AFFINE_FALLBACK, "racy.omp")
        assert not verdict.forall and verdict.proof == "sampled"
        assert not verdict.clean
        assert any("not provable in the affine fragment" in n
                   for n in verdict.notes)
        for n in SAMPLE_DEVICE_COUNTS:
            expect = ["SL201"] if n >= 2 else []
            assert _codes(RACY_AFFINE_FALLBACK, f"gpus:{n}",
                          Severity.ERROR) == expect, n

    def test_nonparametric_verdict_equals_direct_lint(self):
        for fixture in sorted(BAD.glob("*.omp")):
            source = fixture.read_text()
            verdict = lint_source_verdict(source, str(fixture))
            assert verdict.proof == "concrete"
            program, structural = parse_program(source, path=str(fixture))
            direct = lint_program(program, structural)
            assert ({d.code for d in verdict.diagnostics}
                    == {d.code for d in direct}), fixture.name

    def test_cluster_parametric_enumeration(self):
        source = ("declare N = 64\ndeclare x[N]\nmachine cluster:*x2\n"
                  "#pragma omp target spread devices(*) "
                  "spread_schedule(static, 16) "
                  "map(from: x[omp_spread_start : omp_spread_size])\n"
                  "loop(0 : N)\ntaskwait\n")
        verdict = lint_source_verdict(source, "cluster.omp")
        assert verdict.forall
        assert verdict.universe == "cluster:Mx2 for all M >= 1"
        assert verdict.proof.startswith("enumeration")
        for spec in SAMPLE_CLUSTER_SHAPES:
            assert _codes(source, spec, Severity.ERROR) == [], spec
