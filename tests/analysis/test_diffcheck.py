"""Differential verification: the lint-fuzz harness itself, and the
acceptance cross-validation of SL601 against a causal-analysis run."""

from pathlib import Path

from repro.analysis.diffcheck import (DEFAULT_SHAPES, check_program,
                                      execute_source, generate_program,
                                      run_diffcheck)
from repro.analysis.linter import lint_source
from repro.analysis.program import parse_program
from repro.openmp.runtime import OpenMPRuntime

REPO = Path(__file__).resolve().parents[2]
BAD = REPO / "tests" / "fixtures" / "lint" / "bad"


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_program(7) == generate_program(7)
        assert generate_program(7) != generate_program(8)

    def test_generated_programs_are_structurally_valid(self):
        for seed in range(30):
            source = generate_program(seed)
            program, structural = parse_program(source)
            assert structural == [], f"seed {seed}: {structural}"
            assert program.statements


class TestExecutor:
    def test_racy_program_trips_the_sanitizer(self):
        source = (
            "declare N = 32\ndeclare x[N]\ndeclare y[N]\ndeclare z[N]\n"
            "#pragma omp target spread devices(0,1) "
            "spread_schedule(static, 16) nowait "
            "map(to: y[omp_spread_start : omp_spread_size]) "
            "map(from: x[omp_spread_start : omp_spread_size])\n"
            "loop(0 : N)\n"
            "#pragma omp target spread devices(0,1) "
            "spread_schedule(static, 16) nowait "
            "map(to: x[omp_spread_start : omp_spread_size]) "
            "map(from: z[omp_spread_start : omp_spread_size])\n"
            "loop(0 : N)\n"
            "taskwait\n")
        races, error = execute_source(source, "cte-power:2")
        assert error is None
        assert races > 0
        # ...and the linter agrees (SL302 read-vs-write, so the program
        # is an agreement case, not an unsound one)
        diags = lint_source(source)
        assert "SL302" in {d.code for d in diags}
        result = check_program(source, shapes=("cte-power:2",))
        assert not result.unsound

    def test_out_of_range_device_is_agreement_not_unsoundness(self):
        source = (
            "declare N = 16\ndeclare x[N]\n"
            "#pragma omp target spread devices(0,1) "
            "spread_schedule(static, 8) "
            "map(from: x[omp_spread_start : omp_spread_size])\n"
            "loop(0 : N)\ntaskwait\n")
        races, error = execute_source(source, "cte-power:1")
        assert error is not None and "out of range" in error
        result = check_program(source, shapes=("cte-power:1",))
        assert result.outcomes[0].lint_errors == ["SL103"]
        assert not result.unsound


class TestDiffcheckGate:
    def test_seed_zero_has_no_unsound_disagreements(self):
        summary = run_diffcheck(seed=0, count=25)
        assert summary.ok, summary.render()
        assert summary.count == 25
        assert list(summary.shapes) == list(DEFAULT_SHAPES)
        # the stream must exercise both agreement classes: some programs
        # race (confirmed), some are clean everywhere
        confirmed = [r for r in summary.results
                     if any(o.race_confirmed for o in r.outcomes)]
        quiet = [r for r in summary.results
                 if all(not o.race_confirmed and not o.lint_errors
                        for o in r.outcomes)]
        assert confirmed and quiet


class TestTransferBoundCrossValidation:
    """Acceptance: the SL601 static verdict on the transfer-bound fixture
    matches a causal-analysis run — the transfer lanes dominate compute
    on the very machine the lint modeled."""

    def test_sl601_matches_lane_attribution(self):
        source = (BAD / "sl601_transfer_bound.omp").read_text()
        diags = lint_source(source, path="sl601_transfer_bound.omp")
        assert "SL601" in {d.code for d in diags}

        from repro.analysis.diffcheck import drive_program
        from repro.analysis.linter import lint_machine_for
        program, structural = parse_program(source)
        assert structural == []
        # the exact machine the lint modeled: calibrated topology with
        # the unscaled cost model
        machine = lint_machine_for(f"gpus:{program.machine}")
        rt = OpenMPRuntime(topology=machine.topology,
                           cost_model=machine.cost_model, analyze=True)
        drive_program(rt, program)
        attribution = rt.analysis().attribution()
        totals = attribution["totals"]
        assert totals["transfer_s"] > totals["compute_s"] > 0.0
