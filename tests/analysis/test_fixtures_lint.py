"""The curated fixture corpus is the linter's acceptance contract.

Every ``bad/`` fixture announces the diagnostics it must trigger in a
``// expect: SLnnn`` header; every ``good/`` fixture and shipped example
must lint completely clean.  Together the bad corpus covers the entire
diagnostic catalogue, so a new code cannot be added without a fixture.
"""

from pathlib import Path

import pytest

from repro.analysis.diagnostics import CATALOG, Severity
from repro.analysis.linter import lint_source
from repro.analysis.program import parse_program

REPO = Path(__file__).resolve().parents[2]
BAD = sorted((REPO / "tests" / "fixtures" / "lint" / "bad").glob("*.omp"))
GOOD = sorted((REPO / "tests" / "fixtures" / "lint" / "good").glob("*.omp"))
EXAMPLES = sorted((REPO / "examples" / "omp").glob("*.omp"))


def _codes(path: Path):
    diags = lint_source(path.read_text(), path=str(path))
    return diags, {d.code for d in diags}


class TestBadFixtures:
    @pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
    def test_emits_every_expected_code(self, path):
        program, _ = parse_program(path.read_text(), path=str(path))
        expected = set(program.expected_codes)
        assert expected, f"{path.name} has no // expect: header"
        diags, emitted = _codes(path)
        assert expected <= emitted, (
            f"{path.name}: missing {sorted(expected - emitted)}, "
            f"emitted {sorted(emitted)}")
        # No stray diagnostics either: the header documents the file fully.
        assert emitted <= expected, (
            f"{path.name}: unannounced {sorted(emitted - expected)}")

    @pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
    def test_severities_match_catalog(self, path):
        diags, _ = _codes(path)
        for d in diags:
            assert d.severity is CATALOG[d.code][0]
            assert d.line > 0
            assert d.path == str(path)

    def test_corpus_covers_whole_catalog(self):
        covered = set()
        for path in BAD:
            program, _ = parse_program(path.read_text(), path=str(path))
            covered |= set(program.expected_codes)
        assert covered == set(CATALOG), (
            f"uncovered codes: {sorted(set(CATALOG) - covered)}")


class TestGoodFixturesAndExamples:
    @pytest.mark.parametrize("path", GOOD + EXAMPLES, ids=lambda p: p.stem)
    def test_lints_clean(self, path):
        diags, _ = _codes(path)
        assert diags == [], "\n".join(d.render() for d in diags)

    def test_corpus_is_nonempty(self):
        assert len(BAD) >= 13
        assert len(GOOD) >= 4
        assert len(EXAMPLES) >= 2


class TestDeterminism:
    @pytest.mark.parametrize("path", BAD[:4], ids=lambda p: p.stem)
    def test_repeated_lint_is_stable(self, path):
        first = [d.to_dict() for d in lint_source(path.read_text(),
                                                  path=str(path))]
        second = [d.to_dict() for d in lint_source(path.read_text(),
                                                   path=str(path))]
        assert first == second

    def test_diagnostics_sorted_by_line(self):
        for path in BAD:
            diags, _ = _codes(path)
            assert [(d.line, d.code) for d in diags] == sorted(
                (d.line, d.code) for d in diags)


class TestSeverity:
    def test_warning_only_fixture_has_no_errors(self):
        path = next(p for p in BAD if p.stem == "sl404_redundant_release")
        diags, _ = _codes(path)
        assert diags and all(d.severity is Severity.WARNING for d in diags)
