"""End-to-end sanitizer acceptance on the paper's Somier implementations.

The contract: the three race-free implementations report zero races, the
plain Double Buffering overlap (the §IX motivation) is flagged as a true
positive that the ``data_depend`` extension then silences, sanitized
runs are bit-identical to unsanitized ones, and failover re-routing
under injected faults produces no spurious reports.
"""

import numpy as np
import pytest

from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, run_somier
from repro.util.errors import DataRaceError

CFG = SomierConfig(n=18, steps=2)


@pytest.fixture(autouse=True)
def _hermetic_env(monkeypatch):
    """CI fault/sanitize legs must not leak into these baselines."""
    for var in ("REPRO_FAULTS", "REPRO_FAULT_SEED", "REPRO_SANITIZE"):
        monkeypatch.delenv(var, raising=False)


def topo(n_dev=4):
    return cte_power_node(n_dev, memory_bytes=1e9)


def run(impl, **kw):
    kw.setdefault("topology", topo())
    if impl == "target":
        kw.setdefault("devices", [0])
    return run_somier(impl, CFG, **kw)


class TestCleanImplementations:
    @pytest.mark.parametrize("impl", ["target", "one_buffer", "two_buffers"])
    def test_zero_races(self, impl):
        res = run(impl, sanitize=True)
        assert res.stats["sanitizer_races"] == 0
        assert res.stats["sanitizer_ops"] > 0
        assert res.stats["sanitizer_checks"] > 0

    def test_double_buffering_with_data_depend_is_clean(self):
        res = run("double_buffering", sanitize=True, data_depend=True)
        assert res.stats["sanitizer_races"] == 0


class TestTruePositive:
    def test_plain_double_buffering_overlap_is_flagged(self):
        """Without depend ordering, Double Buffering's second half-buffer
        kernels overlap the first half's in-flight copy-backs — exactly
        the hazard the paper's §IX data_depend extension exists to fix."""
        res = run("double_buffering", sanitize=True)
        assert res.stats["sanitizer_races"] > 0

    def test_strict_mode_escalates(self):
        with pytest.raises(DataRaceError, match="data race"):
            run("double_buffering", sanitize="strict")


class TestBitIdentity:
    @pytest.mark.parametrize("impl", ["one_buffer", "double_buffering"])
    def test_sanitized_run_is_bit_identical(self, impl):
        off = run(impl)
        on = run(impl, sanitize=True)
        for name in off.state.grids:
            assert np.array_equal(off.state.grids[name],
                                  on.state.grids[name]), name
        assert np.array_equal(off.centers, on.centers)
        assert off.elapsed == on.elapsed
        assert off.runtime.trace.events == on.runtime.trace.events


class TestFailoverNoSpuriousRaces:
    """Satellite 6: re-routed chunks run standalone against scratch
    environments; their footprints (full reads, owned-range write-backs)
    and the no-op'd data directives must not look like races."""

    SCENARIOS = [
        ("one_buffer", "device@2:#5", 7),
        ("one_buffer", "device@0:#12", 3),
        ("two_buffers", "device@1:#9", 11),
        ("two_buffers", "device@3:#2", 1),
    ]

    @pytest.mark.parametrize("impl,faults,seed", SCENARIOS,
                             ids=lambda v: str(v))
    def test_device_loss_failover_is_clean(self, impl, faults, seed):
        res = run(impl, sanitize=True, faults=faults, fault_seed=seed)
        assert res.stats["devices_lost"] >= 1  # the scenario fired
        assert res.stats["sanitizer_races"] == 0

    def test_data_depend_prefetch_failover_is_clean(self):
        res = run("double_buffering", sanitize=True, data_depend=True,
                  faults="device@2:#5", fault_seed=7)
        assert res.stats["devices_lost"] >= 1
        assert res.stats["sanitizer_races"] == 0

    def test_retryable_faults_are_clean(self):
        res = run("one_buffer", sanitize=True, faults="transfer@1:0.02",
                  fault_seed=5)
        assert res.stats["sanitizer_races"] == 0


class TestObservability:
    def test_profile_report_carries_analysis_block(self):
        from repro.obs.builtin import MetricsTool
        from repro.obs.report import ProfileReport

        tool = MetricsTool()
        res = run("one_buffer", sanitize=True, tools=[tool])
        assert res.stats["sanitizer_races"] == 0
        report = ProfileReport(tool.registry)
        block = report.analysis_summary()
        assert block is not None
        assert block["ops_recorded"] == res.stats["sanitizer_ops"]
        assert block["access_checks"] == res.stats["sanitizer_checks"]
        assert block["races"] == 0

    def test_unsanitized_run_has_no_analysis_block(self):
        from repro.obs.builtin import MetricsTool
        from repro.obs.report import ProfileReport

        tool = MetricsTool()
        run("one_buffer", tools=[tool])
        assert ProfileReport(tool.registry).analysis_summary() is None
