"""Runtime integration tests for the dynamic race sanitizer.

The contract under test: sanitized runs flag exactly the operations that
are unordered and conflicting (no false negatives on crafted races, no
false positives on depend/taskwait-ordered programs), stay bit-identical
to unsanitized runs, and strict mode escalates reports to
:class:`DataRaceError`.
"""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.openmp.depend import Dep
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size,
    omp_spread_start,
    spread_schedule,
    target_spread,
)
from repro.spread.extensions import enable
from repro.util.errors import DataRaceError

S, Z = omp_spread_start, omp_spread_size


def make_rt(n=4, **kw):
    return OpenMPRuntime(topology=cte_power_node(n, memory_bytes=1e9), **kw)


def copy_kernel():
    def body(lo, hi, env):
        env["B"][lo:hi] = env["A"][lo:hi] + 1

    return KernelSpec("copy", body)


def writer_program(nowait_second=True, taskwait_between=False, deps=False):
    """Two spread kernels whose write-backs overlap on B."""
    n = 16
    A, B = np.arange(float(n)), np.zeros(n)
    vA, vB = Var("A", A), Var("B", B)

    def program(omp):
        yield from target_spread(
            omp, copy_kernel(), 0, n, [0, 1],
            maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))],
            nowait=True,
            depends=[Dep.out(vB, (S, Z))] if deps else ())
        if taskwait_between:
            yield from omp.taskwait()
        yield from target_spread(
            omp, copy_kernel(), 0, n, [0, 1],
            maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))],
            nowait=nowait_second,
            depends=[Dep.inout(vB, (S, Z))] if deps else ())
        yield from omp.taskwait()

    return program


class TestRaceDetection:
    def test_unordered_nowait_writebacks_race(self):
        rt = make_rt(sanitize=True)
        rt.run(writer_program())
        assert rt.sanitizer.races > 0
        report = rt.sanitizer.reports[0]
        assert report.var == "B"
        assert report.first_write and report.second_write
        assert "data race on B" in report.render()
        assert "unordered" in rt.sanitizer.summary()

    def test_reports_carry_device_and_directive_provenance(self):
        # Directive ids are allocated by the observability layer, so a
        # tool must be attached for reports to carry them.
        from repro.obs.builtin import MetricsTool

        rt = make_rt(sanitize=True)
        rt.tools.register(MetricsTool())
        rt.run(writer_program())
        report = rt.sanitizer.reports[0]
        assert report.first_device is not None
        assert report.second_device is not None
        assert report.first_directive is not None
        assert report.second_directive is not None
        assert report.first_directive != report.second_directive
        d = report.to_dict()
        assert d["var"] == "B" and d["first"]["write"]

    def test_report_is_deterministic_across_runs(self):
        outs = []
        for _ in range(2):
            rt = make_rt(sanitize=True)
            rt.run(writer_program())
            outs.append([r.to_dict() for r in rt.sanitizer.reports])
        assert outs[0] == outs[1]


class TestNoFalsePositives:
    def test_taskwait_ordered_program_is_clean(self):
        n = 16
        A, B = np.arange(float(n)), np.zeros(n)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            for _ in range(2):
                yield from target_spread(
                    omp, copy_kernel(), 0, n, [0, 1],
                    maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))],
                    nowait=True)
                yield from omp.taskwait()

        rt = make_rt(sanitize=True)
        rt.run(program)
        assert rt.sanitizer.races == 0
        assert rt.sanitizer.ops_recorded > 0

    def test_depend_chain_ordered_program_is_clean(self):
        rt = make_rt(sanitize=True)
        rt.run(writer_program(deps=True))
        assert rt.sanitizer.races == 0

    def test_taskwait_between_writers_is_clean(self):
        rt = make_rt(sanitize=True)
        rt.run(writer_program(nowait_second=False, taskwait_between=True))
        assert rt.sanitizer.races == 0

    def test_dynamic_schedule_workers_are_program_ordered(self):
        n = 24
        A, B = np.arange(float(n)), np.zeros(n)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            yield from target_spread(
                omp, copy_kernel(), 0, n, [0, 1],
                schedule=spread_schedule("dynamic", 4),
                maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))])

        rt = make_rt(sanitize=True)
        enable(rt, schedules=True)
        rt.run(program)
        assert rt.sanitizer.races == 0
        assert np.array_equal(B, A + 1)


class TestBitIdentity:
    def test_results_and_trace_identical_with_and_without(self):
        n = 16

        def run(sanitize):
            A, B = np.arange(float(n)), np.zeros(n)
            vA, vB = Var("A", A), Var("B", B)

            def program(omp):
                yield from target_spread(
                    omp, copy_kernel(), 0, n, [0, 1, 2],
                    maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))])

            rt = make_rt(sanitize=sanitize)
            rt.run(program)
            return B, rt.sim.now, rt.trace.events

        b_off, now_off, ev_off = run(False)
        b_on, now_on, ev_on = run(True)
        assert np.array_equal(b_off, b_on)
        assert now_off == now_on
        assert ev_off == ev_on


class TestStrictMode:
    def test_strict_raises_data_race_error(self):
        rt = make_rt(sanitize="strict")
        with pytest.raises(DataRaceError, match="data race on B"):
            rt.run(writer_program())

    def test_strict_clean_program_passes(self):
        rt = make_rt(sanitize="strict")
        rt.run(writer_program(deps=True))
        assert rt.sanitizer.races == 0

    def test_env_var_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rt = make_rt()
        assert rt.sanitizer is not None
        monkeypatch.delenv("REPRO_SANITIZE")
        assert make_rt().sanitizer is None
