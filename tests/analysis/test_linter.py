"""Targeted unit tests for the spreadlint passes (inline sources)."""

import textwrap

from repro.analysis.diagnostics import Severity
from repro.analysis.linter import lint_source


def lint(src: str):
    return lint_source(textwrap.dedent(src), path="<test>")


def codes(src: str):
    return [d.code for d in lint(src)]


KERNEL_WW = """\
    declare N = 16
    declare out[N]

    #pragma omp target spread devices(0,1) \\
        map(from: out[omp_spread_start : omp_spread_size])
    loop(0 : N)
"""


class TestIntraDirective:
    def test_chunk_overlapping_writes(self):
        src = """\
            declare N = 16
            declare out[N]

            #pragma omp target spread devices(0,1) map(from: out[0 : N])
            loop(0 : N)
        """
        assert codes(src) == ["SL201"]

    def test_halo_read_into_sibling_write(self):
        src = """\
            declare N = 16
            declare a[N]

            #pragma omp target spread devices(0,1) \\
                map(to: a[omp_spread_start - 1 : omp_spread_size + 2]) \\
                map(from: a[omp_spread_start : omp_spread_size])
            loop(1 : N - 2)
        """
        assert codes(src) == ["SL202"]

    def test_disjoint_chunk_writes_are_clean(self):
        assert codes(KERNEL_WW) == []

    def test_one_diagnostic_per_var_not_per_chunk_pair(self):
        src = """\
            declare N = 32
            declare out[N]

            #pragma omp target spread devices(0,1,2,3) map(from: out[0 : N])
            loop(0 : N)
        """
        assert codes(src) == ["SL201"]  # deduped across the 6 chunk pairs


class TestInterDirective:
    NOWAIT_PAIR = """\
        declare N = 16
        declare out[N]

        #pragma omp target spread devices(0,1) nowait \\
            map(from: out[omp_spread_start : omp_spread_size])
        loop(0 : N)

        #pragma omp target spread devices(0,1) {SECOND}\\
            map(from: out[omp_spread_start : omp_spread_size])
        loop(0 : N)
        {TAIL}
    """

    def test_unordered_nowait_writes_conflict(self):
        src = self.NOWAIT_PAIR.format(SECOND="nowait ", TAIL="")
        assert codes(src) == ["SL301"]

    def test_taskwait_between_orders_them(self):
        src = """\
            declare N = 16
            declare out[N]

            #pragma omp target spread devices(0,1) nowait \\
                map(from: out[omp_spread_start : omp_spread_size])
            loop(0 : N)

            taskwait

            #pragma omp target spread devices(0,1) nowait \\
                map(from: out[omp_spread_start : omp_spread_size])
            loop(0 : N)
        """
        assert codes(src) == []

    def test_later_sync_directive_does_not_flush_earlier_nowait(self):
        # OpenMP semantics: a non-nowait directive makes the host wait for
        # *its own* completion; it does not join earlier in-flight tasks.
        src = self.NOWAIT_PAIR.format(SECOND="", TAIL="")
        assert codes(src) == ["SL301"]

    def test_earlier_sync_directive_orders_later_ones(self):
        src = """\
            declare N = 16
            declare out[N]

            #pragma omp target spread devices(0,1) \\
                map(from: out[omp_spread_start : omp_spread_size])
            loop(0 : N)

            #pragma omp target spread devices(0,1) nowait \\
                map(from: out[omp_spread_start : omp_spread_size])
            loop(0 : N)

            taskwait
        """
        assert codes(src) == []

    def test_depend_edge_orders_nowait_pair(self):
        src = """\
            declare N = 16
            declare out[N]

            #pragma omp target spread devices(0,1) nowait \\
                depend(out: out[omp_spread_start : omp_spread_size]) \\
                map(from: out[omp_spread_start : omp_spread_size])
            loop(0 : N)

            #pragma omp target spread devices(0,1) nowait \\
                depend(inout: out[omp_spread_start : omp_spread_size]) \\
                map(from: out[omp_spread_start : omp_spread_size])
            loop(0 : N)

            taskwait
        """
        assert codes(src) == []

    def test_read_against_inflight_write(self):
        src = """\
            declare N = 16
            declare a[N]
            declare b[N]

            #pragma omp target spread devices(0,1) nowait \\
                map(from: a[omp_spread_start : omp_spread_size])
            loop(0 : N)

            #pragma omp target spread devices(0,1) \\
                map(to: a[omp_spread_start : omp_spread_size]) \\
                map(from: b[omp_spread_start : omp_spread_size])
            loop(0 : N)
        """
        diags = lint(src)
        assert [d.code for d in diags] == ["SL302"]
        assert diags[0].related  # points back at the first directive


class TestMapFlow:
    def test_exit_from_unmapped_array(self):
        src = """\
            declare N = 16
            declare a[N]

            #pragma omp target exit data spread devices(0,1) \\
                range(0 : N) chunk_size(8) \\
                map(from: a[omp_spread_start : omp_spread_size])
        """
        assert set(codes(src)) == {"SL401"}

    def test_dead_to_entry_warns(self):
        src = """\
            declare N = 16
            declare a[N]

            #pragma omp target enter data spread devices(0,1) \\
                range(0 : N) chunk_size(8) \\
                map(to: a[omp_spread_start : omp_spread_size])
        """
        diags = lint(src)
        assert {d.code for d in diags} == {"SL403"}
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_kernel_read_keeps_to_entry_alive(self):
        src = """\
            declare N = 16
            declare a[N]

            #pragma omp target enter data spread devices(0,1) \\
                range(0 : N) chunk_size(8) \\
                map(to: a[omp_spread_start : omp_spread_size])

            #pragma omp target spread devices(0,1) spread_schedule(static, 8) \\
                map(to: a[omp_spread_start : omp_spread_size])
            loop(0 : N)

            #pragma omp target exit data spread devices(0,1) \\
                range(0 : N) chunk_size(8) \\
                map(release: a[omp_spread_start : omp_spread_size])
        """
        assert codes(src) == []

    def test_release_of_unmapped_is_redundant(self):
        src = """\
            declare N = 16
            declare a[N]

            #pragma omp target exit data spread devices(0,1) \\
                range(0 : N) chunk_size(8) \\
                map(release: a[omp_spread_start : omp_spread_size])
        """
        diags = lint(src)
        assert {d.code for d in diags} == {"SL404"}
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_same_device_halo_extension(self):
        src = """\
            declare N = 16
            declare a[N]
            machine 1

            #pragma omp target enter data spread devices(0) \\
                range(1 : N - 2) chunk_size(7) \\
                map(to: a[omp_spread_start - 1 : omp_spread_size + 2])
        """
        assert "SL402" in codes(src)


class TestDependGraph:
    def test_forward_only_producer(self):
        src = """\
            declare N = 16
            declare a[N]

            #pragma omp target spread devices(0,1) nowait \\
                depend(in: a[omp_spread_start : omp_spread_size]) \\
                map(to: a[omp_spread_start : omp_spread_size])
            loop(0 : N)

            #pragma omp target spread devices(0,1) nowait \\
                depend(out: a[omp_spread_start : omp_spread_size]) \\
                map(from: a[omp_spread_start : omp_spread_size])
            loop(0 : N)

            taskwait
        """
        assert codes(src) == ["SL501"]

    def test_never_produced_sink(self):
        src = """\
            declare N = 16
            declare a[N]
            declare b[N]

            #pragma omp target spread devices(0,1) \\
                depend(in: b[omp_spread_start : omp_spread_size]) \\
                map(tofrom: a[omp_spread_start : omp_spread_size])
            loop(0 : N)
        """
        diags = lint(src)
        assert [d.code for d in diags] == ["SL502"]
        assert diags[0].severity is Severity.WARNING

    def test_satisfied_pipeline_is_clean(self):
        src = """\
            declare N = 16
            declare a[N]
            declare b[N]

            #pragma omp target spread devices(0,1) nowait \\
                depend(out: a[omp_spread_start : omp_spread_size]) \\
                map(tofrom: a[omp_spread_start : omp_spread_size])
            loop(0 : N)

            #pragma omp target spread devices(0,1) nowait \\
                depend(in: a[omp_spread_start : omp_spread_size]) \\
                depend(out: b[omp_spread_start : omp_spread_size]) \\
                map(to: a[omp_spread_start : omp_spread_size]) \\
                map(from: b[omp_spread_start : omp_spread_size])
            loop(0 : N)

            taskwait
        """
        assert codes(src) == []


class TestEvaluation:
    def test_undefined_identifier(self):
        src = """\
            declare a[16]

            #pragma omp target spread devices(0,1) \\
                map(to: a[M : omp_spread_size])
            loop(0 : 16)
        """
        assert set(codes(src)) == {"SL101"}

    def test_section_out_of_bounds(self):
        src = """\
            declare N = 16
            declare pos[N]

            #pragma omp target spread devices(0,1) \\
                map(to: pos[omp_spread_start - 1 : omp_spread_size + 2])
            loop(0 : N)
        """
        assert set(codes(src)) == {"SL102"}

    def test_invalid_device_id(self):
        src = """\
            declare N = 16
            declare a[N]
            machine 2

            #pragma omp target spread devices(0,2) \\
                map(to: a[omp_spread_start : omp_spread_size])
            loop(0 : N)
        """
        assert codes(src) == ["SL103"]

    def test_spread_kernel_without_loop(self):
        src = """\
            declare N = 16
            declare a[N]

            #pragma omp target spread devices(0,1) \\
                map(to: a[omp_spread_start : omp_spread_size])
        """
        assert codes(src) == ["SL105"]
