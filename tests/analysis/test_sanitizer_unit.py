"""Unit tests for the sanitizer's footprint helpers and residency table."""

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    RaceSanitizer,
    accesses_from_maps,
    resolve_sanitize,
    standalone_accesses,
)
from repro.openmp.mapping import Map, Var
from repro.util.errors import OmpRuntimeError
from repro.util.intervals import Interval


def maps(*specs):
    """Build concrete maps [(clause, interval)] from (ctor, name, lo, hi)."""
    out = []
    for ctor, name, lo, hi in specs:
        var = Var(name, np.zeros(max(hi, 1)))
        out.append((ctor(var), Interval(lo, hi)))
    return out


class TestResolveSanitize:
    @pytest.mark.parametrize("arg,expected", [
        (False, None), (True, "on"), ("on", "on"), ("1", "on"),
        ("off", None), ("strict", "strict"), ("", None),
    ])
    def test_explicit_argument(self, arg, expected):
        assert resolve_sanitize(arg) == expected

    def test_none_consults_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert resolve_sanitize(None) is None
        monkeypatch.setenv("REPRO_SANITIZE", "strict")
        assert resolve_sanitize(None) == "strict"
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert resolve_sanitize(None) is None

    def test_garbage_rejected(self):
        with pytest.raises(OmpRuntimeError, match="sanitize"):
            resolve_sanitize("later")
        with pytest.raises(OmpRuntimeError, match="sanitize"):
            resolve_sanitize(3.5)


class TestAccessesFromMaps:
    def test_map_types_drive_host_sides(self):
        cm = maps((Map.to, "a", 0, 8), (Map.from_, "b", 0, 8),
                  (Map.tofrom, "c", 2, 6), (Map.alloc, "d", 0, 8),
                  (Map.release, "e", 0, 8))
        acc = accesses_from_maps(cm)
        assert acc == [
            ("a", Interval(0, 8), False),
            ("b", Interval(0, 8), True),
            ("c", Interval(2, 6), False),
            ("c", Interval(2, 6), True),
        ]

    def test_empty_sections_skipped(self):
        cm = maps((Map.to, "a", 4, 4))
        assert accesses_from_maps(cm) == []

    def test_resident_indices_drop_reads_only(self):
        cm = maps((Map.to, "a", 0, 8), (Map.tofrom, "b", 0, 8))
        acc = accesses_from_maps(cm, resident={0, 1})
        # Present hits never read the host; the copy-back still writes.
        assert acc == [("b", Interval(0, 8), True)]


class TestStandaloneAccesses:
    def test_reads_everything_writes_owned_intersection(self):
        cm = maps((Map.to, "pos", 3, 14), (Map.from_, "force", 4, 12))
        acc = standalone_accesses(cm, 4, 12)
        assert ("pos", Interval(3, 14), False) in acc
        assert ("pos", Interval(4, 12), True) in acc  # implicit copy-back
        assert ("force", Interval(4, 12), False) in acc
        assert ("force", Interval(4, 12), True) in acc

    def test_halo_outside_owned_range_not_written(self):
        cm = maps((Map.to, "pos", 0, 20))
        acc = standalone_accesses(cm, 8, 12)
        writes = [a for a in acc if a[2]]
        assert writes == [("pos", Interval(8, 12), True)]


class TestResidencyTable:
    def test_enter_then_exit_round_trip(self):
        san = RaceSanitizer()
        cm = maps((Map.to, "u", 0, 16))
        assert not san.entered_covers(0, "u", Interval(0, 8))
        san.note_enter(0, cm)
        assert san.entered_covers(0, "u", Interval(0, 16))
        assert san.entered_covers(0, "u", Interval(4, 12))
        assert not san.entered_covers(1, "u", Interval(0, 8))  # per device
        san.note_exit(0, cm)
        assert not san.entered_covers(0, "u", Interval(0, 8))

    def test_partial_cover_is_not_resident(self):
        san = RaceSanitizer()
        san.note_enter(2, maps((Map.to, "u", 0, 8)))
        assert not san.entered_covers(2, "u", Interval(0, 12))

    def test_adjacent_enters_coalesce(self):
        san = RaceSanitizer()
        san.note_enter(0, maps((Map.to, "u", 0, 8)))
        san.note_enter(0, maps((Map.to, "u", 8, 16)))
        assert san.entered_covers(0, "u", Interval(2, 14))
