"""CLI contract for ``repro lint`` (exit codes, JSON, --expect) and the
caret-located diagnostics of ``repro check`` (satellite: source spans)."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
BAD = REPO / "tests" / "fixtures" / "lint" / "bad"
GOOD = REPO / "tests" / "fixtures" / "lint" / "good"


class TestExitCodes:
    def test_clean_files_exit_zero(self, capsys):
        assert main(["lint", str(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_error_diagnostics_exit_one(self, capsys):
        rc = main(["lint", str(BAD / "sl201_intra_ww.omp")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SL201" in out

    def test_warning_only_file_exits_zero(self, capsys):
        rc = main(["lint", str(BAD / "sl404_redundant_release.omp")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SL404" in out and "warning" in out

    def test_missing_path_is_usage_error(self, capsys):
        rc = main(["lint", str(REPO / "no" / "such" / "dir")])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_directory_without_omp_files_is_usage_error(self, tmp_path,
                                                        capsys):
        rc = main(["lint", str(tmp_path)])
        assert rc == 2
        assert "no .omp files" in capsys.readouterr().err


class TestExpectMode:
    def test_bad_corpus_passes(self, capsys):
        assert main(["lint", "--expect", str(BAD)]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert out.count("PASS") == len(list(BAD.glob("*.omp")))

    def test_missing_expected_code_fails(self, tmp_path, capsys):
        f = tmp_path / "clean_but_annotated.omp"
        f.write_text("// expect: SL201\n"
                     "declare N = 8\n"
                     "declare a[N]\n\n"
                     "#pragma omp target device(0) map(tofrom: a[0 : N])\n"
                     "loop(0 : N)\n")
        rc = main(["lint", "--expect", str(f)])
        assert rc == 1
        assert "missing expected SL201" in capsys.readouterr().out

    def test_unannotated_file_must_be_clean(self, tmp_path, capsys):
        f = tmp_path / "dirty_without_header.omp"
        f.write_text("declare N = 8\n"
                     "declare out[N]\n\n"
                     "#pragma omp target spread devices(0,1) "
                     "map(from: out[0 : N])\n"
                     "loop(0 : N)\n")
        rc = main(["lint", "--expect", str(f)])
        assert rc == 1
        assert "expected a clean program" in capsys.readouterr().out


class TestJsonOutput:
    def test_structure_and_severity_counts(self, capsys):
        rc = main(["lint", "--json", str(BAD / "sl301_inter_ww.omp"),
                   str(BAD / "sl404_redundant_release.omp")])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["path"].split("/")[-1] for f in payload["files"]} == {
            "sl301_inter_ww.omp", "sl404_redundant_release.omp"}
        assert payload["errors"] >= 1 and payload["warnings"] >= 1
        diag = payload["files"][0]["diagnostics"][0]
        assert {"code", "severity", "message", "path", "line",
                "source", "offset"} <= set(diag)

    def test_json_expect_mode_reports_ok_flags(self, capsys):
        rc = main(["lint", "--json", "--expect",
                   str(BAD / "sl102_bounds.omp")])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["files"][0]
        assert entry["ok"] is True
        assert entry["expected"] == ["SL102"]


class TestDiagnosticRendering:
    def test_caret_points_at_offending_clause(self, capsys):
        rc = main(["lint", str(BAD / "sl002_sema.omp")])
        assert rc == 1
        out = capsys.readouterr().out
        lines = out.splitlines()
        caret_lines = [ln for ln in lines if ln.strip() == "^"]
        assert caret_lines, out
        # The caret column lands inside the rendered source line, on the
        # 'from' that makes the enter-data pragma ill-formed.
        idx = lines.index(caret_lines[0])
        src_line, caret = lines[idx - 1], lines[idx]
        col = len(caret) - 1  # column of the caret; both lines share indent
        assert col < len(src_line)
        assert src_line[col:].startswith("map(from")

    def test_location_prefix_has_path_and_line(self, capsys):
        main(["lint", str(BAD / "sl201_intra_ww.omp")])
        out = capsys.readouterr().out
        assert "sl201_intra_ww.omp:" in out


class TestCheckCommand:
    """Satellite: ``repro check`` reports located, caret-rendered errors
    and exits nonzero on any diagnostic."""

    def test_sema_error_carries_caret(self, capsys):
        rc = main(["check", "omp target data spread devices(0) range(0:4) "
                            "chunk_size(2) nowait"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "^" in err
        # caret line points at the offending clause inside the echoed source
        src = next(l for l in err.splitlines()
                   if "nowait" in l and not l.startswith("error"))
        caret = next(l for l in err.splitlines() if l.strip() == "^")
        col = len(caret) - 1  # both lines share the "  " indent
        assert src[col:].startswith("nowait")

    def test_syntax_error_carries_caret(self, capsys):
        rc = main(["check", "omp target devices(0,1"])
        assert rc == 1
        assert "^" in capsys.readouterr().err

    def test_valid_pragma_exits_zero(self, capsys):
        assert main(["check", "omp target spread devices(0,1) nowait"]) == 0
