"""CLI contract for ``repro lint`` (exit codes, JSON, --expect) and the
caret-located diagnostics of ``repro check`` (satellite: source spans)."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
BAD = REPO / "tests" / "fixtures" / "lint" / "bad"
GOOD = REPO / "tests" / "fixtures" / "lint" / "good"


@pytest.fixture(autouse=True)
def _no_machine_env(monkeypatch):
    # $REPRO_MACHINE is the CLI's default lint machine; CI legs export it
    # globally, so pin these tests to the flag/file-statement behavior
    monkeypatch.delenv("REPRO_MACHINE", raising=False)


class TestExitCodes:
    def test_clean_files_exit_zero(self, capsys):
        assert main(["lint", str(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_error_diagnostics_exit_one(self, capsys):
        rc = main(["lint", str(BAD / "sl201_intra_ww.omp")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SL201" in out

    def test_warning_only_file_exits_zero(self, capsys):
        rc = main(["lint", str(BAD / "sl404_redundant_release.omp")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SL404" in out and "warning" in out

    def test_missing_path_is_usage_error(self, capsys):
        rc = main(["lint", str(REPO / "no" / "such" / "dir")])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_directory_without_omp_files_is_usage_error(self, tmp_path,
                                                        capsys):
        rc = main(["lint", str(tmp_path)])
        assert rc == 2
        assert "no .omp files" in capsys.readouterr().err


class TestExpectMode:
    def test_bad_corpus_passes(self, capsys):
        assert main(["lint", "--expect", str(BAD)]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert out.count("PASS") == len(list(BAD.glob("*.omp")))

    def test_missing_expected_code_fails(self, tmp_path, capsys):
        f = tmp_path / "clean_but_annotated.omp"
        f.write_text("// expect: SL201\n"
                     "declare N = 8\n"
                     "declare a[N]\n\n"
                     "#pragma omp target device(0) map(tofrom: a[0 : N])\n"
                     "loop(0 : N)\n")
        rc = main(["lint", "--expect", str(f)])
        assert rc == 1
        assert "missing expected SL201" in capsys.readouterr().out

    def test_unannotated_file_must_be_clean(self, tmp_path, capsys):
        f = tmp_path / "dirty_without_header.omp"
        f.write_text("declare N = 8\n"
                     "declare out[N]\n\n"
                     "#pragma omp target spread devices(0,1) "
                     "map(from: out[0 : N])\n"
                     "loop(0 : N)\n")
        rc = main(["lint", "--expect", str(f)])
        assert rc == 1
        assert "expected a clean program" in capsys.readouterr().out


class TestJsonOutput:
    def test_structure_and_severity_counts(self, capsys):
        rc = main(["lint", "--json", str(BAD / "sl301_inter_ww.omp"),
                   str(BAD / "sl404_redundant_release.omp")])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["path"].split("/")[-1] for f in payload["files"]} == {
            "sl301_inter_ww.omp", "sl404_redundant_release.omp"}
        assert payload["errors"] >= 1 and payload["warnings"] >= 1
        diag = payload["files"][0]["diagnostics"][0]
        assert {"code", "severity", "message", "path", "line",
                "source", "offset"} <= set(diag)

    def test_json_expect_mode_reports_ok_flags(self, capsys):
        rc = main(["lint", "--json", "--expect",
                   str(BAD / "sl102_bounds.omp")])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["files"][0]
        assert entry["ok"] is True
        assert entry["expected"] == ["SL102"]


class TestDiagnosticRendering:
    def test_caret_points_at_offending_clause(self, capsys):
        rc = main(["lint", str(BAD / "sl002_sema.omp")])
        assert rc == 1
        out = capsys.readouterr().out
        lines = out.splitlines()
        caret_lines = [ln for ln in lines if ln.strip() == "^"]
        assert caret_lines, out
        # The caret column lands inside the rendered source line, on the
        # 'from' that makes the enter-data pragma ill-formed.
        idx = lines.index(caret_lines[0])
        src_line, caret = lines[idx - 1], lines[idx]
        col = len(caret) - 1  # column of the caret; both lines share indent
        assert col < len(src_line)
        assert src_line[col:].startswith("map(from")

    def test_location_prefix_has_path_and_line(self, capsys):
        main(["lint", str(BAD / "sl201_intra_ww.omp")])
        out = capsys.readouterr().out
        assert "sl201_intra_ww.omp:" in out


class TestMachineFlag:
    """Satellite: ``repro lint --machine`` pins the lint machine, with
    $REPRO_MACHINE as the environment default."""

    TWO_DEV = ("declare N = 16\ndeclare x[N]\n\n"
               "#pragma omp target spread devices(0,1) "
               "spread_schedule(static, 8) "
               "map(from: x[omp_spread_start : omp_spread_size])\n"
               "loop(0 : N)\ntaskwait\n")

    def test_machine_flag_changes_the_verdict(self, tmp_path, capsys):
        f = tmp_path / "two_dev.omp"
        f.write_text(self.TWO_DEV)
        assert main(["lint", str(f)]) == 0
        capsys.readouterr()
        rc = main(["lint", "--machine", "gpus:1", str(f)])
        assert rc == 1
        assert "SL103" in capsys.readouterr().out

    def test_env_variable_is_the_default_machine(self, tmp_path, capsys,
                                                 monkeypatch):
        f = tmp_path / "two_dev.omp"
        f.write_text(self.TWO_DEV)
        monkeypatch.setenv("REPRO_MACHINE", "gpus:1")
        rc = main(["lint", str(f)])
        assert rc == 1
        assert "SL103" in capsys.readouterr().out

    def test_bogus_machine_spec_is_usage_error(self, capsys):
        rc = main(["lint", "--machine", "nonsense:9z", str(GOOD)])
        assert rc == 2
        assert capsys.readouterr().err

    def test_cluster_machine_enables_cluster_lints(self, tmp_path, capsys):
        f = tmp_path / "dynamic.omp"
        f.write_text("declare N = 64\ndeclare x[N]\n\n"
                     "#pragma omp target spread devices(0,1,2,3) "
                     "spread_schedule(dynamic, 16) "
                     "map(tofrom: x[omp_spread_start : omp_spread_size])\n"
                     "loop(0 : N)\ntaskwait\n")
        assert main(["lint", str(f)]) == 0
        out = capsys.readouterr().out
        assert "SL702" not in out
        assert main(["lint", "--machine", "cluster:2x2", str(f)]) == 0
        assert "SL702" in capsys.readouterr().out


class TestSarifOutput:
    def test_sarif_report_structure(self, tmp_path, capsys):
        sarif_path = tmp_path / "lint.sarif"
        rc = main(["lint", "--sarif", str(sarif_path),
                   str(BAD / "sl201_intra_ww.omp")])
        assert rc == 1
        capsys.readouterr()
        report = json.loads(sarif_path.read_text())
        assert report["version"] == "2.1.0"
        run = report["runs"][0]
        assert run["tool"]["driver"]["name"] == "spreadlint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"SL201", "SL601", "SL702"} <= rule_ids
        result = next(r for r in run["results"] if r["ruleId"] == "SL201")
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1

    def test_sarif_to_stdout(self, capsys):
        rc = main(["lint", "--sarif", "-",
                   str(BAD / "sl404_redundant_release.omp")])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"2.1.0"' in out and '"SL404"' in out


class TestVerdictOutput:
    EXAMPLES = REPO / "examples" / "omp"

    def test_forall_verdict_in_json(self, capsys):
        rc = main(["lint", "--json",
                   str(self.EXAMPLES / "spread_forall.omp")])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        verdict = payload["files"][0]["verdict"]
        assert verdict["forall"] is True
        assert verdict["verdict"] == "∀N"
        assert verdict["clean"] is True
        assert verdict["proof"].startswith("enumeration")

    def test_forall_verdict_in_text_output(self, capsys):
        rc = main(["lint", str(self.EXAMPLES / "spread_affine.omp")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified ∀N" in out and "[affine]" in out


class TestLintFuzzCommand:
    def test_seed_zero_gate_passes(self, capsys):
        rc = main(["lint-fuzz", "--seed", "0", "--count", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unsound disagreements: 0" in out

    def test_json_output(self, capsys):
        rc = main(["lint-fuzz", "--seed", "3", "--count", "3", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["count"] == 3
        assert payload["unsound"] == []


class TestCaretSpanClamping:
    """Satellite: carets for clauses that land on backslash-continuation
    lines are span-clamped into the rendered (joined) statement."""

    def _diag(self, **kw):
        from repro.analysis.diagnostics import Diagnostic
        return Diagnostic(code="SL002", message="m", path="f.omp", line=3,
                          **kw)

    def test_offset_past_statement_end_is_clamped(self):
        d = self._diag(source="short text", offset=50)
        caret = d.render().splitlines()[-1]
        assert caret == "  " + " " * len("short text") + "^"

    def test_underline_clamped_to_statement_end(self):
        d = self._diag(source="map(from: x)", offset=4, length=99)
        caret = d.render().splitlines()[-1]
        assert caret == "  " + " " * 4 + "^" + "~" * (len("map(from: x)")
                                                      - 5)

    def test_tab_indent_preserved_in_caret_pad(self):
        d = self._diag(source="\tmap(to: x)", offset=1, length=3)
        caret = d.render().splitlines()[-1]
        assert caret.startswith("  \t^") and caret.endswith("^~~")

    def test_continuation_line_clause_caret_lands_in_statement(
            self, tmp_path, capsys):
        f = tmp_path / "cont.omp"
        f.write_text(
            "declare N = 8\ndeclare a[N]\n\n"
            "#pragma omp target enter data spread devices(0) \\\n"
            "    range(0 : N) chunk_size(4) \\\n"
            "    map(from: a[omp_spread_start : omp_spread_size])\n")
        rc = main(["lint", str(f)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SL002" in out
        lines = out.splitlines()
        caret = next(ln for ln in lines if ln.lstrip().startswith("^"))
        src = lines[lines.index(caret) - 1]
        col = caret.index("^")
        assert col < len(src)
        assert src[col:].startswith("map(from")


class TestCheckCommand:
    """Satellite: ``repro check`` reports located, caret-rendered errors
    and exits nonzero on any diagnostic."""

    def test_sema_error_carries_caret(self, capsys):
        rc = main(["check", "omp target data spread devices(0) range(0:4) "
                            "chunk_size(2) nowait"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "^" in err
        # caret line points at the offending clause inside the echoed source
        src = next(l for l in err.splitlines()
                   if "nowait" in l and not l.startswith("error"))
        caret = next(l for l in err.splitlines() if l.strip() == "^")
        col = len(caret) - 1  # both lines share the "  " indent
        assert src[col:].startswith("nowait")

    def test_syntax_error_carries_caret(self, capsys):
        rc = main(["check", "omp target devices(0,1"])
        assert rc == 1
        assert "^" in capsys.readouterr().err

    def test_valid_pragma_exits_zero(self, capsys):
        assert main(["check", "omp target spread devices(0,1) nowait"]) == 0
