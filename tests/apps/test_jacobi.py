"""Tests for the Jacobi workload and its two data-management strategies."""

import numpy as np
import pytest

from repro.apps import JacobiConfig, run_jacobi
from repro.sim.topology import cte_power_node
from repro.util.errors import OmpRuntimeError

CFG = JacobiConfig(n=32, iterations=6)


def topo(n=4):
    return cte_power_node(n, memory_bytes=1e9)


class TestConfig:
    def test_initial_grid(self):
        u = CFG.initial_grid()
        assert u[0, 5] == 100.0
        assert u[1:, :].sum() == 0.0

    def test_reference_diffuses_heat(self):
        ref = CFG.reference()
        assert ref[1, CFG.n // 2] > 0.0            # heat moved inward
        assert ref[CFG.n - 1, CFG.n // 2] == 0.0   # but not that far yet

    def test_validation(self):
        with pytest.raises(ValueError):
            JacobiConfig(n=2)
        with pytest.raises(ValueError):
            JacobiConfig(iterations=0)


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["resident", "remap"])
    @pytest.mark.parametrize("devices", [[0], [0, 1], [0, 1, 2, 3]])
    def test_bitwise_vs_numpy_reference(self, strategy, devices):
        res = run_jacobi(CFG, strategy=strategy, devices=devices,
                         topology=topo())
        assert np.array_equal(res.grid, CFG.reference())

    @pytest.mark.parametrize("strategy", ["resident", "remap"])
    def test_odd_iteration_count(self, strategy):
        cfg = JacobiConfig(n=24, iterations=5)
        res = run_jacobi(cfg, strategy=strategy, devices=[0, 1],
                         topology=topo())
        assert np.array_equal(res.grid, cfg.reference())

    def test_clean_teardown(self):
        res = run_jacobi(CFG, strategy="resident", topology=topo())
        for env in res.runtime.dataenvs:
            assert env.is_empty()
        for dev in res.runtime.devices:
            assert dev.allocator.used_bytes == 0

    def test_unknown_strategy(self):
        with pytest.raises(OmpRuntimeError, match="unknown Jacobi strategy"):
            run_jacobi(CFG, strategy="telepathy", topology=topo())


class TestStrategyTradeoff:
    def test_resident_moves_far_less_data(self):
        resident = run_jacobi(CFG, strategy="resident", topology=topo())
        remap = run_jacobi(CFG, strategy="remap", topology=topo())
        # remap pays the full grid each way per iteration; resident pays
        # halos only after the initial map
        assert resident.stats["h2d_bytes"] < 0.5 * remap.stats["h2d_bytes"]

    def test_resident_is_faster(self):
        resident = run_jacobi(CFG, strategy="resident", topology=topo())
        remap = run_jacobi(CFG, strategy="remap", topology=topo())
        assert resident.elapsed < remap.elapsed

    def test_strategies_agree_exactly(self):
        resident = run_jacobi(CFG, strategy="resident", topology=topo())
        remap = run_jacobi(CFG, strategy="remap", topology=topo())
        assert np.array_equal(resident.grid, remap.grid)
