"""Tests for the distributed power-iteration workload."""

import os

import numpy as np
import pytest

from repro.apps.power_iteration import (
    PowerIterationConfig,
    run_power_iteration,
)
from repro.sim.topology import cte_power_node

CFG = PowerIterationConfig(n=48, iterations=40)


def topo(n=4):
    return cte_power_node(n, memory_bytes=1e9)


class TestConfig:
    def test_matrix_is_symmetric_with_planted_eig(self):
        A = CFG.matrix()
        assert np.allclose(A, A.T)
        eigs = np.linalg.eigvalsh(A)
        assert eigs[-1] == pytest.approx(CFG.gap, rel=1e-9)

    def test_initial_vector_normalized(self):
        assert np.linalg.norm(CFG.initial_vector()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerIterationConfig(n=2)
        with pytest.raises(ValueError):
            PowerIterationConfig(iterations=0)


class TestConvergence:
    @pytest.mark.parametrize("devices", [[0], [0, 1], [0, 1, 2, 3]])
    def test_finds_dominant_eigenpair(self, devices):
        res = run_power_iteration(CFG, devices=devices, topology=topo())
        assert res.eigenvalue == pytest.approx(CFG.gap, rel=1e-6)
        assert res.residual(CFG.matrix()) < 1e-5

    def test_device_counts_agree_to_rounding(self):
        """The mat-vec rows are bitwise identical across device counts;
        the norm reduction's partials are grouped per chunk, so the
        eigenvalue may differ in the last ulp — but no more."""
        a = run_power_iteration(CFG, devices=[0], topology=topo())
        b = run_power_iteration(CFG, devices=[0, 1, 2, 3], topology=topo())
        assert a.eigenvalue == pytest.approx(b.eigenvalue, rel=1e-13)
        assert np.allclose(a.eigenvector, b.eigenvector, rtol=1e-12)

    def test_matches_numpy_reference_iteration(self):
        A = CFG.matrix()
        x = CFG.initial_vector()
        for _ in range(CFG.iterations):
            y = A @ x
            lam = np.linalg.norm(y)
            x = y / lam
        res = run_power_iteration(CFG, devices=[0, 1], topology=topo())
        assert res.eigenvalue == pytest.approx(lam, rel=1e-12)
        assert np.allclose(res.eigenvector, x, rtol=1e-9)


class TestRuntimeBehaviour:
    def test_matrix_transferred_once(self):
        """A is resident: H2D traffic ~= one matrix + per-iter vector
        broadcasts, far below iterations x matrix."""
        res = run_power_iteration(CFG, devices=[0, 1], topology=topo())
        matrix_bytes = CFG.n * CFG.n * 8
        assert res.stats["h2d_bytes"] < 3 * matrix_bytes

    def test_clean_teardown(self):
        res = run_power_iteration(CFG, devices=[0, 1], topology=topo())
        for env in res.runtime.dataenvs:
            assert env.is_empty()
        for dev in res.runtime.devices:
            assert dev.allocator.used_bytes == 0

    @pytest.mark.skipif(bool(os.environ.get("REPRO_FAULTS")),
                        reason="injected retry backoff perturbs the "
                               "makespans this comparison relies on")
    def test_more_devices_faster(self):
        t1 = run_power_iteration(CFG, devices=[0], topology=topo()).elapsed
        t4 = run_power_iteration(CFG, devices=[0, 1, 2, 3],
                                 topology=topo()).elapsed
        assert t4 < t1
