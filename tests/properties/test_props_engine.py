"""Property-based tests for the simulation engine and resources."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import Resource

delays = st.lists(st.floats(min_value=0.0, max_value=10.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=15)


class TestClockProperties:
    @given(delays)
    @settings(max_examples=80, deadline=None)
    def test_clock_monotone_and_ends_at_max(self, ds):
        sim = Simulator()
        seen = []

        def proc(d):
            yield sim.timeout(d)
            seen.append(sim.now)

        for d in ds:
            sim.process(proc(d))
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == max(ds)

    @given(delays)
    @settings(max_examples=50, deadline=None)
    def test_sequential_timeouts_sum(self, ds):
        sim = Simulator()

        def proc():
            for d in ds:
                yield sim.timeout(d)
            return sim.now

        total = sim.run(sim.process(proc()))
        assert total <= sum(ds) * (1 + 1e-12) + 1e-12
        assert total >= sum(ds) * (1 - 1e-12) - 1e-12


class TestResourceProperties:
    @given(st.integers(1, 4),
           st.lists(st.floats(min_value=0.01, max_value=5.0,
                              allow_nan=False), min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, capacity, holds):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        max_seen = [0]

        def user(hold):
            req = res.request()
            yield req
            max_seen[0] = max(max_seen[0], res.in_use)
            assert res.in_use <= capacity
            yield sim.timeout(hold)
            res.release(req)

        for h in holds:
            sim.process(user(h))
        sim.run()
        assert res.in_use == 0
        assert max_seen[0] <= capacity
        assert res.grant_count == len(holds)

    @given(st.lists(st.floats(min_value=0.01, max_value=2.0,
                              allow_nan=False), min_size=2, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_fifo_grants_in_request_order(self, holds):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(tag, hold):
            req = res.request()
            yield req
            order.append(tag)
            yield sim.timeout(hold)
            res.release(req)

        for i, h in enumerate(holds):
            sim.process(user(i, h))
        sim.run()
        assert order == list(range(len(holds)))

    @given(st.integers(1, 3),
           st.lists(st.floats(min_value=0.1, max_value=2.0,
                              allow_nan=False), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounded_by_serial_and_ideal(self, capacity, holds):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)

        def user(hold):
            yield from res.use(hold)

        for h in holds:
            sim.process(user(h))
        sim.run()
        serial = sum(holds)
        ideal = max(max(holds), serial / capacity)
        assert sim.now <= serial + 1e-9
        assert sim.now >= ideal - 1e-9
