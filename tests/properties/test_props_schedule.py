"""Property-based tests for spread schedules — the paper's distribution
invariants must hold for every range/chunk/device-list combination."""

from hypothesis import given
from hypothesis import strategies as st

from repro.spread.schedule import (
    DynamicSchedule,
    IrregularStaticSchedule,
    StaticSchedule,
)

ranges = st.tuples(st.integers(0, 500), st.integers(0, 200)).map(
    lambda t: (t[0], t[0] + t[1]))
chunk_sizes = st.integers(min_value=1, max_value=50)


@st.composite
def device_lists(draw):
    n = draw(st.integers(1, 6))
    devs = draw(st.permutations(list(range(n))))
    return list(devs)


class TestStaticScheduleProperties:
    @given(ranges, chunk_sizes, device_lists())
    def test_chunks_partition_range_exactly(self, rng, chunk, devices):
        lo, hi = rng
        chunks = StaticSchedule(chunk).chunks(lo, hi, devices)
        pos = lo
        for c in chunks:
            assert c.interval.start == pos
            pos = c.interval.stop
        assert pos == hi

    @given(ranges, chunk_sizes, device_lists())
    def test_round_robin_assignment(self, rng, chunk, devices):
        lo, hi = rng
        chunks = StaticSchedule(chunk).chunks(lo, hi, devices)
        for c in chunks:
            assert c.device == devices[c.index % len(devices)]

    @given(ranges, chunk_sizes, device_lists())
    def test_all_chunks_sized_except_last(self, rng, chunk, devices):
        lo, hi = rng
        chunks = StaticSchedule(chunk).chunks(lo, hi, devices)
        for c in chunks[:-1]:
            assert c.size == chunk
        if chunks:
            assert 1 <= chunks[-1].size <= chunk

    @given(ranges, chunk_sizes, device_lists())
    def test_no_empty_chunks(self, rng, chunk, devices):
        lo, hi = rng
        for c in StaticSchedule(chunk).chunks(lo, hi, devices):
            assert c.size >= 1

    @given(ranges, device_lists())
    def test_default_chunk_at_most_one_per_device(self, rng, devices):
        lo, hi = rng
        chunks = StaticSchedule(None).chunks(lo, hi, devices)
        assert len(chunks) <= len(devices)
        seen = [c.device for c in chunks]
        assert len(seen) == len(set(seen))

    @given(ranges, chunk_sizes, device_lists())
    def test_same_device_chunks_have_gap(self, rng, chunk, devices):
        """Round-robin guarantees the gap the paper relies on: a device's
        consecutive chunks are separated by (ndev-1)*chunk iterations."""
        lo, hi = rng
        chunks = StaticSchedule(chunk).chunks(lo, hi, devices)
        per_dev = {}
        for c in chunks:
            per_dev.setdefault(c.device, []).append(c)
        for dev_chunks in per_dev.values():
            for a, b in zip(dev_chunks, dev_chunks[1:]):
                gap = b.interval.start - a.interval.stop
                assert gap == (len(devices) - 1) * chunk


class TestIrregularProperties:
    @given(ranges, st.lists(st.integers(1, 20), min_size=1, max_size=5),
           device_lists())
    def test_partition_and_sizes(self, rng, sizes, devices):
        lo, hi = rng
        chunks = IrregularStaticSchedule(sizes).chunks(lo, hi, devices)
        assert sum(c.size for c in chunks) == hi - lo
        for c in chunks[:-1]:
            assert c.size == sizes[c.index % len(sizes)]


class TestDynamicProperties:
    @given(ranges, chunk_sizes)
    def test_partition_without_devices(self, rng, chunk):
        lo, hi = rng
        chunks = DynamicSchedule(chunk).chunks(lo, hi, [0, 1])
        assert sum(c.size for c in chunks) == hi - lo
        assert all(c.device is None for c in chunks)
