"""Property-based tests at the runtime level: determinism and functional
correctness of spread execution for arbitrary chunkings."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size,
    omp_spread_start,
    spread_schedule,
    target_spread_teams_distribute_parallel_for,
)

S, Z = omp_spread_start, omp_spread_size


def run_stencil(n, chunk, devices, values):
    rt = OpenMPRuntime(topology=cte_power_node(4, memory_bytes=1e9))
    A = np.array(values, dtype=np.float64)
    B = np.zeros(n)
    vA, vB = Var("A", A), Var("B", B)

    def body(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]

    def program(omp):
        yield from target_spread_teams_distribute_parallel_for(
            omp, KernelSpec("stencil", body), 1, n - 1, devices,
            schedule=spread_schedule("static", chunk),
            maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))])

    rt.run(program)
    return B, rt


@st.composite
def stencil_cases(draw):
    n = draw(st.integers(8, 60))
    ndev = draw(st.integers(2, 4))
    devices = draw(st.permutations(list(range(ndev))))
    # keep same-device halo maps disjoint: gap (ndev-1)*chunk >= 2
    min_chunk = 2 if ndev == 2 else 1
    chunk = draw(st.integers(min_chunk, max(min_chunk, (n - 2))))
    values = draw(st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=n, max_size=n))
    return n, chunk, list(devices), values


class TestSpreadProperties:
    @given(stencil_cases())
    @settings(max_examples=25, deadline=None)
    def test_result_independent_of_chunking(self, case):
        n, chunk, devices, values = case
        B, _rt = run_stencil(n, chunk, devices, values)
        A = np.array(values)
        expect = np.zeros(n)
        expect[1:n - 1] = A[0:n - 2] + A[1:n - 1] + A[2:n]
        assert np.array_equal(B, expect)

    @given(stencil_cases())
    @settings(max_examples=15, deadline=None)
    def test_simulation_deterministic(self, case):
        n, chunk, devices, values = case
        b1, rt1 = run_stencil(n, chunk, devices, values)
        b2, rt2 = run_stencil(n, chunk, devices, values)
        assert rt1.elapsed == rt2.elapsed
        assert np.array_equal(b1, b2)
        t1 = [(e.category, e.name, e.lane, e.start, e.end)
              for e in rt1.trace.events]
        t2 = [(e.category, e.name, e.lane, e.start, e.end)
              for e in rt2.trace.events]
        assert t1 == t2

    @given(stencil_cases())
    @settings(max_examples=15, deadline=None)
    def test_trace_lane_intervals_never_overlap(self, case):
        """Per-lane busy intervals are disjoint: the in-order queue is
        physically consistent."""
        n, chunk, devices, values = case
        _b, rt = run_stencil(n, chunk, devices, values)
        for lane, events in rt.trace.by_lane().items():
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start + 1e-12, (lane, a, b)

    @given(stencil_cases())
    @settings(max_examples=15, deadline=None)
    def test_data_envs_empty_and_memory_freed(self, case):
        n, chunk, devices, values = case
        _b, rt = run_stencil(n, chunk, devices, values)
        for env in rt.dataenvs:
            assert env.is_empty()
        for dev in rt.devices:
            assert dev.allocator.used_bytes == 0
