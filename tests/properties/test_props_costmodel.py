"""Property-based tests for cost-model monotonicity.

Performance models must be sane under any parameters: more bytes never
transfer faster, more parallelism never computes slower, scaling the
problem scales the accounting linearly.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.sim.costmodel import CostModel
from repro.sim.topology import DeviceSpec, LinkSpec

bytes_ = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)
iters = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)
pos = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


class TestTransferMonotone:
    @given(bytes_, bytes_)
    @settings(max_examples=100, deadline=None)
    def test_more_bytes_never_faster(self, a, b):
        cm = CostModel()
        link = LinkSpec()
        lo, hi = sorted((a, b))
        assert cm.transfer(link, lo).total <= cm.transfer(link, hi).total

    @given(bytes_, pos)
    @settings(max_examples=100, deadline=None)
    def test_scale_is_linear_in_wire_time(self, n, scale):
        link = LinkSpec(per_call_latency=0.0)
        base = CostModel(scale=1.0).transfer(link, n)
        scaled = CostModel(scale=scale).transfer(link, n)
        assert scaled.wire_time == pytest.approx(base.wire_time * scale,
                                                 rel=1e-9, abs=1e-18)

    @given(bytes_)
    @settings(max_examples=60, deadline=None)
    def test_latency_independent_of_size(self, n):
        cm = CostModel()
        link = LinkSpec(per_call_latency=5e-6)
        assert cm.transfer(link, n).latency == 5e-6


class TestKernelMonotone:
    DEV = DeviceSpec(num_sms=16, max_threads_per_sm=128, simd_width=8,
                     iters_per_second=1e8)

    @given(iters, iters)
    @settings(max_examples=100, deadline=None)
    def test_more_iterations_never_faster(self, a, b):
        cm = CostModel()
        lo, hi = sorted((a, b))
        assert cm.kernel(self.DEV, lo).total <= cm.kernel(self.DEV, hi).total

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_more_teams_never_slower(self, a, b):
        cm = CostModel()
        lo, hi = sorted((a, b))
        t_low = cm.kernel(self.DEV, 1e6, num_teams=lo).compute_time
        t_high = cm.kernel(self.DEV, 1e6, num_teams=hi).compute_time
        assert t_high <= t_low * (1 + 1e-12)

    @given(st.integers(1, 32), st.integers(1, 256))
    @settings(max_examples=100, deadline=None)
    def test_simd_never_slower_than_scalar(self, teams, threads):
        cm = CostModel()
        simd = cm.kernel(self.DEV, 1e6, num_teams=teams,
                         threads_per_team=threads, simd=True)
        scalar = cm.kernel(self.DEV, 1e6, num_teams=teams,
                           threads_per_team=threads, simd=False)
        assert simd.compute_time <= scalar.compute_time * (1 + 1e-12)

    @given(iters, pos)
    @settings(max_examples=60, deadline=None)
    def test_work_per_iter_linear(self, n, w):
        cm = CostModel()
        base = cm.kernel(self.DEV, n, work_per_iter=1.0).compute_time
        weighted = cm.kernel(self.DEV, n, work_per_iter=w).compute_time
        assert weighted == pytest.approx(base * w, rel=1e-9, abs=1e-18)

    @given(st.integers(1, 10_000), st.integers(1, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_throughput_caps_at_device_peak(self, teams, threads):
        cm = CostModel()
        capped = cm.kernel(self.DEV, 1e6, num_teams=teams,
                           threads_per_team=threads)
        peak = cm.kernel(self.DEV, 1e6)
        assert capped.compute_time >= peak.compute_time * (1 - 1e-12)
