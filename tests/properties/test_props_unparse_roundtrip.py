"""Property: ``parse(unparse(parse(s)))`` is AST-equal to ``parse(s)``.

The unparser is the normalizer the CLI prints and the linter's fixture
tooling relies on; a directive that survives one parse must survive the
round trip with an identical AST (``pos`` is excluded from equality by
design).  The corpus enumerates every clause the grammar knows, and a
hypothesis stage composes random clause subsets on top.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pragma.parser import parse_pragma
from repro.pragma.unparse import unparse_directive

SECTION = "[omp_spread_start - 1 : omp_spread_size + 2]"

#: every clause and head the grammar accepts, exercised at least once
CORPUS = [
    # heads
    "omp target device(0)",
    "omp target spread devices(0,1) nowait",
    "omp target data spread devices(0) range(0:16) chunk_size(4) "
    "map(tofrom: A[omp_spread_start:omp_spread_size])",
    "omp target enter data spread devices(0,1) range(1:N-2) chunk_size(8) "
    f"map(to: A{SECTION}) map(alloc: F[omp_spread_start:omp_spread_size])",
    "omp target exit data spread devices(0,1) range(1:N-2) chunk_size(8) "
    "map(from: F[omp_spread_start:omp_spread_size]) "
    f"map(release: A{SECTION})",
    "omp target update spread devices(1,3) range(100:M) chunk_size(10) "
    "nowait to(B[omp_spread_start:omp_spread_size])",
    "omp target update spread devices(0) range(0:8) chunk_size(2) "
    "from(B[omp_spread_start:omp_spread_size])",
    "omp target teams distribute parallel for num_teams(4) "
    "thread_limit(128)",
    "omp target spread teams distribute parallel for simd devices(0,1,2,3) "
    "spread_schedule(static, 16) map(to: A[omp_spread_start:"
    "omp_spread_size]) map(from: B[omp_spread_start:omp_spread_size])",
    # schedules, incl. the §IX extension kinds
    "omp target spread devices(0,1) spread_schedule(static, 4)",
    "omp target spread devices(0,1) spread_schedule(static)",
    "omp target spread devices(0,1) spread_schedule(static_irregular, 4)",
    "omp target spread devices(0,1) spread_schedule(dynamic, 2)",
    # depend kinds and sections
    "omp target spread devices(0,1) depend(in: A[0:4])",
    "omp target spread devices(0,1) depend(out: A[omp_spread_start:"
    "omp_spread_size]) depend(inout: B[0:8])",
    "omp target device(1) depend(out: C)",
    # map types and whole-array maps
    "omp target device(0) map(to: A) map(from: B) map(tofrom: C) "
    "map(alloc: D) map(release: E) map(delete: G)",
    # expression grammar in clause arguments
    "omp target device((1+2)*3)",
    "omp target device(10-(3-2))",
    "omp target spread devices(0,1) map(to: A[N-2*M : (K+1)*4])",
    "omp target data spread devices(0) range(N*2 : M-3) chunk_size(K)",
]


def round_trip(src: str):
    d1 = parse_pragma(src)
    d2 = parse_pragma(unparse_directive(d1))
    return d1, d2


class TestCorpusRoundTrip:
    @pytest.mark.parametrize("src", CORPUS, ids=range(len(CORPUS)))
    def test_ast_equal(self, src):
        d1, d2 = round_trip(src)
        assert d2.kind is d1.kind
        assert d2.simd_suffix == d1.simd_suffix
        assert d2.clauses == d1.clauses

    @pytest.mark.parametrize("src", CORPUS, ids=range(len(CORPUS)))
    def test_unparse_is_a_fixed_point(self, src):
        d1, d2 = round_trip(src)
        assert unparse_directive(d1) == unparse_directive(d2)


# -- randomized clause composition ------------------------------------------

HEADS = [
    "omp target",
    "omp target spread",
    "omp target data spread",
    "omp target teams distribute parallel for",
]

_expr = st.sampled_from(["0", "1", "N", "N-2", "2*M+1", "(N+1)*2"])
_var = st.sampled_from(["A", "B", "C"])
_section = st.sampled_from([
    "", "[0:4]", "[omp_spread_start:omp_spread_size]",
    "[omp_spread_start-1:omp_spread_size+2]", "[N-2:M]",
])
_map_type = st.sampled_from(["to", "from", "tofrom", "alloc"])
_dep_kind = st.sampled_from(["in", "out", "inout"])


@st.composite
def pragmas(draw):
    head = draw(st.sampled_from(HEADS))
    clauses = []
    if "spread" in head:
        ids = draw(st.lists(st.integers(0, 3), min_size=1, max_size=4,
                            unique=True))
        clauses.append(f"devices({','.join(map(str, ids))})")
        if head == "omp target data spread":
            clauses.append(f"range({draw(_expr)}:{draw(_expr)})")
            clauses.append(f"chunk_size({draw(_expr)})")
    else:
        clauses.append(f"device({draw(_expr)})")
    for _ in range(draw(st.integers(0, 3))):
        clauses.append(
            f"map({draw(_map_type)}: {draw(_var)}{draw(_section)})")
    if draw(st.booleans()) and head != "omp target data spread":
        clauses.append(f"depend({draw(_dep_kind)}: "
                       f"{draw(_var)}{draw(_section)})")
    if draw(st.booleans()) and head != "omp target data spread":
        clauses.append("nowait")
    return head + " " + " ".join(clauses)


class TestRandomizedRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(pragmas())
    def test_ast_equal(self, src):
        d1, d2 = round_trip(src)
        assert d2.kind is d1.kind
        assert d2.clauses == d1.clauses
