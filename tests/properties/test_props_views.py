"""Property-based tests: GlobalView is exactly a shifted ndarray.

For any mapped window and any in-window access, reads and writes through a
GlobalView must agree with the same operations on the underlying global
array; any out-of-window access must fault.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.views import GlobalView


@st.composite
def windows(draw):
    n = draw(st.integers(4, 64))
    start = draw(st.integers(0, n - 2))
    stop = draw(st.integers(start + 1, n))
    return n, start, stop


class TestEquivalence:
    @given(windows(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_int_reads_match_global(self, window, data):
        n, start, stop = window
        host = np.arange(float(n))
        view = GlobalView(host[start:stop].copy(), offset=start)
        g = data.draw(st.integers(start, stop - 1))
        assert view[g] == host[g]

    @given(windows(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_slice_reads_match_global(self, window, data):
        n, start, stop = window
        host = np.arange(float(n))
        view = GlobalView(host[start:stop].copy(), offset=start)
        a = data.draw(st.integers(start, stop))
        b = data.draw(st.integers(a, stop))
        assert np.array_equal(view[a:b], host[a:b])

    @given(windows(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_writes_land_at_global_position(self, window, data):
        n, start, stop = window
        buf = np.zeros(stop - start)
        view = GlobalView(buf, offset=start)
        g = data.draw(st.integers(start, stop - 1))
        view[g] = 7.5
        assert buf[g - start] == 7.5
        assert (buf != 0).sum() == 1

    @given(windows(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_out_of_window_faults(self, window, data):
        n, start, stop = window
        view = GlobalView(np.zeros(stop - start), offset=start)
        outside = data.draw(st.one_of(
            st.integers(0, max(0, start - 1)).filter(lambda g: g < start),
            st.integers(stop, n + 5),
        ))
        try:
            view[outside]
        except IndexError:
            return
        raise AssertionError(f"access at {outside} outside "
                             f"[{start},{stop}) did not fault")

    @given(windows())
    @settings(max_examples=60, deadline=None)
    def test_full_window_round_trip(self, window):
        n, start, stop = window
        host = np.arange(float(n))
        buf = host[start:stop].copy()
        view = GlobalView(buf, offset=start)
        view[start:stop] = view[start:stop] * 2
        assert np.array_equal(buf, host[start:stop] * 2)
