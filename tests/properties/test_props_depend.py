"""Property-based tests for dependence resolution.

The tracker's pruning must never lose an ordering edge: for any random
program of sectioned reads/writes, the transitive closure of the edges the
tracker produces must contain every conflict pair (computed naively).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openmp.depend import DepKind, DependTracker
from repro.openmp.mapping import Var
from repro.sim.engine import Simulator
from repro.util.intervals import Interval

accesses = st.lists(
    st.tuples(
        st.sampled_from([DepKind.IN, DepKind.OUT, DepKind.INOUT]),
        st.integers(0, 40),
        st.integers(1, 10),
    ),
    min_size=1, max_size=25,
)


def naive_conflicts(program):
    """All (i, j) pairs i<j that must be ordered."""
    pairs = set()
    for j, (kj, aj, lj) in enumerate(program):
        for i in range(j):
            ki, ai, li = program[i]
            overlap = ai < aj + lj and aj < ai + li
            if overlap and (ki.writes or kj.writes):
                pairs.add((i, j))
    return pairs


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_transitive_closure_covers_all_conflicts(program):
    sim = Simulator()
    tracker = DependTracker()
    var = Var("A", np.zeros(64))
    events = []
    direct_edges = set()
    for j, (kind, a, ln) in enumerate(program):
        deps = [(kind, var, Interval(a, a + ln))]
        waits = tracker.resolve(deps)
        ev = sim.event()
        tracker.register(deps, ev)
        for w in waits:
            direct_edges.add((events.index(w), j))
        events.append(ev)

    # transitive closure of the produced edges
    reach = {i: set() for i in range(len(program))}
    for i, j in sorted(direct_edges):
        reach[j].add(i)
    changed = True
    while changed:
        changed = False
        for j in range(len(program)):
            extra = set()
            for i in reach[j]:
                extra |= reach[i]
            if not extra <= reach[j]:
                reach[j] |= extra
                changed = True

    for i, j in naive_conflicts(program):
        assert i in reach[j], (
            f"ordering {i} -> {j} lost (program: {program})")


@given(accesses)
@settings(max_examples=50, deadline=None)
def test_no_self_or_forward_edges(program):
    sim = Simulator()
    tracker = DependTracker()
    var = Var("A", np.zeros(64))
    events = []
    for kind, a, ln in program:
        deps = [(kind, var, Interval(a, a + ln))]
        waits = tracker.resolve(deps)
        ev = sim.event()
        tracker.register(deps, ev)
        for w in waits:
            assert w in events  # only earlier tasks
        events.append(ev)


@given(st.integers(1, 8), st.integers(1, 12), st.integers(2, 30))
@settings(max_examples=40, deadline=None)
def test_frontier_bounded_for_tiled_sweeps(chunks, sweeps, chunk_size):
    """Repeated identical tiled writes keep the frontier at one record per
    tile (the pruning property that keeps Somier runs O(1) per step)."""
    sim = Simulator()
    tracker = DependTracker()
    var = Var("A", np.zeros(chunks * chunk_size))
    for _ in range(sweeps):
        for c in range(chunks):
            iv = Interval(c * chunk_size, (c + 1) * chunk_size)
            deps = [(DepKind.OUT, var, iv)]
            tracker.resolve_and_register(deps, sim.event())
    assert tracker.frontier_size(var) == chunks
