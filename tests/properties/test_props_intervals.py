"""Property-based tests for the interval algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import Interval, IntervalSet

bounds = st.integers(min_value=-1000, max_value=1000)


@st.composite
def intervals(draw):
    a = draw(bounds)
    b = draw(bounds)
    return Interval(min(a, b), max(a, b))


@st.composite
def interval_lists(draw):
    return draw(st.lists(intervals(), max_size=12))


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals(), intervals())
    def test_contains_implies_overlap_or_empty(self, a, b):
        if a.contains(b) and not b.empty:
            assert a.overlaps(b)

    @given(intervals(), intervals())
    def test_extends_never_when_contained(self, a, b):
        if b.contains(a):
            assert not a.extends(b)

    @given(intervals(), intervals())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if not inter.empty:
            assert a.contains(inter) and b.contains(inter)

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        hull = a.union_hull(b)
        assert hull.contains(a) and hull.contains(b)

    @given(intervals(), st.integers(min_value=-100, max_value=100))
    def test_shift_preserves_length(self, iv, d):
        assert len(iv.shift(d)) == len(iv)

    @given(intervals(), bounds)
    def test_split_partitions(self, iv, p):
        left, right = iv.split_at(p)
        assert len(left) + len(right) == len(iv)
        if not left.empty and not right.empty:
            assert left.stop == right.start

    @given(intervals(), intervals())
    def test_overlap_iff_nonempty_intersection(self, a, b):
        assert a.overlaps(b) == (not a.intersection(b).empty)


class TestIntervalSetProperties:
    @given(interval_lists())
    def test_canonical_form(self, ivs):
        s = IntervalSet(ivs)
        items = list(s)
        for x, y in zip(items, items[1:]):
            assert x.stop < y.start  # disjoint and non-adjacent

    @given(interval_lists())
    def test_total_matches_point_count(self, ivs):
        s = IntervalSet(ivs)
        points = set()
        for iv in ivs:
            points.update(range(iv.start, iv.stop))
        assert s.total() == len(points)

    @given(interval_lists(), intervals())
    def test_add_then_covers(self, ivs, extra):
        s = IntervalSet(ivs)
        s.add(extra)
        assert s.covers(extra)

    @given(interval_lists(), intervals())
    def test_remove_then_disjoint(self, ivs, removed):
        s = IntervalSet(ivs)
        s.remove(removed)
        assert not s.overlaps(removed)

    @given(interval_lists())
    def test_order_independent_construction(self, ivs):
        assert IntervalSet(ivs) == IntervalSet(list(reversed(ivs)))
