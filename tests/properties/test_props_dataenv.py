"""Property-based tests for present-table invariants.

A random legal sequence of enter/exit operations must keep the data
environment consistent: refcounts positive, device memory accounted, the
empty environment restored once every enter is matched by an exit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.device import Device
from repro.openmp.dataenv import DeviceDataEnv
from repro.openmp.mapping import Var
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec
from repro.sim.trace import Trace
from repro.util.errors import OmpMappingError


def make_env():
    sim = Simulator()
    dev = Device(sim, 0, DeviceSpec(memory_bytes=1e9), Resource(sim, 1),
                 LinkSpec(), Resource(sim, 1), HostSpec(), CostModel(),
                 Trace())
    return DeviceDataEnv(dev)


sections = st.tuples(st.integers(0, 90), st.integers(1, 10)).map(
    lambda t: (t[0], t[0] + t[1]))


@st.composite
def operation_sequences(draw):
    """Sequences of (op, section) where exits reference earlier enters."""
    n_ops = draw(st.integers(1, 30))
    ops = []
    live = []  # sections currently entered (multiset)
    for _ in range(n_ops):
        if live and draw(st.booleans()):
            idx = draw(st.integers(0, len(live) - 1))
            ops.append(("exit", live.pop(idx)))
        else:
            sec = draw(sections)
            live.append(sec)
            ops.append(("enter", sec))
    # close everything that is still open
    for sec in live:
        ops.append(("exit", sec))
    return ops


class TestPresentTableProperties:
    @given(operation_sequences())
    @settings(max_examples=60, deadline=None)
    def test_balanced_sequence_restores_empty_env(self, ops):
        from repro.util.intervals import Interval

        env = make_env()
        var = Var("A", np.zeros(100))
        for op, (a, b) in ops:
            iv = Interval(a, b)
            if op == "enter":
                try:
                    env.enter(var, iv)
                except OmpMappingError:
                    # illegal extension: balanced closure no longer holds,
                    # just verify internal consistency and stop
                    for entry in env.entries_of(var):
                        assert entry.refcount >= 1
                    return
            else:
                try:
                    entry, deleted = env.exit(var, iv)
                except OmpMappingError:
                    return
                if deleted:
                    env.release_storage(entry)
        assert env.is_empty()
        assert env.device.allocator.used_bytes == 0

    @given(st.lists(sections, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_refcounts_always_positive_and_memory_bounded(self, secs):
        from repro.util.intervals import Interval

        env = make_env()
        var = Var("A", np.zeros(100))
        entered = 0
        for a, b in secs:
            try:
                env.enter(var, Interval(a, b))
                entered += 1
            except OmpMappingError:
                pass
            for entry in env.entries_of(var):
                assert entry.refcount >= 1
            total_rows = sum(len(e.section) for e in env.entries_of(var))
            assert env.device.allocator.used_bytes == total_rows * 8

    @given(st.lists(sections, min_size=2, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_entries_never_overlap_each_other(self, secs):
        from repro.util.intervals import Interval

        env = make_env()
        var = Var("A", np.zeros(100))
        for a, b in secs:
            try:
                env.enter(var, Interval(a, b))
            except OmpMappingError:
                pass
        entries = env.entries_of(var)
        for i, e1 in enumerate(entries):
            for e2 in entries[i + 1:]:
                assert not e1.section.overlaps(e2.section)
