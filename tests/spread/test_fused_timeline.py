"""Fused-timeline engine: bit identity fused on vs off.

:mod:`repro.sim.timeline` executes replayed spread chunks (and the
runtime's batched section copies) as fused timeline walkers: per-chunk
virtual-time segments advanced in single dispatches instead of generator
round-trips.  The acceptance contract mirrors macro replay's, one level
down — the walker path must be observationally indistinguishable from
the generator path.  Same ``virtual_s`` to the bit, same trace events,
same results, across implementations, spread modes, worker counts, and
every observation fallback (sanitizer, analyzer, fault injection), where
the walkers must disengage entirely (``fused_segments == 0``).
"""

import numpy as np
import pytest

from repro.bench.machines import (
    paper_devices,
    paper_machine,
    paper_somier_config,
)
from repro.openmp.runtime import resolve_fused_timeline
from repro.somier.driver import run_somier


@pytest.fixture(autouse=True)
def _hermetic_knob_env(monkeypatch):
    """The engagement assertions (``fused_segments > 0``) require the
    walkers to actually engage, which any globally armed observation
    fallback disables by design — the CI env-matrix legs (``REPRO_FAULTS``,
    ``REPRO_SANITIZE``, ``REPRO_ANALYZE``, ``REPRO_MACRO_OPS``) must not
    leak in.  Each fallback is covered explicitly below with the knob
    armed per-run."""
    for knob in ("REPRO_FAULTS", "REPRO_FAULT_SEED", "REPRO_SANITIZE",
                 "REPRO_ANALYZE", "REPRO_MACRO_OPS", "REPRO_FUSED_TIMELINE"):
        monkeypatch.delenv(knob, raising=False)


def _event_tuples(trace):
    return [(e.category, e.name, e.lane, e.start, e.end, e.device,
             tuple(sorted(e.meta.items())))
            for e in trace.events]


def _run(impl, fused, *, gpus=4, n=24, steps=3, devices=None, **kw):
    topo, cm = paper_machine(gpus, n_functional=n)
    cfg = paper_somier_config(n_functional=n, steps=steps)
    devs = devices if devices is not None else paper_devices(gpus)
    return run_somier(impl, cfg, devices=devs, topology=topo, cost_model=cm,
                      fused_timeline=fused, **kw)


def _assert_identical(on, off):
    assert on.elapsed == off.elapsed
    assert np.array_equal(on.centers, off.centers)
    t_on, t_off = on.runtime.trace, off.runtime.trace
    if t_on is not None and t_off is not None:
        assert _event_tuples(t_on) == _event_tuples(t_off)
    assert off.stats["engine_fused_segments"] == 0


MATRIX = [
    ("target", dict(devices=[0])),
    ("one_buffer", {}),
    ("one_buffer", dict(data_depend=True)),
    ("one_buffer", dict(fuse_transfers=True)),
    ("one_buffer", dict(workers=2)),
    # half-buffer impls keep two chunks resident: need the larger grid
    ("two_buffers", dict(n=48)),
    ("two_buffers", dict(n=48, data_depend=True)),
    ("double_buffering", dict(n=48)),
    ("double_buffering", dict(n=48, data_depend=True)),
    ("double_buffering", dict(n=48, workers=4)),
]


class TestBitIdentity:
    @pytest.mark.parametrize(
        "impl,kw", MATRIX,
        ids=[f"{i}-{'-'.join(k) or 'default'}" for i, k in MATRIX])
    def test_fused_on_vs_off(self, impl, kw):
        on = _run(impl, True, **kw)
        off = _run(impl, False, **kw)
        assert on.stats["engine_fused_segments"] > 0
        _assert_identical(on, off)

    def test_paper_scale_double_buffering(self):
        """Regression for same-timestamp completion reordering: at paper
        scale the queue slot claimed at copy-issue time is routinely
        already processed when the walker reaches its wait, and the
        walker must continue synchronously (as ``gen.send`` does for a
        processed event) or two d2h completions on different devices swap
        trace order."""
        on = _run("double_buffering", True, n=48, steps=2)
        off = _run("double_buffering", False, n=48, steps=2)
        assert on.stats["engine_fused_segments"] > 0
        _assert_identical(on, off)


class TestFallbacks:
    """Observation hooks must push the runtime off the walker path and
    stay bit-identical with fused nominally on."""

    def test_sanitizer_disengages(self):
        on = _run("one_buffer", True, sanitize=True)
        off = _run("one_buffer", False, sanitize=True)
        assert on.stats["engine_fused_segments"] == 0
        assert on.stats["sanitizer_races"] == 0
        _assert_identical(on, off)

    def test_analyzer_disengages(self):
        on = _run("one_buffer", True, analyze=True)
        off = _run("one_buffer", False, analyze=True)
        assert on.stats["engine_fused_segments"] == 0
        _assert_identical(on, off)
        assert (on.runtime.analysis().headline()
                == off.runtime.analysis().headline())

    def test_faults_disengage(self):
        on = _run("one_buffer", True, faults="transfer:0.05", fault_seed=7)
        off = _run("one_buffer", False, faults="transfer:0.05", fault_seed=7)
        assert on.stats["engine_fused_segments"] == 0
        assert on.stats["faults_injected"] == off.stats["faults_injected"]
        _assert_identical(on, off)


class TestKnob:
    def test_resolve_fused_timeline_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSED_TIMELINE", raising=False)
        assert resolve_fused_timeline(None) is True
        assert resolve_fused_timeline(True) is True
        assert resolve_fused_timeline(False) is False
        for raw, want in (("0", False), ("off", False), ("false", False),
                          ("no", False), ("1", True), ("on", True),
                          ("", True), ("  ", True)):
            monkeypatch.setenv("REPRO_FUSED_TIMELINE", raw)
            assert resolve_fused_timeline(None) is want
        monkeypatch.setenv("REPRO_FUSED_TIMELINE", "0")
        assert resolve_fused_timeline(True) is True  # explicit beats env

    def test_engine_stats_exposed(self):
        res = _run("one_buffer", True)
        st = res.stats
        assert st["engine_events_scheduled"] > 0
        assert st["engine_dispatches"] > 0
        assert st["engine_mean_batch"] > 1.0
        assert st["engine_events_dispatched"] > 0
