"""Launch-plan cache: replay must be bit-identical to cold lowering.

The acceptance contract of the cache is behavioural invisibility: a run
with the cache enabled (replaying plans from the second timestep on) must
produce exactly the same virtual timeline, trace events, results and
device statistics as (a) the same run with ``plan_cache=False`` and (b) a
fresh cold run.  The cache may only change *host* wall-clock cost.
"""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.obs import MetricsTool
from repro.openmp import Map, OpenMPRuntime, Var
from repro.openmp.depend import Dep
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size,
    omp_spread_start,
    spread_schedule,
    target_data_spread,
    target_enter_data_spread,
    target_exit_data_spread,
    target_spread,
    target_spread_teams_distribute_parallel_for,
    target_update_spread,
)
from repro.spread import extensions as ext
from repro.spread import plan_cache as pc
from repro.spread.plan_cache import SpreadPlanCache

S, Z = omp_spread_start, omp_spread_size
N = 64
DEVICES = [0, 1, 2, 3]
ITERS = 6


def make_rt(plan_cache=True, trace=True):
    return OpenMPRuntime(topology=cte_power_node(4, memory_bytes=1e9),
                         trace_enabled=trace, plan_cache=plan_cache)


def double_kernel():
    def body(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo:hi] * 2.0 + 1.0

    return KernelSpec("double", body)


def _event_tuples(trace):
    return [(e.category, e.name, e.lane, e.start, e.end, e.device,
             tuple(sorted(e.meta.items())))
            for e in trace.events]


def _composite_run(plan_cache=True, tools=()):
    """One run exercising every cacheable directive, ITERS times over."""
    rt = make_rt(plan_cache=plan_cache)
    for tool in tools:
        rt.tools.register(tool)
    A, B = np.arange(float(N)), np.zeros(N)
    vA, vB = Var("A", A), Var("B", B)
    kern = double_kernel()

    def program(omp):
        yield from target_enter_data_spread(
            omp, DEVICES, (0, N), None,
            [Map.to(vA, (S, Z)), Map.alloc(vB, (S, Z))])
        for _ in range(ITERS):
            yield from target_spread_teams_distribute_parallel_for(
                omp, kern, 0, N, DEVICES,
                maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))],
                nowait=True)
            yield from omp.taskwait()
            yield from target_update_spread(
                omp, DEVICES, (0, N), None, from_=[(vB, (S, Z))])
        yield from target_exit_data_spread(
            omp, DEVICES, (0, N), None,
            [Map.release(vA, (S, Z)), Map.from_(vB, (S, Z))])

    rt.run(program)
    return rt, A, B


class TestBitIdentity:
    def test_cached_replay_matches_uncached_run(self):
        rt_on, A, B_on = _composite_run(plan_cache=True)
        rt_off, _, B_off = _composite_run(plan_cache=False)
        # the cache actually replayed (one miss per distinct directive)...
        assert rt_on.plan_cache.hits > 0
        assert rt_on.plan_cache.misses == 4  # enter, exec, update, exit
        assert rt_off.plan_cache.hits == rt_off.plan_cache.misses == 0
        # ...without changing a single bit of the run
        assert rt_on.elapsed == rt_off.elapsed
        assert np.array_equal(B_on, B_off)
        assert np.array_equal(B_on, A * 2.0 + 1.0)
        assert _event_tuples(rt_on.trace) == _event_tuples(rt_off.trace)

    def test_replay_is_deterministic_run_to_run(self):
        rt1, _, B1 = _composite_run(plan_cache=True)
        rt2, _, B2 = _composite_run(plan_cache=True)
        assert rt1.elapsed == rt2.elapsed
        assert np.array_equal(B1, B2)
        assert _event_tuples(rt1.trace) == _event_tuples(rt2.trace)
        assert rt1.plan_cache.stats == rt2.plan_cache.stats

    def test_somier_end_to_end_unchanged(self):
        from repro.bench.machines import (paper_devices, paper_machine,
                                          paper_somier_config)
        from repro.somier import run_somier

        topo, cm = paper_machine(4, n_functional=24)
        cfg = paper_somier_config(n_functional=24, steps=3)

        def run(flag):
            return run_somier("one_buffer", cfg, devices=paper_devices(4),
                              topology=topo, cost_model=cm, plan_cache=flag)

        on, off = run(True), run(False)
        assert on.stats["plan_cache_hits"] > 0
        assert off.stats["plan_cache_hits"] == 0
        assert on.elapsed == off.elapsed
        assert np.array_equal(on.centers, off.centers)
        for k in off.state.grids:
            assert np.array_equal(on.state.grids[k], off.state.grids[k])
        assert _event_tuples(on.runtime.trace) == \
            _event_tuples(off.runtime.trace)
        # identical device work either way
        for key in ("h2d_bytes", "d2h_bytes", "memcpy_calls",
                    "kernels_launched", "tasks"):
            assert on.stats[key] == off.stats[key]


class TestCacheBehaviour:
    def test_repeat_directive_hits(self):
        rt, _, _ = _composite_run(plan_cache=True)
        # enter/exit run once (1 miss, 0 hits each); exec + update run
        # ITERS times (1 miss, ITERS-1 hits each)
        assert rt.plan_cache.misses == 4
        assert rt.plan_cache.hits == 2 * (ITERS - 1)
        assert len(rt.plan_cache) == 4

    def test_data_region_cached_as_pair(self):
        rt = make_rt()
        A = np.arange(float(N))
        vA = Var("A", A)

        def program(omp):
            for _ in range(3):
                region = yield from target_data_spread(
                    omp, DEVICES, (0, N), None, [Map.tofrom(vA, (S, Z))])
                yield from region.end()

        rt.run(program)
        assert rt.plan_cache.misses == 1
        assert rt.plan_cache.hits == 2
        for env in rt.dataenvs:
            assert env.is_empty()

    def test_dynamic_schedule_never_cached(self):
        rt = make_rt()
        ext.enable(rt, schedules=True)
        A, B = np.arange(float(N)), np.zeros(N)
        vA, vB = Var("A", A), Var("B", B)
        kern = double_kernel()

        def program(omp):
            for _ in range(2):
                yield from target_spread(
                    omp, kern, 0, N, DEVICES,
                    schedule=spread_schedule("dynamic", 16),
                    maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))])

        rt.run(program)
        assert rt.plan_cache.hits == 0
        assert rt.plan_cache.misses == 0
        assert len(rt.plan_cache) == 0
        assert np.array_equal(B, A * 2.0 + 1.0)

    def test_no_plan_cache_flag_disables_store(self):
        cache = SpreadPlanCache(enabled=False)
        cache.store(("k",), "plan")
        assert cache.get(("k",)) is None
        assert len(cache) == 0
        assert cache.stats == {"hits": 0, "misses": 0, "entries": 0,
                               "invalidations": 0, "macro_compiles": 0,
                               "macro_replays": 0, "macro_entries": 0}

    def test_unhashable_key_falls_back_silently(self):
        cache = SpreadPlanCache()
        key = ("exec", [1, 2])  # list: unhashable
        cache.store(key, "plan")
        assert cache.get(key) is None
        assert cache.stats == {"hits": 0, "misses": 0, "entries": 0,
                               "invalidations": 0, "macro_compiles": 0,
                               "macro_replays": 0, "macro_entries": 0}

    def test_none_key_not_counted(self):
        cache = SpreadPlanCache()
        assert cache.get(None) is None
        cache.store(None, "plan")
        assert cache.stats == {"hits": 0, "misses": 0, "entries": 0,
                               "invalidations": 0, "macro_compiles": 0,
                               "macro_replays": 0, "macro_entries": 0}


class TestKeySensitivity:
    def _key(self, kern, vA, vB, lo=0, hi=N, devices=(0, 1),
             sched=("static", None), maps=None, depends=()):
        if maps is None:
            maps = [Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))]
        return pc.exec_key(kern, lo, hi, devices, sched, maps, depends)

    def test_identical_calls_same_key(self):
        A, B = np.zeros(8), np.zeros(8)
        vA, vB = Var("A", A), Var("B", B)
        kern = double_kernel()
        assert self._key(kern, vA, vB) == self._key(kern, vA, vB)

    def test_each_component_changes_key(self):
        A, B = np.zeros(8), np.zeros(8)
        vA, vB = Var("A", A), Var("B", B)
        kern = double_kernel()
        base = self._key(kern, vA, vB)
        assert self._key(double_kernel(), vA, vB) != base  # other kernel
        assert self._key(kern, vA, vB, lo=1) != base
        assert self._key(kern, vA, vB, hi=N - 1) != base
        assert self._key(kern, vA, vB, devices=(1, 0)) != base
        assert self._key(kern, vA, vB, sched=("static", 4)) != base
        assert self._key(kern, vA, vB,
                         maps=[Map.tofrom(vA, (S, Z)),
                               Map.from_(vB, (S, Z))]) != base
        assert self._key(kern, vA, vB,
                         maps=[Map.to(vA, (S - 1, Z + 2)),
                               Map.from_(vB, (S, Z))]) != base
        assert self._key(kern, vA, vB,
                         depends=(Dep.out(vB, (S, Z)),)) != base
        # a *new* Var over the same array is a different binding
        assert self._key(kern, Var("A", A), vB) != base

    def test_dynamic_signature_yields_no_key(self):
        A, B = np.zeros(8), np.zeros(8)
        vA, vB = Var("A", A), Var("B", B)
        assert self._key(double_kernel(), vA, vB, sched=None) is None


class TestMetricsWiring:
    def test_plan_cache_and_memo_counters(self):
        tool = MetricsTool()
        rt, _, _ = _composite_run(plan_cache=True, tools=(tool,))
        reg = tool.registry
        assert reg.sum_counter("plan_cache_hits") == rt.plan_cache.hits
        assert reg.sum_counter("plan_cache_misses") == rt.plan_cache.misses
        assert reg.counter_value("plan_cache_hits",
                                 kind="target spread") == ITERS - 1
        # the present-table memo fired on the repeated lookups
        assert reg.sum_counter("present_memo_hits") > 0
        assert sum(env.memo_hits for env in rt.dataenvs) > 0

    def test_report_renders_plan_cache_totals(self):
        from repro.obs import Profiler

        prof = Profiler()
        rt, _, _ = _composite_run(plan_cache=True, tools=prof.tools)
        text = prof.report(makespan=rt.elapsed).render_text()
        assert "plan cache:" in text
        assert f"{rt.plan_cache.hits:d} hits" in text
        row = prof.report().per_device_rows()[0]
        assert "memo_hits" in row


class TestLossInvalidationPoisoning:
    """Device/node loss must leave stale cell holders inert.

    A directive mid-flight (or a handle adopting replay state) may hold a
    ``[plan, macro_state]`` cell looked up *before* the loss.  Invalidation
    must both drop the key from the store and poison the held cell — plan
    slot cleared, macro slot forced to the ``False`` never-compile
    sentinel — so the holder can neither replay the stale plan nor
    compile-and-adopt a macro program derived from it.
    """

    def _seeded(self):
        from repro.spread.plan_cache import SpreadPlan

        cache = SpreadPlanCache()
        plan = SpreadPlan(devices=(0, 1), chunks=(), chunk_plans=())
        cache.store("k", plan)
        return cache, cache.lookup("k")

    def test_invalidation_drops_key_and_poisons_cell(self):
        cache, cell = self._seeded()
        assert cache.invalidate_device(1) == 1
        assert len(cache) == 0
        assert cell[0] is None
        assert cell[1] is False

    def test_poisoned_cell_never_compiles_macro(self):
        from repro.spread import macro

        cache, cell = self._seeded()
        cache.invalidate_device(0)
        calls = []
        assert macro.program_for(cache, cell,
                                 lambda: calls.append(1)) is None
        assert not calls
        assert cache.macro_compiles == 0
        assert cache.macro_replays == 0

    def test_poisoning_does_not_leak_into_fresh_cell(self):
        from repro.spread.plan_cache import SpreadPlan

        cache, stale = self._seeded()
        cache.invalidate_device(1)
        fresh_plan = SpreadPlan(devices=(0, 1), chunks=(), chunk_plans=())
        cache.store("k", fresh_plan)
        fresh = cache.lookup("k")
        assert fresh is not stale
        assert fresh[0] is fresh_plan and fresh[1] is None
        assert stale[0] is None and stale[1] is False

    def test_invalidate_node_sweeps_all_node_devices_in_one_pass(self):
        from repro.spread.plan_cache import SpreadPlan
        from repro.spread.schedule import StaticSchedule

        cache = SpreadPlanCache()
        for key, devs in (("a", (0, 1)), ("b", (2, 3)), ("c", (4, 5))):
            chunks = tuple(StaticSchedule(4).chunks(0, 8, list(devs)))
            cache.store(key, SpreadPlan(devices=devs, chunks=chunks,
                                        chunk_plans=()))
        cells = {k: cache.lookup(k) for k in ("a", "b", "c")}
        assert cache.invalidate_node((2, 3, 4)) == 2
        assert len(cache) == 1
        assert cells["a"][0] is not None
        for k in ("b", "c"):
            assert cells[k][0] is None and cells[k][1] is False

    def test_runtime_device_loss_poisons_held_cells(self):
        """Regression: seeded loss mid-run must poison every cell that
        routed work to the lost device, macro state included."""
        rt, _, _ = _composite_run(plan_cache=True)
        cache = rt.plan_cache
        held = {k: cache._plans[k] for k in list(cache._plans)}
        lost_keys = [k for k, cell in held.items()
                     if any(1 in getattr(p, "devices", ())
                            for p in (cell[0] if isinstance(cell[0], tuple)
                                      else (cell[0],)))]
        rt.mark_device_lost(1)
        assert lost_keys
        for k in lost_keys:
            assert k not in cache._plans
            assert held[k][0] is None
            assert held[k][1] is False

    def test_somier_results_unchanged_after_seeded_device_loss(self):
        from repro.somier import SomierConfig, run_somier

        cfg = SomierConfig(n=18, steps=3)
        topo = cte_power_node(4, memory_bytes=1e9)
        clean = run_somier("one_buffer", cfg, topology=topo)
        lossy = run_somier("one_buffer", cfg, topology=topo,
                           faults="device@1:#3", fault_seed=5)
        assert 1 in lossy.runtime.lost_devices
        assert lossy.runtime.plan_cache.invalidations > 0
        assert np.array_equal(clean.centers, lossy.centers)
        # no macro program derived from a pre-loss plan may replay after
        # the loss: every surviving macro entry must be a live cell
        for cell in lossy.runtime.plan_cache._plans.values():
            assert cell[0] is not None
