"""Unit tests for the spread data directives (Listings 5-8)."""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.openmp.depend import Dep
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size,
    omp_spread_start,
    spread_schedule,
    target_data_spread,
    target_enter_data_spread,
    target_exit_data_spread,
    target_spread_teams_distribute_parallel_for,
    target_update_spread,
)
from repro.spread import extensions as ext
from repro.util.errors import OmpMappingError, OmpSemaError

S, Z = omp_spread_start, omp_spread_size
N = 26


def make_rt():
    return OpenMPRuntime(topology=cte_power_node(4, memory_bytes=1e9))


def plus_one_kernel():
    def body(lo, hi, env):
        env["A"][lo:hi] = env["A"][lo:hi] + 1.0

    return KernelSpec("plus-one", body)


class TestEnterExitDataSpread:
    def test_round_trip_whole_range(self):
        rt = make_rt()
        A = np.arange(float(N))
        vA = Var("A", A)

        def program(omp):
            h = yield from target_enter_data_spread(
                omp, devices=[1, 0, 3, 2], range_=(0, N), chunk_size=7,
                maps=[Map.to(vA, (S, Z))])
            assert len(h) == 4  # ceil(26/7) chunks
            yield from target_spread_teams_distribute_parallel_for(
                omp, plus_one_kernel(), 0, N, [1, 0, 3, 2],
                schedule=spread_schedule("static", 7),
                maps=[Map.to(vA, (S, Z))])
            yield from target_exit_data_spread(
                omp, devices=[1, 0, 3, 2], range_=(0, N), chunk_size=7,
                maps=[Map.from_(vA, (S, Z))])

        rt.run(program)
        assert np.array_equal(A, np.arange(float(N)) + 1)
        for env in rt.dataenvs:
            assert env.is_empty()

    def test_distribution_matches_static_round_robin(self):
        rt = make_rt()
        vA = Var("A", np.zeros(N))

        def program(omp):
            h = yield from target_enter_data_spread(
                omp, devices=[2, 0], range_=(1, N - 2), chunk_size=6,
                maps=[Map.alloc(vA, (S, Z))])
            return h

        h = rt.run(program)
        assert [c.device for c in h.chunks] == [2, 0, 2, 0]
        assert h.chunks[0].interval.start == 1

    def test_enter_map_types_checked(self):
        rt = make_rt()
        vA = Var("A", np.zeros(N))

        def program(omp):
            yield from target_enter_data_spread(
                omp, devices=[0], range_=(0, N), chunk_size=N,
                maps=[Map.from_(vA, (S, Z))])

        with pytest.raises(OmpSemaError, match="not allowed"):
            rt.run(program)

    def test_depend_gated_without_extension(self):
        rt = make_rt()
        vA = Var("A", np.zeros(N))

        def program(omp):
            yield from target_enter_data_spread(
                omp, devices=[0], range_=(0, N), chunk_size=N,
                maps=[Map.to(vA, (S, Z))],
                depends=[Dep.out(vA, (S, Z))])

        with pytest.raises(OmpSemaError, match="future work"):
            rt.run(program)

    def test_depend_orders_enter_then_kernel_without_barrier(self):
        """Listing 13: chunk-level depends replace the taskgroup barrier."""
        rt = make_rt()
        ext.enable(rt, data_depend=True)
        A = np.arange(float(N))
        vA = Var("A", A)

        def program(omp):
            yield from target_enter_data_spread(
                omp, devices=[0, 1], range_=(0, N), chunk_size=13,
                maps=[Map.to(vA, (S, Z))], nowait=True,
                depends=[Dep.out(vA, (S, Z))])
            yield from target_spread_teams_distribute_parallel_for(
                omp, plus_one_kernel(), 0, N, [0, 1],
                schedule=spread_schedule("static", 13),
                maps=[Map.to(vA, (S, Z))], nowait=True,
                depends=[Dep.inout(vA, (S, Z))])
            yield from target_exit_data_spread(
                omp, devices=[0, 1], range_=(0, N), chunk_size=13,
                maps=[Map.from_(vA, (S, Z))], nowait=True,
                depends=[Dep.out(vA, (S, Z))])
            yield from omp.taskwait()

        rt.run(program)
        assert np.array_equal(A, np.arange(float(N)) + 1)

    def test_negative_range_length_rejected(self):
        rt = make_rt()
        vA = Var("A", np.zeros(N))

        def program(omp):
            yield from target_enter_data_spread(
                omp, devices=[0], range_=(0, -3), chunk_size=2,
                maps=[Map.to(vA, (S, Z))])

        with pytest.raises(OmpSemaError, match="negative"):
            rt.run(program)


class TestDataSpreadRegion:
    def test_structured_region_tofrom(self):
        rt = make_rt()
        A = np.arange(float(N))
        vA = Var("A", A)

        def program(omp):
            region = yield from target_data_spread(
                omp, devices=[1, 0], range_=(0, N), chunk_size=13,
                maps=[Map.tofrom(vA, (S, Z))])
            yield from target_spread_teams_distribute_parallel_for(
                omp, plus_one_kernel(), 0, N, [1, 0],
                schedule=spread_schedule("static", 13),
                maps=[Map.to(vA, (S, Z))])
            yield from region.end()

        rt.run(program)
        assert np.array_equal(A, np.arange(float(N)) + 1)
        for env in rt.dataenvs:
            assert env.is_empty()

    def test_region_double_end_rejected(self):
        rt = make_rt()
        vA = Var("A", np.zeros(N))

        def program(omp):
            region = yield from target_data_spread(
                omp, devices=[0], range_=(0, N), chunk_size=N,
                maps=[Map.alloc(vA, (S, Z))])
            yield from region.end()
            yield from region.end()

        with pytest.raises(OmpSemaError, match="already closed"):
            rt.run(program)


class TestUpdateSpread:
    def test_distributed_update_to_and_from(self):
        rt = make_rt()
        A = np.arange(float(N))
        vA = Var("A", A)

        def program(omp):
            yield from target_enter_data_spread(
                omp, devices=[0, 1], range_=(0, N), chunk_size=13,
                maps=[Map.to(vA, (S, Z))])
            A[:] = -1.0  # host changes; push them to the devices
            yield from target_update_spread(
                omp, devices=[0, 1], range_=(0, N), chunk_size=13,
                to=[(vA, (S, Z))])
            yield from target_spread_teams_distribute_parallel_for(
                omp, plus_one_kernel(), 0, N, [0, 1],
                schedule=spread_schedule("static", 13),
                maps=[Map.to(vA, (S, Z))])
            yield from target_update_spread(
                omp, devices=[0, 1], range_=(0, N), chunk_size=13,
                from_=[(vA, (S, Z))])
            yield from target_exit_data_spread(
                omp, devices=[0, 1], range_=(0, N), chunk_size=13,
                maps=[Map.release(vA, (S, Z))])

        rt.run(program)
        assert np.all(A == 0.0)

    def test_update_requires_presence(self):
        rt = make_rt()
        vA = Var("A", np.zeros(N))

        def program(omp):
            yield from target_update_spread(
                omp, devices=[0], range_=(0, N), chunk_size=N,
                to=[(vA, (S, Z))])

        with pytest.raises(OmpMappingError, match="not present"):
            rt.run(program)

    def test_update_needs_direction(self):
        rt = make_rt()

        def program(omp):
            yield from target_update_spread(omp, devices=[0],
                                            range_=(0, N), chunk_size=N)

        with pytest.raises(OmpSemaError, match="at least one"):
            rt.run(program)

    def test_update_depend_gated(self):
        rt = make_rt()
        vA = Var("A", np.zeros(N))

        def program(omp):
            yield from target_update_spread(
                omp, devices=[0], range_=(0, N), chunk_size=N,
                to=[(vA, (S, Z))], depends=[Dep.in_(vA)])

        with pytest.raises(OmpSemaError, match="future work"):
            rt.run(program)


class TestDifferentMappingsListing8:
    def test_two_directives_different_devices_and_ranges(self):
        """Listing 8: two enter-data-spread with different device lists."""
        rt = make_rt()
        A, B = np.arange(float(N)), np.arange(float(N)) * 2
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            tg = omp.taskgroup_begin()
            yield from target_enter_data_spread(
                omp, devices=[2, 0], range_=(1, N - 2), chunk_size=4,
                nowait=True, maps=[Map.to(vA, (S - 1, Z + 2))])
            yield from target_enter_data_spread(
                omp, devices=[1, 3], range_=(10, 12), chunk_size=10,
                nowait=True, maps=[Map.to(vB, (S, Z))])
            yield from omp.taskgroup_end(tg)
            yield from target_exit_data_spread(
                omp, devices=[2, 0], range_=(1, N - 2), chunk_size=4,
                maps=[Map.release(vA, (S - 1, Z + 2))])
            yield from target_exit_data_spread(
                omp, devices=[1, 3], range_=(10, 12), chunk_size=10,
                maps=[Map.release(vB, (S, Z))])

        rt.run(program)
        for env in rt.dataenvs:
            assert env.is_empty()
