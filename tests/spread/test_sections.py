"""Unit tests for the symbolic spread identifiers."""

import pytest

from repro.spread.sections import (
    SpreadExpr,
    omp_spread_size,
    omp_spread_start,
    spread_section,
)


class TestArithmetic:
    def test_singletons_evaluate(self):
        assert omp_spread_start.evaluate(7, 3) == 7
        assert omp_spread_size.evaluate(7, 3) == 3

    def test_halo_pattern(self):
        start = omp_spread_start - 1
        size = omp_spread_size + 2
        assert start.evaluate(10, 4) == 9
        assert size.evaluate(10, 4) == 6

    def test_radd_rsub(self):
        assert (1 + omp_spread_start).evaluate(5, 0) == 6
        assert (10 - omp_spread_size).evaluate(0, 3) == 7

    def test_multiplication_by_int(self):
        expr = 2 * omp_spread_start + omp_spread_size * 3 - 4
        assert expr.evaluate(5, 2) == 2 * 5 + 3 * 2 - 4

    def test_negation(self):
        assert (-omp_spread_start).evaluate(4, 0) == -4

    def test_combined_symbols(self):
        end = omp_spread_start + omp_spread_size
        assert end.evaluate(10, 4) == 14

    def test_constant_detection(self):
        assert SpreadExpr(const=5).is_constant
        assert not omp_spread_start.is_constant

    def test_float_operand_not_supported(self):
        with pytest.raises(TypeError):
            omp_spread_start + 1.5  # type: ignore[operator]
        with pytest.raises(TypeError):
            omp_spread_start * 2.0  # type: ignore[operator]


class TestEqualityHash:
    def test_equality_with_int(self):
        assert SpreadExpr(const=4) == 4
        assert not (omp_spread_start == 4)

    def test_structural_equality(self):
        assert omp_spread_start + 1 == 1 + omp_spread_start
        assert omp_spread_start != omp_spread_size

    def test_hashable(self):
        s = {omp_spread_start, omp_spread_start + 0, omp_spread_size}
        assert len(s) == 2

    def test_repr_mentions_symbols(self):
        assert "omp_spread_start" in repr(omp_spread_start - 1)
        assert "omp_spread_size" in repr(omp_spread_size + 2)


class TestSpreadSection:
    def test_halo_helper(self):
        start, size = spread_section(-1, +2)
        assert start.evaluate(5, 4) == 4
        assert size.evaluate(5, 4) == 6

    def test_default_exact_chunk(self):
        start, size = spread_section()
        assert start.evaluate(5, 4) == 5
        assert size.evaluate(5, 4) == 4
