"""Unit tests for the §IX extension gates."""

import pytest

from repro.openmp.runtime import OpenMPRuntime
from repro.sim.topology import uniform_node
from repro.spread.extensions import Extensions, enable, get_extensions, require
from repro.util.errors import OmpSemaError


def make_rt():
    return OpenMPRuntime(topology=uniform_node(1))


class TestGates:
    def test_default_all_off(self):
        ext = get_extensions(make_rt())
        assert not ext.data_depend
        assert not ext.schedules
        assert not ext.reduction

    def test_enable_sets_flags(self):
        rt = make_rt()
        enable(rt, data_depend=True, reduction=True)
        ext = get_extensions(rt)
        assert ext.data_depend and ext.reduction and not ext.schedules

    def test_enable_unknown_flag_rejected(self):
        with pytest.raises(OmpSemaError, match="unknown"):
            enable(make_rt(), warp_speed=True)

    def test_require_raises_with_paper_message(self):
        rt = make_rt()
        with pytest.raises(OmpSemaError, match="future work"):
            require(rt, "data_depend", "the depend clause")

    def test_require_passes_when_enabled(self):
        rt = make_rt()
        enable(rt, schedules=True)
        require(rt, "schedules", "dynamic schedule")  # no raise

    def test_extensions_instance_cached_on_runtime(self):
        rt = make_rt()
        assert get_extensions(rt) is get_extensions(rt)

    def test_dataclass_defaults(self):
        ext = Extensions()
        assert (ext.data_depend, ext.schedules, ext.reduction) == \
            (False, False, False)
