"""Unit tests for the Reduction clause object itself."""

import numpy as np
import pytest

from repro.openmp.mapping import Var
from repro.spread.reduction import Reduction
from repro.util.errors import OmpSemaError


class TestConstruction:
    @pytest.mark.parametrize("op,identity", [
        ("+", 0.0), ("sum", 0.0), ("*", 1.0), ("prod", 1.0),
        ("min", np.inf), ("max", -np.inf),
    ])
    def test_identities(self, op, identity):
        red = Reduction(op, Var("a", np.zeros(1)))
        assert red.identity == identity or (
            np.isinf(red.identity) and np.isinf(identity))

    def test_unknown_op(self):
        with pytest.raises(OmpSemaError, match="unsupported operator"):
            Reduction("avg", Var("a", np.zeros(1)))


class TestFold:
    def test_sum_fold_order_independent_value(self):
        acc = Var("acc", np.zeros(3))
        partials = [np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0, 30.0])]
        Reduction("sum", acc).fold_into_host(partials)
        assert np.array_equal(acc.array, [11.0, 22.0, 33.0])

    def test_fold_accumulates_into_existing(self):
        acc = Var("acc", np.full(2, 5.0))
        Reduction("+", acc).fold_into_host([np.array([1.0, 1.0])])
        assert np.array_equal(acc.array, [6.0, 6.0])

    def test_prod_fold(self):
        acc = Var("acc", np.full(1, 2.0))
        Reduction("prod", acc).fold_into_host([np.array([3.0]),
                                               np.array([4.0])])
        assert acc.array[0] == 24.0

    def test_min_max_fold(self):
        lo = Var("lo", np.full(1, np.inf))
        Reduction("min", lo).fold_into_host([np.array([4.0]),
                                             np.array([2.0]),
                                             np.array([9.0])])
        assert lo.array[0] == 2.0
        hi = Var("hi", np.full(1, -np.inf))
        Reduction("max", hi).fold_into_host([np.array([4.0]),
                                             np.array([9.0])])
        assert hi.array[0] == 9.0

    def test_deterministic_fold_order(self):
        """Folding happens in the order given (chunk order): for floats the
        bit pattern depends on it, so the runtime must pass chunk order."""
        acc1 = Var("a", np.zeros(1))
        acc2 = Var("b", np.zeros(1))
        parts = [np.array([1.0]), np.array([1e16]), np.array([-1e16])]
        Reduction("sum", acc1).fold_into_host(parts)
        Reduction("sum", acc2).fold_into_host(list(reversed(parts)))
        assert acc1.array[0] != acc2.array[0]  # order matters for FP
