"""Tests for SpreadHandle and SpreadDataRegion handle semantics."""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size as Z,
    omp_spread_start as S,
    spread_schedule,
    target_enter_data_spread,
    target_exit_data_spread,
    target_spread,
)


def make_rt():
    return OpenMPRuntime(topology=cte_power_node(4, memory_bytes=1e9))


def noop_kernel():
    return KernelSpec("noop", lambda lo, hi, env: None)


class TestSpreadHandle:
    def test_len_is_chunk_count(self):
        rt = make_rt()
        vA = Var("A", np.zeros(24))

        def program(omp):
            h = yield from target_spread(
                omp, noop_kernel(), 0, 24, [0, 1, 2, 3],
                schedule=spread_schedule("static", 3),
                maps=[Map.to(vA, (S, Z))], nowait=True)
            assert len(h) == 8
            yield from h.wait()
            return h

        h = rt.run(program)
        assert h.done

    def test_wait_is_idempotent(self):
        rt = make_rt()
        vA = Var("A", np.zeros(8))

        def program(omp):
            h = yield from target_spread(
                omp, noop_kernel(), 0, 8, [0, 1],
                maps=[Map.to(vA, (S, Z))], nowait=True)
            yield from h.wait()
            t1 = omp.sim.now
            yield from h.wait()  # second wait: no-op
            assert omp.sim.now == t1

        rt.run(program)

    def test_chunks_carry_device_and_interval(self):
        rt = make_rt()
        vA = Var("A", np.zeros(12))

        def program(omp):
            h = yield from target_spread(
                omp, noop_kernel(), 0, 12, [2, 0],
                schedule=spread_schedule("static", 3),
                maps=[Map.to(vA, (S, Z))])
            return h

        h = rt.run(program)
        assert [(c.device, c.start, c.size) for c in h.chunks] == [
            (2, 0, 3), (0, 3, 3), (2, 6, 3), (0, 9, 3)]

    def test_data_handle_exposes_distribution(self):
        rt = make_rt()
        vA = Var("A", np.zeros(20))

        def program(omp):
            h = yield from target_enter_data_spread(
                omp, devices=[1, 3], range_=(0, 20), chunk_size=5,
                maps=[Map.to(vA, (S, Z))])
            yield from target_exit_data_spread(
                omp, devices=[1, 3], range_=(0, 20), chunk_size=5,
                maps=[Map.release(vA, (S, Z))])
            return h

        h = rt.run(program)
        assert [c.device for c in h.chunks] == [1, 3, 1, 3]
        assert h.done
