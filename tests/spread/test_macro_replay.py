"""Macro-op replay engine: bit identity against the object path.

The acceptance contract of :mod:`repro.spread.macro` is the same as the
plan cache's, one level down: replaying a *compiled* macro-op program must
be observationally indistinguishable from re-walking the cached plan
through the object path.  Same virtual clock, same trace events, same
results, same sanitizer/analyzer output — with the cache on or off, with
macro replay on (``REPRO_MACRO_OPS`` default) or off (``--no-macro-ops``),
at every worker count, and across seeded device-loss failover.
"""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.obs import MetricsTool
from repro.openmp import Map, OpenMPRuntime, Var
from repro.openmp.depend import Dep
from repro.openmp.runtime import resolve_macro_ops
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size,
    omp_spread_start,
    target_data_spread,
    target_enter_data_spread,
    target_exit_data_spread,
    target_spread,
    target_spread_teams_distribute_parallel_for,
    target_update_spread,
)
from repro.spread import macro

S, Z = omp_spread_start, omp_spread_size
N = 64
DEVICES = [0, 1, 2, 3]
ITERS = 5


@pytest.fixture(autouse=True)
def _hermetic_knob_env(monkeypatch):
    """Macro replay disengages whenever a fault injector, sanitizer or
    analyzer is armed (by design), so the engagement/counter assertions
    here require the CI env-matrix legs (``REPRO_FAULTS``,
    ``REPRO_SANITIZE``, ``REPRO_ANALYZE``, ``REPRO_MACRO_OPS``) not to
    leak in; the scenarios that want those hooks arm them explicitly."""
    for knob in ("REPRO_FAULTS", "REPRO_FAULT_SEED", "REPRO_SANITIZE",
                 "REPRO_ANALYZE", "REPRO_MACRO_OPS", "REPRO_FUSED_TIMELINE"):
        monkeypatch.delenv(knob, raising=False)


def make_rt(**kw):
    kw.setdefault("topology", cte_power_node(4, memory_bytes=1e9))
    kw.setdefault("trace_enabled", True)
    return OpenMPRuntime(**kw)


def double_kernel():
    def body(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo:hi] * 2.0 + 1.0

    return KernelSpec("double", body)


def incr_kernel():
    def body(lo, hi, env):
        x = env["X"]
        x[lo:hi] = x[lo:hi] * 2.0 + 1.0

    return KernelSpec("incr", body)


def _event_tuples(trace):
    return [(e.category, e.name, e.lane, e.start, e.end, e.device,
             tuple(sorted(e.meta.items())))
            for e in trace.events]


def _composite_run(macro_ops, plan_cache=True, tools=(), depends=False,
                   **rt_kw):
    """One run exercising all six spread directives, ITERS times over.

    Covers ``target spread`` (bare), the combined teams directive, enter/
    exit data, the structured data region and ``target update spread`` —
    every directive with a macro compiler behind its plan-cache hit path.
    With ``depends=True`` the kernel launches carry depend clauses, so the
    replay goes through the two-phase DependTracker protocol.
    """
    rt = make_rt(plan_cache=plan_cache, macro_ops=macro_ops, **rt_kw)
    for tool in tools:
        rt.tools.register(tool)
    A, B = np.arange(float(N)), np.zeros(N)
    vA, vB = Var("A", A), Var("B", B)
    dbl, inc = double_kernel(), incr_kernel()
    X = np.arange(float(N))
    vX = Var("X", X)

    def program(omp):
        yield from target_enter_data_spread(
            omp, DEVICES, (0, N), None,
            [Map.to(vA, (S, Z)), Map.alloc(vB, (S, Z))])
        for _ in range(ITERS):
            deps = [Dep.out(vB, (S, Z))] if depends else []
            yield from target_spread_teams_distribute_parallel_for(
                omp, dbl, 0, N, DEVICES,
                maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))],
                depends=deps, nowait=True)
            yield from omp.taskwait()
            yield from target_update_spread(
                omp, DEVICES, (0, N), None, from_=[(vB, (S, Z))])
        yield from target_exit_data_spread(
            omp, DEVICES, (0, N), None,
            [Map.release(vA, (S, Z)), Map.from_(vB, (S, Z))])
        # structured data region + bare target spread inside it
        for _ in range(ITERS):
            region = yield from target_data_spread(
                omp, DEVICES, (0, N), None, [Map.tofrom(vX, (S, Z))])
            yield from target_spread(omp, inc, 0, N, DEVICES,
                                     maps=[Map.tofrom(vX, (S, Z))])
            yield from region.end()

    rt.run(program)
    return rt, A, B, X


def _expected_X(iters=ITERS):
    X = np.arange(float(N))
    for _ in range(iters):
        X = X * 2.0 + 1.0
    return X


def _assert_identical(rt_on, rt_off, results_on, results_off):
    assert rt_on.elapsed == rt_off.elapsed
    for a, b in zip(results_on, results_off):
        assert np.array_equal(a, b)
    if rt_on.trace is not None and rt_off.trace is not None:
        assert _event_tuples(rt_on.trace) == _event_tuples(rt_off.trace)


class TestBitIdentity:
    def test_macro_on_vs_off(self):
        rt_on, A, B_on, X_on = _composite_run(True)
        rt_off, _, B_off, X_off = _composite_run(False)
        assert rt_on.plan_cache.macro_replays > 0
        assert rt_on.plan_cache.macro_compiles > 0
        assert rt_off.plan_cache.macro_replays == 0
        assert rt_off.plan_cache.macro_compiles == 0
        _assert_identical(rt_on, rt_off, (B_on, X_on), (B_off, X_off))
        assert np.array_equal(B_on, A * 2.0 + 1.0)
        assert np.array_equal(X_on, _expected_X())

    def test_macro_on_vs_cache_off(self):
        """Replay must also match fully uncached (cold every time)."""
        rt_on, _, B_on, X_on = _composite_run(True)
        rt_cold, _, B_cold, X_cold = _composite_run(True, plan_cache=False)
        assert rt_cold.plan_cache.macro_replays == 0
        _assert_identical(rt_on, rt_cold, (B_on, X_on), (B_cold, X_cold))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_sweep_identity(self, workers, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_MIN_BYTES", "0")
        rt_on, _, B_on, X_on = _composite_run(True, workers=workers)
        rt_off, _, B_off, X_off = _composite_run(False, workers=workers)
        assert rt_on.plan_cache.macro_replays > 0
        _assert_identical(rt_on, rt_off, (B_on, X_on), (B_off, X_off))

    def test_depend_replay_identity(self):
        """Two-phase DependTracker replay matches submit_spread's."""
        rt_on, _, B_on, X_on = _composite_run(True, depends=True)
        rt_off, _, B_off, X_off = _composite_run(False, depends=True)
        assert rt_on.plan_cache.macro_replays > 0
        _assert_identical(rt_on, rt_off, (B_on, X_on), (B_off, X_off))

    def test_deterministic_run_to_run(self):
        rt1, _, B1, X1 = _composite_run(True)
        rt2, _, B2, X2 = _composite_run(True)
        _assert_identical(rt1, rt2, (B1, X1), (B2, X2))
        assert rt1.plan_cache.stats == rt2.plan_cache.stats


class TestObserverGating:
    """Anything that observes per-op bookkeeping must force the object
    path — and the run must still be bit-identical either way."""

    def test_tools_disengage_macro(self):
        tool_on, tool_off = MetricsTool(), MetricsTool()
        rt_on, _, B_on, X_on = _composite_run(True, tools=(tool_on,))
        rt_off, _, B_off, X_off = _composite_run(False, tools=(tool_off,))
        assert rt_on.plan_cache.macro_replays == 0  # tools observe ops
        _assert_identical(rt_on, rt_off, (B_on, X_on), (B_off, X_off))
        ra, rb = tool_on.registry, tool_off.registry
        for key in ("tasks_created", "kernels_launched"):
            assert ra.sum_counter(key) == rb.sum_counter(key)

    def test_sanitizer_identity(self):
        rt_on, _, B_on, X_on = _composite_run(True, sanitize=True)
        rt_off, _, B_off, X_off = _composite_run(False, sanitize=True)
        assert rt_on.sanitizer is not None
        assert rt_on.plan_cache.macro_replays == 0  # sanitizer armed
        _assert_identical(rt_on, rt_off, (B_on, X_on), (B_off, X_off))
        assert rt_on.sanitizer.races == rt_off.sanitizer.races == 0

    def test_analyzer_critpath_identity(self):
        rt_on, _, B_on, X_on = _composite_run(True, analyze=True)
        rt_off, _, B_off, X_off = _composite_run(False, analyze=True)
        _assert_identical(rt_on, rt_off, (B_on, X_on), (B_off, X_off))
        rep_on = rt_on.analysis().report()
        rep_off = rt_off.analysis().report()
        assert rep_on == rep_off


class TestFailover:
    def test_device_loss_identity(self):
        kw = dict(faults="device@1:#2", fault_seed=7)
        rt_on, _, B_on, X_on = _composite_run(True, **kw)
        rt_off, _, B_off, X_off = _composite_run(False, **kw)
        assert rt_on.lost_devices == rt_off.lost_devices != frozenset()
        _assert_identical(rt_on, rt_off, (B_on, X_on), (B_off, X_off))
        assert np.array_equal(X_on, _expected_X())

    def test_device_loss_drops_compiled_programs(self):
        """Eviction is atomic: a dropped plan takes its program along."""
        rt, _, _, _ = _composite_run(True)
        stats = rt.plan_cache.stats
        assert stats["macro_entries"] > 0
        before = len(rt.plan_cache)
        dropped = rt.plan_cache.invalidate_device(DEVICES[1])
        assert dropped == before  # every plan routes to every device here
        after = rt.plan_cache.stats
        assert after["entries"] == 0
        assert after["macro_entries"] == 0
        assert after["invalidations"] == stats["invalidations"] + dropped

    def test_no_macro_engagement_after_loss(self):
        rt, _, _, X = _composite_run(True, faults="device@1:#1",
                                     fault_seed=3)
        assert rt.lost_devices
        assert not macro.engaged(rt)
        assert np.array_equal(X, _expected_X())


class TestCountersAndKnobs:
    def test_macro_counters(self):
        rt, _, _, _ = _composite_run(True)
        st = rt.plan_cache.stats
        # Compilation happens on first *hit*: the teams exec, the update,
        # the region pair and the bare exec all repeat (and compile);
        # enter/exit run once each so their plans never replay.
        assert st["macro_compiles"] == 4
        assert st["macro_replays"] > st["macro_compiles"]
        assert st["macro_entries"] == st["macro_compiles"]

    def test_resolve_macro_ops_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MACRO_OPS", raising=False)
        assert resolve_macro_ops(None) is True
        assert resolve_macro_ops(True) is True
        assert resolve_macro_ops(False) is False
        for raw, want in (("0", False), ("off", False), ("false", False),
                          ("no", False), ("1", True), ("on", True),
                          ("", True), ("  ", True)):
            monkeypatch.setenv("REPRO_MACRO_OPS", raw)
            assert resolve_macro_ops(None) is want
        monkeypatch.setenv("REPRO_MACRO_OPS", "0")
        assert resolve_macro_ops(True) is True  # explicit beats env

    def test_uncompilable_plan_tried_once(self):
        """A plan the compiler rejects leaves the False sentinel so the
        attempt is not repeated on every hit."""
        from repro.spread.plan_cache import SpreadPlanCache

        cache = SpreadPlanCache()
        cache.store("k", "plan")
        cell = cache.lookup("k")
        calls = []

        def fail():
            calls.append(1)
            return None

        assert macro.program_for(cache, cell, fail) is None
        assert macro.program_for(cache, cell, fail) is None
        assert len(calls) == 1
        assert cache.macro_compiles == 0
        assert cache.stats["macro_entries"] == 0  # sentinel is not a program

    def test_program_arrays_well_formed(self):
        rt, _, _, _ = _composite_run(True)
        progs = [cell[1] for cell in rt.plan_cache._plans.values()
                 if cell[1] not in (None, False)]
        assert progs
        for prog in progs:
            entries = prog if isinstance(prog, tuple) else (prog,)
            for p in entries:
                assert p.well_formed()
                assert len(p.kinds) == len(p.records)
                assert p.map_index[-1] == p.map_bounds.shape[0]
                assert p.total_bytes >= 0
