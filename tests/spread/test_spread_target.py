"""Integration-grade unit tests for the executable spread directives."""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.openmp.depend import Dep
from repro.sim.costmodel import CostModel
from repro.sim.topology import DeviceSpec, cte_power_node, uniform_node
from repro.spread import (
    Reduction,
    omp_spread_size,
    omp_spread_start,
    spread_schedule,
    target_spread,
    target_spread_teams_distribute_parallel_for,
)
from repro.spread import extensions as ext
from repro.util.errors import OmpScheduleError, OmpSemaError

S, Z = omp_spread_start, omp_spread_size


def make_rt(n=4):
    return OpenMPRuntime(topology=cte_power_node(n, memory_bytes=1e9))


def stencil_kernel():
    def body(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]

    return KernelSpec("stencil", body)


def expected_stencil(A, n):
    out = np.zeros(n)
    out[1:n - 1] = A[0:n - 2] + A[1:n - 1] + A[2:n]
    return out


class TestFunctional:
    @pytest.mark.parametrize("devices", [[0], [1, 0], [2, 0, 1], [0, 1, 2, 3]])
    def test_stencil_any_device_count(self, devices):
        n = 26
        rt = make_rt()
        A, B = np.arange(float(n)), np.zeros(n)
        vA, vB = Var("A", A), Var("B", B)
        # chunk = one per device, so same-device chunks never carry
        # overlapping halo maps (the paper's gap restriction, §V-B)
        def program(omp):
            yield from target_spread(
                omp, stencil_kernel(), 1, n - 1, devices,
                maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))])

        rt.run(program)
        assert np.array_equal(B, expected_stencil(A, n))
        for env in rt.dataenvs:
            assert env.is_empty()

    def test_same_device_halo_chunks_rejected(self):
        """Round-robin with 1 device and a small chunk puts adjacent halo
        maps on the same data environment — the overlap-extension error
        the paper's Section V-B describes."""
        from repro.util.errors import OmpMappingError

        n = 26
        rt = make_rt()
        A, B = np.arange(float(n)), np.zeros(n)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            yield from target_spread(
                omp, stencil_kernel(), 1, n - 1, [0],
                schedule=spread_schedule("static", 4),
                maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))])

        with pytest.raises(OmpMappingError, match="extend"):
            rt.run(program)

    def test_devices_list_order_controls_distribution(self):
        rt = make_rt()
        n = 14
        A, B = np.arange(float(n)), np.zeros(n)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            handle = yield from target_spread(
                omp, stencil_kernel(), 1, n - 1, [2, 0, 1],
                schedule=spread_schedule("static", 4),
                maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))])
            return handle

        handle = rt.run(program)
        assert [c.device for c in handle.chunks] == [2, 0, 1]

    def test_nowait_requires_explicit_sync(self):
        rt = make_rt()
        n = 14
        A, B = np.arange(float(n)), np.zeros(n)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            handle = yield from target_spread(
                omp, stencil_kernel(), 1, n - 1, [0, 1],
                schedule=spread_schedule("static", 4),
                maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))],
                nowait=True)
            assert not handle.done
            yield from handle.wait()
            assert handle.done

        rt.run(program)
        assert np.array_equal(B, expected_stencil(A, n))

    def test_chunk_deps_pipeline_two_kernels(self):
        rt = make_rt()
        n = 26
        A, B, C = np.arange(float(n)), np.zeros(n), np.zeros(n)
        vA, vB, vC = Var("A", A), Var("B", B), Var("C", C)

        def scale(lo, hi, env):
            env["C"][lo:hi] = env["B"][lo:hi] * 10

        def program(omp):
            yield from target_spread(
                omp, stencil_kernel(), 1, n - 1, [0, 1, 2, 3],
                schedule=spread_schedule("static", 6),
                maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))],
                nowait=True, depends=[Dep.out(vB, (S, Z))])
            yield from target_spread(
                omp, KernelSpec("scale", scale), 1, n - 1, [0, 1, 2, 3],
                schedule=spread_schedule("static", 6),
                maps=[Map.to(vB, (S, Z)), Map.from_(vC, (S, Z))],
                nowait=True,
                depends=[Dep.in_(vB, (S, Z)), Dep.out(vC, (S, Z))])
            yield from omp.taskwait()

        rt.run(program)
        assert np.array_equal(C, expected_stencil(A, n) * 10)

    def test_bad_devices_rejected(self):
        rt = make_rt(2)

        def program(omp):
            yield from target_spread(omp, stencil_kernel(), 0, 4, [0, 5],
                                     maps=[])

        with pytest.raises(OmpScheduleError):
            rt.run(program)


class TestCombined:
    def test_combined_faster_than_bare_spread(self):
        n = 66

        def run(combined):
            rt = make_rt()
            A, B = np.arange(float(n)), np.zeros(n)
            vA, vB = Var("A", A), Var("B", B)

            def program(omp):
                fn = (target_spread_teams_distribute_parallel_for
                      if combined else target_spread)
                yield from fn(omp, stencil_kernel(), 1, n - 1, [0, 1],
                              schedule=spread_schedule("static", 16),
                              maps=[Map.to(vA, (S - 1, Z + 2)),
                                    Map.from_(vB, (S, Z))])

            rt.run(program)
            return rt.elapsed

        assert run(True) < run(False)

    def test_num_teams_applies_per_device(self):
        """Halving teams must slow the kernels (per-device derating)."""
        n = 66

        def run(teams):
            rt = OpenMPRuntime(topology=uniform_node(
                2, device_specs=[DeviceSpec(num_sms=8), DeviceSpec(num_sms=8)]))
            A, B = np.arange(float(n)), np.zeros(n)
            vA, vB = Var("A", A), Var("B", B)

            def program(omp):
                yield from target_spread_teams_distribute_parallel_for(
                    omp, stencil_kernel(), 1, n - 1, [0, 1],
                    schedule=spread_schedule("static", 33),
                    num_teams=teams,
                    maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))])

            rt.run(program)
            return rt.elapsed

        assert run(4) < run(2)


class TestDynamicScheduleExtension:
    def test_gated_by_default(self):
        rt = make_rt()

        def program(omp):
            yield from target_spread(omp, stencil_kernel(), 1, 13, [0, 1],
                                     schedule=spread_schedule("dynamic", 4),
                                     maps=[])

        with pytest.raises(OmpSemaError, match="not supported yet"):
            rt.run(program)

    def test_dynamic_balances_unequal_devices(self):
        n = 98
        fast = DeviceSpec(iters_per_second=1e7)
        slow = DeviceSpec(iters_per_second=1e6)

        def run(kind):
            rt = OpenMPRuntime(topology=uniform_node(
                2, device_specs=[fast, slow], memory_bytes=1e9))
            ext.enable(rt, schedules=True)
            A, B = np.arange(float(n)), np.zeros(n)
            vA, vB = Var("A", A), Var("B", B)

            def program(omp):
                yield from target_spread(
                    omp, stencil_kernel(), 1, n - 1, [0, 1],
                    schedule=spread_schedule(kind, 8),
                    maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))])

            rt.run(program)
            assert np.array_equal(B, expected_stencil(A, n))
            return rt.elapsed

        assert run("dynamic") < run("static")

    def test_dynamic_with_depend_rejected(self):
        rt = make_rt()
        ext.enable(rt, schedules=True)
        vA = Var("A", np.zeros(20))

        def program(omp):
            yield from target_spread(omp, stencil_kernel(), 1, 19, [0, 1],
                                     schedule=spread_schedule("dynamic", 4),
                                     maps=[], depends=[Dep.out(vA)])

        with pytest.raises(OmpSemaError, match="dynamic"):
            rt.run(program)


class TestReductionExtension:
    def test_gated_by_default(self):
        rt = make_rt()
        acc = Var("acc", np.zeros(1))

        def program(omp):
            yield from target_spread(omp, stencil_kernel(), 1, 13, [0, 1],
                                     maps=[], reductions=[Reduction("sum", acc)])

        with pytest.raises(OmpSemaError, match="not supported yet"):
            rt.run(program)

    def test_sum_reduction_across_devices(self):
        n = 34
        rt = make_rt()
        ext.enable(rt, reduction=True)
        A = np.arange(float(n))
        vA = Var("A", A)
        acc = Var("acc", np.zeros(1))

        def body(lo, hi, env):
            env["acc"][0] += env["A"][lo:hi].sum()

        def program(omp):
            yield from target_spread(
                omp, KernelSpec("sum", body), 0, n, [0, 1, 2, 3],
                schedule=spread_schedule("static", 5),
                maps=[Map.to(vA, (S, Z))],
                reductions=[Reduction("sum", acc)])

        rt.run(program)
        assert acc.array[0] == pytest.approx(A.sum())

    def test_max_reduction(self):
        n = 20
        rt = make_rt()
        ext.enable(rt, reduction=True)
        rng = np.arange(float(n))[::-1].copy()
        vA = Var("A", rng)
        acc = Var("m", np.full(1, -np.inf))

        def body(lo, hi, env):
            env["m"][0] = max(env["m"][0], env["A"][lo:hi].max())

        def program(omp):
            yield from target_spread(
                omp, KernelSpec("max", body), 0, n, [0, 1],
                schedule=spread_schedule("static", 4),
                maps=[Map.to(vA, (S, Z))],
                reductions=[Reduction("max", acc)])

        rt.run(program)
        assert acc.array[0] == rng.max()

    def test_reduction_with_nowait_rejected(self):
        rt = make_rt()
        ext.enable(rt, reduction=True)
        acc = Var("acc", np.zeros(1))

        def program(omp):
            yield from target_spread(omp, stencil_kernel(), 1, 13, [0],
                                     maps=[], nowait=True,
                                     reductions=[Reduction("sum", acc)])

        with pytest.raises(OmpSemaError, match="nowait"):
            rt.run(program)

    def test_bad_operator(self):
        with pytest.raises(OmpSemaError):
            Reduction("xor", Var("a", np.zeros(1)))
