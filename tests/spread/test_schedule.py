"""Unit tests for spread schedules — including the paper's worked examples."""

import pytest

from repro.spread.schedule import (
    DynamicSchedule,
    IrregularStaticSchedule,
    StaticSchedule,
    spread_schedule,
    validate_devices,
)
from repro.util.errors import OmpScheduleError
from repro.util.intervals import Interval


class TestPaperExamples:
    """Listing 3's distribution examples, N=14, loop 1..N-1, devices(2,0,1)."""

    def test_chunk_four(self):
        chunks = StaticSchedule(4).chunks(1, 13, [2, 0, 1])
        assert [(c.interval.start, c.interval.stop, c.device)
                for c in chunks] == [(1, 5, 2), (5, 9, 0), (9, 13, 1)]

    def test_chunk_two(self):
        chunks = StaticSchedule(2).chunks(1, 13, [2, 0, 1])
        assert [(c.interval.start, c.interval.stop, c.device)
                for c in chunks] == [
            (1, 3, 2), (3, 5, 0), (5, 7, 1),
            (7, 9, 2), (9, 11, 0), (11, 13, 1),
        ]


class TestStaticSchedule:
    def test_partitions_exactly(self):
        chunks = StaticSchedule(5).chunks(0, 17, [0, 1])
        assert chunks[0].interval == Interval(0, 5)
        assert chunks[-1].interval == Interval(15, 17)  # truncated tail
        assert sum(c.size for c in chunks) == 17

    def test_default_chunk_one_per_device(self):
        chunks = StaticSchedule(None).chunks(0, 10, [0, 1, 2])
        assert len(chunks) == 3
        assert [c.size for c in chunks] == [4, 4, 2]
        assert [c.device for c in chunks] == [0, 1, 2]

    def test_empty_range(self):
        assert StaticSchedule(4).chunks(5, 5, [0]) == []

    def test_invalid_range(self):
        with pytest.raises(OmpScheduleError):
            StaticSchedule(4).chunks(5, 3, [0])

    def test_chunk_size_validation(self):
        with pytest.raises(OmpScheduleError):
            StaticSchedule(0)

    def test_indices_sequential(self):
        chunks = StaticSchedule(1).chunks(0, 5, [0, 1])
        assert [c.index for c in chunks] == [0, 1, 2, 3, 4]

    def test_single_device_gets_everything(self):
        chunks = StaticSchedule(3).chunks(0, 9, [7])
        assert all(c.device == 7 for c in chunks)


class TestIrregularSchedule:
    def test_sizes_consumed_in_order_and_cycled(self):
        chunks = IrregularStaticSchedule([3, 1]).chunks(0, 9, [0, 1])
        assert [c.size for c in chunks] == [3, 1, 3, 1, 1]
        assert [c.device for c in chunks] == [0, 1, 0, 1, 0]

    def test_is_extension(self):
        assert IrregularStaticSchedule([1]).is_extension

    def test_bad_sizes(self):
        with pytest.raises(OmpScheduleError):
            IrregularStaticSchedule([])
        with pytest.raises(OmpScheduleError):
            IrregularStaticSchedule([2, 0])


class TestDynamicSchedule:
    def test_chunks_have_no_device(self):
        chunks = DynamicSchedule(4).chunks(0, 10, [0, 1])
        assert all(c.device is None for c in chunks)
        assert sum(c.size for c in chunks) == 10

    def test_is_extension(self):
        assert DynamicSchedule(4).is_extension

    def test_chunk_size_required_positive(self):
        with pytest.raises(OmpScheduleError):
            DynamicSchedule(0)


class TestFactory:
    def test_static(self):
        sched = spread_schedule("static", 4)
        assert isinstance(sched, StaticSchedule)
        assert sched.chunk_size == 4

    def test_static_without_chunk(self):
        assert spread_schedule("static").chunk_size is None

    def test_static_with_list_rejected(self):
        with pytest.raises(OmpScheduleError, match="static_irregular"):
            spread_schedule("static", [1, 2])

    def test_irregular(self):
        sched = spread_schedule("static_irregular", [2, 3])
        assert isinstance(sched, IrregularStaticSchedule)

    def test_irregular_needs_list(self):
        with pytest.raises(OmpScheduleError):
            spread_schedule("static_irregular", 4)

    def test_dynamic(self):
        assert isinstance(spread_schedule("dynamic", 4), DynamicSchedule)
        with pytest.raises(OmpScheduleError):
            spread_schedule("dynamic")

    def test_unknown_kind(self):
        with pytest.raises(OmpScheduleError, match="unknown"):
            spread_schedule("guided", 4)


class TestValidateDevices:
    def test_valid(self):
        assert validate_devices([2, 0, 1], 4) == [2, 0, 1]

    def test_empty_rejected(self):
        with pytest.raises(OmpScheduleError, match="at least one"):
            validate_devices([], 4)

    def test_out_of_range(self):
        with pytest.raises(OmpScheduleError, match="out of range"):
            validate_devices([0, 4], 4)

    def test_duplicates_rejected(self):
        with pytest.raises(OmpScheduleError, match="duplicate"):
            validate_devices([0, 1, 0], 4)

    def test_non_int_rejected(self):
        with pytest.raises(OmpScheduleError, match="non-integer"):
            validate_devices([0, "1"], 4)  # type: ignore[list-item]


class TestHierarchicalStaticSchedule:
    """Two-level static split: nodes first, then each node's devices."""

    def _sched(self, groups, chunk_size=None):
        from repro.spread.schedule import HierarchicalStaticSchedule

        return HierarchicalStaticSchedule(groups, chunk_size=chunk_size)

    def test_nested_even_split(self):
        # 16 iterations over 2 nodes x 2 devices: node shares [0,8) and
        # [8,16), each dealt evenly to the node's two devices.
        sched = self._sched([[0, 1], [2, 3]])
        chunks = sched.chunks(0, 16, [0, 1, 2, 3])
        got = [(c.interval.start, c.interval.stop, c.device) for c in chunks]
        assert got == [(0, 4, 0), (4, 8, 1), (8, 12, 2), (12, 16, 3)]
        assert [c.index for c in chunks] == [0, 1, 2, 3]

    def test_uneven_range_truncates_last_node(self):
        sched = self._sched([[0], [1], [2]])
        chunks = sched.chunks(0, 7, [0, 1, 2])
        # node shares of ceil(7/3)=3: [0,3) [3,6) [6,7)
        assert [(c.start, c.interval.stop, c.device) for c in chunks] == \
            [(0, 3, 0), (3, 6, 1), (6, 7, 2)]

    def test_nested_chunk_size_round_robins_within_node(self):
        sched = self._sched([[0, 1], [2, 3]], chunk_size=2)
        chunks = sched.chunks(0, 16, [0, 1, 2, 3])
        assert [c.device for c in chunks] == [0, 1, 0, 1, 2, 3, 2, 3]
        assert [c.index for c in chunks] == list(range(8))

    def test_devices_clause_must_match_groups(self):
        from repro.util.errors import OmpScheduleError

        sched = self._sched([[0, 1], [2, 3]])
        with pytest.raises(OmpScheduleError):
            sched.chunks(0, 8, [0, 1, 2])

    def test_group_validation(self):
        from repro.util.errors import OmpScheduleError

        with pytest.raises(OmpScheduleError):
            self._sched([])
        with pytest.raises(OmpScheduleError):
            self._sched([[0], []])
        with pytest.raises(OmpScheduleError):
            self._sched([[0, 1], [1, 2]])
        with pytest.raises(OmpScheduleError):
            self._sched([[0]], chunk_size=0)

    def test_signature_is_structural(self):
        a = self._sched([[0, 1], [2, 3]])
        b = self._sched([[0, 1], [2, 3]])
        c = self._sched([[0, 2], [1, 3]])
        assert a.signature == b.signature
        assert a.signature != c.signature
        assert a.signature[0] == "hier"

    def test_empty_range(self):
        assert self._sched([[0], [1]]).chunks(3, 3, [0, 1]) == []
