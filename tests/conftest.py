"""Shared fixtures: small nodes and runtimes for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.openmp.runtime import OpenMPRuntime
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.topology import cte_power_node, uniform_node


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rt1():
    """One device, generous memory, fast host."""
    return OpenMPRuntime(topology=uniform_node(1, memory_bytes=1e9))


@pytest.fixture
def rt2():
    """Two devices on one socket (shared link)."""
    return OpenMPRuntime(topology=uniform_node(2, devices_per_socket=2,
                                               memory_bytes=1e9))


@pytest.fixture
def rt4():
    """The CTE-POWER-like 4-GPU node with roomy memory for tests."""
    return OpenMPRuntime(topology=cte_power_node(4, memory_bytes=1e9))


def make_runtime(num_devices: int = 4, memory_bytes: float = 1e9,
                 **kwargs) -> OpenMPRuntime:
    return OpenMPRuntime(topology=cte_power_node(num_devices,
                                                 memory_bytes=memory_bytes),
                         **kwargs)


def run_program(rt: OpenMPRuntime, genfn, *args):
    """Run a host program and return its result."""
    return rt.run(genfn, *args)
