"""Cluster-scale integration: Somier end-to-end on simulated multi-node
machines.

The contract mirrors the single-node determinism suite: on a cluster
topology the run must stay bit-identical across host worker counts and
with the sanitizer / causal analyzer / fused-timeline toggles flipped,
halo traffic for devices on non-root nodes must actually cross the
modeled network links, and a lost *node* must degrade gracefully — the
survivors finish the run with results identical to the fault-free one,
deterministically for a given spec + seed.
"""

import numpy as np
import pytest

from repro.sim.topology import MACHINE_ENV, uniform_cluster
from repro.somier import SomierConfig, run_somier

CFG = SomierConfig(n=18, steps=3)


@pytest.fixture(autouse=True)
def _hermetic_env(monkeypatch):
    """CI legs export REPRO_MACHINE / REPRO_FAULTS; the scenarios here
    build their own topologies and specs, so none may leak in."""
    for var in (MACHINE_ENV, "REPRO_FAULTS", "REPRO_FAULT_SEED"):
        monkeypatch.delenv(var, raising=False)


def topo(nodes=4, per_node=4):
    return uniform_cluster(nodes, per_node, memory_bytes=1e9)


def run(**kw):
    kw.setdefault("topology", topo())
    return run_somier("one_buffer", CFG, **kw)


def assert_bit_identical(a, b):
    for name in a.state.grids:
        assert np.array_equal(a.state.grids[name], b.state.grids[name]), name
    assert np.array_equal(a.centers, b.centers)
    assert a.elapsed == b.elapsed
    assert a.runtime.trace.events == b.runtime.trace.events


class TestClusterEndToEnd:
    def test_matches_sequential_reference(self):
        res = run()
        from repro.somier import SomierState, run_reference

        ref = SomierState(CFG)
        run_reference(ref, res.plan.buffers)
        for name in ref.grids:
            assert np.array_equal(res.state.grids[name], ref.grids[name])

    def test_halo_crosses_network_links(self):
        res = run()
        rt = res.runtime
        # root node devices stage directly; every other node's traffic
        # must traverse that node's network resource
        assert rt.networks[0] is None
        for node in range(1, rt.num_nodes):
            net = rt.networks[node]
            assert net is not None and net.grant_count > 0
        for d in res.devices:
            dev = rt.devices[d]
            if dev.node_id == 0:
                assert dev.net_bytes == 0
            else:
                assert dev.net_bytes > 0

    def test_network_contention_slows_the_run(self):
        # same devices, same per-node calibration: the flat single-node
        # machine beats the cluster because inter-node halo/copy traffic
        # pays the fabric
        cluster = run(topology=topo(4, 1))
        flat = run(topology=uniform_cluster(1, 4, memory_bytes=1e9))
        assert cluster.elapsed > flat.elapsed

    def test_hierarchical_distribution_used(self):
        res = run()
        # 16 devices, 4 nodes: every device computes (hierarchical split
        # dealt each node's share across that node's GPUs)
        assert all(res.runtime.devices[d].kernels_launched > 0
                   for d in res.devices)


class TestClusterBitIdentity:
    def test_across_worker_counts(self):
        base = run(workers=1)
        for w in (2, 4):
            assert_bit_identical(base, run(workers=w))

    def test_sanitizer_transparent_and_clean(self):
        base = run()
        sanitized = run(sanitize=True)
        assert_bit_identical(base, sanitized)
        assert sanitized.runtime.sanitizer.races == 0

    def test_analyzer_transparent(self):
        base = run()
        analyzed = run(analyze=True)
        assert_bit_identical(base, analyzed)
        analysis = analyzed.runtime.analysis()
        assert analysis.headline() is not None

    def test_replay_paths_transparent(self):
        base = run()
        assert_bit_identical(base, run(fused_timeline=False))
        assert_bit_identical(base, run(macro_ops=False))
        assert_bit_identical(base, run(plan_cache=False))


class TestNodeLoss:
    SPEC = "node@2:#4"

    def test_survivors_finish_with_identical_results(self):
        clean = run()
        lossy = run(faults=self.SPEC, fault_seed=7)
        rt = lossy.runtime
        assert sorted(rt.lost_nodes) == [2]
        assert sorted(rt.lost_devices) == [8, 9, 10, 11]
        assert lossy.stats["fault_failovers"] > 0
        for name in clean.state.grids:
            assert np.array_equal(clean.state.grids[name],
                                  lossy.state.grids[name])
        assert np.array_equal(clean.centers, lossy.centers)

    def test_deterministic_across_runs_and_workers(self):
        a = run(faults=self.SPEC, fault_seed=7)
        b = run(faults=self.SPEC, fault_seed=7)
        assert_bit_identical(a, b)
        parallel = run(faults=self.SPEC, fault_seed=7, workers=4)
        assert_bit_identical(a, parallel)

    def test_loss_invalidates_node_plans(self):
        lossy = run(faults=self.SPEC, fault_seed=7)
        cache = lossy.runtime.plan_cache
        assert cache.invalidations > 0
        for cell in cache._plans.values():
            assert cell[0] is not None  # no poisoned cells left behind

    def test_rate_based_node_faults_are_seeded(self):
        a = run(faults="node:0.002", fault_seed=3)
        b = run(faults="node:0.002", fault_seed=3)
        assert sorted(a.runtime.lost_nodes) == sorted(b.runtime.lost_nodes)
        assert_bit_identical(a, b)

    def test_losing_root_node_is_fatal_for_its_devices(self):
        # node 0 hosts the arrays; its devices failing over still must
        # keep results correct when *another* node carries the work
        clean = run(topology=topo(2, 2))
        lossy = run(topology=topo(2, 2), faults="node@1:#2", fault_seed=1)
        assert sorted(lossy.runtime.lost_nodes) == [1]
        assert np.array_equal(clean.centers, lossy.centers)


class TestMachineEnvIntegration:
    def test_run_somier_honours_repro_machine(self, monkeypatch):
        monkeypatch.setenv(MACHINE_ENV, "cluster:2x2")
        res = run_somier("one_buffer", CFG)
        rt = res.runtime
        assert rt.num_nodes == 2
        assert rt.num_devices == 4
        assert rt.networks[1] is not None

    def test_env_junk_is_a_runtime_error(self, monkeypatch):
        from repro.util.errors import OmpRuntimeError

        monkeypatch.setenv(MACHINE_ENV, "bogus")
        with pytest.raises(OmpRuntimeError):
            run_somier("one_buffer", CFG)

    def test_cli_machine_flag(self, capsys):
        from repro.cli import main

        rc = main(["somier", "--machine", "cluster:2x2", "--steps", "1",
                   "--n-functional", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 device(s)" in out

    def test_cli_machine_describe(self, capsys):
        from repro.cli import main

        assert main(["machine", "--machine", "cluster:2x4"]) == 0
        out = capsys.readouterr().out
        assert "cluster of 2 node(s)" in out
        assert "network" in out

    def test_cli_bad_machine_spec(self, capsys):
        from repro.cli import main

        assert main(["somier", "--machine", "rack:9"]) == 1
        assert "machine spec" in capsys.readouterr().err
