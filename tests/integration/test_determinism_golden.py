"""Golden determinism: the simulation is reproducible across processes.

A fixed small Somier experiment must always produce the same virtual time,
operation counts and trace digest.  If a code change legitimately alters
scheduling, these constants are expected to move — update them consciously
(they exist to make silent nondeterminism or accidental model drift loud).
"""

import hashlib

import numpy as np
import pytest

from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, run_somier
from repro.somier.plan import chunk_footprint_bytes

CFG = SomierConfig(n=18, steps=2)


def run_fixed():
    cap = chunk_footprint_bytes(CFG, 4) / 0.8
    return run_somier("one_buffer", CFG, devices=[1, 0, 3, 2],
                      topology=cte_power_node(4, memory_bytes=cap),
                      trace=True)


def trace_digest(trace) -> str:
    h = hashlib.sha256()
    for e in trace.events:
        h.update(f"{e.category}|{e.name}|{e.lane}|{e.start:.12e}|"
                 f"{e.end:.12e}\n".encode())
    return h.hexdigest()[:16]


class TestDeterminism:
    def test_repeated_runs_identical(self):
        a, b = run_fixed(), run_fixed()
        assert a.elapsed == b.elapsed
        assert trace_digest(a.runtime.trace) == trace_digest(b.runtime.trace)
        for name in a.state.grids:
            assert np.array_equal(a.state.grids[name], b.state.grids[name])

    def test_operation_counts_stable(self):
        res = run_fixed()
        # 2 steps x buffers x 4 chunks x (12 copies in + 13 out)
        assert res.stats["memcpy_calls"] == 2 * res.plan.num_buffers * 4 * 25
        # 2 steps x 4 buffers x 5 kernels x 4 chunks
        assert res.stats["kernels_launched"] == 2 * res.plan.num_buffers * 20

    def test_centers_value_golden(self):
        """The physics itself is a golden value (pure float64 NumPy)."""
        res = run_fixed()
        first = res.centers[0]
        # x/y centers sit at the interior mean exactly (symmetric forces)
        assert first[0] == pytest.approx(8.5, abs=1e-12)
        assert first[1] == pytest.approx(8.5, abs=1e-12)
        # z carries the perturbation
        assert first[2] > 8.5
