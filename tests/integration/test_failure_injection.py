"""Failure injection: errors inside simulated device work must surface.

A runtime that swallows failures in nowait tasks would report wrong results
as clean runs; these tests inject faults at every layer and assert the
failure reaches the caller with its original type.
"""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.openmp.target import target, target_enter_data
from repro.sim.topology import cte_power_node, uniform_node
from repro.spread import (
    omp_spread_size as Z,
    omp_spread_start as S,
    spread_schedule,
    target_enter_data_spread,
    target_spread,
)
from repro.util.errors import OmpAllocationError


def make_rt(n=4, **kw):
    return OpenMPRuntime(topology=cte_power_node(n, memory_bytes=1e6), **kw)


class TestKernelFaults:
    def test_kernel_exception_propagates_synchronously(self):
        rt = make_rt()
        v = Var("A", np.zeros(8))

        def bad(lo, hi, env):
            raise FloatingPointError("injected")

        def program(omp):
            yield from target(omp, device=0, kernel=KernelSpec("bad", bad),
                              lo=0, hi=8, maps=[Map.to(v)])

        with pytest.raises(FloatingPointError, match="injected"):
            rt.run(program)

    def test_kernel_exception_in_nowait_surfaces_at_taskwait(self):
        rt = make_rt()
        v = Var("A", np.zeros(8))

        def bad(lo, hi, env):
            raise ZeroDivisionError("injected")

        def program(omp):
            yield from target(omp, device=0, kernel=KernelSpec("bad", bad),
                              lo=0, hi=8, maps=[Map.to(v)], nowait=True)
            yield from omp.taskwait()

        with pytest.raises(ZeroDivisionError):
            rt.run(program)

    def test_unawaited_kernel_exception_surfaces_at_run_end(self):
        rt = make_rt()
        v = Var("A", np.zeros(8))

        def bad(lo, hi, env):
            raise KeyError("injected")

        def program(omp):
            yield from target(omp, device=0, kernel=KernelSpec("bad", bad),
                              lo=0, hi=8, maps=[Map.to(v)], nowait=True)
            # never waits

        with pytest.raises(KeyError):
            rt.run(program)

    def test_one_failing_chunk_fails_the_spread_directive(self):
        rt = make_rt()
        v = Var("A", np.zeros(16))

        def bad_on_dev2(lo, hi, env):
            if lo >= 8:
                raise RuntimeError(f"chunk at {lo} failed")

        def program(omp):
            yield from target_spread(
                omp, KernelSpec("k", bad_on_dev2), 0, 16, [0, 1],
                schedule=spread_schedule("static", 8),
                maps=[Map.to(v, (S, Z))])

        with pytest.raises(RuntimeError, match="chunk at 8"):
            rt.run(program)


class TestHaloBugs:
    def test_out_of_section_access_is_a_device_fault(self):
        """A kernel indexing outside its mapped section — the bug class the
        spread halo arithmetic exists to prevent — faults immediately."""
        rt = make_rt()
        v = Var("A", np.zeros(16))

        def reads_halo_not_mapped(lo, hi, env):
            env["A"][lo - 1:hi]  # section mapped without the -1 halo

        def program(omp):
            yield from target_spread(
                omp, KernelSpec("k", reads_halo_not_mapped), 1, 15, [0, 1],
                maps=[Map.to(v, (S, Z))])   # exact chunk: no halo!

        with pytest.raises(IndexError, match="outside mapped section"):
            rt.run(program)

    def test_unmapped_variable_is_a_name_fault(self):
        rt = make_rt()
        v = Var("A", np.zeros(8))

        def uses_b(lo, hi, env):
            env["B"]

        def program(omp):
            yield from target(omp, device=0, kernel=KernelSpec("k", uses_b),
                              lo=0, hi=8, maps=[Map.to(v)])

        with pytest.raises(KeyError, match="B"):
            rt.run(program)


class TestMemoryFaults:
    def test_oversized_single_map_raises_not_hangs(self):
        rt = OpenMPRuntime(topology=uniform_node(1, memory_bytes=100.0))
        v = Var("A", np.zeros(1000))  # 8 kB > 100 B

        def program(omp):
            yield from target_enter_data(omp, device=0, maps=[Map.to(v)])

        with pytest.raises(OmpAllocationError):
            rt.run(program)

    def test_transient_exhaustion_with_no_releaser_is_a_deadlock(self):
        """Back-pressure with nothing ever freeing must be reported as a
        deadlock, not silently hang."""
        from repro.util.errors import OmpRuntimeError

        rt = OpenMPRuntime(topology=uniform_node(1, memory_bytes=100.0))
        a = Var("A", np.zeros(10))  # 80 B
        b = Var("B", np.zeros(10))  # another 80 B: can never coexist

        def program(omp):
            yield from target_enter_data(omp, device=0, maps=[Map.to(a)])
            yield from target_enter_data(omp, device=0, maps=[Map.to(b)])

        with pytest.raises(Exception) as err:
            rt.run(program)
        assert "deadlock" in str(err.value) or isinstance(
            err.value, OmpRuntimeError)


class TestGroupFaults:
    def test_failure_inside_taskgroup_raises_at_group_end(self):
        rt = make_rt()
        v = Var("A", np.zeros(8))

        def program(omp):
            tg = omp.taskgroup_begin()
            yield from target_enter_data_spread(
                omp, devices=[0, 1], range_=(0, 8), chunk_size=4,
                maps=[Map.to(v, (S, Z + 1000))],  # out-of-bounds section
                nowait=True)
            yield from omp.taskgroup_end(tg)

        from repro.util.errors import OmpSemaError

        with pytest.raises(OmpSemaError, match="outside array extent"):
            rt.run(program)

    def test_state_after_failure_is_inspectable(self):
        """After a failed run the runtime's trace and counters remain
        readable (post-mortem debugging)."""
        rt = make_rt()
        v = Var("A", np.zeros(8))

        def bad(lo, hi, env):
            raise RuntimeError("late failure")

        def program(omp):
            yield from target_enter_data(omp, device=0, maps=[Map.to(v)])
            yield from target(omp, device=0, kernel=KernelSpec("bad", bad),
                              lo=0, hi=8, maps=[Map.to(v)])

        with pytest.raises(RuntimeError):
            rt.run(program)
        assert rt.devices[0].memcpy_calls >= 1
        assert len(rt.trace.events) >= 1
