"""Documentation accuracy: the README's code must actually run.

Extracts the first Python code block from README.md (the "Quick taste"
snippet) and executes it; if the public API drifts, this test fails before
a user's copy-paste does.
"""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parents[2] / "README.md"


def python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestReadme:
    def test_readme_exists_with_code(self):
        text = README.read_text()
        assert "target spread" in text
        assert len(python_blocks(text)) >= 2

    def test_quick_taste_snippet_runs(self, capsys):
        snippet = python_blocks(README.read_text())[0]
        namespace = {}
        exec(compile(snippet, str(README), "exec"), namespace)  # noqa: S102
        out = capsys.readouterr().out
        # it printed the elapsed time and an ASCII trace
        assert "legend" in out

    def test_quick_taste_computes_the_stencil(self):
        snippet = python_blocks(README.read_text())[0]
        namespace = {}
        exec(compile(snippet, str(README), "exec"), namespace)  # noqa: S102
        import numpy as np

        A, B, N = namespace["A"], namespace["B"], namespace["N"]
        expect = np.zeros(N)
        expect[1:N - 1] = A[0:N - 2] + A[1:N - 1] + A[2:N]
        assert np.array_equal(B, expect)

    def test_offline_install_instructions_present(self):
        assert ".pth" in README.read_text()
