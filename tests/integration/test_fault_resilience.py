"""Injected-fault resilience: retry, failover and graceful degradation.

End-to-end scenarios over the spread directives with the seeded fault
injector active: transient transfer/kernel faults are retried invisibly
(same results, honest virtual-time backoff), a lost device's chunks are
re-spread across the survivors with results identical to the fault-free
run, degradation continues down to one device, and when every device in
the clause is gone the directive fails with a clean
:class:`SpreadExecutionError` instead of hanging or corrupting state.
"""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.obs import MetricsTool
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.faults import RetryPolicy
from repro.sim.topology import cte_power_node
from repro.spread import (
    omp_spread_size as Z,
    omp_spread_start as S,
    spread_schedule,
    target_enter_data_spread,
    target_exit_data_spread,
    target_spread,
    target_spread_teams_distribute_parallel_for,
    target_update_spread,
)
from repro.spread import extensions as ext
from repro.util.errors import (
    SpreadExecutionError,
    TransferFaultError,
)

N = 64
ITERS = 3


@pytest.fixture(autouse=True)
def _hermetic_fault_env(monkeypatch):
    """Baselines here must be genuinely fault-free even under the CI
    fault-leg environment (``REPRO_FAULTS=transfer:0.01``)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)


def make_rt(n=4, **kw):
    return OpenMPRuntime(topology=cte_power_node(n, memory_bytes=1e9), **kw)


def incr_kernel():
    def body(lo, hi, env):
        x = env["X"]
        x[lo:hi] = x[lo:hi] * 2.0 + 1.0

    return KernelSpec("incr", body)


def run_iterated_spread(devices, iters=ITERS, tools=(), **rt_kw):
    """ITERS dependent spread kernels over X; returns (rt, X)."""
    rt = make_rt(max(devices) + 1, **rt_kw)
    for tool in tools:
        rt.tools.register(tool)
    X = np.arange(float(N))
    vX = Var("X", X)
    kern = incr_kernel()

    def program(omp):
        for _ in range(iters):
            yield from target_spread_teams_distribute_parallel_for(
                omp, kern, 0, N, devices,
                maps=[Map.tofrom(vX, (S, Z))])

    rt.run(program)
    return rt, X


def expected(iters=ITERS):
    X = np.arange(float(N))
    for _ in range(iters):
        X = X * 2.0 + 1.0
    return X


class TestRetryTransparency:
    def test_transient_transfer_fault_retried_to_same_result(self):
        clean_rt, clean = run_iterated_spread([0, 1, 2, 3])
        rt, X = run_iterated_spread([0, 1, 2, 3], faults="h2d:#3")
        assert np.array_equal(X, clean)
        assert np.array_equal(X, expected())
        assert rt.fault_retries == 1
        assert rt.fault_failovers == 0
        # the backoff was charged to virtual time
        assert rt.elapsed > clean_rt.elapsed

    def test_transient_kernel_fault_retried(self):
        rt, X = run_iterated_spread([0, 1], faults="kernel:#2")
        assert np.array_equal(X, expected())
        assert rt.fault_retries == 1

    def test_retry_exhaustion_surfaces_typed_error(self):
        with pytest.raises(TransferFaultError, match="injected h2d fault"):
            run_iterated_spread(
                [0, 1], faults="h2d:1.0",
                retry=RetryPolicy(max_attempts=2, backoff=10e-6))

    def test_giveup_and_retry_events_reach_tools(self):
        tool = MetricsTool()
        with pytest.raises(TransferFaultError):
            run_iterated_spread(
                [0, 1], faults="h2d:1.0", tools=(tool,),
                retry=RetryPolicy(max_attempts=3, backoff=10e-6))
        reg = tool.registry
        # both chunks' h2d chains retry concurrently: 2 retries each
        # before the giveup on attempt 3
        assert reg.sum_counter("fault_retries") == 4
        assert reg.sum_counter("fault_giveups") >= 1
        assert reg.sum_counter("faults_injected") >= 3
        assert reg.counter_value("fault_backoff_seconds") > 0


class TestDeviceLossFailover:
    def test_lost_device_chunks_rerouted_same_results(self):
        _, clean = run_iterated_spread([0, 1, 2, 3])
        rt, X = run_iterated_spread([0, 1, 2, 3], faults="device@1:#1")
        assert np.array_equal(X, clean)
        assert rt.lost_devices == frozenset({1})
        assert rt.fault_failovers >= 1
        assert rt.devices[1].lost
        assert rt.dataenvs[1].is_empty()

    def test_mid_run_loss_same_results(self):
        """Loss after a full timestep: the tofrom maps have made the host
        current, so re-executed chunks see the right inputs."""
        _, clean = run_iterated_spread([0, 1, 2, 3])
        rt, X = run_iterated_spread([0, 1, 2, 3], faults="device@2:#4")
        assert np.array_equal(X, clean)
        assert 2 in rt.lost_devices

    def test_degrades_to_single_survivor(self):
        rt, X = run_iterated_spread(
            [0, 1, 2], faults="device@0:#1,device@2:#1")
        assert np.array_equal(X, expected())
        assert rt.lost_devices == frozenset({0, 2})

    def test_all_devices_lost_is_clean_spread_error(self):
        with pytest.raises(SpreadExecutionError, match="lost"):
            run_iterated_spread([0, 1], faults="device@0:#1,device@1:#1")

    def test_loss_invalidates_cached_plans(self):
        rt, X = run_iterated_spread([0, 1, 2, 3], faults="device@1:#4")
        assert np.array_equal(X, expected())
        assert rt.plan_cache.invalidations > 0

    def test_device_lost_and_failover_events_reach_tools(self):
        tool = MetricsTool()
        rt, _ = run_iterated_spread([0, 1, 2, 3], faults="device@3:#1",
                                    tools=(tool,))
        reg = tool.registry
        assert reg.counter_value("devices_lost") == 1
        assert reg.sum_counter("fault_failovers") == rt.fault_failovers > 0


class TestDataDirectiveFailover:
    def test_enter_compute_exit_survives_loss(self):
        """Spread data directives: a lost device's exit/update chunks
        become no-ops and its kernel chunks run standalone."""
        rt = make_rt(4, faults="device@1:#2")
        X = np.arange(float(N))
        vX = Var("X", X)
        kern = incr_kernel()
        devices = [0, 1, 2, 3]

        def program(omp):
            yield from target_enter_data_spread(
                omp, devices, (0, N), None, [Map.to(vX, (S, Z))])
            for _ in range(2):
                yield from target_spread_teams_distribute_parallel_for(
                    omp, kern, 0, N, devices,
                    maps=[Map.to(vX, (S, Z))])
                yield from target_update_spread(
                    omp, devices, (0, N), None, from_=[(vX, (S, Z))])
            yield from target_exit_data_spread(
                omp, devices, (0, N), None, [Map.release(vX, (S, Z))])

        rt.run(program)
        assert np.array_equal(X, expected(2))
        assert 1 in rt.lost_devices
        for env in rt.dataenvs:
            assert env.is_empty()

    def test_dynamic_schedule_loss_worker_retires(self):
        rt = make_rt(2, faults="device@1:#1")
        ext.enable(rt, schedules=True)
        X = np.arange(float(N))
        vX = Var("X", X)
        kern = incr_kernel()

        def program(omp):
            yield from target_spread(
                omp, kern, 0, N, [0, 1],
                schedule=spread_schedule("dynamic", 8),
                maps=[Map.tofrom(vX, (S, Z))])

        rt.run(program)
        assert np.array_equal(X, np.arange(float(N)) * 2.0 + 1.0)
        assert 1 in rt.lost_devices


class TestZeroImpact:
    def test_zero_rate_injector_is_byte_identical(self):
        base_rt, base = run_iterated_spread([0, 1, 2, 3])
        zero_rt, X = run_iterated_spread([0, 1, 2, 3],
                                         faults="transfer:0.0,kernel:0.0")
        assert np.array_equal(X, base)
        assert zero_rt.elapsed == base_rt.elapsed
        assert len(zero_rt.trace.events) == len(base_rt.trace.events)
        assert zero_rt.fault_retries == zero_rt.fault_failovers == 0

    def test_report_renders_fault_totals(self):
        from repro.obs import Profiler

        prof = Profiler()
        rt, _ = run_iterated_spread([0, 1, 2, 3], faults="device@1:#1",
                                    tools=prof.tools)
        text = prof.report(makespan=rt.elapsed).render_text()
        assert "faults:" in text
        assert "1 devices lost" in text
        import json

        payload = json.loads(prof.report().to_json())
        assert payload["faults"]["devices_lost"] == 1
