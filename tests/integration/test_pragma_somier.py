"""End-to-end: one Somier time step written entirely as pragma strings.

The strongest exercise of the compiler frontend: the One Buffer structure of
Listing 10 — enter data spread in a taskgroup, five dependence-chained
spread kernels, exit data spread in a taskgroup — driven through
``execute_pragma`` with the listings' clause syntax, and compared
**bit-for-bit** against the programmatic implementation.
"""

import numpy as np
import pytest

from repro.openmp import OpenMPRuntime
from repro.pragma import execute_pragma
from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, SomierState, make_kernels, run_somier
from repro.somier.plan import chunk_footprint_bytes

CFG = SomierConfig(n=18, steps=2)
DEVICES = [1, 0, 3, 2]


def topo():
    cap = chunk_footprint_bytes(CFG, 4) / 0.8
    return cte_power_node(4, memory_bytes=cap)


GRIDS = ["pos_x", "pos_y", "pos_z", "vel_x", "vel_y", "vel_z",
         "acc_x", "acc_y", "acc_z", "force_x", "force_y", "force_z"]

#: (kernel attr, in-vars with halo?, in-vars, out-vars)
KERNEL_PRAGMA_TABLE = [
    ("forces", ["pos_x", "pos_y", "pos_z"],
     ["force_x", "force_y", "force_z"], True),
    ("accelerations", ["force_x", "force_y", "force_z"],
     ["acc_x", "acc_y", "acc_z"], False),
    ("velocities", ["acc_x", "acc_y", "acc_z"],
     ["vel_x", "vel_y", "vel_z"], False),
    ("positions", ["vel_x", "vel_y", "vel_z"],
     ["pos_x", "pos_y", "pos_z"], False),
    ("centers", ["pos_x", "pos_y", "pos_z"], ["partials"], False),
]

HALO = "[omp_spread_start-1:omp_spread_size+2]"
CHUNK = "[omp_spread_start:omp_spread_size]"


def build_pragma_program(state: SomierState, plan, devices):
    kernels = make_kernels(state.config)
    dev_text = ",".join(str(d) for d in devices)
    symbols = {name: state.var(name) for name in GRIDS}
    symbols["partials"] = state.var("partials")

    enter_maps = " ".join(
        [f"map(to: {g}{HALO})" for g in GRIDS[:3]]
        + [f"map(to: {g}{CHUNK})" for g in GRIDS[3:]]
        + [f"map(alloc: partials{CHUNK})"])
    exit_maps = " ".join(
        [f"map(from: {g}{CHUNK})" for g in GRIDS]
        + [f"map(from: partials{CHUNK})"])

    def program(omp):
        for _step in range(state.config.steps):
            for blo, bsize in plan.buffers:
                chunk = -(-bsize // len(devices))
                env = dict(symbols, blo=blo, bsize=bsize, chunk=chunk)
                tg = omp.taskgroup_begin()
                yield from execute_pragma(
                    omp,
                    f"omp target enter data spread devices({dev_text}) "
                    f"range(blo:bsize) chunk_size(chunk) nowait "
                    + enter_maps, env)
                yield from omp.taskgroup_end(tg)

                for name, ins, outs, halo_in in KERNEL_PRAGMA_TABLE:
                    in_sec = HALO if halo_in else CHUNK
                    maps = " ".join(
                        [f"map(to: {v}{in_sec})" for v in ins]
                        + [f"map(from: {v}{CHUNK})" for v in outs])
                    deps = " ".join(
                        [f"depend(in: {v}{in_sec})" for v in ins]
                        + [f"depend(out: {v}{CHUNK})" for v in outs])
                    yield from execute_pragma(
                        omp,
                        "omp target spread teams distribute parallel for "
                        f"devices({dev_text}) spread_schedule(static, chunk)"
                        f" nowait {maps} {deps}",
                        env, body=getattr(kernels, name),
                        loop=(blo, blo + bsize))

                tg = omp.taskgroup_begin()
                yield from execute_pragma(
                    omp,
                    f"omp target exit data spread devices({dev_text}) "
                    f"range(blo:bsize) chunk_size(chunk) nowait "
                    + exit_maps, env)
                yield from omp.taskgroup_end(tg)
            state.record_centers()

    return program


class TestPragmaSomier:
    def test_pragma_program_matches_programmatic_bitwise(self):
        # programmatic run (the shipped implementation)
        prog = run_somier("one_buffer", CFG, devices=DEVICES, topology=topo())

        # pragma-driven run over the same plan
        rt = OpenMPRuntime(topology=topo())
        state = SomierState(CFG)
        rt.run(build_pragma_program(state, prog.plan, DEVICES))

        for name in state.grids:
            assert np.array_equal(state.grids[name], prog.state.grids[name]), name
        assert np.array_equal(np.array(state.centers), prog.centers)

    def test_pragma_program_same_operation_counts(self):
        prog = run_somier("one_buffer", CFG, devices=DEVICES, topology=topo())
        rt = OpenMPRuntime(topology=topo())
        state = SomierState(CFG)
        rt.run(build_pragma_program(state, prog.plan, DEVICES))
        memcpys = sum(d.memcpy_calls for d in rt.devices)
        kernels = sum(d.kernels_launched for d in rt.devices)
        assert memcpys == prog.stats["memcpy_calls"]
        assert kernels == prog.stats["kernels_launched"]

    def test_pragma_program_same_virtual_time(self):
        """Frontend lowering adds no modelled overhead: identical timing."""
        prog = run_somier("one_buffer", CFG, devices=DEVICES, topology=topo())
        rt = OpenMPRuntime(topology=topo())
        state = SomierState(CFG)
        rt.run(build_pragma_program(state, prog.plan, DEVICES))
        assert rt.elapsed == pytest.approx(prog.elapsed, rel=1e-9)
