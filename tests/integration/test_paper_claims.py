"""Integration tests for the paper's qualitative claims, at reduced scale.

These run the calibrated machine with a smaller functional grid and fewer
steps than the benchmarks, asserting the *shape* statements of Sections VI
and VII rather than absolute numbers (EXPERIMENTS.md records the full-scale
comparison).
"""

import numpy as np
import pytest

from repro.bench.machines import paper_devices, paper_machine, paper_somier_config
from repro.sim.trace import TraceAnalysis
from repro.somier import run_somier

NF = 64
STEPS = 4


def run(impl, gpus, trace=False, **kwargs):
    topo, cm = paper_machine(gpus, n_functional=NF)
    cfg = paper_somier_config(n_functional=NF, steps=STEPS)
    return run_somier(impl, cfg, devices=paper_devices(gpus), topology=topo,
                      cost_model=cm, trace=trace, **kwargs)


@pytest.fixture(scope="module")
def table1():
    return {
        ("target", 1): run("target", 1),
        ("one_buffer", 1): run("one_buffer", 1),
        ("one_buffer", 2): run("one_buffer", 2),
        ("one_buffer", 4): run("one_buffer", 4, trace=True),
    }


class TestTableOneShape:
    def test_spread_one_gpu_negligible_overhead(self, table1):
        """'using one GPU, the baseline implementation and the one based on
        the new directives have similar execution times'"""
        base = table1[("target", 1)].elapsed
        spread = table1[("one_buffer", 1)].elapsed
        assert abs(spread - base) / base < 0.01

    def test_more_gpus_strictly_faster(self, table1):
        t1 = table1[("one_buffer", 1)].elapsed
        t2 = table1[("one_buffer", 2)].elapsed
        t4 = table1[("one_buffer", 4)].elapsed
        assert t4 < t2 < t1

    def test_speedup_factors_in_paper_band(self, table1):
        """~1.4X with two GPUs, >2X with four (Section VI-A)."""
        t1 = table1[("target", 1)].elapsed
        s2 = t1 / table1[("one_buffer", 2)].elapsed
        s4 = t1 / table1[("one_buffer", 4)].elapsed
        assert 1.2 < s2 < 1.6
        assert 1.9 < s4 < 2.4

    def test_kernels_scale_near_linearly(self, table1):
        """'internally, the kernel computations had near to linear speedup'
        — per-device kernel busy time scales as 1/g."""
        res1 = run("one_buffer", 1, trace=True)
        res4 = table1[("one_buffer", 4)]
        ta1 = TraceAnalysis(res1.runtime.trace)
        ta4 = TraceAnalysis(res4.runtime.trace)
        k1 = ta1.device_summary(0)["kernel"]
        k4 = sum(ta4.device_summary(d)["kernel"] for d in range(4))
        # total kernel-seconds identical => per-wall-clock speedup linear
        assert k4 == pytest.approx(k1, rel=0.05)

    def test_functional_results_identical_across_gpu_counts(self, table1):
        c1 = table1[("one_buffer", 1)].centers
        c4 = table1[("one_buffer", 4)].centers
        assert np.allclose(c1, c4, rtol=1e-12)


class TestTableTwoShape:
    def test_two_buffers_slower_at_two_gpus(self):
        """Table II: at 2 GPUs, One Buffer wins."""
        one = run("one_buffer", 2).elapsed
        two = run("two_buffers", 2).elapsed
        assert two > one

    def test_implementations_converge_at_four_gpus(self):
        """'with four GPUs, the three versions showed more similar
        execution times'."""
        one = run("one_buffer", 4).elapsed
        two = run("two_buffers", 4).elapsed
        assert abs(two - one) / one < 0.15


class TestTraceClaims:
    @pytest.fixture(scope="class")
    def traced(self):
        return run("two_buffers", 4, trace=True)

    def test_transfers_dominate_kernels(self, traced):
        """Fig. 3: 'the execution time was mainly dominated by memory
        transfers and not by kernel computations'."""
        ta = TraceAnalysis(traced.runtime.trace)
        agg = ta.transfer_dominance(traced.devices)
        assert agg["ratio"] > 1.5

    def test_kernels_interleaved_with_transfers(self, traced):
        """Fig. 4: kernels are not executed subsequently but interleaved
        with transfers from a different buffer."""
        ta = TraceAnalysis(traced.runtime.trace)
        # many kernel<->transfer alternations per device
        for d in traced.devices:
            assert ta.interleave_count(d) >= STEPS * 2

    def test_same_device_compute_transfer_overlap_rare(self, traced):
        """Fig. 4: 'overlap of computation and transfers happened in very
        rare occasions' — zero, with a single in-order queue."""
        ta = TraceAnalysis(traced.runtime.trace)
        for d in traced.devices:
            assert ta.compute_transfer_overlap(d) == 0.0

    def test_transfers_never_overlap_on_a_socket(self, traced):
        """Fig. 4: 'transfers from different buffers did not overlap'."""
        ta = TraceAnalysis(traced.runtime.trace)
        assert ta.transfer_transfer_overlap([0, 1]) == 0.0
        assert ta.transfer_transfer_overlap([2, 3]) == 0.0


class TestDataDependAblation:
    def test_depend_extension_removes_idle_gaps(self):
        """§IX: chunk-level depends on the data directives 'eliminate the
        gaps in time where some of the devices remain idle'."""
        plain = run("one_buffer", 4).elapsed
        depend = run("one_buffer", 4, data_depend=True).elapsed
        assert depend < plain

    def test_depend_extension_fixes_half_buffer_races(self):
        from repro.somier import SomierState, run_reference

        res = run("two_buffers", 4, data_depend=True)
        ref = SomierState(res.config)
        run_reference(ref, res.plan.halves())
        assert all(np.array_equal(res.state.grids[n], ref.grids[n])
                   for n in ref.grids)
