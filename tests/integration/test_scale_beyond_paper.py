"""Beyond-paper scale: the runtime holds up past 4 devices.

The paper's model explicitly targets future many-accelerator nodes; these
tests run the directive stack on 16- and 64-device simulated nodes and on
mixed device subsets, checking functional correctness, clean teardown and
sane scaling behaviour.
"""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.topology import cte_power_node, uniform_node
from repro.somier import SomierConfig, SomierState, run_reference, run_somier
from repro.somier.plan import chunk_footprint_bytes
from repro.spread import (
    omp_spread_size as Z,
    omp_spread_start as S,
    spread_schedule,
    target_spread_teams_distribute_parallel_for,
)


def stencil():
    def body(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]

    return KernelSpec("stencil", body)


class TestManyDevices:
    @pytest.mark.parametrize("ndev", [16, 64])
    def test_spread_over_many_devices(self, ndev):
        n = 16 * ndev + 2
        rt = OpenMPRuntime(topology=uniform_node(
            ndev, devices_per_socket=4, memory_bytes=1e9))
        A, B = np.arange(float(n)), np.zeros(n)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            handle = yield from target_spread_teams_distribute_parallel_for(
                omp, stencil(), 1, n - 1, list(range(ndev)),
                maps=[Map.to(vA, (S - 1, Z + 2)), Map.from_(vB, (S, Z))])
            return handle

        handle = rt.run(program)
        assert len(handle.chunks) == ndev
        expect = A[0:n - 2] + A[1:n - 1] + A[2:n]
        assert np.array_equal(B[1:n - 1], expect)
        for env in rt.dataenvs:
            assert env.is_empty()

    def test_compute_scales_with_devices(self):
        """Kernel-bound work keeps speeding up well past 4 devices."""
        n = 16 * 64 + 2
        times = {}
        for ndev in (4, 16, 64):
            rt = OpenMPRuntime(topology=uniform_node(
                ndev, devices_per_socket=4, memory_bytes=1e9,
                link_bandwidth=1e13, staging_bandwidth=1e14,
                iters_per_second=1e6))
            A, B = np.arange(float(n)), np.zeros(n)
            vA, vB = Var("A", A), Var("B", B)
            kern = KernelSpec("stencil", stencil().body,
                              work_per_iter=1e3)

            def program(omp):
                yield from target_spread_teams_distribute_parallel_for(
                    omp, kern, 1, n - 1, list(range(ndev)),
                    maps=[Map.to(vA, (S - 1, Z + 2)),
                          Map.from_(vB, (S, Z))])

            rt.run(program)
            times[ndev] = rt.elapsed
        assert times[16] < times[4] / 2
        assert times[64] < times[16] / 2


class TestDeviceSubsets:
    def test_somier_on_socket1_only(self):
        """Running on devices [2, 3] (the second socket) works and matches
        the reference — device ids need not start at 0."""
        cfg = SomierConfig(n=18, steps=2)
        cap = chunk_footprint_bytes(cfg, 4) / 0.8
        res = run_somier("one_buffer", cfg, devices=[3, 2],
                         topology=cte_power_node(4, memory_bytes=cap))
        ref = SomierState(cfg)
        run_reference(ref, res.plan.buffers)
        assert all(np.array_equal(res.state.grids[k], ref.grids[k])
                   for k in ref.grids)
        # devices 0 and 1 never did anything
        assert res.runtime.devices[0].memcpy_calls == 0
        assert res.runtime.devices[1].memcpy_calls == 0

    def test_cross_socket_pair(self):
        cfg = SomierConfig(n=18, steps=2)
        cap = chunk_footprint_bytes(cfg, 4) / 0.8
        res = run_somier("one_buffer", cfg, devices=[0, 2],
                         topology=cte_power_node(4, memory_bytes=cap))
        ref = SomierState(cfg)
        run_reference(ref, res.plan.buffers)
        assert all(np.array_equal(res.state.grids[k], ref.grids[k])
                   for k in ref.grids)
