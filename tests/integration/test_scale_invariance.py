"""Scale invariance of the calibrated model.

The cost-model ``scale`` exists so any functional resolution reproduces the
same *virtual* regime.  If the model is consistent, the Table I speedups
must be (nearly) independent of the stand-in grid size — this is the check
that the 96^3-for-1200^3 substitution is not doing the work itself.
"""

import pytest

from repro.bench.machines import paper_devices, paper_machine, paper_somier_config
from repro.somier import run_somier

STEPS = 2


def speedups(nf):
    times = {}
    for gpus in (1, 2, 4):
        topo, cm = paper_machine(gpus, n_functional=nf)
        cfg = paper_somier_config(n_functional=nf, steps=STEPS)
        res = run_somier("one_buffer", cfg, devices=paper_devices(gpus),
                         topology=topo, cost_model=cm, trace=False)
        times[gpus] = res.elapsed
    return times[1] / times[2], times[1] / times[4]


class TestScaleInvariance:
    def test_speedups_stable_across_functional_resolutions(self):
        s2_48, s4_48 = speedups(48)
        s2_96, s4_96 = speedups(96)
        assert s2_48 == pytest.approx(s2_96, rel=0.06)
        assert s4_48 == pytest.approx(s4_96, rel=0.06)

    def test_virtual_time_proportional_to_steps(self):
        topo, cm = paper_machine(2, n_functional=48)
        t2 = run_somier("one_buffer", paper_somier_config(48, steps=2),
                        devices=paper_devices(2), topology=topo,
                        cost_model=cm, trace=False).elapsed
        topo, cm = paper_machine(2, n_functional=48)
        t4 = run_somier("one_buffer", paper_somier_config(48, steps=4),
                        devices=paper_devices(2), topology=topo,
                        cost_model=cm, trace=False).elapsed
        assert t4 == pytest.approx(2 * t2, rel=0.01)

    def test_virtual_bytes_match_paper_volume(self):
        """Per sweep, each direction moves ~the paper's 166 GB of grids."""
        topo, cm = paper_machine(1, n_functional=48)
        cfg = paper_somier_config(48, steps=1)
        res = run_somier("one_buffer", cfg, devices=[0], topology=topo,
                         cost_model=cm, trace=False)
        paper_volume = 12 * 1200 ** 3 * 8  # 166 GB
        # H2D exceeds the raw volume by the position halos (two extra rows
        # per chunk, relatively large at this coarse stand-in resolution);
        # D2H undershoots by the never-copied global boundary rows.
        assert res.stats["h2d_bytes"] == pytest.approx(paper_volume,
                                                       rel=0.20)
        assert res.stats["d2h_bytes"] == pytest.approx(paper_volume,
                                                       rel=0.10)
