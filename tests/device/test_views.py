"""Unit tests for global-index views."""

import numpy as np
import pytest

from repro.device.views import GlobalView


class TestGeometry:
    def test_start_stop_shape(self):
        view = GlobalView(np.zeros((5, 3)), offset=10, name="A")
        assert view.start == 10 and view.stop == 15
        assert view.shape == (5, 3)
        assert view.dtype == np.float64


class TestIntIndexing:
    def test_read_write_translated(self):
        buf = np.arange(12.0).reshape(4, 3)
        view = GlobalView(buf, offset=100)
        assert np.array_equal(view[101], buf[1])
        view[102] = 0.0
        assert np.all(buf[2] == 0.0)

    def test_out_of_section_raises(self):
        view = GlobalView(np.zeros(4), offset=10)
        with pytest.raises(IndexError, match="outside mapped section"):
            view[14]
        with pytest.raises(IndexError, match="outside mapped section"):
            view[9]

    def test_negative_global_index_rejected(self):
        view = GlobalView(np.zeros(4), offset=0)
        with pytest.raises(IndexError, match="negative"):
            view[-1]

    def test_numpy_integer_index(self):
        view = GlobalView(np.arange(4.0), offset=2)
        assert view[np.int64(3)] == 1.0


class TestSliceIndexing:
    def test_bounded_slice(self):
        buf = np.arange(6.0)
        view = GlobalView(buf, offset=4)
        assert np.array_equal(view[5:8], buf[1:4])

    def test_halo_arithmetic_pattern(self):
        # the paper's B[i] = A[i-1] + A[i] + A[i+1] over a mapped chunk
        host = np.arange(20.0)
        lo, hi = 8, 12
        a_chunk = host[lo - 1:hi + 1].copy()
        a = GlobalView(a_chunk, offset=lo - 1)
        out = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]
        expect = host[lo - 1:hi - 1] + host[lo:hi] + host[lo + 1:hi + 1]
        assert np.array_equal(out, expect)

    def test_open_ended_slice_rejected(self):
        view = GlobalView(np.zeros(4), offset=2)
        with pytest.raises(IndexError, match="bounded"):
            view[2:]
        with pytest.raises(IndexError, match="bounded"):
            view[:4]

    def test_strided_slice_rejected(self):
        view = GlobalView(np.zeros(4), offset=0)
        with pytest.raises(IndexError, match="step 1"):
            view[0:4:2]

    def test_slice_outside_section_rejected(self):
        view = GlobalView(np.zeros(4), offset=10)
        with pytest.raises(IndexError, match="outside mapped section"):
            view[9:12]

    def test_writes_through_slices(self):
        buf = np.zeros(5)
        view = GlobalView(buf, offset=3)
        view[4:7] = 1.5
        assert np.array_equal(buf, [0, 1.5, 1.5, 1.5, 0])


class TestTupleIndexing:
    def test_only_axis0_translated(self):
        buf = np.arange(24.0).reshape(4, 3, 2)
        view = GlobalView(buf, offset=5)
        assert np.array_equal(view[6, 1], buf[1, 1])
        assert view[6, 1, 0] == buf[1, 1, 0]

    def test_tuple_slice_passthrough_inner(self):
        buf = np.arange(24.0).reshape(4, 6)
        view = GlobalView(buf, offset=2)
        assert np.array_equal(view[2:4, 1:3], buf[0:2, 1:3])

    def test_inplace_add_via_views(self):
        buf = np.ones((4, 2))
        view = GlobalView(buf, offset=0)
        view[0:4] = view[0:4] + 1.0
        assert np.all(buf == 2.0)

    def test_local_returns_buffer(self):
        buf = np.zeros(3)
        assert GlobalView(buf, 7).local() is buf

    def test_unsupported_key_type(self):
        view = GlobalView(np.zeros(4), offset=0)
        with pytest.raises(IndexError):
            view["x"]  # type: ignore[index]
