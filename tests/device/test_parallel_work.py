"""Device ops on the parallel backend: batching and the aliasing fallback.

Two kernels whose envs touch disjoint arrays may share a pool wave; a
pair aliasing the same array must be detected and executed inline, in
issue order — the non-interference rule at the device layer.
"""

import numpy as np

from repro.device.device import Device
from repro.device.kernel import KernelSpec
from repro.sim.costmodel import CostModel
from repro.sim.resources import Resource
from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec
from repro.sim.trace import Trace
from repro.sim.executor import HostExecutor


def make_device(sim, device_id=0):
    spec = DeviceSpec(memory_bytes=1e9, iters_per_second=1e9,
                      kernel_launch_latency=0.0, kernel_issue_latency=0.0,
                      alloc_sync=True)
    link_spec = LinkSpec(bandwidth_bytes_per_s=1e9, per_call_latency=0.0)
    host = HostSpec(staging_bandwidth_bytes_per_s=1e12)
    link = Resource(sim, 1, name=f"link{device_id}")
    staging = Resource(sim, 1, name=f"st{device_id}")
    return Device(sim, device_id, spec, link, link_spec, staging, host,
                  CostModel(), Trace())


def attach_executor(sim, workers=2):
    ex = HostExecutor(workers)
    sim.set_executor(ex)
    return ex


def spawn(sim, gen):
    # device-op processes only register deferred work (like the OpenMP
    # layer's nowait tasks); mark them so resuming one doesn't flush
    proc = sim.process(gen)
    proc.work_safe = True
    return proc


class TestKernelPairs:
    def test_disjoint_kernels_share_a_wave(self, sim):
        ex = attach_executor(sim)
        d0 = make_device(sim, device_id=0)
        d1 = make_device(sim, device_id=1)
        a, b = np.zeros(8), np.zeros(8)
        ka = KernelSpec("ka", lambda lo, hi, env: env["x"].__iadd__(1.0))
        kb = KernelSpec("kb", lambda lo, hi, env: env["x"].__iadd__(2.0))
        spawn(sim, d0.launch_kernel(ka, 0, 8, {"x": a}))
        spawn(sim, d1.launch_kernel(kb, 0, 8, {"x": b}))
        sim.run()
        assert np.all(a == 1.0) and np.all(b == 2.0)
        assert ex.parallel_ops == 2
        assert ex.inline_fallbacks == 0

    def test_aliasing_kernel_pair_forced_inline_in_issue_order(self, sim):
        ex = attach_executor(sim)
        d0 = make_device(sim, device_id=0)
        d1 = make_device(sim, device_id=1)
        shared = np.zeros(8)
        add = KernelSpec("add", lambda lo, hi, env: env["x"].__iadd__(1.0))
        dbl = KernelSpec("dbl", lambda lo, hi, env: env["x"].__imul__(2.0))
        spawn(sim, d0.launch_kernel(add, 0, 8, {"x": shared}))
        spawn(sim, d1.launch_kernel(dbl, 0, 8, {"x": shared}))
        sim.run()
        # issue order preserved: (0 + 1) * 2, never 0 * 2 + 1 racing
        assert np.all(shared == 2.0)
        assert ex.parallel_ops == 0
        assert ex.inline_fallbacks >= 1

    def test_overlapping_copyback_pair_forced_inline(self, sim):
        ex = attach_executor(sim)
        d0 = make_device(sim, device_id=0)
        d1 = make_device(sim, device_id=1)
        host = np.zeros(8)
        src0, src1 = np.full(6, 1.0), np.full(6, 2.0)
        # D2H write-backs overlapping on host[2:6]: must apply in order
        spawn(sim, d0.copy_d2h(src0, slice(0, 6), host, slice(0, 6)))
        spawn(sim, d1.copy_d2h(src1, slice(0, 6), host, slice(2, 8)))
        sim.run()
        assert np.all(host[0:2] == 1.0)
        assert np.all(host[2:8] == 2.0)

    def test_serial_and_parallel_kernel_results_match(self, sim):
        # same program twice: no executor vs workers=2
        def run(with_pool):
            import repro.sim.engine as eng
            s = eng.Simulator()
            if with_pool:
                attach_executor(s)
            dev0 = make_device(s, device_id=0)
            dev1 = make_device(s, device_id=1)
            a, b = np.arange(8.0), np.arange(8.0)
            k = KernelSpec("k", lambda lo, hi, env: env["x"].__imul__(3.0))
            spawn(s, dev0.launch_kernel(k, 0, 8, {"x": a}))
            spawn(s, dev1.launch_kernel(k, 0, 8, {"x": b}))
            s.run()
            return a, b

        (a1, b1), (a2, b2) = run(False), run(True)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
