"""Unit tests for the device memory allocator."""

import numpy as np
import pytest

from repro.device.memory import DeviceAllocator
from repro.util.errors import OmpAllocationError


class TestAllocate:
    def test_functional_array_shape_dtype(self):
        alloc = DeviceAllocator(1e6).allocate((4, 5), dtype=np.float32)
        assert alloc.array.shape == (4, 5)
        assert alloc.array.dtype == np.float32
        assert alloc.nbytes == 4 * 5 * 4

    def test_default_virtual_is_functional_size(self):
        allocator = DeviceAllocator(1e6)
        alloc = allocator.allocate((10,), dtype=np.float64)
        assert alloc.virtual_bytes == 80
        assert allocator.used_bytes == 80

    def test_virtual_bytes_override(self):
        allocator = DeviceAllocator(1e9)
        allocator.allocate((10,), virtual_bytes=5e8)
        assert allocator.used_bytes == 5e8
        assert allocator.free_bytes == pytest.approx(5e8)

    def test_capacity_exceeded_raises_with_metadata(self):
        allocator = DeviceAllocator(100.0, device_id=3)
        with pytest.raises(OmpAllocationError) as exc:
            allocator.allocate((4,), virtual_bytes=150.0, label="buf")
        assert exc.value.requested == 150.0
        assert exc.value.capacity == 100.0
        assert not exc.value.can_ever_fit
        assert "device 3" in str(exc.value)

    def test_transient_exhaustion_can_ever_fit(self):
        allocator = DeviceAllocator(100.0)
        allocator.allocate((1,), virtual_bytes=60.0)
        with pytest.raises(OmpAllocationError) as exc:
            allocator.allocate((1,), virtual_bytes=60.0)
        assert exc.value.can_ever_fit

    def test_negative_virtual_rejected(self):
        with pytest.raises(ValueError):
            DeviceAllocator(100.0).allocate((1,), virtual_bytes=-1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeviceAllocator(0)


class TestFree:
    def test_free_returns_capacity(self):
        allocator = DeviceAllocator(100.0)
        a = allocator.allocate((1,), virtual_bytes=70.0)
        allocator.free(a)
        assert allocator.used_bytes == 0
        allocator.allocate((1,), virtual_bytes=90.0)  # fits again

    def test_double_free_rejected(self):
        allocator = DeviceAllocator(100.0)
        a = allocator.allocate((1,), virtual_bytes=10.0)
        allocator.free(a)
        with pytest.raises(OmpAllocationError, match="double free"):
            allocator.free(a)

    def test_live_allocation_count(self):
        allocator = DeviceAllocator(1000.0)
        allocs = [allocator.allocate((1,), virtual_bytes=10.0)
                  for _ in range(3)]
        assert allocator.live_allocations == 3
        allocator.free(allocs[1])
        assert allocator.live_allocations == 2


class TestPeak:
    def test_peak_tracks_high_watermark(self):
        allocator = DeviceAllocator(100.0)
        a = allocator.allocate((1,), virtual_bytes=80.0)
        allocator.free(a)
        allocator.allocate((1,), virtual_bytes=30.0)
        assert allocator.peak_bytes == 80.0
        assert allocator.used_bytes == 30.0
