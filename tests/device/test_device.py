"""Unit tests for the simulated device: copies, kernels, queue semantics."""

import numpy as np
import pytest

from repro.device.device import Device
from repro.device.kernel import KernelSpec, LaunchConfig
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec
from repro.sim.trace import Trace, TraceAnalysis


def make_device(sim, bw=1e9, staging_bw=1e12, latency=0.0, device_id=0,
                link=None, staging=None, iters=1e9,
                kernel_issue_latency=0.0, alloc_sync=True):
    spec = DeviceSpec(memory_bytes=1e9, iters_per_second=iters,
                      kernel_launch_latency=0.0,
                      kernel_issue_latency=kernel_issue_latency,
                      alloc_sync=alloc_sync)
    link_spec = LinkSpec(bandwidth_bytes_per_s=bw, per_call_latency=latency)
    host = HostSpec(staging_bandwidth_bytes_per_s=staging_bw)
    link = link if link is not None else Resource(sim, 1, name="link")
    staging = staging if staging is not None else Resource(sim, 1, name="st")
    trace = Trace()
    dev = Device(sim, device_id, spec, link, link_spec, staging, host,
                 CostModel(), trace)
    return dev


class TestCopies:
    def test_h2d_functional_and_timed(self, sim):
        dev = make_device(sim, bw=1e6)
        src = np.arange(100.0)
        dst = np.zeros(100)
        sim.run(sim.process(dev.copy_h2d(src, slice(0, 100),
                                         dst, slice(0, 100))))
        assert np.array_equal(dst, src)
        # 800 bytes at 1e6 B/s wire
        assert sim.now == pytest.approx(800 / 1e6, rel=1e-3)
        assert dev.memcpy_calls == 1
        assert dev.h2d_bytes == 800

    def test_d2h_functional(self, sim):
        dev = make_device(sim)
        src = np.arange(10.0)
        dst = np.zeros(10)
        sim.run(sim.process(dev.copy_d2h(src, slice(2, 5),
                                         dst, slice(0, 3))))
        assert np.array_equal(dst[:3], src[2:5])
        assert dev.d2h_bytes == 24

    def test_h2d_snapshot_at_staging(self, sim):
        """The host value captured is the one present when staging runs,
        not when the wire completes."""
        dev = make_device(sim, bw=1.0, staging_bw=1e12)  # very slow wire
        src = np.array([1.0])
        dst = np.zeros(1)
        sim.process(dev.copy_h2d(src, slice(0, 1), dst, slice(0, 1)))

        def mutate():
            yield sim.timeout(1.0)  # during the 8-second wire
            src[0] = 99.0

        sim.process(mutate())
        sim.run()
        assert dst[0] == 1.0

    def test_batch_pays_latency_once(self, sim):
        dev_a = make_device(sim, bw=1e9, latency=1.0)
        pairs = [(np.zeros(10), slice(0, 10), np.zeros(10), slice(0, 10))
                 for _ in range(4)]
        sim.run(sim.process(dev_a.copy_h2d_batch(pairs)))
        t_batch = sim.now

        sim2 = Simulator()
        dev_b = make_device(sim2, bw=1e9, latency=1.0)

        def individually():
            for src, sk, dst, dk in pairs:
                yield from dev_b.copy_h2d(src, sk, dst, dk)

        sim2.run(sim2.process(individually()))
        assert t_batch == pytest.approx(1.0, rel=1e-3)
        assert sim2.now == pytest.approx(4.0, rel=1e-3)

    def test_empty_batch_noop(self, sim):
        dev = make_device(sim)
        sim.run(sim.process(dev.copy_h2d_batch([])))
        assert dev.memcpy_calls == 0

    def test_trace_records_wire_meta(self, sim):
        dev = make_device(sim, bw=1e6)
        src, dst = np.zeros(100), np.zeros(100)
        sim.run(sim.process(dev.copy_h2d(src, slice(0, 100),
                                         dst, slice(0, 100))))
        ev = dev.trace.events[0]
        assert ev.category == "h2d"
        assert "wire_start" in ev.meta and "wire_end" in ev.meta
        assert ev.meta["wire_end"] - ev.meta["wire_start"] == \
            pytest.approx(800 / 1e6, rel=1e-3)


class TestSharedLink:
    def test_same_link_serializes_wire(self):
        sim = Simulator()
        link = Resource(sim, 1, name="link")
        staging = Resource(sim, 1, name="st")
        d0 = make_device(sim, bw=1e6, device_id=0, link=link, staging=staging)
        d1 = make_device(sim, bw=1e6, device_id=1, link=link, staging=staging)
        src, a, b = np.zeros(1000), np.zeros(1000), np.zeros(1000)
        sim.process(d0.copy_h2d(src, slice(0, 1000), a, slice(0, 1000)))
        sim.process(d1.copy_h2d(src, slice(0, 1000), b, slice(0, 1000)))
        sim.run()
        # two 8 KB transfers at 1 MB/s on one wire = 16 ms total
        assert sim.now == pytest.approx(0.016, rel=1e-2)
        ta0 = TraceAnalysis(d0.trace)
        assert ta0.transfer_transfer_overlap([0, 1]) == 0.0

    def test_staging_pipeline_reaches_wire_speed(self):
        """Many back-to-back copies stream at wire speed: the next copy's
        staging overlaps the current one's wire time."""
        sim = Simulator()
        dev = make_device(sim, bw=1e6, staging_bw=1.5e6)

        def stream():
            src = np.zeros(1000)
            dst = np.zeros(1000)
            procs = [sim.process(dev.copy_h2d(src, slice(0, 1000),
                                              dst, slice(0, 1000)))
                     for _ in range(10)]
            yield sim.all_of(procs)

        sim.run(sim.process(stream()))
        wire_only = 10 * 8000 / 1e6
        first_stage_bubble = 8000 / 1.5e6
        assert sim.now == pytest.approx(wire_only + first_stage_bubble,
                                        rel=1e-3)


class TestKernels:
    def test_kernel_executes_and_charges(self, sim):
        dev = make_device(sim, iters=100.0)
        hits = []

        def body(lo, hi, env):
            hits.append((lo, hi, env["x"]))

        spec = KernelSpec("k", body, scalars={"x": 7})
        sim.run(sim.process(dev.launch_kernel(spec, 2, 12, {})))
        assert hits == [(2, 12, 7)]
        assert sim.now == pytest.approx(10 / 100.0)
        assert dev.kernels_launched == 1

    def test_env_overrides_scalars(self, sim):
        dev = make_device(sim)
        seen = {}

        def body(lo, hi, env):
            seen.update(env)

        spec = KernelSpec("k", body, scalars={"x": 1})
        sim.run(sim.process(dev.launch_kernel(spec, 0, 1, {"x": 2, "y": 3})))
        assert seen["x"] == 2 and seen["y"] == 3

    def test_kernel_iterations_override(self, sim):
        dev = make_device(sim, iters=1000.0)
        spec = KernelSpec("k", lambda lo, hi, env: None)
        sim.run(sim.process(dev.launch_kernel(spec, 0, 1, {},
                                              iterations=500)))
        assert sim.now == pytest.approx(0.5)

    def test_bad_range_rejected(self, sim):
        dev = make_device(sim)
        spec = KernelSpec("k", lambda lo, hi, env: None)
        with pytest.raises(ValueError):
            list(dev.launch_kernel(spec, 5, 2, {}))

    def test_queue_serializes_kernel_after_copy(self, sim):
        """In-order queue: a kernel issued after a copy waits for it even
        though they use different physical units."""
        dev = make_device(sim, bw=1e6)
        src, dst = np.zeros(1000), np.zeros(1000)
        order = []
        sim.process(dev.copy_h2d(src, slice(0, 1000), dst, slice(0, 1000)))
        spec = KernelSpec("k", lambda lo, hi, env: order.append(sim.now))
        sim.process(dev.launch_kernel(spec, 0, 1, {}))
        sim.run()
        assert order[0] >= 8000 / 1e6


class TestSynchronize:
    def test_synchronize_waits_for_queued_work(self, sim):
        dev = make_device(sim, iters=1.0)
        spec = KernelSpec("slow", lambda lo, hi, env: None)
        sim.process(dev.launch_kernel(spec, 0, 5, {}))  # 5 seconds

        def syncer():
            yield from dev.synchronize()
            return sim.now

        assert sim.run(sim.process(syncer())) == pytest.approx(5.0)


class TestBackpressure:
    def test_wait_for_free_wakes_on_free(self, sim):
        dev = make_device(sim)
        alloc = dev.allocate((10,))
        woken = []

        def waiter():
            yield dev.wait_for_free()
            woken.append(sim.now)

        sim.process(waiter())
        sim.schedule_call(2.0, lambda: dev.free(alloc))
        sim.run()
        assert woken == [2.0]
