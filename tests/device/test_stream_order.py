"""Unit tests for the issue-order stream semantics (DESIGN.md §4.3).

The device queue is a CUDA-stream analogue: an operation's position is
fixed when it is *issued*, and host-side latencies decide who issues first.
These are the micro-behaviours behind the paper's Fig. 4 interleaving.
"""

import numpy as np
import pytest

from repro.device.device import Device
from repro.device.kernel import KernelSpec
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec
from repro.sim.trace import Trace


def make_device(sim, issue_latency=0.0, bw=1e6, iters=1e3):
    spec = DeviceSpec(memory_bytes=1e9, iters_per_second=iters,
                      kernel_launch_latency=0.0,
                      kernel_issue_latency=issue_latency)
    dev = Device(sim, 0, spec, Resource(sim, 1, name="link"),
                 LinkSpec(bandwidth_bytes_per_s=bw, per_call_latency=0.0),
                 Resource(sim, 1, name="staging"), HostSpec(1e12),
                 CostModel(), Trace())
    return dev


def order_of(trace):
    return [(e.category, e.name) for e in
            sorted(trace.events, key=lambda e: e.start)]


class TestIssueOrder:
    def test_copy_issued_first_executes_first(self):
        sim = Simulator()
        dev = make_device(sim)
        src, dst = np.zeros(1000), np.zeros(1000)
        spec = KernelSpec("k", lambda lo, hi, env: None)
        sim.process(dev.copy_h2d(src, slice(0, 1000), dst, slice(0, 1000),
                                 name="first-copy"))
        sim.process(dev.launch_kernel(spec, 0, 100, {}))
        sim.run()
        assert order_of(dev.trace) == [("h2d", "first-copy"), ("kernel", "k")]

    def test_kernel_dispatch_latency_loses_the_race(self):
        """Issued at the same instant, a memcpy beats a kernel whose
        dispatch costs 300 us — the Fig. 4 sandwich mechanism."""
        sim = Simulator()
        dev = make_device(sim, issue_latency=3e-4)
        src, dst = np.zeros(1000), np.zeros(1000)
        spec = KernelSpec("k", lambda lo, hi, env: None)
        # kernel created FIRST, copy second — the copy still wins
        sim.process(dev.launch_kernel(spec, 0, 100, {}))
        sim.process(dev.copy_h2d(src, slice(0, 1000), dst, slice(0, 1000),
                                 name="racing-copy"))
        sim.run()
        assert order_of(dev.trace) == [("h2d", "racing-copy"),
                                       ("kernel", "k")]

    def test_zero_latency_kernel_wins_by_creation_order(self):
        sim = Simulator()
        dev = make_device(sim, issue_latency=0.0)
        src, dst = np.zeros(1000), np.zeros(1000)
        spec = KernelSpec("k", lambda lo, hi, env: None)
        sim.process(dev.launch_kernel(spec, 0, 100, {}))
        sim.process(dev.copy_h2d(src, slice(0, 1000), dst, slice(0, 1000),
                                 name="late-copy"))
        sim.run()
        assert order_of(dev.trace) == [("kernel", "k"),
                                       ("h2d", "late-copy")]

    def test_stream_never_reorders_after_issue(self):
        """Five copies issued in order complete in order even though their
        staging times differ (slots were claimed at issue)."""
        sim = Simulator()
        dev = make_device(sim, bw=1e9)
        done = []

        def issue(i, size):
            src, dst = np.zeros(size), np.zeros(size)

            def gen():
                yield from dev.copy_h2d(src, slice(0, size),
                                        dst, slice(0, size), name=f"c{i}")
                done.append(i)

            sim.process(gen())

        for i, size in enumerate([10_000, 10, 5_000, 10, 1]):
            issue(i, size)
        sim.run()
        assert done == [0, 1, 2, 3, 4]
