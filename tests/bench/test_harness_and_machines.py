"""Unit tests for the benchmark harness and machine calibration module."""

import pytest

from repro.bench import harness, machines
from repro.sim.costmodel import CostModel


class TestMachines:
    def test_paper_machine_shape(self):
        topo, cm = machines.paper_machine(4, n_functional=96)
        assert topo.num_devices == 4
        assert len(topo.sockets) == 2
        assert isinstance(cm, CostModel)
        assert cm.scale == pytest.approx((1200 / 96) ** 3)

    def test_two_gpu_machine_single_socket(self):
        topo, _ = machines.paper_machine(2)
        assert len(topo.sockets) == 1  # devices 0,1 share the socket

    def test_calibration_constants_wired(self):
        topo, _ = machines.paper_machine(1)
        assert topo.link_specs[0].bandwidth_bytes_per_s == \
            machines.LINK_BANDWIDTH
        assert topo.host_spec.staging_bandwidth_bytes_per_s == \
            machines.STAGING_BANDWIDTH
        assert topo.device_specs[0].iters_per_second == \
            machines.ITERS_PER_SECOND

    def test_paper_devices_order(self):
        assert machines.paper_devices(4) == [1, 0, 3, 2]
        assert machines.paper_devices(2) == [1, 0]
        assert machines.paper_devices(1) == [0]

    def test_paper_tables_complete(self):
        assert len(machines.PAPER_TABLE1) == 4
        assert len(machines.PAPER_TABLE2) == 6
        assert machines.PAPER_TABLE1[("target", 1)] == pytest.approx(1060.231)
        assert machines.PAPER_TABLE2[("double_buffering", 4)] == \
            pytest.approx(531.176)

    def test_paper_somier_config(self):
        cfg = machines.paper_somier_config(n_functional=48, steps=5)
        assert cfg.n == 48 and cfg.steps == 5


class TestHarness:
    @pytest.fixture(scope="class")
    def table1(self):
        # tiny: 1 step, small grid — exercises the full pipeline quickly
        return harness.run_table1(n_functional=24, steps=1)

    def test_run_table1_rows(self, table1):
        assert [(e.impl, e.gpus) for e in table1] == [
            ("target", 1), ("one_buffer", 1), ("one_buffer", 2),
            ("one_buffer", 4)]
        for e in table1:
            assert e.seconds > 0
            assert e.paper_seconds is not None
            assert e.paper_ratio == pytest.approx(
                e.seconds / e.paper_seconds)

    def test_speedup_table(self, table1):
        speedups = harness.speedup_table(table1)
        assert speedups[("target", 1)] == pytest.approx(1.0)
        assert speedups[("one_buffer", 4)] > speedups[("one_buffer", 2)]

    def test_comparison_rows_format(self, table1):
        rows = harness.comparison_rows(table1)
        assert len(rows) == 4
        impl, gpus, sim, paper, ratio = rows[0]
        assert impl == "target" and gpus == 1
        assert sim.endswith("s") and paper.endswith("s")
        float(ratio)  # parseable

    def test_format_experiments_includes_title(self, table1):
        text = harness.format_experiments(table1, "My Table")
        assert text.startswith("My Table")
        assert "sim/paper" in text

    def test_experiment_without_paper_value(self, table1):
        exp = harness.Experiment(impl="x", gpus=1,
                                 result=table1[0].result)
        assert exp.paper_ratio is None
        rows = harness.comparison_rows([exp])
        assert rows[0][3] == "-" and rows[0][4] == "-"
