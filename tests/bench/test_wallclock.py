"""Smoke tests for the wall-clock track (tiny sizes; numbers not asserted)."""

from repro.bench.wallclock import end_to_end, workers_sweep


class TestEndToEnd:
    def test_serial_record_shape(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        r = end_to_end(True, n_functional=24, steps=1)
        assert r["workers"] == 1
        assert r["wall_s"] > 0
        assert "executor_epochs" not in r

    def test_parallel_record_carries_executor_stats(self, monkeypatch):
        # Pin the small-op floor off so pooling engages even on a
        # single-core container (where the default floor inlines all ops).
        monkeypatch.setenv("REPRO_EXECUTOR_MIN_BYTES", "0")
        r = end_to_end(True, n_functional=24, steps=1, workers=2)
        assert r["workers"] == 2
        assert r["executor_epochs"] > 0
        assert r["executor_parallel_ops"] > 0

    def test_parallel_record_inline_floor(self, monkeypatch):
        # With an effectively infinite floor every op runs inline on the
        # submitting thread; the record reports the inline counters.
        monkeypatch.setenv("REPRO_EXECUTOR_MIN_BYTES", str(1 << 62))
        r = end_to_end(True, n_functional=24, steps=1, workers=2)
        assert r["workers"] == 2
        assert r["executor_parallel_ops"] == 0
        assert r["executor_inline_small_ops"] > 0


class TestWorkersSweep:
    def test_sweep_structure_and_speedups(self):
        s = workers_sweep((1, 2), n_functional=24, steps=1)
        assert [r["workers"] for r in s["runs"]] == [1, 2]
        assert s["runs"][0]["speedup_vs_1"] == 1.0
        assert s["cpu_count"] >= 1
        assert s["best_speedup"] > 0
