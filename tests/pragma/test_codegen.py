"""Unit tests for pragma codegen (lowering to the runtime)."""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.openmp import OpenMPRuntime, Var
from repro.pragma import parse_pragma
from repro.pragma.codegen import eval_expr, eval_int, execute_pragma
from repro.pragma import ast_nodes as A
from repro.sim.topology import cte_power_node, uniform_node
from repro.spread.sections import SpreadExpr
from repro.util.errors import OmpSemaError


def make_rt(n=4):
    return OpenMPRuntime(topology=cte_power_node(n, memory_bytes=1e9))


def stencil():
    def body(lo, hi, env):
        a, b = env["A"], env["B"]
        b[lo:hi] = a[lo - 1:hi - 1] + a[lo:hi] + a[lo + 1:hi + 1]

    return KernelSpec("stencil", body)


class TestEvalExpr:
    def get(self, text):
        return parse_pragma(f"omp target device({text})").find(
            A.DeviceClause).device

    def test_arithmetic(self):
        assert eval_expr(self.get("2*3+1"), {}) == 7

    def test_symbols_resolved(self):
        assert eval_expr(self.get("N-2"), {"N": 14}) == 12

    def test_numpy_int_symbol(self):
        assert eval_expr(self.get("N"), {"N": np.int32(5)}) == 5

    def test_spread_symbols_build_affine_exprs(self):
        expr = eval_expr(self.get("omp_spread_start - 1"), {})
        assert isinstance(expr, SpreadExpr)
        assert expr.evaluate(5, 0) == 4

    def test_undefined_symbol(self):
        with pytest.raises(OmpSemaError, match="undefined identifier"):
            eval_expr(self.get("M"), {})

    def test_array_in_scalar_position_rejected(self):
        with pytest.raises(OmpSemaError, match="integer scalar"):
            eval_expr(self.get("A"), {"A": Var("A", np.zeros(3))})

    def test_nonaffine_product_rejected(self):
        with pytest.raises(OmpSemaError, match="affine"):
            eval_expr(self.get("omp_spread_start*omp_spread_size"), {})

    def test_eval_int_rejects_symbolic(self):
        with pytest.raises(OmpSemaError, match="integer expression"):
            eval_int(self.get("omp_spread_size"), {}, "chunk")


class TestExecutePragma:
    def test_listing_4_end_to_end(self):
        n = 14
        rt = make_rt()
        A, B = np.arange(float(n)), np.zeros(n)
        symbols = {"A": Var("A", A), "B": Var("B", B), "N": n}

        def program(omp):
            yield from execute_pragma(
                omp,
                "omp target spread teams distribute parallel for "
                "devices(2,0,1) spread_schedule(static, 4) num_teams(2) "
                "map(to: A[omp_spread_start-1:omp_spread_size+2]) "
                "map(from: B[omp_spread_start:omp_spread_size])",
                symbols, body=stencil(), loop=(1, n - 1))

        rt.run(program)
        expect = np.zeros(n)
        expect[1:n - 1] = A[0:n - 2] + A[1:n - 1] + A[2:n]
        assert np.array_equal(B, expect)

    def test_enter_compute_exit_flow(self):
        n = 26
        rt = make_rt()
        A = np.arange(float(n))
        symbols = {"A": Var("A", A), "N": n}

        def plus(lo, hi, env):
            env["A"][lo:hi] = env["A"][lo:hi] + 1

        def program(omp):
            yield from execute_pragma(
                omp,
                "omp target enter data spread devices(0,1) range(0:N) "
                "chunk_size(13) map(to: A[omp_spread_start:omp_spread_size])",
                symbols)
            yield from execute_pragma(
                omp,
                "omp target spread devices(0,1) "
                "spread_schedule(static, 13) "
                "map(to: A[omp_spread_start:omp_spread_size])",
                symbols, body=KernelSpec("plus", plus), loop=(0, n))
            yield from execute_pragma(
                omp,
                "omp target exit data spread devices(0,1) range(0:N) "
                "chunk_size(13) "
                "map(from: A[omp_spread_start:omp_spread_size])",
                symbols)

        rt.run(program)
        assert np.array_equal(A, np.arange(float(n)) + 1)

    def test_single_device_target_with_device_expr(self):
        n = 10
        rt = make_rt()
        A, B = np.arange(float(n)), np.zeros(n)
        symbols = {"A": Var("A", A), "B": Var("B", B), "d": 1}

        def program(omp):
            yield from execute_pragma(
                omp,
                "omp target teams distribute parallel for device(d) "
                "map(to: A) map(from: B[1:8])",
                symbols, body=stencil(), loop=(1, n - 1))

        rt.run(program)
        assert rt.devices[1].kernels_launched == 1

    def test_update_pragma(self):
        n = 8
        rt = make_rt(1)
        A = np.arange(float(n))
        symbols = {"A": Var("A", A), "N": n}

        def program(omp):
            yield from execute_pragma(
                omp, "omp target enter data device(0) map(to: A)", symbols)
            A[:] = 5.0
            yield from execute_pragma(
                omp, "omp target update device(0) to(A[0:N])", symbols)
            yield from execute_pragma(
                omp, "omp target exit data device(0) map(from: A)", symbols)

        rt.run(program)
        assert np.all(A == 5.0)

    def test_structured_data_region_object_returned(self):
        rt = make_rt(1)
        A = np.arange(4.0)
        symbols = {"A": Var("A", A)}

        def program(omp):
            region = yield from execute_pragma(
                omp, "omp target data device(0) map(tofrom: A)", symbols)
            yield from region.end()

        rt.run(program)
        assert rt.dataenvs[0].is_empty()

    def test_executable_without_loop_rejected(self):
        rt = make_rt()

        def program(omp):
            yield from execute_pragma(
                omp, "omp target spread devices(0)", {})

        with pytest.raises(OmpSemaError, match="must be a loop"):
            rt.run(program)

    def test_raw_ndarray_symbol_gets_helpful_error(self):
        rt = make_rt()

        def program(omp):
            yield from execute_pragma(
                omp, "omp target enter data device(0) map(to: A)",
                {"A": np.zeros(4)})

        with pytest.raises(OmpSemaError, match="wrap it in"):
            rt.run(program)

    def test_sema_runs_with_runtime_extensions(self):
        """A runtime with data_depend enabled accepts Listing 13."""
        from repro.spread import extensions as ext
        n = 8
        rt = make_rt(1)
        ext.enable(rt, data_depend=True)
        A = np.arange(float(n))
        symbols = {"A": Var("A", A), "N": n}

        def program(omp):
            yield from execute_pragma(
                omp,
                "omp target enter data spread devices(0) range(0:N) "
                "chunk_size(4) nowait "
                "map(to: A[omp_spread_start:omp_spread_size]) "
                "depend(out: A[omp_spread_start:omp_spread_size])",
                symbols)
            yield from omp.taskwait()

        rt.run(program)
