"""Unit tests for semantic checking of directives."""

import pytest

from repro.pragma.parser import parse_pragma
from repro.pragma.sema import check_directive
from repro.spread.extensions import Extensions
from repro.util.errors import OmpSemaError


def check(src, ext=None):
    check_directive(parse_pragma(src), extensions=ext)


def rejects(src, match, ext=None):
    with pytest.raises(OmpSemaError, match=match):
        check(src, ext=ext)


class TestClauseAdmissibility:
    def test_device_on_spread_rejected(self):
        rejects("omp target spread devices(0) device(1)", "not allowed")

    def test_devices_on_plain_target_rejected(self):
        rejects("omp target devices(0,1)", "not allowed")

    def test_num_teams_needs_combined_directive(self):
        rejects("omp target num_teams(2)", "not allowed")
        check("omp target teams distribute parallel for num_teams(2)")

    def test_range_only_on_data_spread(self):
        rejects("omp target spread devices(0) range(0:4)", "not allowed")

    def test_spread_schedule_not_on_data_spread(self):
        rejects("omp target data spread devices(0) range(0:4) chunk_size(2) "
                "spread_schedule(static, 2)", "not allowed")

    def test_duplicate_singleton_clause(self):
        rejects("omp target device(0) device(1)", "more than once")
        rejects("omp target spread devices(0) nowait nowait", "more than once")


class TestRequiredClauses:
    def test_spread_requires_devices(self):
        rejects("omp target spread", "devices")

    def test_data_spread_requires_range_and_chunk(self):
        rejects("omp target data spread devices(0) chunk_size(2)", "range")
        rejects("omp target data spread devices(0) range(0:4)", "chunk_size")
        check("omp target data spread devices(0) range(0:4) chunk_size(2)")

    def test_update_requires_motion(self):
        rejects("omp target update device(0)", "motion")

    def test_empty_devices_rejected(self):
        # devices() with no args fails in the parser as an expression error
        from repro.util.errors import OmpSyntaxError
        with pytest.raises(OmpSyntaxError):
            parse_pragma("omp target spread devices()")


class TestPaperRestrictions:
    def test_no_nowait_on_target_data_spread(self):
        rejects("omp target data spread devices(0) range(0:4) chunk_size(2) "
                "nowait", "not allowed")

    def test_no_depend_on_target_data_spread(self):
        rejects("omp target data spread devices(0) range(0:4) chunk_size(2) "
                "depend(in: A[0:4])", "not allowed")

    def test_depend_on_enter_data_spread_is_future_work(self):
        src = ("omp target enter data spread devices(0) range(0:4) "
               "chunk_size(2) map(to: A[0:2]) depend(out: A[0:2])")
        rejects(src, "future work")
        check(src, ext=Extensions(data_depend=True))

    def test_depend_on_update_spread_is_future_work(self):
        src = ("omp target update spread devices(0) range(0:4) "
               "chunk_size(2) to(A[0:2]) depend(in: A[0:2])")
        rejects(src, "future work")
        check(src, ext=Extensions(data_depend=True))

    def test_only_static_schedule(self):
        src = "omp target spread devices(0) spread_schedule(dynamic, 4)"
        rejects(src, "only 'static'")
        check(src, ext=Extensions(schedules=True))

    def test_unknown_schedule_kind_always_rejected(self):
        rejects("omp target spread devices(0) spread_schedule(guided, 4)",
                "unknown", ext=Extensions(schedules=True))


class TestMapTypes:
    def test_enter_accepts_to_alloc_only(self):
        check("omp target enter data device(0) map(to: A) map(alloc: B)")
        rejects("omp target enter data device(0) map(from: A)", "map type")
        rejects("omp target enter data device(0) map(tofrom: A)", "map type")

    def test_exit_accepts_from_release_delete(self):
        check("omp target exit data device(0) map(from: A) "
              "map(release: B) map(delete: C)")
        rejects("omp target exit data device(0) map(to: A)", "map type")

    def test_target_accepts_region_types(self):
        check("omp target map(to: A) map(from: B) map(tofrom: C) "
              "map(alloc: D)")
        rejects("omp target map(release: A)", "map type")


class TestSpreadSymbols:
    def test_allowed_in_spread_sections(self):
        check("omp target spread devices(0) "
              "map(to: A[omp_spread_start:omp_spread_size])")

    def test_rejected_in_non_spread_sections(self):
        rejects("omp target map(to: A[omp_spread_start:4])", "spread")

    def test_rejected_in_scalar_clauses(self):
        rejects("omp target spread devices(0) "
                "spread_schedule(static, omp_spread_size)",
                "array sections")
        rejects("omp target spread devices(omp_spread_start)",
                "devices clause")

    def test_rejected_in_range(self):
        rejects("omp target data spread devices(0) "
                "range(omp_spread_start:4) chunk_size(2)",
                "array sections")
