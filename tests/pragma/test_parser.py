"""Unit tests for the pragma parser."""

import pytest

from repro.pragma import ast_nodes as A
from repro.pragma.parser import parse_pragma
from repro.util.errors import OmpSyntaxError

_D = A.DirectiveKind


class TestDirectiveNames:
    @pytest.mark.parametrize("src,kind", [
        ("omp target", _D.TARGET),
        ("omp target teams distribute parallel for", _D.TARGET_TEAMS_DPF),
        ("omp target teams distribute parallel for simd",
         _D.TARGET_TEAMS_DPF),
        ("omp target data", _D.TARGET_DATA),
        ("omp target enter data", _D.TARGET_ENTER_DATA),
        ("omp target exit data", _D.TARGET_EXIT_DATA),
        ("omp target update", _D.TARGET_UPDATE),
        ("omp target spread", _D.TARGET_SPREAD),
        ("omp target spread teams distribute parallel for",
         _D.TARGET_SPREAD_TEAMS_DPF),
        ("omp target data spread", _D.TARGET_DATA_SPREAD),
        ("omp target enter data spread", _D.TARGET_ENTER_DATA_SPREAD),
        ("omp target exit data spread", _D.TARGET_EXIT_DATA_SPREAD),
        ("omp target update spread", _D.TARGET_UPDATE_SPREAD),
    ])
    def test_all_kinds(self, src, kind):
        assert parse_pragma(src).kind is kind

    def test_pragma_prefix_tolerated(self):
        assert parse_pragma("#pragma omp target").kind is _D.TARGET
        assert parse_pragma("pragma omp target").kind is _D.TARGET

    def test_kind_classification(self):
        assert _D.TARGET_SPREAD.is_spread and _D.TARGET_SPREAD.is_executable
        assert _D.TARGET_ENTER_DATA_SPREAD.is_data
        assert not _D.TARGET.is_spread

    def test_missing_omp_rejected(self):
        with pytest.raises(OmpSyntaxError):
            parse_pragma("target spread")

    def test_incomplete_combined_rejected(self):
        with pytest.raises(OmpSyntaxError, match="distribute"):
            parse_pragma("omp target teams parallel for")


class TestClauses:
    def test_devices_list(self):
        d = parse_pragma("omp target spread devices(2,0,1)")
        clause = d.find(A.DevicesClause)
        assert [e.value for e in clause.devices] == [2, 0, 1]

    def test_device_expr(self):
        d = parse_pragma("omp target device(1+2)")
        clause = d.find(A.DeviceClause)
        assert isinstance(clause.device, A.BinOp)

    def test_spread_schedule(self):
        d = parse_pragma("omp target spread devices(0) "
                         "spread_schedule(static, 4)")
        clause = d.find(A.SpreadScheduleClause)
        assert clause.kind == "static"
        assert clause.chunk == A.Num(4)

    def test_spread_schedule_without_chunk(self):
        d = parse_pragma("omp target spread devices(0) "
                         "spread_schedule(static)")
        assert d.find(A.SpreadScheduleClause).chunk is None

    def test_range_and_chunk_size(self):
        d = parse_pragma("omp target data spread devices(0) range(1:12) "
                         "chunk_size(4)")
        rng = d.find(A.RangeClause)
        assert rng.start == A.Num(1) and rng.length == A.Num(12)
        assert d.find(A.ChunkSizeClause).chunk == A.Num(4)

    def test_map_with_type_and_sections(self):
        d = parse_pragma(
            "omp target enter data spread devices(0) range(1:12) "
            "chunk_size(4) "
            "map(to: A[omp_spread_start-1:omp_spread_size+2], B[0:4])")
        m = d.find(A.MapClauseNode)
        assert m.map_type == "to"
        assert [s.name for s in m.items] == ["A", "B"]
        assert isinstance(m.items[0].start, A.BinOp)

    def test_map_default_tofrom(self):
        d = parse_pragma("omp target map(A[0:4])")
        assert d.find(A.MapClauseNode).map_type == "tofrom"

    def test_map_whole_array(self):
        d = parse_pragma("omp target map(to: A)")
        item = d.find(A.MapClauseNode).items[0]
        assert item.whole_array

    def test_update_motion(self):
        d = parse_pragma("omp target update to(A[0:4]) from(B[1:3])")
        motions = d.find_all(A.MotionClause)
        assert {m.direction for m in motions} == {"to", "from"}

    def test_depend(self):
        d = parse_pragma("omp target spread devices(0) "
                         "depend(out: B[omp_spread_start:omp_spread_size])")
        dep = d.find(A.DependClause)
        assert dep.kind == "out"
        assert dep.items[0].name == "B"

    def test_depend_bad_kind(self):
        with pytest.raises(OmpSyntaxError, match="dependence kind"):
            parse_pragma("omp target depend(onto: A[0:1])")

    def test_nowait_num_teams_thread_limit(self):
        d = parse_pragma("omp target teams distribute parallel for "
                         "num_teams(2) thread_limit(64) nowait")
        assert d.find(A.NowaitClause) is not None
        assert d.find(A.NumTeamsClause).value == A.Num(2)
        assert d.find(A.ThreadLimitClause).value == A.Num(64)

    def test_unknown_clause(self):
        with pytest.raises(OmpSyntaxError, match="unknown clause"):
            parse_pragma("omp target foobar(3)")


class TestExpressions:
    def get_expr(self, text):
        d = parse_pragma(f"omp target device({text})")
        return d.find(A.DeviceClause).device

    def test_precedence_mul_over_add(self):
        expr = self.get_expr("1+2*3")
        assert isinstance(expr, A.BinOp) and expr.op == "+"
        assert isinstance(expr.right, A.BinOp) and expr.right.op == "*"

    def test_parentheses(self):
        expr = self.get_expr("(1+2)*3")
        assert expr.op == "*"
        assert isinstance(expr.left, A.BinOp) and expr.left.op == "+"

    def test_unary_minus(self):
        expr = self.get_expr("-N")
        assert isinstance(expr, A.BinOp) and expr.op == "-"
        assert expr.left == A.Num(0)

    def test_idents_collected(self):
        expr = self.get_expr("N*M - omp_spread_start")
        assert expr.idents() == {"N", "M"}

    def test_left_associative_subtraction(self):
        expr = self.get_expr("10-3-2")
        # (10-3)-2
        assert expr.op == "-" and isinstance(expr.left, A.BinOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(OmpSyntaxError):
            parse_pragma("omp target device(1))")


class TestListingsVerbatim:
    def test_listing_3(self):
        src = (r"omp target spread devices(2,0,1) "
               r"spread_schedule(static, 4) "
               r"map(to: A[omp_spread_start-1:omp_spread_size+2]) "
               r"map(from:B[omp_spread_start :omp_spread_size ])")
        d = parse_pragma(src)
        assert d.kind is _D.TARGET_SPREAD
        assert len(d.find_all(A.MapClauseNode)) == 2

    def test_listing_5(self):
        src = ("omp target data spread devices(2,0,1) range(1:12) "
               "chunk_size(4) "
               "map(tofrom:A[omp_spread_start-1:omp_spread_size+2], "
               "B[omp_spread_start:omp_spread_size])")
        d = parse_pragma(src)
        assert d.kind is _D.TARGET_DATA_SPREAD
        assert len(d.find(A.MapClauseNode).items) == 2

    def test_listing_7(self):
        src = ("omp target update spread devices(2,0,1) range(1:12) "
               "chunk_size(4) nowait "
               "to( A[omp_spread_start-1:omp_spread_size+2]) "
               "from(B[omp_spread_start :omp_spread_size ])")
        d = parse_pragma(src)
        assert d.kind is _D.TARGET_UPDATE_SPREAD
        assert len(d.find_all(A.MotionClause)) == 2
