"""Unit tests for the pragma lexer."""

import pytest

from repro.pragma.lexer import Token, TokenKind, tokenize
from repro.util.errors import OmpSyntaxError


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


class TestBasics:
    def test_directive_words(self):
        toks = tokenize("omp target spread")
        assert [t.text for t in toks[:-1]] == ["omp", "target", "spread"]
        assert toks[-1].kind is TokenKind.EOF

    def test_punctuation(self):
        assert kinds("( ) [ ] : , + - *")[:-1] == [
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.LBRACKET,
            TokenKind.RBRACKET, TokenKind.COLON, TokenKind.COMMA,
            TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR]

    def test_numbers(self):
        toks = tokenize("devices(2,0,1)")
        nums = [t.text for t in toks if t.kind is TokenKind.NUM]
        assert nums == ["2", "0", "1"]

    def test_identifiers_with_underscores(self):
        assert "omp_spread_start" in texts("A[omp_spread_start-1:4]")

    def test_positions_recorded(self):
        toks = tokenize("map(to: A)")
        m = toks[0]
        assert m.text == "map" and m.pos == 0
        a = [t for t in toks if t.text == "A"][0]
        assert a.pos == 8

    def test_line_continuations_ignored(self):
        src = "omp target \\\n  device(0) \\\n  map(to: A[0:4])"
        assert "device" in texts(src)

    def test_whitespace_insensitive(self):
        assert texts("a ( 1 )") == texts("a(1)")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(OmpSyntaxError, match="unexpected character"):
            tokenize("map(to: A@B)")

    def test_malformed_number(self):
        with pytest.raises(OmpSyntaxError, match="malformed number"):
            tokenize("device(2x)")

    def test_error_carries_caret(self):
        try:
            tokenize("abc $")
        except OmpSyntaxError as err:
            assert "^" in str(err)
        else:  # pragma: no cover
            pytest.fail("expected OmpSyntaxError")

    def test_empty_input_just_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokenKind.EOF
