"""The optional ``simd`` suffix of the combined directives is preserved."""

import pytest

from repro.pragma.parser import parse_pragma
from repro.pragma.unparse import unparse_directive


class TestSimdSuffix:
    def test_recorded_on_combined(self):
        d = parse_pragma("omp target teams distribute parallel for simd")
        assert d.simd_suffix

    def test_absent_by_default(self):
        d = parse_pragma("omp target teams distribute parallel for")
        assert not d.simd_suffix
        assert not parse_pragma("omp target").simd_suffix

    def test_recorded_on_spread_combined(self):
        d = parse_pragma(
            "omp target spread teams distribute parallel for simd "
            "devices(0)")
        assert d.simd_suffix

    def test_unparse_round_trips_suffix(self):
        src = ("omp target spread teams distribute parallel for simd "
               "devices(0, 1) nowait")
        d = parse_pragma(src)
        text = unparse_directive(d)
        assert " simd " in text + " "
        d2 = parse_pragma(text)
        assert d2.simd_suffix and d2.kind is d.kind

    def test_unparse_omits_when_absent(self):
        d = parse_pragma("omp target teams distribute parallel for")
        assert "simd" not in unparse_directive(d)
