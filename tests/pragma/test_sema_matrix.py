"""Exhaustive clause-admissibility matrix across all 12 directives.

For every (directive, clause) pair, sema must accept exactly the
combinations the reference table in ``docs/directives.md`` documents.
Parameterized into ~100 individual cases so a regression pinpoints the
exact broken pair.
"""

import pytest

from repro.pragma.parser import parse_pragma
from repro.pragma.sema import check_directive
from repro.spread.extensions import Extensions
from repro.util.errors import OmpSemaError

#: minimal valid clause text per clause name
CLAUSE_TEXT = {
    "device": "device(0)",
    "devices": "devices(0,1)",
    "spread_schedule": "spread_schedule(static, 4)",
    "range": "range(0:8)",
    "chunk_size": "chunk_size(2)",
    "map": "map(tofrom: A[0:4])",
    "to": "to(A[0:4])",
    "from": "from(A[0:4])",
    "depend": "depend(in: A[0:4])",
    "nowait": "nowait",
    "num_teams": "num_teams(2)",
    "thread_limit": "thread_limit(8)",
}

#: required boilerplate so each directive parses/validates on its own
BOILERPLATE = {
    "target": "",
    "target teams distribute parallel for": "",
    "target data": "map(to: A[0:4])",
    "target enter data": "map(to: A[0:4])",
    "target exit data": "map(from: A[0:4])",
    "target update": "to(A[0:4])",
    "target spread": "devices(0,1)",
    "target spread teams distribute parallel for": "devices(0,1)",
    "target data spread": "devices(0,1) range(0:8) chunk_size(2)",
    "target enter data spread": "devices(0,1) range(0:8) chunk_size(2)",
    "target exit data spread":
        "devices(0,1) range(0:8) chunk_size(2) map(from: A[0:4])",
    "target update spread":
        "devices(0,1) range(0:8) chunk_size(2) to(A[0:4])",
}

#: clause -> directives where it is ALLOWED (everything else must reject)
ALLOWED = {
    "device": {"target", "target teams distribute parallel for",
               "target data", "target enter data", "target exit data",
               "target update"},
    "devices": {"target spread",
                "target spread teams distribute parallel for",
                "target data spread", "target enter data spread",
                "target exit data spread", "target update spread"},
    "spread_schedule": {"target spread",
                        "target spread teams distribute parallel for"},
    "range": {"target data spread", "target enter data spread",
              "target exit data spread", "target update spread"},
    "chunk_size": {"target data spread", "target enter data spread",
                   "target exit data spread", "target update spread"},
    "nowait": {"target", "target teams distribute parallel for",
               "target enter data", "target exit data", "target update",
               "target spread", "target spread teams distribute parallel for",
               "target enter data spread", "target exit data spread",
               "target update spread"},
    "num_teams": {"target teams distribute parallel for",
                  "target spread teams distribute parallel for"},
    "thread_limit": {"target teams distribute parallel for",
                     "target spread teams distribute parallel for"},
    "to": {"target update", "target update spread"},
    "from": {"target update", "target update spread"},
}

#: map types acceptable per data-directive family
MAP_ALLOWED = {
    "target": "tofrom", "target teams distribute parallel for": "tofrom",
    "target data": "tofrom", "target data spread": "tofrom",
    "target spread": "tofrom",
    "target spread teams distribute parallel for": "tofrom",
    "target enter data": "to", "target enter data spread": "to",
    "target exit data": "from", "target exit data spread": "from",
}

DIRECTIVES = list(BOILERPLATE)
MATRIX_CLAUSES = [c for c in CLAUSE_TEXT if c not in ("map", "depend")]


def build(directive: str, clause: str) -> str:
    boiler = BOILERPLATE[directive]
    text = CLAUSE_TEXT[clause]
    # avoid duplicating a clause already in the boilerplate
    if text.split("(")[0] in boiler:
        pytest.skip("clause already part of the directive's boilerplate")
    return f"omp {directive} {boiler} {text}"


@pytest.mark.parametrize("directive", DIRECTIVES)
@pytest.mark.parametrize("clause", MATRIX_CLAUSES)
def test_admissibility_matrix(directive, clause):
    src = build(directive, clause)
    allowed = directive in ALLOWED.get(clause, set())
    if allowed:
        check_directive(parse_pragma(src))
    else:
        with pytest.raises(OmpSemaError):
            check_directive(parse_pragma(src))


@pytest.mark.parametrize("directive,map_type", sorted(MAP_ALLOWED.items()))
def test_map_accepted_with_family_type(directive, map_type):
    boiler = BOILERPLATE[directive]
    if "map(" in boiler:
        boiler = boiler[:boiler.index("map(")]
    src = f"omp {directive} {boiler} map({map_type}: B[0:4])"
    check_directive(parse_pragma(src))


@pytest.mark.parametrize("directive", ["target update",
                                       "target update spread"])
def test_map_rejected_on_update(directive):
    src = f"omp {directive} {BOILERPLATE[directive]} map(to: B[0:4])"
    with pytest.raises(OmpSemaError):
        check_directive(parse_pragma(src))


def test_matrix_is_complete():
    """Every directive appears in the matrix and every clause is covered
    somewhere (guards against the tables drifting apart)."""
    for clause, dirs in ALLOWED.items():
        assert dirs <= set(DIRECTIVES), clause
    accepted_anywhere = set().union(*ALLOWED.values())
    assert accepted_anywhere == set(DIRECTIVES)
