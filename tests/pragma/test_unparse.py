"""Unit + property tests for directive unparsing (round-trip guarantees)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pragma import ast_nodes as A
from repro.pragma.parser import parse_pragma
from repro.pragma.unparse import unparse_directive, unparse_expr

_D = A.DirectiveKind


class TestUnparseExamples:
    @pytest.mark.parametrize("src", [
        "omp target device(0) map(to: A) nowait",
        "omp target spread devices(2, 0, 1) spread_schedule(static, 4) "
        "map(to: A[omp_spread_start-1:omp_spread_size+2]) "
        "map(from: B[omp_spread_start:omp_spread_size])",
        "omp target data spread devices(0) range(1:N-2) chunk_size(4) "
        "map(tofrom: A[omp_spread_start:omp_spread_size])",
        "omp target update spread devices(1, 3) range(100:M) "
        "chunk_size(10) nowait to(B[omp_spread_start:omp_spread_size])",
        "omp target teams distribute parallel for num_teams(2) "
        "thread_limit(64) depend(out: C[0:4])",
    ])
    def test_round_trip_equals_ast(self, src):
        d1 = parse_pragma(src)
        d2 = parse_pragma(unparse_directive(d1))
        assert d2.kind is d1.kind
        assert d2.clauses == d1.clauses

    def test_parenthesization(self):
        d = parse_pragma("omp target device((1+2)*3)")
        text = unparse_directive(d)
        assert "(1+2)*3" in text
        assert parse_pragma(text).clauses == d.clauses

    def test_subtraction_associativity(self):
        d = parse_pragma("omp target device(10-(3-2))")
        text = unparse_directive(d)
        assert parse_pragma(text).clauses == d.clauses
        d2 = parse_pragma("omp target device(10-3-2)")
        text2 = unparse_directive(d2)
        assert parse_pragma(text2).clauses == d2.clauses
        assert text != text2  # structurally different stays different


# ---------------------------------------------------------------------------
# property-based round trip over generated ASTs
# ---------------------------------------------------------------------------

idents = st.sampled_from(["N", "M", "omp_spread_start", "omp_spread_size"])


def exprs(depth=2):
    base = st.one_of(st.integers(0, 99).map(A.Num), idents.map(A.Ident))
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: A.BinOp(*t)),
    )


sections = st.one_of(
    st.sampled_from(["A", "B", "C"]).map(A.SectionNode),
    st.tuples(st.sampled_from(["A", "B", "C"]), exprs(), exprs()).map(
        lambda t: A.SectionNode(*t)),
)


@st.composite
def directives(draw):
    kind = draw(st.sampled_from(list(_D)))
    clauses = []
    if draw(st.booleans()):
        if kind.is_spread:
            devs = draw(st.lists(st.integers(0, 3).map(A.Num), min_size=1,
                                 max_size=4))
            clauses.append(A.DevicesClause(devices=tuple(devs)))
        else:
            clauses.append(A.DeviceClause(device=draw(exprs())))
    for _ in range(draw(st.integers(0, 3))):
        clauses.append(A.MapClauseNode(
            map_type=draw(st.sampled_from(
                ["to", "from", "tofrom", "alloc", "release", "delete"])),
            items=tuple(draw(st.lists(sections, min_size=1, max_size=3)))))
    if draw(st.booleans()):
        clauses.append(A.NowaitClause())
    if draw(st.booleans()):
        clauses.append(A.DependClause(
            kind=draw(st.sampled_from(["in", "out", "inout"])),
            items=tuple(draw(st.lists(sections, min_size=1, max_size=2)))))
    return A.Directive(kind=kind, clauses=tuple(clauses))


class TestRoundTripProperty:
    @given(directives())
    @settings(max_examples=150, deadline=None)
    def test_parse_unparse_fixpoint(self, directive):
        text = unparse_directive(directive)
        reparsed = parse_pragma(text)
        assert reparsed.kind is directive.kind
        assert reparsed.clauses == directive.clauses

    @given(exprs(3))
    @settings(max_examples=150, deadline=None)
    def test_expr_round_trip(self, expr):
        text = unparse_expr(expr)
        d = parse_pragma(f"omp target device({text})")
        assert d.find(A.DeviceClause).device == expr
