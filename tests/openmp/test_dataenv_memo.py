"""Regression tests: the last-hit present-table memo vs deletion paths.

The PR 2 memo caches the entry that satisfied the last lookup per var.
Every path that removes an entry — ``map(delete:)`` (``force_delete``),
refcount-zero exit, and the device-loss ``purge`` — must drop the memo,
or a later lookup would return a freed entry (stale buffer, wrong
refcounts).  Also pinned: a failed ``enter`` (allocation error) leaves
the table byte-for-byte as it found it — no empty entry list corrupting
``is_empty()``.
"""

import numpy as np
import pytest

from repro.device.device import Device
from repro.openmp.dataenv import DeviceDataEnv
from repro.openmp.mapping import Var
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec
from repro.sim.trace import Trace
from repro.util.errors import OmpAllocationError
from repro.util.intervals import Interval


def make_env(memory_bytes=1e6):
    sim = Simulator()
    spec = DeviceSpec(memory_bytes=memory_bytes)
    dev = Device(sim, 0, spec, Resource(sim, 1), LinkSpec(),
                 Resource(sim, 1), HostSpec(), CostModel(), Trace())
    return DeviceDataEnv(dev)


@pytest.fixture
def env():
    return make_env()


@pytest.fixture
def var():
    return Var("A", np.arange(100.0))


class TestMemoInvalidation:
    def test_force_delete_then_remap_is_a_fresh_entry(self, env, var):
        """map(delete:) followed by re-mapping the same var/section must
        miss the memo and allocate anew — the pre-audit stale-hit bug."""
        first, _ = env.enter(var, Interval(0, 50))
        assert env.lookup(var, Interval(0, 50)) is first  # memo primed
        entry, deleted = env.exit(var, Interval(0, 50), force_delete=True)
        assert deleted and entry is first
        env.release_storage(entry)
        assert env.lookup(var, Interval(0, 50)) is None  # no stale hit
        again, is_new = env.enter(var, Interval(0, 50))
        assert is_new and again is not first
        assert again.refcount == 1

    def test_force_delete_zeroes_refcount_above_one(self, env, var):
        env.enter(var, Interval(0, 50))
        env.enter(var, Interval(0, 50))  # refcount 2
        entry, deleted = env.exit(var, Interval(0, 50), force_delete=True)
        assert deleted and entry.refcount == 0
        assert env.is_empty()

    def test_refcount_zero_exit_drops_memo(self, env, var):
        entry, _ = env.enter(var, Interval(10, 20))
        env.lookup(var, Interval(10, 20))  # memoized
        env.exit(var, Interval(10, 20))  # require() hits the memo, then
        env.release_storage(entry)       # deletion must drop it
        hits_after_exit = env.memo_hits
        assert env.lookup(var, Interval(10, 20)) is None
        assert env.memo_hits == hits_after_exit  # slow path, no stale hit

    def test_deleting_one_entry_keeps_siblings_memo_valid(self, env, var):
        a, _ = env.enter(var, Interval(0, 10))
        b, _ = env.enter(var, Interval(50, 60))
        assert env.lookup(var, Interval(50, 60)) is b  # memo -> b
        env.exit(var, Interval(0, 10))  # deletes a, not b
        env.release_storage(a)
        assert env.lookup(var, Interval(50, 60)) is b
        assert env.live_entries == 1

    def test_purge_clears_memo_and_entries(self, env, var):
        env.enter(var, Interval(0, 50))
        env.lookup(var, Interval(0, 50))
        assert env.purge() == 1
        assert env.is_empty()
        assert env.lookup(var, Interval(0, 50)) is None
        # allocator accounting was released
        assert env.device.allocator.used_bytes == 0


class TestFailedEnterLeavesTableClean:
    def test_allocation_error_leaves_no_empty_list(self, var):
        env = make_env(memory_bytes=100.0)  # too small for 50 doubles
        with pytest.raises(OmpAllocationError):
            env.enter(var, Interval(0, 50))
        assert env.is_empty()
        assert env.live_entries == 0
        assert var.key not in env._entries  # no empty-list residue

    def test_small_enter_succeeds_after_failed_big_one(self, var):
        env = make_env(memory_bytes=100.0)
        with pytest.raises(OmpAllocationError):
            env.enter(var, Interval(0, 50))
        entry, is_new = env.enter(var, Interval(0, 10))  # 80 B: fits
        assert is_new and entry.refcount == 1
        assert env.live_entries == 1
