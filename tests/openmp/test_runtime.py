"""Unit tests for the OpenMPRuntime object."""

import pytest

from repro.openmp.runtime import OpenMPRuntime
from repro.sim.topology import cte_power_node, uniform_node
from repro.util.errors import OmpDeviceError, OmpRuntimeError


class TestConstruction:
    def test_default_is_four_device_cte_power(self):
        rt = OpenMPRuntime()
        assert rt.num_devices == 4
        assert len(rt.links) == 2  # two sockets

    def test_devices_share_socket_link_resource(self):
        rt = OpenMPRuntime(topology=cte_power_node(4))
        assert rt.devices[0].link is rt.devices[1].link
        assert rt.devices[2].link is rt.devices[3].link
        assert rt.devices[0].link is not rt.devices[2].link

    def test_all_devices_share_staging(self):
        rt = OpenMPRuntime(topology=cte_power_node(4))
        assert all(d.staging is rt.staging for d in rt.devices)

    def test_device_bounds_check(self):
        rt = OpenMPRuntime(topology=uniform_node(2))
        rt.device(1)
        with pytest.raises(OmpDeviceError):
            rt.device(2)
        with pytest.raises(OmpDeviceError):
            rt.dataenv(-1)


class TestRun:
    def test_returns_program_value(self):
        rt = OpenMPRuntime(topology=uniform_node(1))

        def program(omp):
            yield omp.sim.timeout(1.0)
            return "value"

        assert rt.run(program) == "value"
        assert rt.elapsed == pytest.approx(1.0)

    def test_run_twice_rejected(self):
        rt = OpenMPRuntime(topology=uniform_node(1))

        def program(omp):
            yield omp.sim.timeout(0.0)

        rt.run(program)
        with pytest.raises(OmpRuntimeError, match="already ran"):
            rt.run(program)

    def test_program_args_passed(self):
        rt = OpenMPRuntime(topology=uniform_node(1))

        def program(omp, x, y):
            yield omp.sim.timeout(0.0)
            return x + y

        assert rt.run(program, 2, 3) == 5

    def test_program_exception_propagates(self):
        rt = OpenMPRuntime(topology=uniform_node(1))

        def program(omp):
            yield omp.sim.timeout(1.0)
            raise LookupError("bad")

        with pytest.raises(LookupError):
            rt.run(program)

    def test_deadlock_reported(self):
        rt = OpenMPRuntime(topology=uniform_node(1))

        def stuck(ctx):
            yield ctx.sim.event()  # never triggers

        def program(omp):
            omp.task(stuck, name="stuck-task")
            yield omp.sim.timeout(0.0)

        with pytest.raises(Exception, match="deadlock|never completed"):
            rt.run(program)

    def test_pending_device_ops_pruned(self):
        rt = OpenMPRuntime(topology=uniform_node(1))

        def op():
            yield rt.sim.timeout(1.0)

        def program(omp):
            omp.submit(op())
            yield from omp.taskwait()
            assert rt.pending_device_ops() == []

        rt.run(program)
