"""Unit tests for the shared directive-lowering machinery."""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec, LaunchConfig
from repro.openmp import Map, MapType, OpenMPRuntime, Var
from repro.openmp import exec_ops
from repro.openmp.mapping import MapClause
from repro.sim.costmodel import CostModel
from repro.sim.topology import uniform_node
from repro.util.errors import OmpAllocationError, OmpSemaError
from repro.util.intervals import Interval


def make_rt(memory=1e9, **kw):
    return OpenMPRuntime(topology=uniform_node(1, memory_bytes=memory, **kw))


def concrete(clause):
    from repro.openmp.mapping import concretize_section

    return (clause, concretize_section(clause.var, clause.section))


class TestMapTypeValidation:
    def test_enter_types(self):
        v = Var("A", np.zeros(4))
        exec_ops.enter_map_types([Map.to(v), Map.alloc(v)], "x")
        with pytest.raises(OmpSemaError):
            exec_ops.enter_map_types([Map.tofrom(v)], "x")

    def test_exit_types(self):
        v = Var("A", np.zeros(4))
        exec_ops.exit_map_types([Map.from_(v), Map.release(v),
                                 Map.delete(v)], "x")
        with pytest.raises(OmpSemaError):
            exec_ops.exit_map_types([Map.alloc(v)], "x")

    def test_region_types(self):
        v = Var("A", np.zeros(4))
        exec_ops.region_map_types(
            [Map.to(v), Map.from_(v), Map.tofrom(v), Map.alloc(v)], "x")
        with pytest.raises(OmpSemaError):
            exec_ops.region_map_types([Map.delete(v)], "x")


class TestEnterOp:
    def test_alloc_makes_no_copies(self):
        rt = make_rt()
        v = Var("A", np.arange(8.0))

        def program(omp):
            op = exec_ops.enter_op(rt, 0, [concrete(Map.alloc(v))])
            yield omp.submit(op)

        rt.run(program)
        assert rt.devices[0].memcpy_calls == 0
        assert rt.dataenvs[0].live_entries == 1

    def test_reentry_no_copy(self):
        rt = make_rt()
        v = Var("A", np.arange(8.0))

        def program(omp):
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.to(v))]))
            calls = rt.devices[0].memcpy_calls
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.to(v))]))
            assert rt.devices[0].memcpy_calls == calls

        rt.run(program)

    def test_tofrom_copies_in(self):
        rt = make_rt()
        v = Var("A", np.arange(8.0))

        def program(omp):
            yield omp.submit(exec_ops.enter_op(rt, 0,
                                               [concrete(Map.tofrom(v))]))

        rt.run(program)
        assert rt.devices[0].memcpy_calls == 1


class TestExitOp:
    def test_release_no_copyback(self):
        rt = make_rt()
        A = np.arange(8.0)
        v = Var("A", A)

        def program(omp):
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.to(v))]))
            A[:] = -1  # host change; release must NOT write it back
            yield omp.submit(exec_ops.exit_op(rt, 0,
                                              [concrete(Map.release(v))]))

        rt.run(program)
        assert np.all(A == -1)
        assert rt.dataenvs[0].is_empty()

    def test_from_copies_only_at_zero_refcount(self):
        rt = make_rt()
        A = np.arange(8.0)
        v = Var("A", A)

        def program(omp):
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.to(v))]))
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.to(v))]))
            rt.dataenvs[0].entries_of(v)[0].buffer[:] = 99.0
            yield omp.submit(exec_ops.exit_op(rt, 0,
                                              [concrete(Map.from_(v))]))
            assert np.all(A == np.arange(8.0))  # refcount 2 -> 1: no copy
            yield omp.submit(exec_ops.exit_op(rt, 0,
                                              [concrete(Map.from_(v))]))

        rt.run(program)
        assert np.all(A == 99.0)


class TestBackpressure:
    def test_enter_waits_for_memory_then_succeeds(self):
        # memory fits exactly one 8-row buffer
        rt = make_rt(memory=64.0)
        a, b = Var("A", np.zeros(8)), Var("B", np.zeros(8))

        def holder(ctx):
            yield ctx.rt.sim.timeout(1.0)
            yield ctx.submit(exec_ops.exit_op(rt, 0, [concrete(Map.release(a))]))

        def program(omp):
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.alloc(a))]))
            omp.task(holder)
            # B cannot fit until A is freed at t=1
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.alloc(b))]))
            return omp.sim.now

        t = rt.run(program)
        assert t >= 1.0
        assert rt.dataenvs[0].live_entries == 1

    def test_impossible_request_raises_immediately(self):
        rt = make_rt(memory=32.0)
        v = Var("A", np.zeros(8))  # 64 bytes > 32 capacity

        def program(omp):
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.to(v))]))

        with pytest.raises(OmpAllocationError):
            rt.run(program)


class TestKernelOp:
    def test_implicit_maps_balance(self):
        rt = make_rt()
        v = Var("A", np.arange(8.0))
        spec = KernelSpec("k", lambda lo, hi, env: None)

        def program(omp):
            op = exec_ops.kernel_op(rt, 0, spec, 0, 8,
                                    [concrete(Map.tofrom(v))])
            yield omp.submit(op)

        rt.run(program)
        assert rt.dataenvs[0].is_empty()
        assert rt.devices[0].memcpy_calls == 2  # in + out

    def test_extra_env_reaches_kernel(self):
        rt = make_rt()
        seen = {}
        spec = KernelSpec("k", lambda lo, hi, env: seen.update(env))

        def program(omp):
            op = exec_ops.kernel_op(rt, 0, spec, 0, 1, [],
                                    extra_env={"partial": 42})
            yield omp.submit(op)

        rt.run(program)
        assert seen["partial"] == 42


class TestUpdateOp:
    def test_round_trip(self):
        rt = make_rt()
        A = np.arange(8.0)
        v = Var("A", A)

        def program(omp):
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.to(v))]))
            entry = rt.dataenvs[0].entries_of(v)[0]
            entry.buffer[:] = 7.0
            op = exec_ops.update_op(rt, 0, [], [(v, Interval(2, 5))])
            yield omp.submit(op)
            assert np.array_equal(A, [0, 1, 7, 7, 7, 5, 6, 7])
            A[:] = 3.0
            op = exec_ops.update_op(rt, 0, [(v, Interval(0, 8))], [])
            yield omp.submit(op)
            assert np.all(entry.buffer == 3.0)
            yield omp.submit(exec_ops.exit_op(rt, 0,
                                              [concrete(Map.delete(v))]))

        rt.run(program)


class TestAllocFreeSync:
    def test_free_waits_for_queued_work(self):
        """cudaFree drains the device: an exit issued while a long kernel
        is queued completes only after it."""
        rt = make_rt()
        v = Var("A", np.arange(8.0))
        slow = KernelSpec("slow", lambda lo, hi, env: None,
                          work_per_iter=1e12)

        def program(omp):
            yield omp.submit(exec_ops.enter_op(rt, 0, [concrete(Map.to(v))]))
            # long kernel on the device queue (does not touch the entry)
            other = Var("B", np.zeros(4))
            op = exec_ops.kernel_op(rt, 0, slow, 0, 4,
                                    [concrete(Map.alloc(other))])
            omp.submit(op)
            # let the kernel get past its dispatch latency and claim its
            # stream slot before the exit is issued (cudaFree only drains
            # work that is actually enqueued at call time)
            yield omp.sim.timeout(0.01)
            yield omp.submit(exec_ops.exit_op(rt, 0,
                                              [concrete(Map.release(v))]))
            return omp.sim.now

        t = rt.run(program)
        expected_kernel_time = 4 * 1e12 / rt.devices[0].spec.iters_per_second
        assert t >= expected_kernel_time

    def test_alloc_latency_charged_per_new_map(self):
        rt = make_rt()
        spec = rt.devices[0].spec
        v = [Var(f"V{i}", np.zeros(4)) for i in range(3)]

        def program(omp):
            yield omp.submit(exec_ops.enter_op(
                rt, 0, [concrete(Map.alloc(x)) for x in v]))
            return omp.sim.now

        t = rt.run(program)
        assert t >= 3 * spec.alloc_latency


class TestSubmitSpread:
    def test_sibling_chunks_not_ordered_against_each_other(self):
        """Two chunk ops with overlapping out-sections (position halos on
        different devices) must run concurrently."""
        rt = OpenMPRuntime(topology=uniform_node(2, memory_bytes=1e9),
                           cost_model=CostModel(host_task_overhead=0.0))
        v = Var("A", np.zeros(16))
        starts = []

        def op(tag):
            starts.append((tag, rt.sim.now))
            yield rt.sim.timeout(1.0)

        from repro.openmp.depend import DepKind

        def program(omp):
            items = [
                (0, op("a"), [], [(DepKind.OUT, v, Interval(0, 10))], "a"),
                (1, op("b"), [], [(DepKind.OUT, v, Interval(8, 16))], "b"),
            ]
            procs = exec_ops.submit_spread(omp, items)
            yield omp.sim.all_of(procs)

        rt.run(program)
        assert starts[0][1] == starts[1][1] == 0.0

    def test_later_directive_sees_all_sibling_records(self):
        rt = OpenMPRuntime(topology=uniform_node(2, memory_bytes=1e9),
                           cost_model=CostModel(host_task_overhead=0.0))
        v = Var("A", np.zeros(16))
        log = []

        def op(tag, dur):
            yield rt.sim.timeout(dur)
            log.append((tag, rt.sim.now))

        from repro.openmp.depend import DepKind

        def program(omp):
            exec_ops.submit_spread(omp, [
                (0, op("w0", 1.0), [], [(DepKind.OUT, v, Interval(0, 8))], "w0"),
                (1, op("w1", 2.0), [], [(DepKind.OUT, v, Interval(8, 16))], "w1"),
            ])
            procs = exec_ops.submit_spread(omp, [
                (0, op("r", 0.0), [], [(DepKind.IN, v, Interval(0, 16))], "r"),
            ])
            yield omp.sim.all_of(procs)

        rt.run(program)
        assert log[-1] == ("r", 2.0)  # reader waited for both writers
