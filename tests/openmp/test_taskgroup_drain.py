"""Unit tests for the all-device taskgroup drain semantics.

The paper's runtime behaviour (Discussion section): a taskgroup around
device operations acts as "a barrier that synchronizes all devices".  The
runtime reproduces it when ``taskgroup_global_drain`` is set (default) and
reverts to spec-pure member-only taskgroups when cleared.
"""

import pytest

from repro.openmp.runtime import OpenMPRuntime
from repro.sim.costmodel import CostModel
from repro.sim.topology import uniform_node


def make_rt(drain: bool):
    return OpenMPRuntime(topology=uniform_node(2, memory_bytes=1e9),
                         cost_model=CostModel(host_task_overhead=0.0),
                         taskgroup_global_drain=drain)


def slow_op(rt, duration):
    def op():
        yield rt.sim.timeout(duration)

    return op()


class TestGlobalDrain:
    def test_group_with_device_op_waits_foreign_ops(self):
        rt = make_rt(drain=True)

        def program(omp):
            omp.submit(slow_op(rt, 10.0), name="foreign")  # outside group
            tg = omp.taskgroup_begin()
            omp.submit(slow_op(rt, 1.0), name="member")
            yield from omp.taskgroup_end(tg)
            return omp.sim.now

        assert rt.run(program) == pytest.approx(10.0)

    def test_pure_mode_waits_members_only(self):
        rt = make_rt(drain=False)

        def program(omp):
            omp.submit(slow_op(rt, 10.0), name="foreign")
            tg = omp.taskgroup_begin()
            omp.submit(slow_op(rt, 1.0), name="member")
            yield from omp.taskgroup_end(tg)
            return omp.sim.now

        assert rt.run(program) == pytest.approx(1.0)

    def test_host_only_group_never_drains_devices(self):
        """A taskgroup containing only host tasks stays member-scoped even
        in drain mode (the barrier is about device operations)."""
        rt = make_rt(drain=True)

        def host_child(ctx):
            yield ctx.sim.timeout(1.0)

        def program(omp):
            omp.submit(slow_op(rt, 10.0), name="foreign-device-op")
            tg = omp.taskgroup_begin()
            omp.task(host_child)
            yield from omp.taskgroup_end(tg)
            return omp.sim.now

        assert rt.run(program) == pytest.approx(1.0)

    def test_drain_covers_ops_issued_while_waiting(self):
        """Device operations issued by other tasks *during* the drain are
        collected too (the wait loops until nothing is pending)."""
        rt = make_rt(drain=True)

        def late_issuer(ctx):
            yield ctx.sim.timeout(5.0)
            ctx.submit(slow_op(rt, 5.0), name="late")

        def program(omp):
            omp.task(late_issuer)
            tg = omp.taskgroup_begin()
            omp.submit(slow_op(rt, 8.0), name="member")
            yield from omp.taskgroup_end(tg)
            return omp.sim.now

        # member ends at 8; the late op (issued at 5) ends at 10
        assert rt.run(program) == pytest.approx(10.0)

    def test_empty_group_is_instant(self):
        rt = make_rt(drain=True)

        def program(omp):
            omp.submit(slow_op(rt, 10.0), name="foreign")
            tg = omp.taskgroup_begin()
            yield from omp.taskgroup_end(tg)
            return omp.sim.now

        # no device-op members -> no drain
        assert rt.run(program) == pytest.approx(0.0)
