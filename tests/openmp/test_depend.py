"""Unit tests for data-based dependence resolution."""

import numpy as np
import pytest

from repro.openmp.depend import Dep, DepKind, DependTracker, concretize_deps
from repro.openmp.mapping import Var
from repro.sim.engine import Simulator
from repro.spread.sections import omp_spread_size, omp_spread_start
from repro.util.errors import OmpSemaError
from repro.util.intervals import Interval


@pytest.fixture
def tracker():
    return DependTracker()


@pytest.fixture
def var():
    return Var("A", np.zeros(100))


def ev():
    return Simulator().event()


class TestConflicts:
    def test_raw_read_after_write(self, tracker, var):
        writer = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 10))], writer)
        waits = tracker.resolve([(DepKind.IN, var, Interval(5, 8))])
        assert waits == [writer]

    def test_war_write_after_read(self, tracker, var):
        reader = ev()
        tracker.register([(DepKind.IN, var, Interval(0, 10))], reader)
        waits = tracker.resolve([(DepKind.OUT, var, Interval(0, 10))])
        assert waits == [reader]

    def test_waw_write_after_write(self, tracker, var):
        w1 = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 10))], w1)
        waits = tracker.resolve([(DepKind.OUT, var, Interval(0, 10))])
        assert waits == [w1]

    def test_read_read_no_conflict(self, tracker, var):
        r1 = ev()
        tracker.register([(DepKind.IN, var, Interval(0, 10))], r1)
        assert tracker.resolve([(DepKind.IN, var, Interval(0, 10))]) == []

    def test_disjoint_sections_no_conflict(self, tracker, var):
        w1 = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 10))], w1)
        assert tracker.resolve([(DepKind.IN, var, Interval(10, 20))]) == []

    def test_different_vars_no_conflict(self, tracker, var):
        other = Var("B", np.zeros(100))
        w1 = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 10))], w1)
        assert tracker.resolve([(DepKind.INOUT, other, Interval(0, 10))]) == []

    def test_inout_acts_as_writer(self, tracker, var):
        t1 = ev()
        tracker.register([(DepKind.INOUT, var, Interval(0, 10))], t1)
        assert tracker.resolve([(DepKind.IN, var, Interval(0, 5))]) == [t1]

    def test_waits_deduplicated(self, tracker, var):
        w = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 5)),
                          (DepKind.OUT, var, Interval(5, 10))], w)
        waits = tracker.resolve([(DepKind.IN, var, Interval(0, 10))])
        assert waits == [w]

    def test_chain_of_writers(self, tracker, var):
        w1, w2 = ev(), ev()
        tracker.resolve_and_register([(DepKind.OUT, var, Interval(0, 10))], w1)
        waits2 = tracker.resolve_and_register(
            [(DepKind.OUT, var, Interval(0, 10))], w2)
        assert waits2 == [w1]
        # a reader now only needs w2 (w1 was pruned as fully covered)
        waits3 = tracker.resolve([(DepKind.IN, var, Interval(0, 10))])
        assert waits3 == [w2]


class TestPruning:
    def test_writer_prunes_covered_records(self, tracker, var):
        w1 = ev()
        tracker.register([(DepKind.OUT, var, Interval(2, 8))], w1)
        assert tracker.frontier_size(var) == 1
        w2 = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 10))], w2)
        assert tracker.frontier_size(var) == 1

    def test_partial_overlap_not_pruned(self, tracker, var):
        w1 = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 10))], w1)
        w2 = ev()
        tracker.register([(DepKind.OUT, var, Interval(5, 15))], w2)
        assert tracker.frontier_size(var) == 2

    def test_frontier_stays_bounded_under_repeated_sweeps(self, tracker, var):
        # the Somier pattern: the same chunks written every time step
        for _step in range(50):
            for lo in range(0, 100, 10):
                tracker.resolve_and_register(
                    [(DepKind.OUT, var, Interval(lo, lo + 10))], ev())
        assert tracker.frontier_size(var) == 10

    def test_clear(self, tracker, var):
        tracker.register([(DepKind.OUT, var, Interval(0, 10))], ev())
        tracker.clear()
        assert tracker.frontier_size(var) == 0


class TestDepConstructors:
    def test_shorthands(self, var):
        assert Dep.in_(var).kind is DepKind.IN
        assert Dep.out(var).kind is DepKind.OUT
        assert Dep.inout(var).kind is DepKind.INOUT
        assert DepKind.OUT.writes and DepKind.INOUT.writes
        assert not DepKind.IN.writes


class TestConcretizeDeps:
    def test_spread_sections_evaluated(self, var):
        deps = [Dep.out(var, (omp_spread_start, omp_spread_size))]
        out = concretize_deps(deps, spread_start=10, spread_size=5)
        assert out == [(DepKind.OUT, var, Interval(10, 15))]

    def test_whole_array_default(self, var):
        out = concretize_deps([Dep.in_(var)])
        assert out == [(DepKind.IN, var, Interval(0, 100))]

    def test_non_dep_rejected(self, var):
        with pytest.raises(OmpSemaError):
            concretize_deps(["nope"])  # type: ignore[list-item]


class TestFastResolve:
    """The single-covering-writer fast path must be an exact shortcut."""

    def test_fast_path_taken_and_correct(self, tracker, var):
        writer = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 100))], writer)
        assert tracker.fast_resolves == 0
        waits = tracker.resolve([(DepKind.IN, var, Interval(10, 20))])
        assert waits == [writer]
        assert tracker.fast_resolves == 1
        # writers take it too (a writer conflicts with a writer anyway)
        waits = tracker.resolve([(DepKind.OUT, var, Interval(0, 100))])
        assert waits == [writer]
        assert tracker.fast_resolves == 2

    def test_fast_path_skipped_for_single_reader(self, tracker, var):
        reader = ev()
        tracker.register([(DepKind.IN, var, Interval(0, 100))], reader)
        waits = tracker.resolve([(DepKind.OUT, var, Interval(10, 20))])
        assert waits == [reader]  # via the general scan
        assert tracker.fast_resolves == 0

    def test_fast_path_skipped_without_containment(self, tracker, var):
        writer = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 50))], writer)
        # overlapping but not containing: general scan must decide
        waits = tracker.resolve([(DepKind.IN, var, Interval(40, 60))])
        assert waits == [writer]
        assert tracker.fast_resolves == 0

    def test_dedup_across_deps(self, tracker, var):
        writer = ev()
        tracker.register([(DepKind.OUT, var, Interval(0, 100))], writer)
        waits = tracker.resolve([(DepKind.IN, var, Interval(0, 10)),
                                 (DepKind.IN, var, Interval(20, 30))])
        assert waits == [writer]  # one event, two fast hits
        assert tracker.fast_resolves == 2

    def test_frontier_independent_of_timestep_count(self, tracker, var):
        """Regression: O(chunks) frontier, not O(timesteps x chunks)."""
        sizes = []
        for steps in (10, 100):
            tracker.clear()
            for _ in range(steps):
                for lo in range(0, 100, 25):
                    tracker.resolve_and_register(
                        [(DepKind.OUT, var, Interval(lo, lo + 25))], ev())
            sizes.append(tracker.frontier_size(var))
        assert sizes[0] == sizes[1] == 4
