"""Unit tests for the per-device data environment (present table)."""

import numpy as np
import pytest

from repro.device.device import Device
from repro.openmp.dataenv import DeviceDataEnv
from repro.openmp.mapping import Var
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec
from repro.sim.trace import Trace
from repro.util.errors import OmpMappingError
from repro.util.intervals import Interval


@pytest.fixture
def env():
    sim = Simulator()
    spec = DeviceSpec(memory_bytes=1e6)
    dev = Device(sim, 0, spec, Resource(sim, 1), LinkSpec(),
                 Resource(sim, 1), HostSpec(), CostModel(), Trace())
    return DeviceDataEnv(dev)


@pytest.fixture
def var():
    return Var("A", np.arange(100.0))


class TestEnter:
    def test_new_entry_allocates(self, env, var):
        entry, is_new = env.enter(var, Interval(10, 20))
        assert is_new
        assert entry.refcount == 1
        assert entry.buffer.shape == (10,)
        assert env.live_entries == 1

    def test_reenter_contained_increments(self, env, var):
        env.enter(var, Interval(10, 30))
        entry, is_new = env.enter(var, Interval(15, 25))
        assert not is_new
        assert entry.refcount == 2
        assert env.live_entries == 1
        assert env.reuse_count == 1

    def test_exact_reenter_increments(self, env, var):
        env.enter(var, Interval(0, 10))
        entry, is_new = env.enter(var, Interval(0, 10))
        assert not is_new and entry.refcount == 2

    def test_extension_rejected(self, env, var):
        env.enter(var, Interval(0, 10))
        with pytest.raises(OmpMappingError, match="extend"):
            env.enter(var, Interval(5, 15))

    def test_extension_rejected_other_side(self, env, var):
        env.enter(var, Interval(10, 20))
        with pytest.raises(OmpMappingError, match="extend"):
            env.enter(var, Interval(5, 15))

    def test_disjoint_sections_coexist(self, env, var):
        env.enter(var, Interval(0, 10))
        env.enter(var, Interval(20, 30))
        assert env.live_entries == 2

    def test_adjacent_sections_coexist(self, env, var):
        env.enter(var, Interval(0, 10))
        env.enter(var, Interval(10, 20))
        assert env.live_entries == 2

    def test_empty_section_rejected(self, env, var):
        with pytest.raises(OmpMappingError, match="empty"):
            env.enter(var, Interval(3, 3))

    def test_two_vars_same_data_are_independent(self, env):
        arr = np.zeros(10)
        a, b = Var("A", arr), Var("B", arr)
        env.enter(a, Interval(0, 10))
        env.enter(b, Interval(2, 8))  # would be an extension if same var
        assert env.live_entries == 2


class TestLookup:
    def test_lookup_contained(self, env, var):
        env.enter(var, Interval(10, 30))
        assert env.lookup(var, Interval(12, 20)) is not None

    def test_lookup_absent(self, env, var):
        assert env.lookup(var, Interval(0, 5)) is None

    def test_lookup_partial_presence_raises(self, env, var):
        env.enter(var, Interval(0, 10))
        with pytest.raises(OmpMappingError, match="partially present"):
            env.lookup(var, Interval(5, 15))

    def test_require_raises_when_absent(self, env, var):
        with pytest.raises(OmpMappingError, match="not present"):
            env.require(var, Interval(0, 5))


class TestExit:
    def test_refcount_decrement_keeps_entry(self, env, var):
        env.enter(var, Interval(0, 10))
        env.enter(var, Interval(0, 10))
        entry, deleted = env.exit(var, Interval(0, 10))
        assert not deleted and entry.refcount == 1
        assert env.live_entries == 1

    def test_zero_refcount_removes_entry(self, env, var):
        entry0, _ = env.enter(var, Interval(0, 10))
        entry, deleted = env.exit(var, Interval(0, 10))
        assert deleted and entry is entry0
        assert env.is_empty()
        env.release_storage(entry)

    def test_exit_with_subsection_finds_containing(self, env, var):
        env.enter(var, Interval(0, 20))
        entry, deleted = env.exit(var, Interval(5, 10))
        assert deleted
        assert entry.section == Interval(0, 20)

    def test_force_delete_zeroes_refcount(self, env, var):
        env.enter(var, Interval(0, 10))
        env.enter(var, Interval(0, 10))
        _entry, deleted = env.exit(var, Interval(0, 10), force_delete=True)
        assert deleted

    def test_exit_absent_raises(self, env, var):
        with pytest.raises(OmpMappingError, match="not present"):
            env.exit(var, Interval(0, 5))

    def test_release_storage_frees_device_memory(self, env, var):
        entry, _ = env.enter(var, Interval(0, 50))
        used = env.device.allocator.used_bytes
        assert used > 0
        _entry, deleted = env.exit(var, Interval(0, 50))
        env.release_storage(entry)
        assert env.device.allocator.used_bytes == 0


class TestEntrySlices:
    def test_local_and_host_slices(self, env, var):
        entry, _ = env.enter(var, Interval(10, 20))
        assert entry.local_slice(Interval(12, 15)) == slice(2, 5)
        assert entry.host_slice(Interval(12, 15)) == slice(12, 15)

    def test_local_slice_outside_rejected(self, env, var):
        entry, _ = env.enter(var, Interval(10, 20))
        with pytest.raises(OmpMappingError):
            entry.local_slice(Interval(5, 15))

    def test_view_offset(self, env, var):
        entry, _ = env.enter(var, Interval(10, 20))
        view = entry.view()
        assert view.start == 10 and view.stop == 20


class TestInflight:
    def test_wait_list_prunes_processed(self, env, var):
        sim = env.device.sim
        entry, _ = env.enter(var, Interval(0, 10))
        ev1, ev2 = sim.event(), sim.event()
        entry.track(ev1)
        entry.track(ev2)
        ev1.trigger(None)
        sim.run()  # process ev1
        assert entry.wait_list() == [ev2]
