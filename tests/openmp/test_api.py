"""Unit tests for the classic omp_* query API."""

import numpy as np
import pytest

from repro.openmp import Map, OpenMPRuntime, Var, target_enter_data, target_exit_data
from repro.openmp.api import OmpApi, api
from repro.sim.topology import cte_power_node, uniform_node
from repro.util.errors import OmpDeviceError


@pytest.fixture
def rt():
    return OpenMPRuntime(topology=cte_power_node(4, memory_bytes=1e9))


class TestDeviceQueries:
    def test_num_devices(self, rt):
        assert api(rt).omp_get_num_devices() == 4

    def test_initial_device_is_host(self, rt):
        omp = api(rt)
        assert omp.omp_get_initial_device() == 4
        assert omp.omp_is_initial_device()

    def test_default_device_get_set(self, rt):
        omp = api(rt)
        assert omp.omp_get_default_device() == 0
        omp.omp_set_default_device(2)
        assert omp.omp_get_default_device() == 2
        assert rt.default_device == 2

    def test_set_default_device_bounds_checked(self, rt):
        with pytest.raises(OmpDeviceError):
            api(rt).omp_set_default_device(9)


class TestMemoryQueries:
    def test_total_and_free_memory(self, rt):
        omp = api(rt)
        assert omp.omp_get_device_memory(0) == 1e9
        assert omp.omp_get_device_free_memory(0) == 1e9

    def test_free_memory_tracks_mappings(self, rt):
        omp = api(rt)
        A = Var("A", np.zeros(100))

        def program(ctx):
            yield from target_enter_data(ctx, device=1, maps=[Map.to(A)])
            assert omp.omp_get_device_free_memory(1) == 1e9 - 800
            yield from target_exit_data(ctx, device=1, maps=[Map.delete(A)])
            assert omp.omp_get_device_free_memory(1) == 1e9

        rt.run(program)


class TestPresence:
    def test_target_is_present(self, rt):
        omp = api(rt)
        A = Var("A", np.zeros(100))

        def program(ctx):
            assert not omp.omp_target_is_present(A, 0)
            yield from target_enter_data(ctx, device=0,
                                         maps=[Map.to(A, (10, 20))])
            assert omp.omp_target_is_present(A, 0, (12, 5))
            assert not omp.omp_target_is_present(A, 0, (0, 5))
            assert not omp.omp_target_is_present(A, 0)      # whole array
            assert not omp.omp_target_is_present(A, 1, (12, 5))
            # partial presence counts as absent
            assert not omp.omp_target_is_present(A, 0, (25, 20))
            yield from target_exit_data(ctx, device=0,
                                        maps=[Map.release(A, (10, 20))])

        rt.run(program)


class TestWtime:
    def test_wtime_is_virtual_clock(self):
        rt = OpenMPRuntime(topology=uniform_node(1))
        omp = api(rt)

        def program(ctx):
            t0 = omp.omp_get_wtime()
            yield ctx.sim.timeout(2.5)
            return omp.omp_get_wtime() - t0

        assert rt.run(program) == pytest.approx(2.5)

    def test_api_class_alias(self, rt):
        assert isinstance(api(rt), OmpApi)
