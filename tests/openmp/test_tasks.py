"""Unit tests for tasks, taskwait, taskgroup and taskloop."""

import pytest

from repro.openmp.runtime import OpenMPRuntime
from repro.sim.costmodel import CostModel
from repro.sim.topology import uniform_node
from repro.util.errors import OmpRuntimeError


def make_rt(**kwargs):
    # zero host-task overhead so assertions on virtual times are exact
    return OpenMPRuntime(topology=uniform_node(1, memory_bytes=1e9),
                         cost_model=CostModel(host_task_overhead=0.0),
                         **kwargs)


class TestTask:
    def test_task_runs_async_and_returns_value(self):
        rt = make_rt()
        log = []

        def child(ctx, tag):
            yield ctx.sim.timeout(1.0)
            log.append(tag)
            return tag * 2

        def program(omp):
            handle = omp.task(child, 21)
            log.append("spawned")
            value = yield handle
            return value

        assert rt.run(program) == 42
        assert log == ["spawned", 21]

    def test_task_exception_reaches_joiner(self):
        rt = make_rt()

        def child(ctx):
            yield ctx.sim.timeout(0.5)
            raise RuntimeError("child failed")

        def program(omp):
            yield omp.task(child)

        with pytest.raises(RuntimeError, match="child failed"):
            rt.run(program)

    def test_unjoined_failed_task_surfaces_at_run_end(self):
        rt = make_rt()

        def child(ctx):
            yield ctx.sim.timeout(0.5)
            raise ValueError("lost")

        def program(omp):
            omp.task(child)
            yield omp.sim.timeout(0.1)

        with pytest.raises(ValueError, match="lost"):
            rt.run(program)


class TestTaskwait:
    def test_waits_direct_children(self):
        rt = make_rt()
        done = []

        def child(ctx, delay):
            yield ctx.sim.timeout(delay)
            done.append(delay)

        def program(omp):
            omp.task(child, 3.0)
            omp.task(child, 1.0)
            yield from omp.taskwait()
            return (sorted(done), omp.sim.now)

        result = rt.run(program)
        assert result == ([1.0, 3.0], 3.0)

    def test_does_not_wait_grandchildren(self):
        rt = make_rt()
        log = []

        def grandchild(ctx):
            yield ctx.sim.timeout(10.0)
            log.append("grand")

        def child(ctx):
            ctx.task(grandchild)
            yield ctx.sim.timeout(1.0)

        def program(omp):
            omp.task(child)
            yield from omp.taskwait()
            return omp.sim.now

        assert rt.run(program) == 1.0


class TestTaskgroup:
    def test_waits_descendants(self):
        rt = make_rt()
        log = []

        def grandchild(ctx):
            yield ctx.sim.timeout(5.0)
            log.append("grand")

        def child(ctx):
            ctx.task(grandchild)
            yield ctx.sim.timeout(1.0)
            log.append("child")

        def program(omp):
            tg = omp.taskgroup_begin()
            omp.task(child)
            yield from omp.taskgroup_end(tg)
            return omp.sim.now

        assert rt.run(program) == 5.0
        assert log == ["child", "grand"]

    def test_members_spawned_while_waiting_are_collected(self):
        rt = make_rt()

        def late_child(ctx):
            yield ctx.sim.timeout(4.0)

        def late_spawner(ctx):
            yield ctx.sim.timeout(1.0)
            ctx.task(late_child)

        def program(omp):
            tg = omp.taskgroup_begin()
            omp.task(late_spawner)
            yield from omp.taskgroup_end(tg)
            return omp.sim.now

        assert rt.run(program) == 5.0

    def test_nested_groups_close_innermost_first(self):
        rt = make_rt()

        def program(omp):
            outer = omp.taskgroup_begin()
            inner = omp.taskgroup_begin()
            with pytest.raises(OmpRuntimeError, match="innermost"):
                next(omp.taskgroup_end(outer), None)
            yield from omp.taskgroup_end(inner)
            yield from omp.taskgroup_end(outer)

        rt.run(program)

    def test_tasks_outside_group_not_waited(self):
        rt = make_rt()

        def slow(ctx):
            yield ctx.sim.timeout(50.0)

        def quick(ctx):
            yield ctx.sim.timeout(1.0)

        def program(omp):
            omp.task(slow)  # outside any group
            tg = omp.taskgroup_begin()
            omp.task(quick)
            yield from omp.taskgroup_end(tg)
            return omp.sim.now

        assert rt.run(program) == 1.0


class TestTaskloop:
    def test_num_tasks_contiguous_split(self):
        rt = make_rt()
        seen = {}

        def body(ctx, item):
            seen.setdefault(id(ctx), []).append(item)
            yield ctx.sim.timeout(0.1)

        def program(omp):
            yield from omp.taskloop(list(range(6)), body, num_tasks=2)

        rt.run(program)
        groups = sorted(seen.values())
        assert groups == [[0, 1, 2], [3, 4, 5]]

    def test_uneven_split(self):
        rt = make_rt()
        counts = []

        def body(ctx, item):
            counts.append(item)
            yield ctx.sim.timeout(0.0)

        def program(omp):
            yield from omp.taskloop(list(range(7)), body, num_tasks=3)

        rt.run(program)
        assert sorted(counts) == list(range(7))

    def test_grainsize(self):
        rt = make_rt()
        seen = {}

        def body(ctx, item):
            seen.setdefault(id(ctx), []).append(item)
            yield ctx.sim.timeout(0.0)

        def program(omp):
            yield from omp.taskloop(list(range(5)), body, grainsize=2)

        rt.run(program)
        sizes = sorted(len(v) for v in seen.values())
        assert sizes == [1, 2, 2]

    def test_implicit_taskgroup_waits(self):
        rt = make_rt()

        def body(ctx, item):
            yield ctx.sim.timeout(item)

        def program(omp):
            yield from omp.taskloop([1.0, 2.0, 3.0], body, num_tasks=3)
            return omp.sim.now

        assert rt.run(program) == 3.0

    def test_nogroup_returns_immediately(self):
        rt = make_rt()

        def body(ctx, item):
            yield ctx.sim.timeout(5.0)

        def program(omp):
            yield from omp.taskloop([1, 2], body, num_tasks=2, nogroup=True)
            return omp.sim.now

        assert rt.run(program) == 0.0

    def test_num_tasks_and_grainsize_exclusive(self):
        rt = make_rt()

        def body(ctx, item):
            yield ctx.sim.timeout(0.0)

        def program(omp):
            yield from omp.taskloop([1], body, num_tasks=1, grainsize=1)

        with pytest.raises(OmpRuntimeError, match="mutually exclusive"):
            rt.run(program)

    def test_bad_num_tasks(self):
        rt = make_rt()

        def program(omp):
            yield from omp.taskloop([1], lambda c, i: iter(()), num_tasks=0)

        with pytest.raises(OmpRuntimeError):
            rt.run(program)
