"""Unit tests for the single-device target directive set (the baseline)."""

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.openmp import (
    Map,
    OpenMPRuntime,
    Var,
    target,
    target_data,
    target_enter_data,
    target_exit_data,
    target_teams_distribute_parallel_for,
    target_update,
)
from repro.openmp.depend import Dep
from repro.sim.topology import uniform_node
from repro.util.errors import OmpDeviceError, OmpMappingError, OmpSemaError


def make_rt(n=1):
    return OpenMPRuntime(topology=uniform_node(n, memory_bytes=1e9))


def copy_kernel():
    def body(lo, hi, env):
        env["B"][lo:hi] = env["A"][lo:hi] * 2.0

    return KernelSpec("double", body)


class TestTargetConstruct:
    def test_implicit_maps_round_trip(self):
        rt = make_rt()
        A, B = np.arange(10.0), np.zeros(10)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            yield from target(omp, device=0, kernel=copy_kernel(),
                              lo=0, hi=10,
                              maps=[Map.to(vA), Map.from_(vB)])

        rt.run(program)
        assert np.array_equal(B, A * 2)
        assert rt.dataenvs[0].is_empty()
        # one copy in, one copy out
        assert rt.devices[0].memcpy_calls == 2

    def test_present_data_not_copied(self):
        rt = make_rt()
        A, B = np.arange(10.0), np.zeros(10)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            yield from target_enter_data(omp, device=0,
                                         maps=[Map.to(vA), Map.alloc(vB)])
            calls_before = rt.devices[0].memcpy_calls
            yield from target(omp, device=0, kernel=copy_kernel(),
                              lo=0, hi=10,
                              maps=[Map.to(vA), Map.to(vB)])
            assert rt.devices[0].memcpy_calls == calls_before  # all present
            yield from target_exit_data(omp, device=0,
                                        maps=[Map.from_(vB),
                                              Map.release(vA)])

        rt.run(program)
        assert np.array_equal(B, A * 2)

    def test_host_array_untouched_until_exit(self):
        rt = make_rt()
        A, B = np.arange(10.0), np.zeros(10)
        vA, vB = Var("A", A), Var("B", B)
        snapshots = []

        def program(omp):
            yield from target_enter_data(omp, device=0,
                                         maps=[Map.to(vA), Map.alloc(vB)])
            yield from target(omp, device=0, kernel=copy_kernel(),
                              lo=0, hi=10, maps=[Map.to(vA), Map.to(vB)])
            snapshots.append(B.copy())  # device-only so far
            yield from target_exit_data(omp, device=0,
                                        maps=[Map.from_(vB),
                                              Map.release(vA)])

        rt.run(program)
        assert np.all(snapshots[0] == 0.0)
        assert np.array_equal(B, A * 2)

    def test_bad_device_id(self):
        rt = make_rt()
        A = Var("A", np.zeros(4))

        def program(omp):
            yield from target_enter_data(omp, device=3, maps=[Map.to(A)])

        with pytest.raises(OmpDeviceError):
            rt.run(program)

    def test_nowait_returns_task(self):
        rt = make_rt()
        A = np.arange(4.0)
        vA, vB = Var("A", A), Var("B", np.zeros(4))

        def program(omp):
            proc = yield from target(omp, device=0, kernel=copy_kernel(),
                                     lo=0, hi=4,
                                     maps=[Map.to(vA), Map.from_(vB)],
                                     nowait=True)
            assert not proc.processed
            yield proc

        rt.run(program)

    def test_depend_chains_targets(self):
        rt = make_rt()
        A, B, C = np.arange(8.0), np.zeros(8), np.zeros(8)
        vA, vB, vC = Var("A", A), Var("B", B), Var("C", C)

        def k1(lo, hi, env):
            env["B"][lo:hi] = env["A"][lo:hi] + 1

        def k2(lo, hi, env):
            env["C"][lo:hi] = env["B"][lo:hi] * 3

        def program(omp):
            yield from target(omp, device=0, kernel=KernelSpec("k1", k1),
                              lo=0, hi=8,
                              maps=[Map.to(vA), Map.tofrom(vB)],
                              nowait=True, depends=[Dep.out(vB)])
            yield from target(omp, device=0, kernel=KernelSpec("k2", k2),
                              lo=0, hi=8,
                              maps=[Map.to(vB), Map.from_(vC)],
                              nowait=True,
                              depends=[Dep.in_(vB), Dep.out(vC)])
            yield from omp.taskwait()

        rt.run(program)
        assert np.array_equal(C, (A + 1) * 3)


class TestCombinedDirective:
    def test_combined_is_faster_than_serial_target(self):
        A = np.arange(64.0)

        def run(combined):
            rt = make_rt()
            vA, vB = Var("A", A), Var("B", np.zeros(64))

            def program(omp):
                if combined:
                    yield from target_teams_distribute_parallel_for(
                        omp, device=0, kernel=copy_kernel(), lo=0, hi=64,
                        maps=[Map.to(vA), Map.from_(vB)])
                else:
                    yield from target(omp, device=0, kernel=copy_kernel(),
                                      lo=0, hi=64,
                                      maps=[Map.to(vA), Map.from_(vB)])

            rt.run(program)
            return rt.elapsed

        assert run(combined=True) < run(combined=False)


class TestTargetData:
    def test_structured_region_copies_at_end(self):
        rt = make_rt()
        A, B = np.arange(6.0), np.zeros(6)
        vA, vB = Var("A", A), Var("B", B)

        def program(omp):
            region = yield from target_data(omp, device=0,
                                            maps=[Map.to(vA),
                                                  Map.tofrom(vB)])
            yield from target(omp, device=0, kernel=copy_kernel(),
                              lo=0, hi=6, maps=[Map.to(vA), Map.to(vB)])
            yield from region.end()

        rt.run(program)
        assert np.array_equal(B, A * 2)
        assert rt.dataenvs[0].is_empty()

    def test_double_end_rejected(self):
        rt = make_rt()
        vA = Var("A", np.zeros(4))

        def program(omp):
            region = yield from target_data(omp, device=0, maps=[Map.to(vA)])
            yield from region.end()
            yield from region.end()

        with pytest.raises(OmpSemaError, match="already closed"):
            rt.run(program)


class TestEnterExitData:
    def test_map_type_validation(self):
        rt = make_rt()
        vA = Var("A", np.zeros(4))

        def bad_enter(omp):
            yield from target_enter_data(omp, device=0, maps=[Map.from_(vA)])

        with pytest.raises(OmpSemaError, match="not allowed"):
            rt.run(bad_enter)

        rt2 = make_rt()

        def bad_exit(omp):
            yield from target_exit_data(omp, device=0, maps=[Map.to(vA)])

        with pytest.raises(OmpSemaError, match="not allowed"):
            rt2.run(bad_exit)

    def test_refcounted_release(self):
        rt = make_rt()
        A = np.arange(4.0)
        vA = Var("A", A)

        def program(omp):
            yield from target_enter_data(omp, device=0, maps=[Map.to(vA)])
            yield from target_enter_data(omp, device=0, maps=[Map.to(vA)])
            yield from target_exit_data(omp, device=0, maps=[Map.release(vA)])
            assert not rt.dataenvs[0].is_empty()
            yield from target_exit_data(omp, device=0, maps=[Map.release(vA)])
            assert rt.dataenvs[0].is_empty()

        rt.run(program)

    def test_delete_ignores_refcount(self):
        rt = make_rt()
        vA = Var("A", np.arange(4.0))

        def program(omp):
            yield from target_enter_data(omp, device=0, maps=[Map.to(vA)])
            yield from target_enter_data(omp, device=0, maps=[Map.to(vA)])
            yield from target_exit_data(omp, device=0, maps=[Map.delete(vA)])

        rt.run(program)
        assert rt.dataenvs[0].is_empty()

    def test_exit_without_enter_fails(self):
        rt = make_rt()
        vA = Var("A", np.zeros(4))

        def program(omp):
            yield from target_exit_data(omp, device=0, maps=[Map.from_(vA)])

        with pytest.raises(OmpMappingError, match="not present"):
            rt.run(program)


class TestTargetUpdate:
    def test_update_to_and_from(self):
        rt = make_rt()
        A = np.arange(8.0)
        vA = Var("A", A)

        def program(omp):
            yield from target_enter_data(omp, device=0, maps=[Map.to(vA)])
            A[:] = 100.0  # host-side change, device copy stale
            yield from target_update(omp, device=0, to=[(vA, (0, 8))])

            def read_back(lo, hi, env):
                env["A"][lo:hi] = env["A"][lo:hi] + 1

            yield from target(omp, device=0,
                              kernel=KernelSpec("inc", read_back),
                              lo=0, hi=8, maps=[Map.to(vA)])
            yield from target_update(omp, device=0, from_=[(vA, (0, 8))])
            yield from target_exit_data(omp, device=0, maps=[Map.release(vA)])

        rt.run(program)
        assert np.all(A == 101.0)

    def test_update_requires_presence(self):
        rt = make_rt()
        vA = Var("A", np.zeros(4))

        def program(omp):
            yield from target_update(omp, device=0, to=[(vA, None)])

        with pytest.raises(OmpMappingError, match="not present"):
            rt.run(program)

    def test_update_needs_a_direction(self):
        rt = make_rt()

        def program(omp):
            yield from target_update(omp, device=0)

        with pytest.raises(OmpSemaError, match="at least one"):
            rt.run(program)
