"""Unit tests for Var, map clauses and section concretization."""

import numpy as np
import pytest

from repro.openmp.mapping import (
    Map,
    MapClause,
    MapType,
    Var,
    concretize_section,
    validate_unique_vars,
)
from repro.spread.sections import omp_spread_size, omp_spread_start
from repro.util.errors import OmpSemaError
from repro.util.intervals import Interval


class TestVar:
    def test_basic_properties(self):
        arr = np.zeros((6, 4), dtype=np.float32)
        v = Var("A", arr)
        assert v.extent == 6
        assert v.row_nbytes == 4 * 4
        assert v.key == id(v)

    def test_identity_keyed(self):
        arr = np.zeros(4)
        assert Var("A", arr).key != Var("A", arr).key

    def test_rejects_non_arrays(self):
        with pytest.raises(TypeError):
            Var("A", [1, 2, 3])  # type: ignore[arg-type]

    def test_rejects_zero_dim_arrays(self):
        with pytest.raises(ValueError):
            Var("A", np.ones(()))


class TestMapTypes:
    def test_copy_directions(self):
        assert MapType.TO.copies_in and not MapType.TO.copies_out
        assert MapType.FROM.copies_out and not MapType.FROM.copies_in
        assert MapType.TOFROM.copies_in and MapType.TOFROM.copies_out
        assert not MapType.ALLOC.copies_in and not MapType.ALLOC.copies_out
        assert not MapType.RELEASE.copies_out
        assert not MapType.DELETE.copies_in

    def test_constructors(self):
        v = Var("A", np.zeros(4))
        assert Map.to(v).map_type is MapType.TO
        assert Map.from_(v).map_type is MapType.FROM
        assert Map.tofrom(v).map_type is MapType.TOFROM
        assert Map.alloc(v).map_type is MapType.ALLOC
        assert Map.release(v).map_type is MapType.RELEASE
        assert Map.delete(v).map_type is MapType.DELETE

    def test_bad_section_shape(self):
        v = Var("A", np.zeros(4))
        with pytest.raises(OmpSemaError):
            MapClause(MapType.TO, v, (1, 2, 3))  # type: ignore[arg-type]


class TestConcretize:
    def setup_method(self):
        self.v = Var("A", np.zeros(20))

    def test_none_is_whole_array(self):
        assert concretize_section(self.v, None) == Interval(0, 20)

    def test_plain_ints(self):
        assert concretize_section(self.v, (3, 5)) == Interval(3, 8)

    def test_spread_exprs(self):
        section = (omp_spread_start - 1, omp_spread_size + 2)
        iv = concretize_section(self.v, section, spread_start=5,
                                spread_size=4)
        # start = 5-1 = 4, length = 4+2 = 6
        assert iv == Interval(4, 10)

    def test_spread_exprs_outside_spread_rejected(self):
        with pytest.raises(OmpSemaError, match="spread"):
            concretize_section(self.v, (omp_spread_start, 4))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(OmpSemaError, match="outside array extent"):
            concretize_section(self.v, (15, 10))
        with pytest.raises(OmpSemaError, match="outside array extent"):
            concretize_section(self.v, (-1, 3))

    def test_negative_length_rejected(self):
        with pytest.raises(OmpSemaError, match="negative length"):
            concretize_section(self.v, (0, -2))

    def test_numpy_ints_accepted(self):
        iv = concretize_section(self.v, (np.int64(2), np.int64(3)))
        assert iv == Interval(2, 5)

    def test_unsupported_expression(self):
        with pytest.raises(OmpSemaError, match="unsupported"):
            concretize_section(self.v, ("x", 3))  # type: ignore[arg-type]


class TestUniqueVars:
    def test_duplicate_rejected(self):
        v = Var("A", np.zeros(4))
        with pytest.raises(OmpSemaError, match="more than one map"):
            validate_unique_vars([Map.to(v), Map.from_(v)], "target")

    def test_distinct_ok(self):
        a, b = Var("A", np.zeros(4)), Var("B", np.zeros(4))
        validate_unique_vars([Map.to(a), Map.from_(b)], "target")
