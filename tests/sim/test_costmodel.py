"""Unit tests for the cost model."""

import pytest

from repro.sim.costmodel import CostModel
from repro.sim.topology import DeviceSpec, LinkSpec


class TestTransferCost:
    def test_wire_time_is_bytes_over_bandwidth(self):
        cm = CostModel()
        link = LinkSpec(bandwidth_bytes_per_s=10e9, per_call_latency=1e-5)
        cost = cm.transfer(link, 1e9)
        assert cost.wire_time == pytest.approx(0.1)
        assert cost.latency == 1e-5
        assert cost.total == pytest.approx(0.1 + 1e-5)

    def test_scale_multiplies_bytes(self):
        cm = CostModel(scale=100.0)
        link = LinkSpec(bandwidth_bytes_per_s=10e9, per_call_latency=0.0)
        cost = cm.transfer(link, 1e6)
        assert cost.bytes == pytest.approx(1e8)
        assert cost.wire_time == pytest.approx(0.01)
        assert cm.virtual_bytes(2.0) == 200.0

    def test_negative_bytes_rejected(self):
        cm = CostModel()
        with pytest.raises(ValueError):
            cm.transfer(LinkSpec(), -1)


class TestKernelCost:
    def setup_method(self):
        self.dev = DeviceSpec(num_sms=10, max_threads_per_sm=100,
                              simd_width=4, iters_per_second=1e6,
                              kernel_launch_latency=1e-6)
        self.cm = CostModel()

    def test_saturated_default(self):
        cost = self.cm.kernel(self.dev, 1e6)
        assert cost.compute_time == pytest.approx(1.0)
        assert cost.total == pytest.approx(1.0 + 1e-6)

    def test_work_per_iter_scales_linearly(self):
        a = self.cm.kernel(self.dev, 1e6, work_per_iter=1.0)
        b = self.cm.kernel(self.dev, 1e6, work_per_iter=3.0)
        assert b.compute_time == pytest.approx(3 * a.compute_time)

    def test_partial_teams_derate(self):
        # 5 of 10 SMs requested -> half throughput
        full = self.cm.kernel(self.dev, 1e6)
        half = self.cm.kernel(self.dev, 1e6, num_teams=5)
        assert half.compute_time == pytest.approx(2 * full.compute_time)

    def test_oversubscription_caps_at_peak(self):
        over = self.cm.kernel(self.dev, 1e6, num_teams=1000,
                              threads_per_team=1000)
        full = self.cm.kernel(self.dev, 1e6)
        assert over.compute_time == pytest.approx(full.compute_time)

    def test_simd_off_divides_parallelism(self):
        simd = self.cm.kernel(self.dev, 1e6, num_teams=1,
                              threads_per_team=100, simd=True)
        scalar = self.cm.kernel(self.dev, 1e6, num_teams=1,
                                threads_per_team=100, simd=False)
        assert scalar.compute_time == pytest.approx(4 * simd.compute_time)

    def test_serial_config_is_slowest(self):
        serial = self.cm.kernel(self.dev, 1e3, num_teams=1,
                                threads_per_team=1, simd=False)
        # parallelism 1 of 1000 -> throughput 1e3 iters/s -> 1 s
        assert serial.compute_time == pytest.approx(1.0)

    def test_scale_multiplies_iterations(self):
        cm = CostModel(scale=10.0)
        cost = cm.kernel(self.dev, 1e5)
        assert cost.iterations == pytest.approx(1e6)
        assert cost.compute_time == pytest.approx(1.0)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            self.cm.kernel(self.dev, -5)
