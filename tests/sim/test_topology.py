"""Unit tests for node topologies."""

import pytest

from repro.sim.topology import (
    DeviceSpec,
    HostSpec,
    LinkSpec,
    NodeTopology,
    cte_power_node,
    uniform_node,
)


class TestCtePowerNode:
    def test_four_devices_two_sockets(self):
        topo = cte_power_node(4)
        assert topo.num_devices == 4
        assert topo.socket_of(0) == 0 and topo.socket_of(1) == 0
        assert topo.socket_of(2) == 1 and topo.socket_of(3) == 1
        assert topo.devices_on_socket(0) == (0, 1)

    def test_two_devices_single_socket(self):
        topo = cte_power_node(2)
        assert topo.num_devices == 2
        assert len(topo.sockets) == 1
        assert topo.socket_of(1) == 0

    def test_one_device(self):
        topo = cte_power_node(1)
        assert topo.num_devices == 1
        assert len(topo.link_specs) == 1

    def test_device_count_bounds(self):
        with pytest.raises(ValueError):
            cte_power_node(0)
        with pytest.raises(ValueError):
            cte_power_node(5)

    def test_v100_memory_default(self):
        topo = cte_power_node(4)
        assert topo.device_specs[0].memory_bytes == pytest.approx(16e9)


class TestUniformNode:
    def test_socket_grouping(self):
        topo = uniform_node(5, devices_per_socket=2)
        assert topo.sockets == [[0, 1], [2, 3], [4]]
        assert len(topo.link_specs) == 3

    def test_link_of(self):
        topo = uniform_node(2, devices_per_socket=1)
        assert topo.link_of(0) is topo.link_specs[0]
        assert topo.link_of(1) is topo.link_specs[1]

    def test_custom_device_specs(self):
        fast = DeviceSpec(iters_per_second=2e9)
        slow = DeviceSpec(iters_per_second=1e9)
        topo = uniform_node(2, device_specs=[fast, slow])
        assert topo.device_specs[0].iters_per_second == 2e9
        assert topo.device_specs[1].iters_per_second == 1e9

    def test_device_specs_length_mismatch(self):
        with pytest.raises(ValueError):
            uniform_node(2, device_specs=[DeviceSpec()])


class TestValidation:
    def test_duplicate_device_on_two_sockets(self):
        with pytest.raises(ValueError, match="two sockets"):
            NodeTopology(device_specs=[DeviceSpec()] * 2,
                         sockets=[[0, 1], [1]],
                         link_specs=[LinkSpec(), LinkSpec()])

    def test_non_dense_device_ids(self):
        with pytest.raises(ValueError, match="cover device ids"):
            NodeTopology(device_specs=[DeviceSpec()] * 2,
                         sockets=[[0, 2]],
                         link_specs=[LinkSpec()])

    def test_link_count_mismatch(self):
        with pytest.raises(ValueError, match="one LinkSpec per socket"):
            NodeTopology(device_specs=[DeviceSpec()],
                         sockets=[[0]],
                         link_specs=[])

    def test_unknown_device_lookup(self):
        topo = uniform_node(1)
        with pytest.raises(ValueError):
            topo.socket_of(7)

    def test_max_parallelism(self):
        spec = DeviceSpec(num_sms=80, max_threads_per_sm=2048)
        assert spec.max_parallelism == 80 * 2048
