"""Timeout/_Call freelist: no per-op object growth on warm launches.

The engine recycles :class:`~repro.sim.engine.Timeout` and ``_Call``
entries through small freelists.  Once the pools warm up, steady-state
execution must allocate *zero* new entries per operation — the
``*_created`` counters go flat while ``*_reused`` keeps climbing — on
the fused-timeline path and, crucially, on the plain generator path too
(``fused_timeline=False``), where every yield is a fresh wait.
"""

import pytest

from repro.bench.machines import (
    paper_devices,
    paper_machine,
    paper_somier_config,
)
from repro.sim.engine import Simulator
from repro.somier.driver import run_somier


class TestEngineLevelReuse:
    def test_sequential_timeouts_reuse_one_object(self):
        sim = Simulator()

        def proc():
            for _ in range(5000):
                yield sim.timeout(0.25)

        sim.run(sim.process(proc()))
        st = sim.engine_stats()
        # One live waiter at a time: the pool never needs a second entry
        # beyond warmup slack.
        assert st["timeouts_created"] <= 4
        assert st["timeouts_reused"] >= 4996
        assert st["calls_created"] <= 4

    def test_concurrent_waiters_bound_pool_growth(self):
        sim = Simulator()

        def proc():
            for _ in range(200):
                yield sim.timeout(0.5)

        for _ in range(16):
            sim.process(proc())
        sim.run()
        st = sim.engine_stats()
        # Pool demand is bounded by peak concurrency, not op count.
        assert st["timeouts_created"] <= 32
        assert st["timeouts_reused"] >= 16 * 200 - 32


def _engine_stats(steps, fused):
    topo, cm = paper_machine(4, n_functional=24)
    cfg = paper_somier_config(n_functional=24, steps=steps)
    res = run_somier("one_buffer", cfg, devices=paper_devices(4),
                     topology=topo, cost_model=cm,
                     fused_timeline=fused, trace=False)
    return res.runtime.sim.engine_stats()


class TestWarmLaunchRegression:
    @pytest.mark.parametrize("fused", [False, True],
                             ids=["generator-path", "fused-timeline"])
    def test_created_flat_across_warm_launches(self, fused):
        """Doubling the step count (all warm, plan-cache hits) must not
        grow the created counters at all: every extra op is a reuse."""
        short = _engine_stats(4, fused)
        long = _engine_stats(8, fused)
        assert long["events_scheduled"] > short["events_scheduled"]
        assert long["timeouts_created"] == short["timeouts_created"]
        assert long["calls_created"] == short["calls_created"]
        assert long["timeouts_reused"] > short["timeouts_reused"]
        assert long["calls_reused"] > short["calls_reused"]

    def test_generator_path_reuse_dominates(self):
        """Even with fused timelines off, reuse beats creation by orders
        of magnitude."""
        st = _engine_stats(8, False)
        assert st["fused_segments"] == 0
        assert st["timeouts_reused"] > 100 * st["timeouts_created"]
        assert st["calls_reused"] > 10 * st["calls_created"]
