"""Unit tests for the parallel host execution backend.

These pin the executor's contract in isolation from the OpenMP stack:
wave placement (non-interfering items batch, interfering items order),
inline fallbacks for unprovable accesses, flush points (unsafe process
resume, run boundary, pending cap), and the engine's serial path when no
executor is attached.
"""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.executor import (
    HostExecutor,
    array_interval,
    collect_accesses,
    env_accesses,
)


def make_ex(workers=2, **kw):
    sim = Simulator()
    ex = HostExecutor(workers, **kw)
    sim.set_executor(ex)
    return sim, ex


class TestAccessExtraction:
    def test_contiguous_array_interval_is_its_bytes(self):
        a = np.zeros((4, 3))
        iv = array_interval(a)
        assert iv.stop - iv.start == a.nbytes

    def test_axis0_slices_are_disjoint_intervals(self):
        a = np.zeros((10, 5))
        lo, hi = array_interval(a[:5]), array_interval(a[5:])
        assert lo.stop == hi.start
        assert not lo.overlaps(hi)

    def test_non_contiguous_view_covers_base(self):
        a = np.zeros((6, 6))
        col = a[:, 0]  # strided view
        assert array_interval(col) == array_interval(a)

    def test_unprovable_object_is_none(self):
        assert array_interval("not an array") is None

    def test_collect_accesses_unknown_poisons_the_set(self):
        a = np.zeros(4)
        assert collect_accesses(reads=[a], writes=["bogus"]) is None

    def test_env_accesses_sees_ndarrays_and_buffer_wrappers(self):
        class ViewLike:
            def __init__(self, buffer):
                self.buffer = buffer

        a, b = np.zeros(4), np.ones(3)
        accs = env_accesses({"a": a, "v": ViewLike(b), "n": 7})
        assert len(accs) == 2
        assert all(acc.write for acc in accs)


class TestWavePlacement:
    def test_disjoint_items_share_one_wave(self):
        _sim, ex = make_ex()
        a = np.zeros(16)
        order = []
        ex.submit(lambda: order.append(0), collect_accesses(writes=[a[:8]]))
        ex.submit(lambda: order.append(1), collect_accesses(writes=[a[8:]]))
        assert len(ex._waves) == 1 and len(ex._waves[0]) == 2
        ex.flush()
        assert sorted(order) == [0, 1]
        assert ex.epochs == 1
        assert ex.parallel_ops == 2
        assert ex.inline_fallbacks == 0

    def test_conflicting_items_are_ordered_in_later_waves(self):
        _sim, ex = make_ex()
        a = np.zeros(16)
        order = []
        ex.submit(lambda: order.append("w1"), collect_accesses(writes=[a]))
        ex.submit(lambda: order.append("w2"), collect_accesses(writes=[a]))
        assert len(ex._waves) == 2
        ex.flush()
        assert order == ["w1", "w2"]
        # both ran alone because of interference: forced inline
        assert ex.parallel_ops == 0
        assert ex.inline_fallbacks >= 1

    def test_read_read_overlap_does_not_conflict(self):
        _sim, ex = make_ex()
        src = np.arange(8.0)
        d1, d2 = np.zeros(8), np.zeros(8)
        ex.submit(lambda: np.copyto(d1, src),
                  collect_accesses(reads=[src], writes=[d1]))
        ex.submit(lambda: np.copyto(d2, src),
                  collect_accesses(reads=[src], writes=[d2]))
        assert len(ex._waves) == 1
        ex.flush()
        assert np.array_equal(d1, src) and np.array_equal(d2, src)

    def test_read_write_overlap_conflicts(self):
        _sim, ex = make_ex()
        a = np.arange(8.0)
        out = np.zeros(8)
        ex.submit(lambda: np.copyto(out, a),
                  collect_accesses(reads=[a], writes=[out]))
        ex.submit(lambda: a.__setitem__(slice(None), 0.0),
                  collect_accesses(writes=[a]))
        assert len(ex._waves) == 2
        ex.flush()
        assert np.array_equal(out, np.arange(8.0))  # read before the write
        assert np.all(a == 0.0)

    def test_unknown_access_is_a_barrier_and_inline(self):
        _sim, ex = make_ex()
        a, b = np.zeros(4), np.zeros(4)
        ex.submit(lambda: None, collect_accesses(writes=[a]))
        ex.submit(lambda: None, None)  # unprovable
        ex.submit(lambda: None, collect_accesses(writes=[b]))
        # barrier forces three waves even though a and b are disjoint
        assert [len(w) for w in ex._waves] == [1, 1, 1]
        ex.flush()
        assert ex.inline_fallbacks >= 2  # the barrier + everything after it

    def test_item_ordered_after_transitive_conflict(self):
        _sim, ex = make_ex(workers=4)
        a, b = np.zeros(8), np.zeros(8)
        order = []
        ex.submit(lambda: order.append("x"), collect_accesses(writes=[a]))
        ex.submit(lambda: order.append("z"), collect_accesses(writes=[b]))
        # conflicts with both; must land strictly after each
        ex.submit(lambda: order.append("y"),
                  collect_accesses(reads=[a, b]))
        ex.flush()
        assert order.index("y") > order.index("x")
        assert order.index("y") > order.index("z")


class TestFlushPoints:
    def test_run_work_without_executor_is_inline(self):
        sim = Simulator()
        ran = []
        sim.run_work(lambda: ran.append(1), accesses=None)
        assert ran == [1]

    def test_lazy_accesses_not_evaluated_on_serial_path(self):
        sim = Simulator()

        def boom():
            raise AssertionError("accesses evaluated on the serial path")

        sim.run_work(lambda: None, accesses=boom)

    def test_work_safe_process_does_not_flush(self):
        sim, ex = make_ex()
        a = np.zeros(4)
        seen = []

        def device_op():
            sim.run_work(lambda: seen.append("work"),
                         collect_accesses(writes=[a]), name="k")
            yield sim.timeout(1.0)
            seen.append("resumed")
            if False:
                yield

        proc = sim.process(device_op())
        proc.work_safe = True
        sim.run(until=proc)
        # the safe process resumed without forcing the work...
        assert seen.index("resumed") < seen.index("work") or ex.epochs == 1
        # ...but the run boundary flushed it
        assert seen.count("work") == 1

    def test_unsafe_process_resume_flushes(self):
        sim, ex = make_ex()
        a = np.zeros(4)
        a_done = []

        def device_op():
            sim.run_work(lambda: a_done.append(True),
                         collect_accesses(writes=[a]))
            return
            yield

        def host():
            p = sim.process(device_op())
            p.work_safe = True
            yield p
            # by the time a host task resumes, deferred work has run
            assert a_done == [True]

        sim.process(host())
        sim.run()

    def test_pending_cap_forces_flush(self):
        sim, ex = make_ex(max_pending=3)
        a = np.zeros(16)
        done = []
        for i in range(3):
            sl = a[i * 4:(i + 1) * 4]
            ex.submit(lambda i=i: done.append(i),
                      collect_accesses(writes=[sl]))
        assert done == [0, 1, 2]  # cap hit → flushed without help
        assert ex.pending == 0

    def test_work_exception_delivered_at_flush(self):
        sim, ex = make_ex()

        def failing_op():
            sim.run_work(lambda: 1 / 0, None, name="bad")
            return
            yield

        def host():
            p = sim.process(failing_op())
            p.work_safe = True
            yield p

        hproc = sim.process(host())
        with pytest.raises(ZeroDivisionError):
            sim.run(until=hproc)

    def test_shutdown_flushes_and_is_idempotent(self):
        _sim, ex = make_ex()
        done = []
        ex.submit(lambda: done.append(1), None)
        ex.shutdown()
        ex.shutdown()
        assert done == [1]
        assert ex.pending == 0


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            HostExecutor(0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            HostExecutor(-2)


class TestDeterminism:
    def test_parallel_wave_result_matches_serial(self):
        base = np.arange(64.0).reshape(8, 8)
        expect = base.copy()
        for i in range(8):
            expect[i] *= (i + 1)

        got = base.copy()
        _sim, ex = make_ex(workers=4)
        for i in range(8):
            row = got[i]
            ex.submit(lambda row=row, i=i: row.__imul__(i + 1),
                      collect_accesses(writes=[row]))
        assert len(ex._waves) == 1
        ex.flush()
        assert np.array_equal(got, expect)
        assert ex.parallel_ops == 8
