"""Edge-case tests for trace rendering and device batch transfers."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.trace import D2H, H2D, HOST, KERNEL, Trace, TraceAnalysis


class TestAsciiEdges:
    def test_window_clips_events(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0.0, end=10.0, device=0)
        out = tr.to_ascii(width=10, t0=4.0, t1=6.0)
        row = [l for l in out.splitlines() if l.startswith("gpu0")][0]
        assert row.count("#") == 10  # fully busy inside the window

    def test_event_outside_window_invisible(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0.0, end=1.0, device=0)
        out = tr.to_ascii(width=10, t0=5.0, t1=6.0)
        row = [l for l in out.splitlines() if l.startswith("gpu0")][0]
        assert "#" not in row

    def test_tiny_event_still_one_cell(self):
        tr = Trace()
        tr.record(H2D, "c", lane="gpu0", start=0.0, end=1e-9, device=0)
        tr.record(KERNEL, "pad", lane="gpu0", start=50.0, end=100.0, device=0)
        out = tr.to_ascii(width=50)
        row = [l for l in out.splitlines() if l.startswith("gpu0")][0]
        assert ">" in row  # the 1 ns copy is visible

    def test_degenerate_window(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0.0, end=0.0, device=0)
        # zero-length makespan: must not divide by zero
        assert "gpu0" in tr.to_ascii(width=10)

    def test_short_lane_names_still_align(self):
        # lane names shorter than the word "lane" must not shear the
        # timeline columns
        tr = Trace()
        tr.record(KERNEL, "k", lane="g0", start=0.0, end=1.0, device=0)
        lines = tr.to_ascii(width=10).splitlines()
        header, row = lines[0], lines[1]
        assert header.startswith("lane |")
        assert row.startswith("g0   |")
        assert header.index("|") == row.index("|")


class TestRecordClamp:
    def test_float_roundoff_clamps_to_zero_duration(self):
        tr = Trace()
        tr.record(H2D, "c", lane="gpu0", start=1.0, end=1.0 - 1e-13,
                  device=0)
        assert tr.events[0].duration == 0.0
        assert tr.events[0].end == tr.events[0].start == 1.0

    def test_genuinely_reversed_interval_rejected(self):
        tr = Trace()
        with pytest.raises(ValueError, match="ends before it starts"):
            tr.record(H2D, "c", lane="gpu0", start=1.0, end=0.5, device=0)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace category"):
            Trace().record("dma", "x", lane="gpu0", start=0.0, end=1.0)


class TestAnalysisEdges:
    def test_idle_fraction_empty_trace(self):
        # zero makespan must not divide by zero
        assert TraceAnalysis(Trace()).idle_fraction(0) == 0.0

    def test_idle_fraction_fully_busy(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0.0, end=2.0, device=0)
        assert TraceAnalysis(tr).idle_fraction(0) == pytest.approx(0.0)

    def test_wire_intervals_fall_back_to_full_span(self):
        tr = Trace()
        tr.record(H2D, "a", lane="gpu0", start=0.0, end=2.0, device=0)
        tr.record(H2D, "b", lane="gpu0", start=3.0, end=4.0, device=0,
                  wire_start=3.5, wire_end=4.0)
        ivs = TraceAnalysis(tr).wire_intervals(0)
        assert ivs == [(0.0, 2.0), (3.5, 4.0)]

    def test_transfer_overlap_wire_vs_full_span(self):
        # queues overlap for 2s but the wire occupancy is disjoint — the
        # paper's "transfers did not overlap" claim holds only wire-only
        tr = Trace()
        tr.record(H2D, "a", lane="gpu0", start=0.0, end=3.0, device=0,
                  wire_start=0.0, wire_end=1.0)
        tr.record(D2H, "b", lane="gpu1", start=1.0, end=4.0, device=1,
                  wire_start=3.0, wire_end=4.0)
        an = TraceAnalysis(tr)
        assert an.transfer_transfer_overlap([0, 1]) == pytest.approx(0.0)
        assert an.transfer_transfer_overlap(
            [0, 1], wire_only=False) == pytest.approx(2.0)

    def test_interleave_count_ignores_host_events(self):
        tr = Trace()
        tr.record(HOST, "t1", lane="host", start=0.0, end=1.0, device=0)
        tr.record(HOST, "t2", lane="host", start=1.0, end=2.0, device=0)
        assert TraceAnalysis(tr).interleave_count(0) == 0
        # a host event between kernel and copy must not break the pair
        tr.record(KERNEL, "k", lane="gpu0", start=2.0, end=3.0, device=0)
        tr.record(HOST, "t3", lane="host", start=3.0, end=3.5, device=0)
        tr.record(H2D, "c", lane="gpu0", start=4.0, end=5.0, device=0)
        assert TraceAnalysis(tr).interleave_count(0) == 1


class TestBatchD2H:
    def test_fused_d2h_functional_and_counts(self):
        from repro.device.device import Device
        from repro.sim.costmodel import CostModel
        from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec

        sim = Simulator()
        dev = Device(sim, 0, DeviceSpec(memory_bytes=1e9),
                      Resource(sim, 1), LinkSpec(per_call_latency=1.0),
                      Resource(sim, 1), HostSpec(), CostModel(), Trace())
        srcs = [np.arange(4.0) + i for i in range(3)]
        dsts = [np.zeros(4) for _ in range(3)]
        pairs = [(s, slice(0, 4), d, slice(0, 4))
                 for s, d in zip(srcs, dsts)]
        sim.run(sim.process(dev.copy_d2h_batch(pairs)))
        for s, d in zip(srcs, dsts):
            assert np.array_equal(d, s)
        assert dev.memcpy_calls == 1          # one fused call
        assert sim.now == pytest.approx(1.0, rel=1e-2)  # one latency

    def test_fused_trace_marks_fusion(self):
        from repro.device.device import Device
        from repro.sim.costmodel import CostModel
        from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec

        sim = Simulator()
        trace = Trace()
        dev = Device(sim, 0, DeviceSpec(memory_bytes=1e9),
                      Resource(sim, 1), LinkSpec(),
                      Resource(sim, 1), HostSpec(), CostModel(), trace)
        pairs = [(np.zeros(4), slice(0, 4), np.zeros(4), slice(0, 4))
                 for _ in range(5)]
        sim.run(sim.process(dev.copy_h2d_batch(pairs)))
        assert trace.events[0].meta["fused"] == 5
