"""Edge-case tests for trace rendering and device batch transfers."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.trace import H2D, KERNEL, Trace


class TestAsciiEdges:
    def test_window_clips_events(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0.0, end=10.0, device=0)
        out = tr.to_ascii(width=10, t0=4.0, t1=6.0)
        row = [l for l in out.splitlines() if l.startswith("gpu0")][0]
        assert row.count("#") == 10  # fully busy inside the window

    def test_event_outside_window_invisible(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0.0, end=1.0, device=0)
        out = tr.to_ascii(width=10, t0=5.0, t1=6.0)
        row = [l for l in out.splitlines() if l.startswith("gpu0")][0]
        assert "#" not in row

    def test_tiny_event_still_one_cell(self):
        tr = Trace()
        tr.record(H2D, "c", lane="gpu0", start=0.0, end=1e-9, device=0)
        tr.record(KERNEL, "pad", lane="gpu0", start=50.0, end=100.0, device=0)
        out = tr.to_ascii(width=50)
        row = [l for l in out.splitlines() if l.startswith("gpu0")][0]
        assert ">" in row  # the 1 ns copy is visible

    def test_degenerate_window(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0.0, end=0.0, device=0)
        # zero-length makespan: must not divide by zero
        assert "gpu0" in tr.to_ascii(width=10)


class TestBatchD2H:
    def test_fused_d2h_functional_and_counts(self):
        from repro.device.device import Device
        from repro.sim.costmodel import CostModel
        from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec

        sim = Simulator()
        dev = Device(sim, 0, DeviceSpec(memory_bytes=1e9),
                      Resource(sim, 1), LinkSpec(per_call_latency=1.0),
                      Resource(sim, 1), HostSpec(), CostModel(), Trace())
        srcs = [np.arange(4.0) + i for i in range(3)]
        dsts = [np.zeros(4) for _ in range(3)]
        pairs = [(s, slice(0, 4), d, slice(0, 4))
                 for s, d in zip(srcs, dsts)]
        sim.run(sim.process(dev.copy_d2h_batch(pairs)))
        for s, d in zip(srcs, dsts):
            assert np.array_equal(d, s)
        assert dev.memcpy_calls == 1          # one fused call
        assert sim.now == pytest.approx(1.0, rel=1e-2)  # one latency

    def test_fused_trace_marks_fusion(self):
        from repro.device.device import Device
        from repro.sim.costmodel import CostModel
        from repro.sim.topology import DeviceSpec, HostSpec, LinkSpec

        sim = Simulator()
        trace = Trace()
        dev = Device(sim, 0, DeviceSpec(memory_bytes=1e9),
                      Resource(sim, 1), LinkSpec(),
                      Resource(sim, 1), HostSpec(), CostModel(), trace)
        pairs = [(np.zeros(4), slice(0, 4), np.zeros(4), slice(0, 4))
                 for _ in range(5)]
        sim.run(sim.process(dev.copy_h2d_batch(pairs)))
        assert trace.events[0].meta["fused"] == 5
