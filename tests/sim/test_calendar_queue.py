"""Calendar-queue property tests against a heapq reference.

The :class:`~repro.sim.engine.Simulator` replaced its per-entry binary
heap with a bucketed calendar queue (one heap entry per *distinct*
timestamp, a FIFO deque per bucket).  The observable contract is
unchanged: entries fire in nondecreasing time order, and entries at the
same timestamp fire in schedule order (FIFO), including entries pushed
*into the bucket currently being drained*.  These tests pit the engine
against a minimal ``(time, seq)`` heapq reference over randomized
cascading workloads and assert the dispatch orders are identical.
"""

import heapq
import random

import pytest

from repro.sim.engine import Interrupt, SimulationError, Simulator


class HeapReference:
    """The old engine, distilled: a (time, seq, fn) heap, FIFO on ties."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0

    def schedule_call(self, delay, fn):
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def run(self):
        while self._heap:
            t, _, fn = heapq.heappop(self._heap)
            self.now = t
            fn()


def _cascade_workload(engine, order, seed, width=4, depth=3, fanout=3):
    """Seed a deterministic cascade of callbacks into ``engine``.

    Each callback logs ``(now, tag)`` and may schedule children at rng
    delays — frequently 0.0 so ties (and same-bucket appends while the
    bucket drains) are common.  The rng draws happen *inside* callbacks,
    so any ordering divergence between engines derails the workload
    itself and shows up as a mismatch.
    """
    rng = random.Random(seed)

    def make(tag, level):
        def fire():
            order.append((engine.now, tag))
            if level >= depth:
                return
            for i in range(rng.randrange(fanout + 1)):
                # 0.0 with probability ~1/2: pile onto the live bucket
                delay = rng.choice([0.0, 0.0, 0.5, 1.0, rng.random()])
                engine.schedule_call(delay, make(f"{tag}.{i}", level + 1))
        return fire

    for i in range(width):
        engine.schedule_call(rng.choice([0.0, 1.0, 2.0]), make(str(i), 0))


class TestAgainstHeapReference:
    @pytest.mark.parametrize("seed", range(20))
    def test_cascade_dispatch_order_identical(self, seed):
        ref_order, cal_order = [], []
        ref = HeapReference()
        _cascade_workload(ref, ref_order, seed)
        ref.run()

        sim = Simulator()
        _cascade_workload(sim, cal_order, seed)
        sim.run()

        assert cal_order == ref_order
        assert sim.now == ref.now

    @pytest.mark.parametrize("seed", range(10))
    def test_dense_tie_times(self, seed):
        """Many entries over very few distinct timestamps."""
        rng = random.Random(seed)
        times = [rng.choice([0.0, 1.0, 1.0, 1.0, 2.0]) for _ in range(200)]

        ref_order, cal_order = [], []
        ref = HeapReference()
        for i, t in enumerate(times):
            ref.schedule_call(t, lambda i=i: ref_order.append(i))
        ref.run()

        sim = Simulator()
        for i, t in enumerate(times):
            sim.schedule_call(t, lambda i=i: cal_order.append(i))
        sim.run()

        assert cal_order == ref_order


class TestFifoTieBreak:
    def test_same_time_fifo(self, sim):
        order = []
        for i in range(8):
            sim.schedule_call(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(8))

    def test_push_into_live_bucket_runs_after_queued(self, sim):
        """A 0-delay push from inside a bucket joins the *end* of it."""
        order = []

        def first():
            order.append("first")
            sim.schedule_call(0.0, lambda: order.append("child"))

        sim.schedule_call(1.0, first)
        sim.schedule_call(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "child"]

    def test_mixed_timeouts_and_calls_interleave_fifo(self, sim):
        """An entry joins its bucket when *scheduled*: the direct calls
        enqueue at creation, the processes only enqueue their timeouts
        once they start (t=0), so the calls win the 1.0 bucket."""
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        sim.process(proc("p0"))
        sim.schedule_call(1.0, lambda: order.append("c0"))
        sim.process(proc("p1"))
        sim.schedule_call(1.0, lambda: order.append("c1"))
        sim.run()
        assert order == ["c0", "c1", "p0", "p1"]


class TestCancellationAndStaleEntries:
    def test_interrupt_leaves_stale_bucket_entry_inert(self, sim):
        """Interrupting a process waiting on a timeout must not let the
        stale bucket entry resume it a second time."""
        log = []

        def sleeper():
            try:
                yield sim.timeout(5.0)
                log.append("slept")
            except Interrupt:
                log.append("interrupted")
                yield sim.timeout(1.0)
                log.append("resumed")

        p = sim.process(sleeper())

        def poke():
            p.interrupt("wake")

        sim.schedule_call(2.0, poke)
        sim.run()
        assert log == ["interrupted", "resumed"]
        assert sim.now == 5.0  # the stale timeout still drains the queue

    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_interrupts_match_run_twice(self, seed):
        """Same seed twice → bit-identical log (determinism under
        randomized schedule/interrupt workloads)."""

        def run_once():
            rng = random.Random(seed)
            sim = Simulator()
            log = []
            procs = []

            def sleeper(tag):
                remaining = 3
                while remaining:
                    try:
                        yield sim.timeout(rng.choice([0.5, 1.0, 2.0]))
                        log.append((sim.now, tag, "tick"))
                        remaining -= 1
                    except Interrupt as e:
                        log.append((sim.now, tag, "intr", str(e.cause)))

            for i in range(5):
                procs.append(sim.process(sleeper(f"s{i}")))

            def interferer():
                for k in range(6):
                    yield sim.timeout(rng.random() * 2.0)
                    victim = procs[rng.randrange(len(procs))]
                    if victim.is_alive:
                        victim.interrupt(k)

            sim.process(interferer())
            sim.run()
            return log, sim.now

        assert run_once() == run_once()


class TestRunModes:
    def test_run_until_deadline_between_buckets(self, sim):
        hits = []
        sim.schedule_call(1.0, lambda: hits.append(1.0))
        sim.schedule_call(3.0, lambda: hits.append(3.0))
        sim.run(until=2.0)
        assert hits == [1.0]
        assert sim.now == 2.0
        sim.run()
        assert hits == [1.0, 3.0]

    def test_run_until_event_stops_after_sentinel_dispatch(self, sim):
        """``run(until=ev)`` returns once the sentinel's own dispatch
        lands; same-bucket entries scheduled before it still run (FIFO),
        later buckets do not."""
        hits = []
        ev = sim.event()
        sim.schedule_call(1.0, lambda: hits.append("a"))
        sim.schedule_call(1.0, lambda: ev.trigger("stop"))
        sim.schedule_call(1.0, lambda: hits.append("b"))
        sim.schedule_call(2.0, lambda: hits.append("late"))
        assert sim.run(until=ev) == "stop"
        assert hits == ["a", "b"]

    def test_step_matches_run_order(self):
        workload = [(2.0, "x"), (1.0, "a"), (1.0, "b"), (2.0, "y")]

        def collect(stepwise):
            sim = Simulator()
            order = []
            for t, tag in workload:
                sim.schedule_call(t, lambda tag=tag: order.append(tag))
            if stepwise:
                while sim.peek() != float("inf"):
                    sim.step()
            else:
                sim.run()
            return order

        assert collect(True) == collect(False) == ["a", "b", "x", "y"]

    def test_time_never_goes_backwards(self, sim):
        stamps = []
        rng = random.Random(3)
        for _ in range(100):
            sim.schedule_call(rng.random() * 10,
                              lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == sorted(stamps)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)
