"""Regression tests for the HostExecutor error paths.

The pre-fix behaviour these pin against: a raising item in a *serial*
wave aborted the wave mid-loop (remaining items silently dropped, the
epoch never counted), and a raising wave aborted ``flush`` (later waves
silently dropped while ``pending`` already read 0).  The contract now:
every registered item executes, every future is awaited, counters tick
exactly once per wave, the first error is re-raised after the window is
empty, and the pool remains usable for subsequent submits.
"""

import numpy as np
import pytest

from repro.sim.executor import Access, HostExecutor
from repro.util.intervals import Interval


def _acc(lo, hi, write=True):
    return (Access(Interval(lo, hi), write),)


def make_ex(workers):
    return HostExecutor(workers)


class _Boom(RuntimeError):
    pass


def boom():
    raise _Boom("injected")


class TestSerialWaveErrors:
    def test_remaining_items_still_run(self):
        ex = make_ex(workers=1)
        ran = []
        ex.submit(boom, _acc(0, 10), name="bad")
        ex.submit(lambda: ran.append("a"), _acc(0, 10), name="a")
        ex.submit(lambda: ran.append("b"), _acc(0, 10), name="b")
        with pytest.raises(_Boom):
            ex.flush()
        assert ran == ["a", "b"]

    def test_counters_tick_once_per_wave(self):
        ex = make_ex(workers=1)
        ex.submit(boom, _acc(0, 10))
        ex.submit(lambda: None, _acc(0, 10))  # interferes: second wave
        with pytest.raises(_Boom):
            ex.flush()
        assert ex.epochs == 2
        assert ex.serial_ops == 2
        assert ex.pending == 0

    def test_first_of_several_errors_is_raised(self):
        ex = make_ex(workers=1)
        ex.submit(boom, _acc(0, 10))
        ex.submit(lambda: (_ for _ in ()).throw(ValueError("later")),
                  _acc(0, 10))
        with pytest.raises(_Boom):
            ex.flush()


class TestParallelWaveErrors:
    def test_all_futures_awaited_and_pool_survives(self):
        ex = make_ex(workers=4)
        ran = []
        # disjoint accesses: one parallel wave of four
        ex.submit(boom, _acc(0, 10))
        for i in range(1, 4):
            ex.submit(lambda i=i: ran.append(i), _acc(i * 10, i * 10 + 10))
        with pytest.raises(_Boom):
            ex.flush()
        assert sorted(ran) == [1, 2, 3]
        assert ex.epochs == 1
        assert ex.parallel_ops == 4
        # the pool is still usable afterwards
        ex.submit(lambda: ran.append("after"), _acc(0, 10))
        ex.submit(lambda: ran.append("after2"), _acc(10, 20))
        ex.flush()
        assert "after" in ran and "after2" in ran
        ex.shutdown()

    def test_error_wave_counts_busy_time_once(self):
        ex = make_ex(workers=2)
        ex.submit(lambda: None, _acc(0, 10))
        ex.submit(boom, _acc(10, 20))
        epochs_before = ex.epochs
        with pytest.raises(_Boom):
            ex.flush()
        assert ex.epochs == epochs_before + 1
        assert ex.span_seconds > 0.0


class TestFlushErrors:
    def test_later_waves_still_run_after_failing_wave(self):
        ex = make_ex(workers=1)
        ran = []
        ex.submit(boom, _acc(0, 10))
        ex.submit(lambda: ran.append("w2"), _acc(0, 10))  # wave 2
        ex.submit(lambda: ran.append("w3"), _acc(0, 10))  # wave 3
        with pytest.raises(_Boom):
            ex.flush()
        assert ran == ["w2", "w3"]
        assert ex.pending == 0 and not ex._waves

    def test_executor_usable_after_failed_flush(self):
        ex = make_ex(workers=2)
        ex.submit(boom, _acc(0, 10))
        with pytest.raises(_Boom):
            ex.flush()
        done = []
        ex.submit(lambda: done.append(1), _acc(0, 10))
        ex.flush()  # must not re-raise the old error
        assert done == [1]

    def test_real_array_work_completes_despite_error(self):
        """End-to-end shape: the failing item must not leave sibling
        updates half-applied (arrays written by other items complete)."""
        ex = make_ex(workers=4)
        arrays = [np.zeros(64) for _ in range(4)]

        def writer(a):
            a += 1.0

        from repro.sim.executor import collect_accesses
        ex.submit(boom, None)  # unprovable: barrier wave of its own
        for a in arrays:
            ex.submit(lambda a=a: writer(a),
                      collect_accesses(writes=[a]))
        with pytest.raises(_Boom):
            ex.flush()
        for a in arrays:
            assert np.array_equal(a, np.ones(64))
