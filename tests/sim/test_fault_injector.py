"""Unit tests for the seeded fault injector (`repro.sim.faults`).

The injector is the deterministic *source* of every failure scenario the
resilience tests replay, so its own contract is pinned tightly: the spec
grammar (with pointed errors on malformed input), rate vs count triggers,
first-match-wins rule composition, per-rule RNG independence, and the
retry policy's backoff schedule.
"""

import pytest

from repro.sim.faults import (
    FaultInjector,
    FaultRule,
    RetryPolicy,
    parse_fault_spec,
)


class TestSpecGrammar:
    def test_single_rate_rule(self):
        (rule,) = parse_fault_spec("transfer:0.01")
        assert rule == FaultRule("transfer", None, rate=0.01)

    def test_device_scoped_count_rule(self):
        (rule,) = parse_fault_spec("device@1:#12")
        assert rule == FaultRule("device", 1, count=12)

    def test_rules_compose_in_order(self):
        rules = parse_fault_spec("h2d:0.02, device@3:#40")
        assert [r.op_class for r in rules] == ["h2d", "device"]
        assert rules[1].device == 3 and rules[1].count == 40

    def test_empty_parts_skipped(self):
        assert parse_fault_spec("") == ()
        assert parse_fault_spec(" , ,kernel:0.5,") == \
            (FaultRule("kernel", None, rate=0.5),)

    def test_roundtrips_through_str(self):
        for spec in ("transfer:0.01", "kernel@2:0.05", "device@1:#12"):
            (rule,) = parse_fault_spec(spec)
            assert parse_fault_spec(str(rule)) == (rule,)

    @pytest.mark.parametrize("bad, match", [
        ("transfer", "expected CLASS"),
        ("transfer:", "expected CLASS"),
        ("warp:0.1", "unknown op class"),
        ("h2d@x:0.1", "device must be an integer"),
        ("h2d@-1:0.1", "device must be >= 0"),
        ("h2d:#x", "count trigger"),
        ("h2d:#0", "count trigger must be >= 1"),
        ("h2d:1.5", "rate must be in"),
        ("h2d:-0.1", "rate must be in"),
        ("h2d:often", "trigger must be a probability"),
    ])
    def test_malformed_specs_raise_pointed_errors(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_fault_spec(bad)


class TestRuleMatching:
    def test_transfer_matches_both_directions_only(self):
        rule = FaultRule("transfer", rate=1.0)
        assert rule.matches("h2d", 0) and rule.matches("d2h", 3)
        assert not rule.matches("kernel", 0)

    def test_device_class_matches_any_op(self):
        rule = FaultRule("device", 2, count=1)
        for op in ("h2d", "d2h", "kernel"):
            assert rule.matches(op, 2)
            assert not rule.matches(op, 1)

    def test_device_filter_applies_to_op_classes(self):
        rule = FaultRule("kernel", 1, rate=1.0)
        assert rule.matches("kernel", 1)
        assert not rule.matches("kernel", 0)


class TestTriggers:
    def test_count_trigger_fires_exactly_once_at_nth_match(self):
        inj = FaultInjector.from_spec("kernel:#3")
        fired = [inj.draw("kernel", 0) is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]
        assert inj.injected == 1

    def test_count_trigger_counts_only_matching_ops(self):
        inj = FaultInjector.from_spec("d2h:#2")
        assert inj.draw("h2d", 0) is None   # not a match: no progress
        assert inj.draw("d2h", 0) is None   # match #1
        assert inj.draw("d2h", 0) is not None  # match #2: fires

    def test_rate_one_always_fires(self):
        inj = FaultInjector.from_spec("h2d:1.0")
        assert all(inj.draw("h2d", d) is not None for d in range(4))

    def test_rate_zero_never_fires(self):
        inj = FaultInjector.from_spec("transfer:0.0")
        assert all(inj.draw(op, 0) is None
                   for op in ("h2d", "d2h") for _ in range(100))
        assert inj.injected == 0

    def test_first_matching_rule_wins(self):
        inj = FaultInjector.from_spec("h2d:#1,transfer:#1")
        rule = inj.draw("h2d", 0)
        assert rule is not None and rule.op_class == "h2d"

    def test_by_class_attribution(self):
        inj = FaultInjector.from_spec("h2d:#1,kernel:#1")
        inj.draw("h2d", 0)
        inj.draw("kernel", 1)
        assert inj.by_class == {"h2d": 1, "kernel": 1}


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            inj = FaultInjector.from_spec("transfer:0.3", seed=seed)
            return [inj.draw("h2d", i % 4) is not None for i in range(200)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)  # astronomically unlikely to tie

    def test_rule_streams_are_independent(self):
        # Adding a rule in front must not perturb the second rule's
        # stream: each rule owns its own seeded RNG.
        solo = FaultInjector.from_spec("kernel:0.3", seed=5)
        pair = FaultInjector.from_spec("h2d:0.5,kernel:0.3", seed=5)
        # rule index differs (0 vs 1), so streams differ by construction;
        # what must hold is that interleaving h2d draws does not shift
        # the kernel rule's own sequence.
        a = [pair.draw("kernel", 0) is not None for _ in range(50)]
        pair2 = FaultInjector.from_spec("h2d:0.5,kernel:0.3", seed=5)
        b = []
        for i in range(50):
            pair2.draw("h2d", 0)  # consumes rule 0's stream only
            b.append(pair2.draw("kernel", 0) is not None)
        assert a == b
        assert solo.rules[0] == pair.rules[1]

    def test_count_rules_consume_no_randomness(self):
        # Two injectors whose rate rule sits at the same index but whose
        # leading count rule differs (and never fires): identical streams.
        a_inj = FaultInjector.from_spec("kernel:#1000,kernel:0.4", seed=3)
        b_inj = FaultInjector.from_spec("kernel:#2000,kernel:0.4", seed=3)
        a = [a_inj.draw("kernel", 0) is not None for _ in range(100)]
        b = [b_inj.draw("kernel", 0) is not None for _ in range(100)]
        assert a == b


class TestRetryPolicy:
    def test_exponential_backoff_schedule(self):
        pol = RetryPolicy(max_attempts=4, backoff=10e-6, multiplier=2.0)
        assert pol.delay(1) == pytest.approx(10e-6)
        assert pol.delay(2) == pytest.approx(20e-6)
        assert pol.delay(3) == pytest.approx(40e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match=">= 0"):
            RetryPolicy(backoff=-1.0)
