"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


class TestTimeoutsAndClock:
    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(5.0)
            return sim.now

        p = sim.process(proc())
        assert sim.run(p) == 5.0
        assert sim.now == 5.0

    def test_zero_timeout_runs_same_time(self, sim):
        def proc():
            yield sim.timeout(0.0)
            return "done"

        assert sim.run(sim.process(proc())) == "done"
        assert sim.now == 0.0

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.5)

        sim.run(sim.process(proc()))
        assert sim.now == 3.5


class TestDeterminism:
    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_two_identical_runs_identical_traces(self):
        def build():
            s = Simulator()
            log = []

            def worker(tag, delay):
                yield s.timeout(delay)
                log.append((s.now, tag))
                yield s.timeout(delay)
                log.append((s.now, tag))

            for i in range(5):
                s.process(worker(i, 0.5 + 0.1 * i))
            s.run()
            return log

        assert build() == build()


class TestEvents:
    def test_manual_trigger_wakes_waiter(self, sim):
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        sim.process(waiter())
        sim.schedule_call(2.0, lambda: ev.trigger(42))
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.trigger(1)
        with pytest.raises(SimulationError):
            ev.trigger(2)

    def test_fail_propagates_into_process(self, sim):
        ev = sim.event()

        def waiter():
            yield ev

        p = sim.process(waiter())
        sim.schedule_call(1.0, lambda: ev.fail(ValueError("boom")))
        with pytest.raises(ValueError, match="boom"):
            sim.run(p)

    def test_value_before_trigger_is_error(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_yield_already_processed_event_continues(self, sim):
        ev = sim.event()
        ev.trigger("v")

        def late():
            yield sim.timeout(1.0)
            value = yield ev
            return value

        assert sim.run(sim.process(late())) == "v"


class TestProcess:
    def test_process_is_joinable_event(self, sim):
        def child():
            yield sim.timeout(3.0)
            return "child-result"

        def parent():
            value = yield sim.process(child())
            return value

        assert sim.run(sim.process(parent())) == "child-result"

    def test_exception_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("inner")

        def parent():
            yield sim.process(child())

        with pytest.raises(RuntimeError, match="inner"):
            sim.run(sim.process(parent()))

    def test_yield_non_event_raises(self, sim):
        def bad():
            yield 42

        with pytest.raises(SimulationError, match="non-Event"):
            sim.run(sim.process(bad()))

    def test_interrupt_delivers_exception(self, sim):
        caught = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                caught.append((intr.cause, sim.now))

        p = sim.process(sleeper())
        sim.schedule_call(1.0, lambda: p.interrupt("wake"))
        sim.run(p)
        assert caught == [("wake", 1.0)]
        assert sim.now == 1.0  # the process ended at the interrupt

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(0.5)

        p = sim.process(quick())
        sim.run(p)
        p.interrupt()  # must not raise
        sim.run()


class TestCombinators:
    def test_all_of_collects_values_in_order(self, sim):
        def worker(value, delay):
            yield sim.timeout(delay)
            return value

        procs = [sim.process(worker(i, 3.0 - i)) for i in range(3)]
        result = sim.run(sim.all_of(procs))
        assert result == [0, 1, 2]
        assert sim.now == 3.0

    def test_all_of_empty_triggers_immediately(self, sim):
        ev = sim.all_of([])
        sim.run()
        assert ev.value == []

    def test_all_of_fails_fast(self, sim):
        def ok():
            yield sim.timeout(10.0)

        def bad():
            yield sim.timeout(1.0)
            raise KeyError("x")

        combo = sim.all_of([sim.process(ok()), sim.process(bad())])
        with pytest.raises(KeyError):
            sim.run(combo)

    def test_any_of_returns_first(self, sim):
        def worker(value, delay):
            yield sim.timeout(delay)
            return value

        combo = sim.any_of([sim.process(worker("slow", 9.0)),
                            sim.process(worker("fast", 1.0))])
        assert sim.run(combo) == "fast"
        assert sim.now == 1.0


class TestRun:
    def test_run_until_deadline(self, sim):
        def ticker():
            while True:
                yield sim.timeout(1.0)

        sim.process(ticker())
        sim.run(until=5.5)
        assert sim.now == 5.5

    def test_run_until_event_deadlock_detected(self, sim):
        ev = sim.event()  # never triggered

        def waiter():
            yield ev

        p = sim.process(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(p)

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0


class TestSchedulingFastPaths:
    """Edge cases of the _Call-based internal scheduling."""

    def test_interrupt_before_first_step(self, sim):
        log = []

        def proc():
            log.append("ran")
            yield sim.timeout(1.0)

        p = sim.process(proc())
        # interrupt lands before the process's start entry is popped: the
        # interrupt wins and the generator sees Interrupt on its first step
        p.interrupt("early")
        with pytest.raises(Interrupt):
            sim.run(p)
        assert log == []  # body never entered normally

    def test_late_callback_on_processed_event(self, sim):
        ev = sim.event()
        ev.trigger(41)
        sim.run()
        assert ev.processed
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == []  # delivered via the loop, not synchronously
        sim.run()
        assert got == [41]

    def test_yield_processed_event_continues_synchronously(self, sim):
        ev = sim.event()
        ev.trigger("v")
        sim.run()

        def proc():
            value = yield ev
            return value

        assert sim.run(sim.process(proc())) == "v"

    def test_two_processes_start_in_creation_order(self, sim):
        order = []

        def proc(tag):
            order.append(tag)
            yield sim.timeout(0.0)

        a = sim.process(proc("a"))
        b = sim.process(proc("b"))
        sim.run()
        assert order == ["a", "b"]
        assert a.processed and b.processed


class TestInterruptQueueOrder:
    def test_multiple_interrupts_delivered_fifo(self, sim):
        """Interrupts queued against one process arrive in the order they
        were raised (the queue is a deque; popleft must stay FIFO)."""
        causes = []

        def sleeper():
            while len(causes) < 3:
                try:
                    yield sim.timeout(100.0)
                except Interrupt as intr:
                    causes.append(intr.cause)

        p = sim.process(sleeper())

        def storm():
            p.interrupt("first")
            p.interrupt("second")
            p.interrupt("third")

        sim.schedule_call(1.0, storm)
        sim.run(p)
        assert causes == ["first", "second", "third"]
