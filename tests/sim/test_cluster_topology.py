"""Unit tests for cluster topologies, spec validation and machine specs."""

import pytest

from repro.sim.costmodel import CostModel
from repro.sim.topology import (
    MACHINE_ENV,
    ClusterTopology,
    DeviceSpec,
    HostSpec,
    LinkSpec,
    NetworkLinkSpec,
    NodeTopology,
    cte_power_node,
    machine_from_env,
    parse_machine_spec,
    uniform_cluster,
    uniform_node,
)


class TestSpecValidation:
    """Satellite: degenerate inputs fail fast, naming the field."""

    def test_device_spec_zero_memory(self):
        with pytest.raises(ValueError, match="DeviceSpec.memory_bytes"):
            DeviceSpec(memory_bytes=0)

    def test_device_spec_negative_throughput(self):
        with pytest.raises(ValueError, match="DeviceSpec.iters_per_second"):
            DeviceSpec(iters_per_second=-1.0)

    def test_device_spec_negative_latency(self):
        with pytest.raises(ValueError,
                           match="DeviceSpec.kernel_issue_latency"):
            DeviceSpec(kernel_issue_latency=-1e-6)

    def test_link_spec_zero_bandwidth(self):
        with pytest.raises(ValueError,
                           match="LinkSpec.bandwidth_bytes_per_s"):
            LinkSpec(bandwidth_bytes_per_s=0)

    def test_host_spec_zero_staging(self):
        with pytest.raises(ValueError,
                           match="HostSpec.staging_bandwidth_bytes_per_s"):
            HostSpec(staging_bandwidth_bytes_per_s=0.0)

    def test_network_spec_zero_bandwidth(self):
        with pytest.raises(ValueError,
                           match="NetworkLinkSpec.bandwidth_bytes_per_s"):
            NetworkLinkSpec(bandwidth_bytes_per_s=0)

    def test_network_spec_negative_latency(self):
        with pytest.raises(ValueError,
                           match="NetworkLinkSpec.per_message_latency"):
            NetworkLinkSpec(per_message_latency=-1.0)

    def test_node_topology_no_devices(self):
        with pytest.raises(ValueError, match="device_specs"):
            NodeTopology(device_specs=[], link_specs=[],
                         host_spec=HostSpec(), sockets=[])

    def test_node_topology_empty_socket(self):
        spec = DeviceSpec()
        with pytest.raises(ValueError, match=r"sockets\[1\]"):
            NodeTopology(device_specs=[spec], link_specs=[LinkSpec(),
                                                          LinkSpec()],
                         host_spec=HostSpec(), sockets=[(0,), ()])

    def test_uniform_node_zero_devices(self):
        with pytest.raises(ValueError, match="at least one device"):
            uniform_node(0)

    def test_uniform_node_zero_per_socket(self):
        with pytest.raises(ValueError, match="devices_per_socket"):
            uniform_node(2, devices_per_socket=0)

    def test_valid_specs_still_construct(self):
        assert DeviceSpec().memory_bytes > 0
        assert NetworkLinkSpec().bandwidth_bytes_per_s > 0
        assert cte_power_node(4).num_devices == 4


class TestNodeAsDegenerateCluster:
    """A bare node answers the cluster queries as a one-node cluster."""

    def test_single_node_view(self):
        topo = cte_power_node(4)
        assert topo.num_nodes == 1
        assert topo.node_of(3) == 0
        assert topo.node_devices(0) == (0, 1, 2, 3)
        assert topo.host_spec_of(0) is topo.host_spec

    def test_out_of_range(self):
        topo = cte_power_node(2)
        with pytest.raises(ValueError):
            topo.node_of(2)
        with pytest.raises(ValueError):
            topo.node_devices(1)


class TestClusterTopology:
    def test_flattening(self):
        topo = uniform_cluster(3, 4, devices_per_socket=2)
        assert topo.num_nodes == 3
        assert topo.num_devices == 12
        assert topo.node_devices(0) == (0, 1, 2, 3)
        assert topo.node_devices(2) == (8, 9, 10, 11)
        assert topo.node_of(0) == 0 and topo.node_of(11) == 2
        # global socket ids: 2 sockets per node
        assert topo.socket_of(0) == 0
        assert topo.socket_of(5) == 2 or topo.socket_of(5) == 3
        assert topo.devices_on_socket(topo.socket_of(4)) == (4, 5)

    def test_link_names_carry_node(self):
        topo = uniform_cluster(2, 2, devices_per_socket=2)
        assert "node1:" in topo.link_of(2).name
        assert "node1:" not in topo.link_of(0).name

    def test_per_node_host_specs(self):
        topo = uniform_cluster(2, 2)
        assert topo.host_spec is topo.nodes[0].host_spec
        assert topo.host_spec_of(1) is topo.nodes[1].host_spec

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology(nodes=[])
        with pytest.raises(ValueError):
            uniform_cluster(0, 4)
        with pytest.raises(ValueError):
            uniform_cluster(2, 0)

    def test_unknown_device(self):
        topo = uniform_cluster(2, 2)
        with pytest.raises(ValueError):
            topo.node_of(99)
        with pytest.raises(ValueError):
            topo.node_devices(5)


class TestMachineSpec:
    def test_cluster_spec(self):
        topo = parse_machine_spec("cluster:4x2")
        assert topo.num_nodes == 4
        assert topo.num_devices == 8

    def test_cte_power_spec(self):
        assert parse_machine_spec("cte-power").num_devices == 4
        assert parse_machine_spec("cte-power:2").num_devices == 2

    def test_case_and_whitespace(self):
        assert parse_machine_spec(" CLUSTER:2x2 ").num_nodes == 2

    def test_bad_spec(self):
        with pytest.raises(ValueError, match="cluster:NxM"):
            parse_machine_spec("rack:3")

    def test_env_unset(self, monkeypatch):
        monkeypatch.delenv(MACHINE_ENV, raising=False)
        assert machine_from_env() is None

    def test_env_set(self, monkeypatch):
        monkeypatch.setenv(MACHINE_ENV, "cluster:2x3")
        topo = machine_from_env()
        assert topo.num_nodes == 2 and topo.num_devices == 6

    def test_env_junk(self, monkeypatch):
        monkeypatch.setenv(MACHINE_ENV, "nonsense")
        with pytest.raises(ValueError):
            machine_from_env()


class TestNetworkTransferCost:
    def test_cost_components(self):
        cm = CostModel(scale=1.0)
        net = NetworkLinkSpec(bandwidth_bytes_per_s=1e9,
                              per_message_latency=2e-6)
        cost = cm.network_transfer(net, 1e6)
        assert cost.latency == pytest.approx(2e-6)
        assert cost.wire_time == pytest.approx(1e6 / 1e9)

    def test_scale_applies(self):
        small = CostModel(scale=1.0)
        big = CostModel(scale=8.0)
        net = NetworkLinkSpec()
        assert (big.network_transfer(net, 1000).wire_time
                == pytest.approx(
                    8 * small.network_transfer(net, 1000).wire_time))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            CostModel().network_transfer(NetworkLinkSpec(), -1)
