"""Unit tests for trace recording and analysis."""

import json

import pytest

from repro.sim.trace import (
    D2H,
    H2D,
    HOST,
    KERNEL,
    Trace,
    TraceAnalysis,
    _intersect,
    _merge_intervals,
    _total,
)


def make_trace():
    tr = Trace()
    tr.record(H2D, "cp1", lane="gpu0", start=0.0, end=2.0, device=0,
              wire_start=0.5, wire_end=2.0)
    tr.record(KERNEL, "k1", lane="gpu0", start=2.0, end=5.0, device=0)
    tr.record(D2H, "cp2", lane="gpu0", start=5.0, end=6.0, device=0,
              wire_start=5.0, wire_end=6.0)
    tr.record(H2D, "cp3", lane="gpu1", start=1.0, end=3.0, device=1,
              wire_start=2.0, wire_end=3.0)
    tr.record(KERNEL, "k2", lane="gpu1", start=3.0, end=4.0, device=1)
    return tr


class TestTraceRecording:
    def test_makespan(self):
        assert make_trace().makespan() == 6.0

    def test_by_lane_sorted(self):
        lanes = make_trace().by_lane()
        assert set(lanes) == {"gpu0", "gpu1"}
        starts = [e.start for e in lanes["gpu0"]]
        assert starts == sorted(starts)

    def test_by_device(self):
        evs = make_trace().by_device(1)
        assert [e.name for e in evs] == ["cp3", "k2"]

    def test_disabled_trace_records_nothing(self):
        tr = Trace(enabled=False)
        tr.record(H2D, "x", lane="gpu0", start=0, end=1, device=0)
        assert tr.events == []

    def test_bad_category_rejected(self):
        with pytest.raises(ValueError):
            Trace().record("bogus", "x", lane="l", start=0, end=1)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Trace().record(H2D, "x", lane="l", start=2, end=1)


class TestExporters:
    def test_chrome_trace_json(self):
        doc = json.loads(make_trace().to_chrome_trace())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 5
        k1 = next(e for e in events if e["name"] == "k1")
        assert k1["ts"] == pytest.approx(2.0e6)
        assert k1["dur"] == pytest.approx(3.0e6)

    def test_chrome_trace_lane_metadata(self):
        doc = json.loads(make_trace().to_chrome_trace())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert {"gpu0", "gpu1"} <= names

    def test_ascii_contains_lanes_and_legend(self):
        out = make_trace().to_ascii(width=40)
        assert "gpu0" in out and "gpu1" in out
        assert "legend" in out
        assert "#" in out  # kernel glyph
        assert ">" in out  # h2d glyph

    def test_ascii_empty(self):
        assert Trace().to_ascii() == "(empty trace)"


class TestIntervalHelpers:
    def test_merge(self):
        assert _merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_intersect(self):
        assert _intersect([(0, 5)], [(3, 8)]) == [(3, 5)]
        assert _intersect([(0, 1)], [(2, 3)]) == []

    def test_total(self):
        assert _total([(0, 2), (5, 6)]) == 3


class TestAnalysis:
    def test_device_summary(self):
        ta = TraceAnalysis(make_trace())
        s = ta.device_summary(0)
        assert s[H2D] == pytest.approx(2.0)
        assert s[D2H] == pytest.approx(1.0)
        assert s[KERNEL] == pytest.approx(3.0)
        assert s["transfer"] == pytest.approx(3.0)

    def test_transfer_dominance(self):
        ta = TraceAnalysis(make_trace())
        agg = ta.transfer_dominance([0, 1])
        assert agg["transfer"] == pytest.approx(5.0)
        assert agg["kernel"] == pytest.approx(4.0)
        assert agg["ratio"] == pytest.approx(5.0 / 4.0)

    def test_compute_transfer_overlap_same_device(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0, end=4, device=0)
        tr.record(H2D, "c", lane="gpu0:x", start=3, end=6, device=0)
        assert TraceAnalysis(tr).compute_transfer_overlap(0) == pytest.approx(1.0)

    def test_wire_intervals_use_meta(self):
        ta = TraceAnalysis(make_trace())
        assert ta.wire_intervals(0) == [(0.5, 2.0), (5.0, 6.0)]

    def test_transfer_transfer_overlap_wire_only(self):
        ta = TraceAnalysis(make_trace())
        # dev0 wire (0.5,2.0) vs dev1 wire (2.0,3.0): disjoint
        assert ta.transfer_transfer_overlap([0, 1]) == 0.0
        # full spans overlap (1,2)
        assert ta.transfer_transfer_overlap([0, 1], wire_only=False) == \
            pytest.approx(1.0)

    def test_interleave_count(self):
        tr = Trace()
        for i, cat in enumerate([H2D, KERNEL, H2D, KERNEL, D2H]):
            tr.record(cat, f"e{i}", lane="gpu0", start=i, end=i + 1, device=0)
        assert TraceAnalysis(tr).interleave_count(0) == 4

    def test_interleave_ignores_host_events(self):
        tr = Trace()
        tr.record(H2D, "a", lane="gpu0", start=0, end=1, device=0)
        tr.record(HOST, "h", lane="host", start=1, end=2, device=0)
        tr.record(H2D, "b", lane="gpu0", start=2, end=3, device=0)
        assert TraceAnalysis(tr).interleave_count(0) == 0

    def test_idle_fraction(self):
        tr = Trace()
        tr.record(KERNEL, "k", lane="gpu0", start=0, end=2, device=0)
        tr.record(KERNEL, "pad", lane="gpu1", start=0, end=8, device=1)
        ta = TraceAnalysis(tr)
        assert ta.idle_fraction(0) == pytest.approx(0.75)
        assert ta.idle_fraction(1) == pytest.approx(0.0)
