"""Unit tests for FIFO resources."""

import pytest

from repro.sim.resources import Resource


class TestGrantOrder:
    def test_fifo_order(self, sim):
        res = Resource(sim, capacity=1, name="link")
        order = []

        def user(tag, hold):
            req = res.request(tag=tag)
            yield req
            order.append(("start", tag, sim.now))
            yield sim.timeout(hold)
            res.release(req)

        for i in range(3):
            sim.process(user(i, 2.0))
        sim.run()
        assert order == [("start", 0, 0.0), ("start", 1, 2.0),
                         ("start", 2, 4.0)]

    def test_capacity_two_overlaps(self, sim):
        res = Resource(sim, capacity=2)
        done = []

        def user(tag):
            req = res.request()
            yield req
            yield sim.timeout(1.0)
            res.release(req)
            done.append((tag, sim.now))

        for i in range(4):
            sim.process(user(i))
        sim.run()
        assert [t for _tag, t in done] == [1.0, 1.0, 2.0, 2.0]

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestRelease:
    def test_release_without_hold_raises(self, sim):
        res = Resource(sim, capacity=1)
        req = res.request()
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_request_release_via_request_object(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            req = res.request()
            yield req
            req.release()

        sim.run(sim.process(user()))
        assert res.in_use == 0


class TestUseHelper:
    def test_use_holds_for_duration(self, sim):
        res = Resource(sim, capacity=1)
        times = []

        def user(tag):
            yield from res.use(3.0, tag=tag)
            times.append(sim.now)

        sim.process(user("a"))
        sim.process(user("b"))
        sim.run()
        assert times == [3.0, 6.0]


class TestStats:
    def test_utilization_full(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            yield from res.use(5.0)

        sim.run(sim.process(user()))
        assert res.utilization() == pytest.approx(1.0)
        assert res.grant_count == 1

    def test_utilization_half(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            yield sim.timeout(5.0)
            yield from res.use(5.0)

        sim.run(sim.process(user()))
        assert res.utilization() == pytest.approx(0.5)

    def test_queue_length_tracking(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            yield from res.use(1.0)

        for _ in range(4):
            sim.process(user())
        sim.run()
        assert res.max_queue_len == 3
        assert res.queue_len == 0

    def test_early_grant_request_then_yield_later(self, sim):
        """A request made early keeps its FIFO position even if the holder
        only waits on it later (the issue-order ticket pattern)."""
        res = Resource(sim, capacity=1)
        order = []

        def early():
            ticket = res.request()
            yield sim.timeout(5.0)  # do something else first
            yield ticket
            order.append(("early", sim.now))
            res.release(ticket)

        def late():
            yield sim.timeout(1.0)
            req = res.request()
            yield req
            order.append(("late", sim.now))
            res.release(req)

        sim.process(early())
        sim.process(late())
        sim.run()
        # 'early' requested first -> holds the slot; 'late' waits for it.
        assert order == [("early", 5.0), ("late", 5.0)]


class TestDequeRegression:
    def test_fifo_order_holds_at_scale(self, sim):
        """Pin the grant order with a long queue (the waiter list is a
        deque; O(1) dequeue must not change arrival-order semantics)."""
        res = Resource(sim, capacity=1, name="queue")
        granted = []

        def user(tag):
            req = res.request(tag=tag)
            yield req
            granted.append(tag)
            yield sim.timeout(1.0)
            res.release(req)

        n = 200
        for i in range(n):
            sim.process(user(i))
        sim.run()
        assert granted == list(range(n))
        assert res.max_queue_len == n - 1
