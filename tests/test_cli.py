"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestListing3:
    def test_default_reproduces_paper_example(self, capsys):
        assert main(["listing3"]) == 0
        out = capsys.readouterr().out
        assert "1..4" in out and "9..12" in out

    def test_custom_distribution(self, capsys):
        assert main(["listing3", "--lo", "0", "--hi", "6", "--chunk", "2",
                     "--devices", "1,0"]) == 0
        out = capsys.readouterr().out
        assert "0..1" in out and "4..5" in out


class TestCheck:
    def test_valid_pragma(self, capsys):
        rc = main(["check", "omp target spread devices(0,1) nowait"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK: target spread" in out
        assert "normalized:" in out

    def test_sema_error_returns_1(self, capsys):
        rc = main(["check", "omp target data spread devices(0) range(0:4) "
                            "chunk_size(2) nowait"])
        assert rc == 1
        assert "not allowed" in capsys.readouterr().err

    def test_syntax_error_returns_1(self, capsys):
        rc = main(["check", "omp target devices(0,1"])
        assert rc == 1

    def test_extension_flags_unlock_future_work(self, capsys):
        src = ("omp target enter data spread devices(0) range(0:4) "
               "chunk_size(2) map(to: A[omp_spread_start:omp_spread_size]) "
               "depend(out: A[omp_spread_start:omp_spread_size])")
        assert main(["check", src]) == 1
        capsys.readouterr()
        assert main(["check", src, "--extensions", "data_depend"]) == 0

    def test_unknown_extension_returns_2(self, capsys):
        rc = main(["check", "omp target", "--extensions", "warp"])
        assert rc == 2


class TestSomier:
    def test_small_run_with_verification(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "2", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bitwise identical" in out
        assert "virtual" in out

    def test_trace_output(self, capsys):
        rc = main(["somier", "--impl", "target", "--gpus", "1",
                   "--n-functional", "24", "--steps", "1", "--trace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legend" in out  # the ASCII timeline

    def test_runtime_error_becomes_exit_code(self, capsys):
        # two_buffers on one device is infeasible (halo overlap, or the
        # chunk no longer fits once halved) — either way, a clean error
        rc = main(["somier", "--impl", "two_buffers", "--gpus", "1",
                   "--n-functional", "24", "--steps", "1"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "extend" in err or "exceeds" in err

    def test_explicit_device_order(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--devices", "1,0", "--n-functional", "24",
                   "--steps", "1"])
        assert rc == 0
        assert "[1, 0]" in capsys.readouterr().out


class TestSomierProfiling:
    def test_profile_flag_prints_report(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "2", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Per-directive profile" in out
        assert "Per-device profile" in out
        assert "target spread" in out
        assert "gpu0" in out and "gpu1" in out

    def test_trace_json_written(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "2",
                   "--trace-json", str(path)])
        assert rc == 0
        assert f"chrome trace written to {path}" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" and e["pid"] == 0 for e in events)
        assert any(e["ph"] == "X" and e["pid"] == 1 for e in events)
        assert any(e["ph"] == "M" and e["name"] == "thread_name"
                   for e in events)

    def test_metrics_json_written(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "2",
                   "--metrics-json", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-profile-1"
        assert payload["directives"] and payload["devices"]


    def test_unwritable_destination_is_clean_error(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1",
                   "--trace-json", "/nonexistent/dir/t.json"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestStats:
    def test_text_report(self, capsys):
        rc = main(["stats", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "virtual" in out
        assert "Per-directive profile" in out
        assert "makespan:" in out

    def test_json_report(self, capsys):
        import json

        rc = main(["stats", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-profile-1"
        assert payload["spans"]["directives"] > 0

    def test_full_adds_raw_catalogue(self, capsys):
        rc = main(["stats", "--impl", "target", "--gpus", "1",
                   "--n-functional", "24", "--steps", "1", "--full"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bytes_moved{device=0,dir=h2d}" in out


class TestTables:
    def test_table1_tiny(self, capsys):
        rc = main(["table1", "--n-functional", "24", "--steps", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "sim/paper" in out


class TestParser:
    def test_devices_arg_validation(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["somier", "--devices", "a,b"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestWorkersFlag:
    def test_somier_accepts_workers(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "2", "--verify",
                   "--workers", "2"])
        assert rc == 0
        assert "bitwise identical" in capsys.readouterr().out

    def test_stats_accepts_workers(self, capsys, monkeypatch):
        import json

        # Pin the small-op floor off so the pool actually runs epochs
        # (the report's executor block) even on a single-core host.
        monkeypatch.setenv("REPRO_EXECUTOR_MIN_BYTES", "0")
        rc = main(["stats", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1", "--json",
                   "--workers", "2"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "executor" in payload

    def test_invalid_workers_is_clean_error(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1",
                   "--workers", "0"])
        assert rc == 1
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_workers_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["somier", "--help"])
        assert "--workers" in capsys.readouterr().out


class TestWorkersEnv:
    def test_invalid_env_value_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "REPRO_WORKERS" in err
        assert "'abc'" in err

    def test_empty_env_value_means_serial(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "")
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1"])
        assert rc == 0

    def test_cli_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")  # never consulted
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1",
                   "--workers", "2"])
        assert rc == 0


class TestFaultsFlag:
    def test_zero_rate_run_succeeds(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "2", "--verify",
                   "--faults", "transfer:0.0"])
        assert rc == 0
        assert "bitwise identical" in capsys.readouterr().out

    def test_bad_spec_is_clean_error(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1",
                   "--faults", "warp:0.1"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "error:" in err and "unknown op class" in err

    def test_bad_env_spec_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "transfer:")
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1"])
        assert rc == 1
        assert "invalid REPRO_FAULTS spec" in capsys.readouterr().err

    def test_stats_renders_fault_block(self, capsys):
        import json

        rc = main(["stats", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1", "--json",
                   "--faults", "h2d:#1", "--fault-seed", "5"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"]["injected"] == 1
        assert payload["faults"]["retries"] == 1

    def test_faults_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["somier", "--help"])
        out = capsys.readouterr().out
        assert "--faults" in out and "--fault-seed" in out
