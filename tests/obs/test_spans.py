"""Acceptance tests: nested directive → chunk → op spans.

The issue's bar: for at least one spread directive, the exported span
forest must show parent/child *interval containment* — the directive span
contains its chunk-task spans, which contain their kernel/transfer op
spans — and the merged Chrome trace must parse as JSON.
"""

import json

import numpy as np
import pytest

from repro.device.kernel import KernelSpec
from repro.obs import SpanRecorder
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.topology import cte_power_node
from repro.spread import omp_spread_size, omp_spread_start, target_spread

S, Z = omp_spread_start, omp_spread_size


def scale_kernel():
    def body(lo, hi, env):
        env["B"][lo:hi] = 2.0 * env["A"][lo:hi]

    return KernelSpec("scale", body)


@pytest.fixture()
def recorded():
    """One 4-device target spread run with a SpanRecorder attached."""
    n = 64
    rt = OpenMPRuntime(topology=cte_power_node(4, memory_bytes=1e9))
    rec = SpanRecorder()
    rt.tools.register(rec)
    A, B = np.arange(float(n)), np.zeros(n)
    vA, vB = Var("A", A), Var("B", B)

    def program(omp):
        yield from target_spread(
            omp, scale_kernel(), 0, n, [0, 1, 2, 3],
            maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))])

    rt.run(program)
    assert np.array_equal(B, 2.0 * A)  # the recording changed nothing
    return rt, rec


class TestContainment:
    def test_spread_directive_contains_chunk_tasks_contains_ops(self, recorded):
        _, rec = recorded
        spreads = rec.directive_spans(kind="target spread")
        assert len(spreads) >= 1
        directive = spreads[0]
        tasks = [c for c in directive.children if c.kind == "task"]
        assert len(tasks) == 4  # one chunk task per device
        assert {t.device for t in tasks} == {0, 1, 2, 3}
        for task in tasks:
            assert directive.contains(task)
            ops = [c for c in task.children if c.kind == "op"]
            assert ops, f"chunk task on device {task.device} has no ops"
            categories = {op.meta["category"] for op in ops}
            assert "kernel" in categories
            for op in ops:
                assert task.contains(op)
                assert op.parent_id == task.span_id

    def test_directive_interval_extended_over_nowait_chunks(self, recorded):
        _, rec = recorded
        directive = rec.directive_spans(kind="target spread")[0]
        # one_buffer-style spreads run nowait: without interval extension
        # the begin/end window would be (near) zero
        assert directive.duration > 0

    def test_finalize_is_idempotent(self, recorded):
        _, rec = recorded
        rec.finalize()
        before = [(s.span_id, s.parent_id, len(s.children))
                  for s in rec.directive_spans()]
        rec.finalize()
        after = [(s.span_id, s.parent_id, len(s.children))
                 for s in rec.directive_spans()]
        assert before == after


class TestChromeExport:
    def test_merged_trace_parses_and_nests(self, recorded):
        rt, rec = recorded
        doc = json.loads(rt.trace.to_chrome_trace(
            extra_records=rec.to_chrome_records()))
        events = doc["traceEvents"]
        span_events = [e for e in events
                       if e["ph"] == "X" and e["pid"] == SpanRecorder.CHROME_PID]
        raw_events = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
        assert span_events and raw_events
        by_id = {e["args"]["span_id"]: e for e in span_events}
        # every child X record sits inside its parent's [ts, ts+dur]
        linked = 0
        for e in span_events:
            parent = e["args"].get("parent")
            if parent is None:
                continue
            p = by_id[parent]
            assert p["ts"] <= e["ts"] + 1e-6
            assert e["ts"] + e["dur"] <= p["ts"] + p["dur"] + 1e-6
            linked += 1
        assert linked > 0

    def test_span_lanes_are_named(self, recorded):
        rt, rec = recorded
        doc = json.loads(rt.trace.to_chrome_trace(
            extra_records=rec.to_chrome_records()))
        meta = [e for e in doc["traceEvents"]
                if e["ph"] == "M" and e["pid"] == SpanRecorder.CHROME_PID]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert "directives" in names
        assert any(n.startswith("chunks@gpu") for n in names)
        assert any(n.startswith("ops@gpu") for n in names)
        assert any(e["name"] == "process_name" for e in meta)


class TestDataDirectiveSpans:
    def test_enter_exit_spread_recorded(self):
        from repro.spread import (
            target_enter_data_spread,
            target_exit_data_spread,
        )

        n = 32
        rt = OpenMPRuntime(topology=cte_power_node(2, memory_bytes=1e9))
        rec = SpanRecorder()
        rt.tools.register(rec)
        vA = Var("A", np.arange(float(n)))

        def program(omp):
            yield from target_enter_data_spread(
                omp, [0, 1], (0, n), None, [Map.to(vA, (S, Z))])
            yield from target_exit_data_spread(
                omp, [0, 1], (0, n), None, [Map.delete(vA, (S, Z))])

        rt.run(program)
        kinds = {s.name for s in rec.directive_spans()}
        assert "target enter data spread" in kinds
        assert "target exit data spread" in kinds
