"""Unit tests for the OMPT-style tool registry and dispatch."""

import pytest

from repro.obs.tool import (
    CALLBACK_POINTS,
    DATA_OP,
    DEVICE_INIT,
    DIRECTIVE_BEGIN,
    Tool,
    ToolRegistry,
)
from repro.openmp import OpenMPRuntime
from repro.sim.topology import cte_power_node


class RecordingTool(Tool):
    """Collects every payload it receives, per point."""

    def __init__(self):
        self.calls = []

    def on_data_op(self, **kw):
        self.calls.append((DATA_OP, kw))

    def on_device_init(self, **kw):
        self.calls.append((DEVICE_INIT, kw))


class TestRegistry:
    def test_empty_registry_is_falsy(self):
        reg = ToolRegistry()
        assert not reg
        reg.register(RecordingTool())
        assert reg

    def test_register_requires_some_callback(self):
        class Useless(Tool):
            pass

        with pytest.raises(ValueError, match="no on_"):
            ToolRegistry().register(Useless())

    def test_unregister_restores_emptiness(self):
        reg = ToolRegistry()
        tool = reg.register(RecordingTool())
        reg.unregister(tool)
        assert not reg
        with pytest.raises(ValueError, match="not registered"):
            reg.unregister(tool)

    def test_set_callback_raw_function(self):
        reg = ToolRegistry()
        seen = []
        reg.set_callback(DATA_OP, lambda **kw: seen.append(kw))
        assert reg
        reg.dispatch(DATA_OP, op="h2d", device=0, time=1.0)
        assert seen == [{"op": "h2d", "device": 0, "time": 1.0}]

    def test_set_callback_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unknown callback point"):
            ToolRegistry().set_callback("on_fire", print)

    def test_dispatch_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unknown callback point"):
            ToolRegistry().dispatch("quantum_flux")

    def test_dispatch_order_and_count(self):
        reg = ToolRegistry()
        order = []
        reg.set_callback(DATA_OP, lambda **kw: order.append("first"))
        reg.set_callback(DATA_OP, lambda **kw: order.append("second"))
        reg.dispatch(DATA_OP, op="alloc", device=0)
        assert order == ["first", "second"]
        assert reg.dispatch_count == 1

    def test_tool_callbacks_discovers_only_known_points(self):
        tool = RecordingTool()
        assert set(tool.callbacks()) == {DATA_OP, DEVICE_INIT}
        for point in tool.callbacks():
            assert point in CALLBACK_POINTS


class TestIdAllocation:
    def test_directive_ids_are_sequential(self):
        reg = ToolRegistry()
        seen = []
        reg.set_callback(DIRECTIVE_BEGIN, lambda **kw: seen.append(kw))
        ids = [reg.directive_begin("target", time=0.0) for _ in range(3)]
        assert ids == [1, 2, 3]
        assert [kw["directive"] for kw in seen] == [1, 2, 3]
        assert all(kw["kind"] == "target" for kw in seen)

    def test_task_ids_are_sequential(self):
        reg = ToolRegistry()
        assert [reg.next_task_id() for _ in range(3)] == [1, 2, 3]


class TestDeviceInitReplay:
    def test_late_registration_replays_device_init(self):
        rt = OpenMPRuntime(topology=cte_power_node(2, memory_bytes=1e9))
        tool = RecordingTool()
        rt.tools.register(tool)
        inits = [kw for point, kw in tool.calls if point == DEVICE_INIT]
        assert [kw["device"] for kw in inits] == [0, 1]
        assert all(kw["memory_bytes"] == 1e9 for kw in inits)
        assert all("name" in kw and "num_sms" in kw for kw in inits)

    def test_runtime_registry_is_falsy_by_default(self):
        rt = OpenMPRuntime(topology=cte_power_node(2, memory_bytes=1e9))
        assert not rt.tools
