"""Acceptance tests: the built-in metrics tool on a real multi-device run.

The issue's bar: a 4-device ``one_buffer`` Somier run with the metrics tool
registered must report non-zero counters in *every* category the tool
tracks — data movement, present table, directives, tasks, dependences,
kernels and devices.
"""

import pytest

from repro.bench.machines import (
    paper_devices,
    paper_machine,
    paper_somier_config,
)
from repro.obs import MetricsTool
from repro.somier import run_somier

DEVICES = [0, 1, 2, 3]


@pytest.fixture(scope="module")
def run():
    topo, cm = paper_machine(4, n_functional=24)
    cfg = paper_somier_config(n_functional=24, steps=2)
    tool = MetricsTool()
    result = run_somier("one_buffer", cfg, devices=paper_devices(4),
                        topology=topo, cost_model=cm, tools=(tool,))
    return result, tool.registry


class TestEveryCategoryNonZero:
    def test_devices_initialized(self, run):
        _, reg = run
        assert reg.counter_value("devices_initialized") == 4
        for d in DEVICES:
            assert reg.gauge("device_memory_bytes", device=d).value > 0

    def test_data_movement_per_device(self, run):
        _, reg = run
        for d in DEVICES:
            assert reg.counter_value("bytes_moved", device=d, dir="h2d") > 0
            assert reg.counter_value("bytes_moved", device=d, dir="d2h") > 0
            assert reg.sum_counter("memcpy_calls", device=d) > 0
            assert reg.counter_value("queue_busy_seconds", device=d) > 0
            assert reg.counter_value("link_busy_seconds", device=d) > 0
            assert reg.timer("memcpy_time", device=d, dir="h2d").count > 0

    def test_present_table_traffic(self, run):
        _, reg = run
        assert reg.sum_counter("present_hits") > 0
        assert reg.sum_counter("present_misses") > 0
        assert reg.sum_counter("present_deletes") > 0
        assert reg.sum_counter("refcount_churn") > 0
        assert reg.sum_counter("device_allocs") > 0
        assert reg.sum_counter("alloc_bytes") > 0
        assert reg.sum_counter("device_frees") > 0

    def test_directives(self, run):
        _, reg = run
        assert reg.counter_value("directives", kind="target spread") > 0
        assert reg.counter_value(
            "directives", kind="target enter data spread") > 0
        assert reg.counter_value(
            "directives", kind="target exit data spread") > 0
        assert reg.sum_counter("spread_chunks") > 0
        assert reg.timer("directive_time", kind="target spread").count > 0

    def test_tasks_and_dependences(self, run):
        _, reg = run
        assert reg.counter_value("tasks_spawned") > 0
        assert reg.counter_value("tasks_deferred") > 0
        assert reg.counter_value("dependence_edges") > 0
        flight = reg.gauge("tasks_in_flight")
        assert flight.max_value > 0
        assert flight.value == 0  # every task completed

    def test_kernels_and_submits(self, run):
        _, reg = run
        for d in DEVICES:
            assert reg.counter_value("kernels_launched", device=d) > 0
            assert reg.timer("kernel_time", device=d).count > 0
            assert reg.counter_value("target_submits", device=d) > 0


class TestCrossValidation:
    """The tool must agree with the Device objects' own byte counters."""

    def test_bytes_match_driver_stats(self, run):
        result, reg = run
        assert reg.sum_counter("bytes_moved", dir="h2d") == pytest.approx(
            result.stats["h2d_bytes"])
        assert reg.sum_counter("bytes_moved", dir="d2h") == pytest.approx(
            result.stats["d2h_bytes"])
        assert reg.sum_counter("memcpy_calls") == result.stats["memcpy_calls"]
        assert reg.sum_counter("kernels_launched") == \
            result.stats["kernels_launched"]

    def test_result_carries_snapshot(self, run):
        result, reg = run
        assert result.metrics is not None
        assert result.metrics == reg.snapshot()
