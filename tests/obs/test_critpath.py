"""Tests for the critical-path analyzer (``repro.obs.critpath``).

The analyzer's contract, asserted here:

* the critical path's length equals the trace makespan — it explains all
  of the run, not a sample of it;
* every device lane's compute/transfer/retry/contention/idle buckets sum
  exactly to the makespan;
* the what-if replay reproduces the actual makespan when fed the original
  costs, and its ``zero_transfers`` projection matches a real run executed
  with transfer costs zeroed in the cost model;
* recording never perturbs the run: results and traces are bit-identical
  with analysis on or off, across worker counts, and under fault
  injection with failover;
* degenerate traces (empty, zero-duration events, identical stamps,
  single lane) never crash the analysis.
"""

import importlib.util
import json
import os

import numpy as np
import pytest

from repro.bench import machines
from repro.obs.critpath import (
    CRITPATH_SCHEMA,
    CausalRecorder,
    CritPathAnalysis,
)
from repro.sim.costmodel import CostModel, TransferCost
from repro.sim.topology import cte_power_node
from repro.sim.trace import D2H, H2D, HOST, KERNEL, Trace, TraceAnalysis
from repro.somier import SomierConfig, run_somier
from repro.util.errors import OmpRuntimeError

BUCKETS = ("compute_s", "transfer_s", "retry_s", "contention_s", "idle_s")

CFG = SomierConfig(n=18, steps=3)


@pytest.fixture(autouse=True)
def _hermetic_env(monkeypatch):
    """The CI legs (``REPRO_ANALYZE=1``, ``REPRO_FAULTS=...``) must not
    leak into the explicit baselines these scenarios construct."""
    for var in ("REPRO_ANALYZE", "REPRO_FAULTS", "REPRO_FAULT_SEED",
                "REPRO_WORKERS"):
        monkeypatch.delenv(var, raising=False)


def topo(n_dev=4):
    return cte_power_node(n_dev, memory_bytes=1e9)


def run(**kw):
    kw.setdefault("topology", topo())
    return run_somier("one_buffer", CFG, **kw)


def paper_run(n_functional=48, steps=2, **kw):
    """A 4-GPU run on the calibrated paper machine (transfer-bound)."""
    topo_, cm = machines.paper_machine(4, n_functional=n_functional)
    cfg = machines.paper_somier_config(n_functional=n_functional,
                                       steps=steps)
    kw.setdefault("cost_model", cm)
    return run_somier("one_buffer", cfg,
                      devices=machines.paper_devices(4), topology=topo_,
                      **kw), cm


def assert_bit_identical(a, b):
    for name in a.state.grids:
        assert np.array_equal(a.state.grids[name], b.state.grids[name]), name
    assert np.array_equal(a.centers, b.centers)
    assert a.elapsed == b.elapsed
    assert a.runtime.trace.events == b.runtime.trace.events


class ZeroTransferCostModel(CostModel):
    """Transfers are free: no latency, no wire time, no staged bytes."""

    def transfer(self, link, nbytes):
        return TransferCost(bytes=0.0, latency=0.0, wire_time=0.0)


class TestAcceptance:
    """The headline invariants, on the calibrated 4-GPU paper machine."""

    @pytest.fixture(scope="class")
    def analyzed(self):
        res, _cm = paper_run(analyze=True)
        return res, res.runtime.analysis()

    def test_critical_path_length_equals_makespan(self, analyzed):
        _res, ana = analyzed
        cp = ana.critical_path()
        assert ana.makespan > 0
        assert cp["length_s"] == pytest.approx(ana.makespan, rel=1e-9)
        # the segments tile [0, makespan] gaplessly
        segs = sorted(cp["segments"], key=lambda s: s["start"])
        assert segs[0]["start"] == pytest.approx(0.0, abs=1e-9)
        assert segs[-1]["end"] == pytest.approx(ana.makespan, rel=1e-9)
        for prev, cur in zip(segs, segs[1:]):
            assert cur["start"] == pytest.approx(prev["end"], rel=1e-9)

    def test_attribution_buckets_sum_to_makespan(self, analyzed):
        _res, ana = analyzed
        attr = ana.attribution()
        assert attr["lanes"], "no device lanes attributed"
        for lane in attr["lanes"]:
            total = sum(lane[k] for k in BUCKETS)
            assert total == pytest.approx(ana.makespan, rel=1e-9), lane
        totals = attr["totals"]
        assert sum(totals[k] for k in BUCKETS) == pytest.approx(
            ana.makespan * len(attr["lanes"]), rel=1e-9)

    def test_baseline_replay_reproduces_makespan(self, analyzed):
        _res, ana = analyzed
        wi = ana.what_if()
        assert wi["baseline_replay_s"] == pytest.approx(ana.makespan,
                                                        rel=1e-3)

    def test_zero_transfer_whatif_matches_zeroed_cost_model_run(self,
                                                                analyzed):
        _res, ana = analyzed
        projected = ana.what_if()["scenarios"]["zero_transfers"]["makespan_s"]
        _topo, cm = machines.paper_machine(4, n_functional=48)
        actual, _ = paper_run(
            cost_model=ZeroTransferCostModel(scale=cm.scale))
        assert projected == pytest.approx(actual.elapsed, rel=0.01)

    def test_whatif_names_a_bottleneck(self, analyzed):
        _res, ana = analyzed
        wi = ana.what_if()
        assert wi["bottleneck"] in wi["scenarios"]
        assert wi["bottleneck_speedup"] == pytest.approx(
            wi["scenarios"][wi["bottleneck"]]["speedup"])
        # the paper machine is transfer-bound: freeing transfers wins
        assert wi["bottleneck"] == "zero_transfers"
        assert wi["bottleneck_speedup"] > 1.5


class TestBitIdentity:
    """Edge recording never touches the virtual timeline."""

    def test_analyze_on_off_identical(self):
        off = run(analyze=False)
        on = run(analyze=True)
        assert on.stats["causal_ops"] > 0
        assert_bit_identical(off, on)

    def test_analyze_identical_across_worker_counts(self):
        serial = run(analyze=True, workers=1)
        parallel = run(analyze=True, workers=4)
        assert_bit_identical(serial, parallel)
        assert serial.stats["causal_ops"] == parallel.stats["causal_ops"]

    def test_analyze_identical_under_faults_and_failover(self):
        spec = dict(faults="device@1:#10", fault_seed=7)
        off = run(analyze=False, **spec)
        on = run(analyze=True, **spec)
        assert on.stats["fault_failovers"] > 0
        assert_bit_identical(off, on)

    def test_env_var_arms_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "1")
        res = run()  # analyze=None consults the environment
        assert res.runtime.causal is not None
        assert res.stats["causal_ops"] > 0


class TestRetryAttribution:
    def test_retries_tagged_and_bucketed(self):
        res = run(faults="transfer:0.02,kernel:0.01", fault_seed=11,
                  analyze=True)
        assert res.stats["fault_retries"] > 0
        retried = [e for e in res.runtime.trace.events
                   if e.meta.get("attempt")]
        assert len(retried) == res.stats["fault_retries"]
        for ev in retried:
            assert ev.meta["attempt"] >= 1
            assert "retry_of" in ev.meta
        ana = res.runtime.analysis()
        attr = ana.attribution()
        assert attr["totals"]["retry_s"] > 0
        # the invariants hold under fault injection too
        assert ana.critical_path()["length_s"] == pytest.approx(
            ana.makespan, rel=1e-9)
        for lane in attr["lanes"]:
            assert sum(lane[k] for k in BUCKETS) == pytest.approx(
                ana.makespan, rel=1e-9)

    def test_failover_reroute_provenance_survives(self):
        res = run(faults="device@1:#10", analyze=True)
        rerouted = [e for e in res.runtime.trace.events
                    if e.meta.get("rerouted_from") is not None]
        assert rerouted, "no re-routed ops recorded"
        assert all(e.meta["rerouted_from"] == 1 for e in rerouted)
        ana = res.runtime.analysis()
        assert ana.critical_path()["length_s"] == pytest.approx(
            ana.makespan, rel=1e-9)


class TestRecorderSurface:
    def test_driver_stats_counters(self):
        res = run(analyze=True)
        assert res.stats["causal_ops"] > 0
        assert res.stats["causal_dep_edges"] > 0
        assert res.stats["causal_res_edges"] >= 0
        rec = res.runtime.causal
        assert rec.ops == res.stats["causal_ops"]
        assert len(rec.op_event) <= rec.ops

    def test_analysis_requires_recording(self):
        res = run(analyze=False)
        with pytest.raises(OmpRuntimeError, match="no causal recording"):
            res.runtime.analysis()

    def test_explicit_analyze_implies_tracing(self):
        # driver level: an explicit opt-in promotes trace_enabled
        res = run(analyze=True, trace=False)
        assert res.runtime.trace.events
        assert res.runtime.causal is not None

    def test_explicit_analyze_without_trace_rejected(self):
        # runtime level: an explicit opt-in without a trace is a user error
        from repro.openmp.runtime import OpenMPRuntime
        with pytest.raises(OmpRuntimeError, match="trace"):
            OpenMPRuntime(topology=topo(), trace_enabled=False,
                          analyze=True)

    def test_env_analyze_without_trace_silently_skips(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "1")
        res = run(trace=False)  # env-armed, untraced: no recording, no error
        assert res.runtime.causal is None
        assert res.runtime.trace.events == []


class TestAnalysisSurfaces:
    @pytest.fixture(scope="class")
    def ana(self):
        res, _cm = paper_run(analyze=True)
        return res.runtime.analysis()

    def test_stragglers_rows(self, ana):
        rows = ana.stragglers(top=None)
        assert rows, "no spread directives found"
        for row in rows:
            assert row["chunks"] >= 2
            assert row["imbalance"] >= 1.0
            assert row["max_s"] >= row["mean_s"] > 0
            assert row["lost_s"] >= 0

    def test_overlap_rows(self, ana):
        rows = ana.overlap()
        assert rows
        for row in rows:
            assert row["window_s"] > 0
            assert 0.0 <= row["efficiency"] <= 1.0 + 1e-9
            assert row["compute_transfer_overlap_s"] >= 0

    def test_flow_records_pair_up(self, ana):
        flows = ana.flow_records()
        starts = [r for r in flows if r["ph"] == "s"]
        ends = [r for r in flows if r["ph"] == "f"]
        assert starts and len(starts) == len(ends)
        assert {r["id"] for r in starts} == {r["id"] for r in ends}
        for r in flows:
            assert r["ts"] >= 0

    def test_report_validates_against_checked_in_schema(self, ana):
        here = os.path.dirname(__file__)
        spec = importlib.util.spec_from_file_location(
            "validate_critpath",
            os.path.join(here, "..", "..", "benchmarks",
                         "validate_critpath.py"))
        validator = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(validator)
        payload = ana.report()
        assert payload["schema"] == CRITPATH_SCHEMA
        with open(os.path.join(here, "..", "..", "docs", "schemas",
                               "critpath-1.schema.json")) as f:
            schema = json.load(f)
        errors = []
        validator.validate(payload, schema, schema, "$", errors)
        validator.check_invariants(payload, 1e-6, errors)
        assert errors == []
        # the payload round-trips through JSON
        assert json.loads(ana.to_json())["schema"] == CRITPATH_SCHEMA

    def test_text_surfaces(self, ana):
        line = ana.summary_line()
        assert "slackness" in line and "makespan" in line
        text = ana.render_text()
        for heading in ("critical path", "attribution", "what-if"):
            assert heading in text


class TestDegenerateTraces:
    """Satellite: pathological traces must not crash the analyses."""

    def _analysis(self, trace):
        return CritPathAnalysis(trace, CausalRecorder())

    def _exercise(self, trace):
        ana = self._analysis(trace)
        cp = ana.critical_path()
        assert cp["length_s"] == pytest.approx(ana.makespan, rel=1e-9)
        ana.attribution()
        ana.stragglers()
        ana.overlap()
        ana.what_if()
        ana.flow_records()
        ana.report()
        ana.render_text()
        ana.summary_line()
        return ana

    def test_empty_trace(self):
        tr = Trace()
        assert TraceAnalysis(tr).idle_fraction(0) == 0.0
        ana = self._exercise(tr)
        assert ana.makespan == 0.0
        assert ana.critical_path()["segments"] == []

    def test_zero_duration_events(self):
        tr = Trace()
        tr.record(H2D, "c", lane="gpu0", start=0.0, end=0.0, device=0)
        tr.record(KERNEL, "k", lane="gpu0", start=0.0, end=0.0, device=0)
        TraceAnalysis(tr).device_summary(0)
        self._exercise(tr)

    def test_identical_stamps(self):
        tr = Trace()
        for name in ("a", "b", "c"):
            tr.record(KERNEL, name, lane="gpu0", start=1.0, end=2.0,
                      device=0)
        TraceAnalysis(tr).device_summary(0)
        ana = self._exercise(tr)
        assert ana.makespan == 2.0

    def test_single_lane(self):
        tr = Trace()
        tr.record(H2D, "in", lane="gpu0", start=0.0, end=1.0, device=0)
        tr.record(KERNEL, "k", lane="gpu0", start=1.0, end=3.0, device=0)
        tr.record(D2H, "out", lane="gpu0", start=3.0, end=4.0, device=0)
        ana = self._exercise(tr)
        attr = ana.attribution()
        assert len(attr["lanes"]) == 1
        lane = attr["lanes"][0]
        assert sum(lane[k] for k in BUCKETS) == pytest.approx(4.0)
        assert lane["compute_s"] == pytest.approx(2.0)
        assert lane["transfer_s"] == pytest.approx(2.0)

    def test_host_only_trace(self):
        tr = Trace()
        tr.record(HOST, "t", lane="host", start=0.0, end=1.0)
        ana = self._exercise(tr)
        assert ana.attribution()["lanes"] == []  # no device lanes

    def test_events_without_recorded_edges(self):
        # a traced run whose recorder saw nothing: pure trace-driven path
        tr = Trace()
        tr.record(KERNEL, "k0", lane="gpu0", start=0.0, end=2.0, device=0)
        tr.record(KERNEL, "k1", lane="gpu1", start=1.0, end=5.0, device=1)
        ana = self._exercise(tr)
        assert ana.critical_path()["length_s"] == pytest.approx(5.0)


class TestCLISmoke:
    ARGS = ["--n-functional", "48", "--steps", "2"]

    def test_analyze_text(self, capsys):
        from repro.cli import main
        assert main(["analyze", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "slackness" in out
        assert "what-if" in out

    def test_analyze_json_and_trace(self, capsys, tmp_path):
        from repro.cli import main
        trace_path = tmp_path / "cp_trace.json"
        assert main(["analyze", *self.ARGS, "--json",
                     "--trace-json", str(trace_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == CRITPATH_SCHEMA
        assert payload["critical_path"]["length_s"] == pytest.approx(
            payload["makespan_s"], rel=1e-6)
        records = json.loads(trace_path.read_text())["traceEvents"]
        assert any(r.get("ph") == "s" for r in records)
        assert any(r.get("ph") == "f" for r in records)

    def test_somier_analyze_flag(self, capsys):
        from repro.cli import main
        assert main(["somier", *self.ARGS, "--analyze"]) == 0
        assert "slackness" in capsys.readouterr().out

    def test_stats_prints_slackness(self, capsys):
        from repro.cli import main
        assert main(["stats", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "slackness" in out
        assert "critical path:" in out
