"""Unit tests for the metrics registry instruments."""

import json

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes_moved", device=0, dir="h2d")
        c.inc(100.0)
        c.inc(0.5)
        assert c.value == 100.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            MetricsRegistry().counter("x").inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        # label order must not matter
        a = reg.counter("bytes_moved", device=0, dir="h2d")
        b = reg.counter("bytes_moved", dir="h2d", device=0)
        assert a is b

    def test_qualified_key(self):
        c = MetricsRegistry().counter("bytes_moved", device=3, dir="d2h")
        assert c.key == "bytes_moved{device=3,dir=d2h}"
        assert MetricsRegistry().counter("plain").key == "plain"

    def test_counter_value_defaults_to_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("never_touched", device=7) == 0.0

    def test_sum_counter_over_label_subset(self):
        reg = MetricsRegistry()
        reg.counter("memcpy_calls", device=0, dir="h2d").inc(3)
        reg.counter("memcpy_calls", device=0, dir="d2h").inc(2)
        reg.counter("memcpy_calls", device=1, dir="h2d").inc(10)
        assert reg.sum_counter("memcpy_calls", device=0) == 5
        assert reg.sum_counter("memcpy_calls") == 15


class TestGauge:
    def test_set_and_high_water_mark(self):
        g = MetricsRegistry().gauge("tasks_in_flight")
        g.set(3)
        g.set(1)
        assert g.value == 1 and g.max_value == 3

    def test_add_tracks_max(self):
        g = MetricsRegistry().gauge("tasks_in_flight")
        g.add(1)
        g.add(1)
        g.add(-2)
        assert g.value == 0 and g.max_value == 2


class TestTimerHist:
    def test_cumulative_buckets_and_overflow(self):
        t = MetricsRegistry().timer("lat", buckets=(1e-3, 1.0))
        t.observe(1e-4)   # first bucket
        t.observe(0.5)    # second bucket
        t.observe(50.0)   # overflow
        assert t.bucket_counts == [1, 1, 1]
        assert t.count == 3
        assert t.sum == pytest.approx(50.5001)
        assert t.min == pytest.approx(1e-4)
        assert t.max == 50.0
        assert t.mean == pytest.approx(50.5001 / 3)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            MetricsRegistry().timer("lat").observe(-0.1)

    def test_bad_buckets_rejected(self):
        from repro.obs.metrics import TimerHist

        with pytest.raises(ValueError, match="positive"):
            TimerHist("a", buckets=())
        with pytest.raises(ValueError, match="positive"):
            TimerHist("b", buckets=(0.0, 1.0))
        # the registry falls back to the defaults for an empty spec
        assert MetricsRegistry().timer("c", buckets=()).buckets == \
            DEFAULT_BUCKETS

    def test_default_buckets_cover_cost_model_span(self):
        assert DEFAULT_BUCKETS[0] <= 1e-6 and DEFAULT_BUCKETS[-1] >= 100.0


class TestSnapshot:
    def make(self):
        reg = MetricsRegistry()
        reg.counter("kernels_launched", device=1).inc(4)
        reg.counter("kernels_launched", device=0).inc(2)
        reg.gauge("tasks_in_flight").set(5)
        reg.timer("kernel_time", device=0).observe(0.25)
        return reg

    def test_snapshot_is_sorted_and_jsonable(self):
        snap = self.make().snapshot()
        assert list(snap) == ["counters", "gauges", "timers"]
        assert list(snap["counters"]) == [
            "kernels_launched{device=0}", "kernels_launched{device=1}"]
        timer = snap["timers"]["kernel_time{device=0}"]
        assert timer["count"] == 1 and timer["sum"] == 0.25
        assert timer["overflow"] == 0
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_deterministic_across_instances(self):
        assert self.make().snapshot() == self.make().snapshot()

    def test_render_text_tables(self):
        text = self.make().render_text()
        assert "counter" in text and "gauge" in text and "timer" in text
        assert "kernels_launched{device=0}" in text
        # aligned: every table row shares its header's separator width
        lines = text.splitlines()
        sep_lines = [l for l in lines if set(l) <= {"-", "+"} and "-" in l]
        assert len(sep_lines) == 3  # one per counter/gauge/timer table

    def test_render_text_empty(self):
        assert MetricsRegistry().render_text() == "(no metrics recorded)"
