"""Unit tests for the profiling report layer (text tables + JSON)."""

import json

import pytest

from repro.bench.machines import (
    paper_devices,
    paper_machine,
    paper_somier_config,
)
from repro.obs import MetricsRegistry, ProfileReport, Profiler
from repro.obs.report import PROFILE_SCHEMA
from repro.somier import run_somier


@pytest.fixture(scope="module")
def profiled():
    topo, cm = paper_machine(2, n_functional=24)
    cfg = paper_somier_config(n_functional=24, steps=2)
    prof = Profiler()
    result = run_somier("one_buffer", cfg, devices=paper_devices(2),
                        topology=topo, cost_model=cm, tools=prof.tools)
    return result, prof


class TestRows:
    def test_per_directive_rows(self, profiled):
        result, prof = profiled
        rows = prof.report(result.elapsed).per_directive_rows()
        by_kind = {r["kind"]: r for r in rows}
        assert "target spread" in by_kind
        spread = by_kind["target spread"]
        assert spread["count"] > 0
        # span-extended totals: nowait directives still show real time
        assert spread["total_s"] > 0
        assert spread["mean_s"] == pytest.approx(
            spread["total_s"] / spread["count"])
        assert spread["max_s"] <= spread["total_s"] + 1e-12
        assert spread["chunks"] > 0

    def test_per_device_rows(self, profiled):
        result, prof = profiled
        rows = prof.report(result.elapsed).per_device_rows()
        assert [r["device"] for r in rows] == [0, 1]
        for r in rows:
            assert r["h2d_bytes"] > 0 and r["d2h_bytes"] > 0
            assert r["memcpys"] > 0 and r["kernels"] > 0
            assert r["kernel_s"] > 0 and r["queue_busy_s"] > 0
            assert r["present_hits"] > 0 and r["submits"] > 0


class TestRenderText:
    def test_tables_present_and_aligned(self, profiled):
        result, prof = profiled
        text = prof.report(result.elapsed).render_text()
        assert "Per-directive profile" in text
        assert "Per-device profile" in text
        assert "makespan:" in text and "tasks spawned:" in text
        lines = text.splitlines()
        # alignment: each table's header and dashed separator agree on the
        # column boundaries
        for first_col in ("directive ", "device "):
            idx = next(i for i, l in enumerate(lines)
                       if l.startswith(first_col))
            header, sep = lines[idx], lines[idx + 1]
            assert set(sep) <= {"-", "+"}
            assert len(sep) == len(header)
            assert [i for i, ch in enumerate(header) if ch == "|"] == \
                [i for i, ch in enumerate(sep) if ch == "+"]

    def test_empty_registry_renders_placeholder(self):
        text = ProfileReport(MetricsRegistry()).render_text()
        assert "(no profile data recorded)" in text
        assert "makespan: 0.000000s" in text


class TestJson:
    def test_round_trip(self, profiled):
        result, prof = profiled
        payload = json.loads(prof.report(result.elapsed).to_json(indent=2))
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["makespan_s"] == pytest.approx(result.elapsed)
        assert payload["directives"] and payload["devices"]
        assert payload["counters"]["counters"]
        assert payload["spans"]["directives"] > 0
        assert payload["spans"]["tasks"] > 0
        assert payload["spans"]["ops"] > 0
        # re-serializable (no exotic types leaked through)
        assert json.loads(json.dumps(payload)) == payload

    def test_json_without_spans(self):
        reg = MetricsRegistry()
        reg.counter("directives", kind="target").inc()
        payload = json.loads(ProfileReport(reg, makespan=1.5).to_json())
        assert "spans" not in payload
        assert payload["makespan_s"] == 1.5


class TestProfilerBundle:
    def test_tools_and_registry(self):
        prof = Profiler()
        assert prof.tools == (prof.metrics, prof.spans)
        assert prof.registry is prof.metrics.registry

    def test_chrome_trace_merges_spans(self, profiled):
        result, prof = profiled
        doc = json.loads(prof.chrome_trace(result.runtime.trace))
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {0, 1}  # raw device lanes + span lanes
