"""Executor epoch events flow into MetricsTool and the profiling report."""

import json

import pytest

from repro.obs import Profiler
from repro.obs.builtin import MetricsTool
from repro.sim.topology import cte_power_node
from repro.somier import SomierConfig, run_somier
from repro.somier.plan import chunk_footprint_bytes

CFG = SomierConfig(n=18, steps=3)


@pytest.fixture(scope="module")
def profiled_parallel():
    cap = chunk_footprint_bytes(CFG, 4) / 0.8
    topo = cte_power_node(4, memory_bytes=cap)
    prof = Profiler()
    # Pin the small-op floor off so the pool engages even on a
    # single-core host (whose default floor inlines every op).
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_EXECUTOR_MIN_BYTES", "0")
        result = run_somier("one_buffer", CFG, topology=topo, workers=3,
                            tools=prof.tools)
    return result, prof


def counter_value(reg, name):
    counters = reg.counters(name)
    return sum(c.value for c in counters)


class TestMetricCounters:
    def test_epoch_and_op_counters_populated(self, profiled_parallel):
        result, prof = profiled_parallel
        reg = prof.registry
        assert counter_value(reg, "executor_epochs") > 0
        assert counter_value(reg, "executor_parallel_ops") > 0
        # counters cross-check against the driver's stats block
        assert counter_value(reg, "executor_epochs") == \
            result.stats["executor_epochs"]
        assert counter_value(reg, "executor_parallel_ops") == \
            result.stats["executor_parallel_ops"]
        assert counter_value(reg, "executor_inline_fallbacks") == \
            result.stats["executor_inline_fallbacks"]

    def test_utilization_gauge_in_range(self, profiled_parallel):
        _result, prof = profiled_parallel
        gauges = prof.registry.gauges("executor_worker_utilization")
        assert len(gauges) == 1
        assert 0.0 <= gauges[0].value <= 1.0

    def test_direct_callback_accumulates(self):
        tool = MetricsTool()
        tool.on_executor_epoch(ops=4, mode="parallel", workers=2,
                               busy_s=2.0, span_s=2.0, inline=0)
        tool.on_executor_epoch(ops=1, mode="serial", workers=2,
                               busy_s=0.5, span_s=0.5, inline=1)
        reg = tool.registry
        assert counter_value(reg, "executor_epochs") == 2
        assert counter_value(reg, "executor_parallel_ops") == 4
        assert counter_value(reg, "executor_serial_ops") == 1
        assert counter_value(reg, "executor_inline_fallbacks") == 1
        # utilization reflects the parallel wave only: 2.0 / (2.0 * 2)
        util = reg.gauges("executor_worker_utilization")[0]
        assert util.value == pytest.approx(0.5)


class TestReportSurface:
    def test_summary_block(self, profiled_parallel):
        result, prof = profiled_parallel
        ex = prof.report(result.elapsed).executor_summary()
        assert ex is not None
        assert ex["epochs"] == result.stats["executor_epochs"]
        assert ex["parallel_ops"] == result.stats["executor_parallel_ops"]
        assert 0.0 <= ex["worker_utilization"] <= 1.0

    def test_text_report_mentions_executor(self, profiled_parallel):
        result, prof = profiled_parallel
        text = prof.report(result.elapsed).render_text()
        assert "executor:" in text
        assert "parallel ops" in text
        assert "utilization" in text

    def test_json_report_has_executor_block(self, profiled_parallel):
        result, prof = profiled_parallel
        payload = json.loads(prof.report(result.elapsed).to_json())
        assert "executor" in payload
        block = payload["executor"]
        for key in ("epochs", "parallel_ops", "serial_ops",
                    "inline_fallbacks", "worker_utilization"):
            assert key in block

    def test_serial_report_omits_executor_block(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        cap = chunk_footprint_bytes(CFG, 4) / 0.8
        topo = cte_power_node(4, memory_bytes=cap)
        prof = Profiler()
        result = run_somier("one_buffer", CFG, topology=topo,
                            tools=prof.tools)
        report = prof.report(result.elapsed)
        assert report.executor_summary() is None
        assert "executor:" not in report.render_text()
        assert "executor" not in json.loads(report.to_json())
