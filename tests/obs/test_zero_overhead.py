"""Acceptance tests: registering tools must not perturb the simulation.

The OMPT zero-cost contract, transposed to virtual time: a run with the
full profiler attached must be *bit-identical* to the bare run — same
elapsed virtual seconds, same results, same trace events — because tool
callbacks are synchronous Python that never touches the simulator.
"""

import numpy as np

from repro.bench.machines import (
    paper_devices,
    paper_machine,
    paper_somier_config,
)
from repro.obs import Profiler
from repro.somier import run_somier


def _run(impl, gpus, tools=(), n=24):
    topo, cm = paper_machine(gpus, n_functional=n)
    cfg = paper_somier_config(n_functional=n, steps=2)
    return run_somier(impl, cfg, devices=paper_devices(gpus), topology=topo,
                      cost_model=cm, tools=tools)


def _event_tuples(trace):
    return [(e.category, e.name, e.lane, e.start, e.end, e.device,
             tuple(sorted(e.meta.items())))
            for e in trace.events]


class TestBitIdentical:
    def test_profiled_run_matches_bare_run(self):
        bare = _run("one_buffer", 4)
        prof = Profiler()
        instrumented = _run("one_buffer", 4, tools=prof.tools)
        # the tools actually observed the run...
        assert instrumented.runtime.tools.dispatch_count > 0
        assert prof.registry.counter_value("tasks_spawned") > 0
        # ...without changing a single bit of it
        assert instrumented.elapsed == bare.elapsed
        assert np.array_equal(instrumented.centers, bare.centers)
        for k in bare.state.grids:
            assert np.array_equal(instrumented.state.grids[k],
                                  bare.state.grids[k])
        assert _event_tuples(instrumented.runtime.trace) == \
            _event_tuples(bare.runtime.trace)

    def test_double_buffering_also_unperturbed(self):
        # the most schedule-sensitive implementation: overlap of compute
        # and transfer would expose any accidental simulator interaction
        bare = _run("double_buffering", 4, n=48)
        instrumented = _run("double_buffering", 4, tools=Profiler().tools,
                            n=48)
        assert instrumented.elapsed == bare.elapsed
        assert _event_tuples(instrumented.runtime.trace) == \
            _event_tuples(bare.runtime.trace)

    def test_dispatch_count_zero_without_tools(self):
        bare = _run("one_buffer", 2)
        assert not bare.runtime.tools
        assert bare.runtime.tools.dispatch_count == 0
