"""Unit tests for the shared ``REPRO_*`` env-knob parsers."""

import pytest

from repro.util import envknobs

KNOB = "REPRO_TEST_KNOB"


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(KNOB, raising=False)


class TestEnvRaw:
    def test_unset_is_none(self):
        assert envknobs.env_raw(KNOB) is None

    def test_empty_and_whitespace_are_none(self, monkeypatch):
        monkeypatch.setenv(KNOB, "")
        assert envknobs.env_raw(KNOB) is None
        monkeypatch.setenv(KNOB, "   ")
        assert envknobs.env_raw(KNOB) is None

    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv(KNOB, "  cluster:2x2 ")
        assert envknobs.env_raw(KNOB) == "cluster:2x2"


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "TRUE", "On"])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv(KNOB, raw)
        assert envknobs.env_flag(KNOB) is True

    @pytest.mark.parametrize("raw", ["0", "false", "no", "off", "FALSE"])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv(KNOB, raw)
        assert envknobs.env_flag(KNOB, default=True) is False

    def test_default_used_when_unset(self):
        assert envknobs.env_flag(KNOB) is False
        assert envknobs.env_flag(KNOB, default=True) is True

    def test_junk_raises_naming_the_knob(self, monkeypatch):
        monkeypatch.setenv(KNOB, "maybe")
        with pytest.raises(ValueError, match=KNOB):
            envknobs.env_flag(KNOB)


class TestEnvInt:
    def test_unset_returns_default(self):
        assert envknobs.env_int(KNOB) is None
        assert envknobs.env_int(KNOB, default=7) == 7

    def test_parses(self, monkeypatch):
        monkeypatch.setenv(KNOB, " 42 ")
        assert envknobs.env_int(KNOB) == 42

    def test_junk_raises_naming_the_knob(self, monkeypatch):
        monkeypatch.setenv(KNOB, "many")
        with pytest.raises(ValueError, match=KNOB):
            envknobs.env_int(KNOB)

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(KNOB, "0")
        with pytest.raises(ValueError, match=">= 1"):
            envknobs.env_int(KNOB, minimum=1)
        monkeypatch.setenv(KNOB, "1")
        assert envknobs.env_int(KNOB, minimum=1) == 1
