"""Unit tests for formatting helpers."""

from repro.util.format import format_bytes, format_hms, format_table


class TestFormatHms:
    def test_paper_style(self):
        assert format_hms(17 * 60 + 40.231) == "17m40.231s"
        assert format_hms(8 * 60 + 22.019) == "8m22.019s"

    def test_sub_minute(self):
        assert format_hms(3.5) == "3.500s"

    def test_zero_and_negative(self):
        assert format_hms(0.0) == "0.000s"
        assert format_hms(-61.0) == "-1m01.000s"

    def test_minute_padding(self):
        assert format_hms(60.5) == "1m00.500s"
        assert format_hms(13 * 60 + 4.053) == "13m04.053s"


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(154.5e9) == "154.50 GB"
        assert format_bytes(2_000_000) == "2.00 MB"
        assert format_bytes(1500) == "1.50 KB"
        assert format_bytes(12) == "12 B"
        assert format_bytes(3.2e12) == "3.20 TB"


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["a", "long"], [["xxx", 1], ["y", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a  ")
        # all rows equally wide
        assert len(set(map(len, lines))) == 1

    def test_rows_longer_than_header(self):
        out = format_table(["h"], [["wider-cell"]])
        assert "wider-cell" in out
