"""Unit tests for the half-open interval algebra."""

import pytest

from repro.util.intervals import Interval, IntervalSet


class TestInterval:
    def test_basic_length_and_contains(self):
        iv = Interval(2, 7)
        assert len(iv) == 5
        assert 2 in iv and 6 in iv
        assert 7 not in iv and 1 not in iv
        assert not iv.empty

    def test_empty_interval(self):
        iv = Interval(5, 5)
        assert iv.empty
        assert len(iv) == 0
        assert 5 not in iv
        assert Interval(7, 3).empty

    def test_non_int_bounds_rejected(self):
        with pytest.raises(TypeError):
            Interval(0.5, 3)  # type: ignore[arg-type]

    def test_containment(self):
        outer = Interval(0, 10)
        assert outer.contains(Interval(0, 10))
        assert outer.contains(Interval(3, 7))
        assert not outer.contains(Interval(5, 11))
        # the empty interval is contained everywhere
        assert outer.contains(Interval(4, 4))

    def test_overlap(self):
        a = Interval(0, 5)
        assert a.overlaps(Interval(4, 9))
        assert a.overlaps(Interval(0, 1))
        assert not a.overlaps(Interval(5, 9))  # half-open: touching != overlap
        assert not a.overlaps(Interval(7, 7))

    def test_extends_is_overlap_without_containment(self):
        entry = Interval(0, 8)
        assert Interval(4, 12).extends(entry)
        assert not Interval(2, 6).extends(entry)       # contained
        assert not Interval(8, 12).extends(entry)      # disjoint
        assert not Interval(0, 8).extends(entry)       # equal

    def test_adjacent(self):
        assert Interval(0, 3).adjacent(Interval(3, 5))
        assert Interval(3, 5).adjacent(Interval(0, 3))
        assert not Interval(0, 3).adjacent(Interval(4, 5))
        assert not Interval(0, 3).adjacent(Interval(2, 5))

    def test_intersection_and_hull(self):
        a, b = Interval(0, 6), Interval(4, 10)
        assert a.intersection(b) == Interval(4, 6)
        assert a.union_hull(b) == Interval(0, 10)
        assert a.intersection(Interval(8, 9)).empty

    def test_shift_clamp_split(self):
        iv = Interval(2, 8)
        assert iv.shift(3) == Interval(5, 11)
        assert iv.clamp(4, 6) == Interval(4, 6)
        left, right = iv.split_at(5)
        assert left == Interval(2, 5) and right == Interval(5, 8)
        left, right = iv.split_at(100)
        assert left == iv and right.empty

    def test_as_slice(self):
        assert Interval(1, 4).as_slice() == slice(1, 4)

    def test_ordering(self):
        assert Interval(1, 3) < Interval(2, 3)
        assert sorted([Interval(5, 6), Interval(0, 9)])[0] == Interval(0, 9)


class TestIntervalSet:
    def test_add_merges_overlapping(self):
        s = IntervalSet([Interval(0, 3), Interval(2, 6)])
        assert list(s) == [Interval(0, 6)]

    def test_add_merges_adjacent(self):
        s = IntervalSet([Interval(0, 3), Interval(3, 5)])
        assert list(s) == [Interval(0, 5)]

    def test_add_keeps_disjoint_sorted(self):
        s = IntervalSet([Interval(6, 8), Interval(0, 2)])
        assert list(s) == [Interval(0, 2), Interval(6, 8)]
        assert s.total() == 4

    def test_add_empty_is_noop(self):
        s = IntervalSet()
        s.add(Interval(3, 3))
        assert not s

    def test_remove_splits(self):
        s = IntervalSet([Interval(0, 10)])
        s.remove(Interval(3, 6))
        assert list(s) == [Interval(0, 3), Interval(6, 10)]
        assert s.total() == 7

    def test_remove_entire(self):
        s = IntervalSet([Interval(0, 4)])
        s.remove(Interval(0, 4))
        assert not s

    def test_covers(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 9)])
        assert s.covers(Interval(1, 3))
        assert s.covers(Interval(8, 8))  # empty
        assert not s.covers(Interval(3, 7))  # spans the gap

    def test_find_overlapping(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 9)])
        assert s.find_overlapping(Interval(3, 7)) == [Interval(0, 4),
                                                      Interval(6, 9)]
        assert s.find_overlapping(Interval(4, 6)) == []

    def test_first_gap(self):
        occupied = IntervalSet([Interval(0, 4), Interval(6, 9)])
        assert occupied.first_gap(2) == 4
        assert occupied.first_gap(3) == 9
        assert occupied.first_gap(3, hi=9) is None
        assert occupied.first_gap(0) == 0

    def test_equality(self):
        assert IntervalSet([Interval(0, 3)]) == IntervalSet([Interval(0, 2),
                                                             Interval(2, 3)])


class TestIntervalEdgeCases:
    """Boundary semantics the analysis passes lean on."""

    def test_touching_intervals_do_not_overlap(self):
        a, b = Interval(0, 4), Interval(4, 8)
        assert not a.overlaps(b) and not b.overlaps(a)
        assert a.adjacent(b) and b.adjacent(a)

    def test_one_element_overlap_is_overlap(self):
        assert Interval(0, 5).overlaps(Interval(4, 8))

    def test_empty_interval_is_contained_in_anything(self):
        empty = Interval(3, 3)
        assert Interval(10, 12).contains(empty)
        assert empty.contains(empty)
        assert not empty.overlaps(Interval(0, 100))
        assert not empty.adjacent(Interval(3, 5))

    def test_intersection_of_disjoint_is_empty(self):
        inter = Interval(0, 3).intersection(Interval(7, 9))
        assert inter.empty and len(inter) == 0

    def test_union_hull_with_empty_side(self):
        a, empty = Interval(2, 5), Interval(9, 9)
        assert a.union_hull(empty) == a
        assert empty.union_hull(a) == a

    def test_union_hull_spans_gap(self):
        assert Interval(0, 2).union_hull(Interval(8, 9)) == Interval(0, 9)

    def test_clamp_can_produce_empty(self):
        assert Interval(0, 4).clamp(6, 10).empty

    def test_split_at_out_of_range_clamps(self):
        a = Interval(2, 8)
        left, right = a.split_at(100)
        assert (left, right) == (Interval(2, 8), Interval(8, 8))
        left, right = a.split_at(-5)
        assert (left, right) == (Interval(2, 2), Interval(2, 8))

    def test_negative_coordinates(self):
        a = Interval(-8, -2)
        assert len(a) == 6 and -3 in a and -9 not in a
        assert a.shift(10) == Interval(2, 8)

    def test_extends_requires_partial_overlap(self):
        entry = Interval(4, 8)
        assert Interval(6, 10).extends(entry)   # reaches beyond
        assert Interval(0, 6).extends(entry)    # reaches before
        assert not Interval(5, 7).extends(entry)  # contained
        assert not Interval(8, 12).extends(entry)  # only adjacent


class TestIntervalSetEdgeCases:
    def test_covers_requires_a_single_entry(self):
        # A gap of one element defeats coverage even though both ends are in.
        s = IntervalSet([Interval(0, 5), Interval(6, 10)])
        assert not s.covers(Interval(0, 10))
        assert s.covers(Interval(1, 4)) and s.covers(Interval(6, 10))

    def test_adjacent_adds_coalesce_into_coverage(self):
        s = IntervalSet()
        s.add(Interval(0, 5))
        s.add(Interval(5, 10))
        assert len(s) == 1 and s.covers(Interval(2, 9))

    def test_covers_empty_always(self):
        assert IntervalSet().covers(Interval(4, 4))

    def test_remove_punches_hole(self):
        s = IntervalSet([Interval(0, 10)])
        s.remove(Interval(3, 6))
        assert list(s) == [Interval(0, 3), Interval(6, 10)]
        assert s.total() == 7

    def test_remove_empty_and_disjoint_are_noops(self):
        s = IntervalSet([Interval(0, 4)])
        s.remove(Interval(2, 2))
        s.remove(Interval(10, 20))
        assert list(s) == [Interval(0, 4)]

    def test_remove_everything_leaves_falsy_set(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 8)])
        s.remove(Interval(0, 8))
        assert not s and len(s) == 0 and s.total() == 0

    def test_add_bridging_merges_three_entries(self):
        s = IntervalSet([Interval(0, 2), Interval(4, 6), Interval(8, 10)])
        s.add(Interval(2, 8))
        assert list(s) == [Interval(0, 10)]

    def test_first_gap_respects_hi_bound(self):
        occupied = IntervalSet([Interval(0, 4)])
        assert occupied.first_gap(4, lo=0, hi=8) == 4
        assert occupied.first_gap(5, lo=0, hi=8) is None
        assert occupied.first_gap(5, lo=0) == 4  # unbounded above

    def test_equality_ignores_construction_order(self):
        a = IntervalSet([Interval(4, 6), Interval(0, 2)])
        b = IntervalSet([Interval(0, 2), Interval(4, 6)])
        assert a == b
        assert a != IntervalSet([Interval(0, 6)])
        assert a.__eq__(42) is NotImplemented


class TestBatchHelpers:
    """The NumPy batch helpers must agree with the scalar algebra
    pointwise — the macro-op replay engine and the executor's wave
    planner both substitute them for per-pair Interval calls."""

    def _random_intervals(self, n=60, seed=99):
        import numpy as np

        rng = np.random.default_rng(seed)
        starts = rng.integers(-50, 200, size=n)
        widths = rng.integers(0, 40, size=n)  # width 0 -> empty interval
        return [Interval(int(s), int(s + w))
                for s, w in zip(starts, widths)]

    def test_pack_unpack_roundtrip(self):
        from repro.util.intervals import pack_intervals, unpack_intervals

        ivs = self._random_intervals()
        packed = pack_intervals(ivs)
        assert packed.shape == (len(ivs), 2)
        assert packed.dtype.kind == "i"
        assert unpack_intervals(packed) == ivs

    def test_pack_empty_sequence(self):
        from repro.util.intervals import batch_widths, pack_intervals

        packed = pack_intervals([])
        assert packed.shape == (0, 2)
        assert batch_widths(packed).shape == (0,)

    def test_batch_widths_matches_len(self):
        from repro.util.intervals import batch_widths, pack_intervals

        ivs = self._random_intervals()
        widths = batch_widths(pack_intervals(ivs))
        assert list(widths) == [len(iv) for iv in ivs]

    def test_overlap_matrix_matches_scalar(self):
        import numpy as np

        from repro.util.intervals import batch_overlap_matrix, pack_intervals

        ivs = self._random_intervals()
        packed = pack_intervals(ivs)
        mat = batch_overlap_matrix(packed, packed)
        scalar = np.array([[a.overlaps(b) for b in ivs] for a in ivs])
        assert np.array_equal(mat, scalar)

    def test_contains_matrix_matches_scalar(self):
        import numpy as np

        from repro.util.intervals import batch_contains, pack_intervals

        ivs = self._random_intervals()
        packed = pack_intervals(ivs)
        mat = batch_contains(packed, packed)
        scalar = np.array([[a.contains(b) for b in ivs] for a in ivs])
        assert np.array_equal(mat, scalar)

    def test_any_overlap(self):
        from repro.util.intervals import batch_any_overlap, pack_intervals

        a = pack_intervals([Interval(0, 4), Interval(10, 12)])
        b = pack_intervals([Interval(4, 10)])
        assert not batch_any_overlap(a, b)  # touching is not overlap
        c = pack_intervals([Interval(3, 5)])
        assert batch_any_overlap(a, c)
        empty = pack_intervals([])
        assert not batch_any_overlap(a, empty)
        assert not batch_any_overlap(empty, a)

    def test_empty_intervals_never_overlap(self):
        from repro.util.intervals import batch_overlap_matrix, pack_intervals

        packed = pack_intervals([Interval(5, 5), Interval(0, 10)])
        mat = batch_overlap_matrix(packed, packed)
        assert not mat[0].any() and not mat[:, 0].any()
        assert mat[1, 1]
