"""Unit tests for the half-open interval algebra."""

import pytest

from repro.util.intervals import Interval, IntervalSet


class TestInterval:
    def test_basic_length_and_contains(self):
        iv = Interval(2, 7)
        assert len(iv) == 5
        assert 2 in iv and 6 in iv
        assert 7 not in iv and 1 not in iv
        assert not iv.empty

    def test_empty_interval(self):
        iv = Interval(5, 5)
        assert iv.empty
        assert len(iv) == 0
        assert 5 not in iv
        assert Interval(7, 3).empty

    def test_non_int_bounds_rejected(self):
        with pytest.raises(TypeError):
            Interval(0.5, 3)  # type: ignore[arg-type]

    def test_containment(self):
        outer = Interval(0, 10)
        assert outer.contains(Interval(0, 10))
        assert outer.contains(Interval(3, 7))
        assert not outer.contains(Interval(5, 11))
        # the empty interval is contained everywhere
        assert outer.contains(Interval(4, 4))

    def test_overlap(self):
        a = Interval(0, 5)
        assert a.overlaps(Interval(4, 9))
        assert a.overlaps(Interval(0, 1))
        assert not a.overlaps(Interval(5, 9))  # half-open: touching != overlap
        assert not a.overlaps(Interval(7, 7))

    def test_extends_is_overlap_without_containment(self):
        entry = Interval(0, 8)
        assert Interval(4, 12).extends(entry)
        assert not Interval(2, 6).extends(entry)       # contained
        assert not Interval(8, 12).extends(entry)      # disjoint
        assert not Interval(0, 8).extends(entry)       # equal

    def test_adjacent(self):
        assert Interval(0, 3).adjacent(Interval(3, 5))
        assert Interval(3, 5).adjacent(Interval(0, 3))
        assert not Interval(0, 3).adjacent(Interval(4, 5))
        assert not Interval(0, 3).adjacent(Interval(2, 5))

    def test_intersection_and_hull(self):
        a, b = Interval(0, 6), Interval(4, 10)
        assert a.intersection(b) == Interval(4, 6)
        assert a.union_hull(b) == Interval(0, 10)
        assert a.intersection(Interval(8, 9)).empty

    def test_shift_clamp_split(self):
        iv = Interval(2, 8)
        assert iv.shift(3) == Interval(5, 11)
        assert iv.clamp(4, 6) == Interval(4, 6)
        left, right = iv.split_at(5)
        assert left == Interval(2, 5) and right == Interval(5, 8)
        left, right = iv.split_at(100)
        assert left == iv and right.empty

    def test_as_slice(self):
        assert Interval(1, 4).as_slice() == slice(1, 4)

    def test_ordering(self):
        assert Interval(1, 3) < Interval(2, 3)
        assert sorted([Interval(5, 6), Interval(0, 9)])[0] == Interval(0, 9)


class TestIntervalSet:
    def test_add_merges_overlapping(self):
        s = IntervalSet([Interval(0, 3), Interval(2, 6)])
        assert list(s) == [Interval(0, 6)]

    def test_add_merges_adjacent(self):
        s = IntervalSet([Interval(0, 3), Interval(3, 5)])
        assert list(s) == [Interval(0, 5)]

    def test_add_keeps_disjoint_sorted(self):
        s = IntervalSet([Interval(6, 8), Interval(0, 2)])
        assert list(s) == [Interval(0, 2), Interval(6, 8)]
        assert s.total() == 4

    def test_add_empty_is_noop(self):
        s = IntervalSet()
        s.add(Interval(3, 3))
        assert not s

    def test_remove_splits(self):
        s = IntervalSet([Interval(0, 10)])
        s.remove(Interval(3, 6))
        assert list(s) == [Interval(0, 3), Interval(6, 10)]
        assert s.total() == 7

    def test_remove_entire(self):
        s = IntervalSet([Interval(0, 4)])
        s.remove(Interval(0, 4))
        assert not s

    def test_covers(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 9)])
        assert s.covers(Interval(1, 3))
        assert s.covers(Interval(8, 8))  # empty
        assert not s.covers(Interval(3, 7))  # spans the gap

    def test_find_overlapping(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 9)])
        assert s.find_overlapping(Interval(3, 7)) == [Interval(0, 4),
                                                      Interval(6, 9)]
        assert s.find_overlapping(Interval(4, 6)) == []

    def test_first_gap(self):
        occupied = IntervalSet([Interval(0, 4), Interval(6, 9)])
        assert occupied.first_gap(2) == 4
        assert occupied.first_gap(3) == 9
        assert occupied.first_gap(3, hi=9) is None
        assert occupied.first_gap(0) == 0

    def test_equality(self):
        assert IntervalSet([Interval(0, 3)]) == IntervalSet([Interval(0, 2),
                                                             Interval(2, 3)])
