"""CLI coverage for the table2 subcommand and fuse/data-depend flags."""

from repro.cli import main


class TestTable2Cli:
    def test_table2_tiny(self, capsys):
        # half-buffer variants need chunks of >= 2 rows, hence the
        # larger functional grid
        rc = main(["table2", "--n-functional", "96", "--steps", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "double_buffering" in out


class TestSomierFlags:
    def test_data_depend_flag(self, capsys):
        # dependence mode keeps consecutive buffers in flight, so the
        # same >= 2-row chunk rule applies
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "48", "--steps", "1",
                   "--data-depend", "--verify"])
        assert rc == 0
        assert "bitwise identical" in capsys.readouterr().out

    def test_fuse_transfers_flag(self, capsys):
        rc = main(["somier", "--impl", "one_buffer", "--gpus", "2",
                   "--n-functional", "24", "--steps", "1",
                   "--fuse-transfers", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bitwise identical" in out


class TestMachineCli:
    def test_machine_description(self, capsys):
        rc = main(["machine", "--gpus", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 socket(s)" in out
        assert "host staging" in out
        assert "V100" in out

    def test_machine_two_gpus_one_socket(self, capsys):
        rc = main(["machine", "--gpus", "2"])
        assert rc == 0
        assert "1 socket(s)" in capsys.readouterr().out
