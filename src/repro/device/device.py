"""The simulated accelerator device.

Execution model (calibrated against the paper's traces, see DESIGN.md §4):

* **One in-order queue per device.**  Copies and kernels issued to a device
  execute one at a time, in arrival order — the single-stream behaviour
  visible in the paper's Fig. 4, where kernels end up *interleaved* with
  transfers from a different buffer instead of overlapping them.
* **Per-socket shared wire.**  The DMA (wire) portion of a transfer also
  occupies the socket's host link, a FIFO shared by that socket's devices —
  so transfers never overlap on a socket ("transfers from different buffers
  did not overlap").
* **Global host staging.**  Pageable transfers stage through host memory
  (host DRAM <-> pinned buffer), a single FIFO resource shared by *all*
  devices and both directions.  Staging pipelines with the wire (the next
  memcpy stages while the current one is in flight), so one socket runs at
  wire speed, but with both sockets active the aggregate saturates at the
  staging bandwidth — the communication bottleneck that caps the paper's
  4-GPU speedup at ~2X.

An H2D memcpy: issue latency -> staging (snapshot of the host section) ->
device queue + socket link for the wire time -> functional copy into the
device buffer.  D2H mirrors it: wire first (snapshot of the device section),
staging and the host write afterwards.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping, Optional

import numpy as np

from repro.device.kernel import KernelSpec, LaunchConfig
from repro.device.memory import Allocation, DeviceAllocator
from repro.obs.tool import (DATA_OP, FAULT_EVENT, KERNEL_COMPLETE,
                            KERNEL_LAUNCH, ToolRegistry)
from repro.sim import executor as hx
from repro.sim import trace as tr
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector
from repro.sim.resources import Resource
from repro.sim.topology import (DeviceSpec, HostSpec, LinkSpec,
                                NetworkLinkSpec)
from repro.util.errors import (DeviceLostError, KernelFaultError,
                               NodeLostError, TransferFaultError)


def _prov_meta(proc) -> dict:
    """Directive/chunk/retry trace meta from the issuing process.

    Provenance rides on :class:`~repro.sim.engine.Process` (set by the
    directive layers, inherited by copy sub-processes) so it survives
    failover re-routing.  Recorded unconditionally — traces are
    bit-identical whether or not the critical-path recorder is attached.
    """
    meta: dict = {}
    if proc is None:
        return meta
    prov = proc.prov
    if prov is not None:
        meta["directive"] = prov[0]
        if prov[1] is not None:
            meta["chunk"] = prov[1]
        if len(prov) > 2 and prov[2] is not None:
            meta["rerouted_from"] = prov[2]
    retry = proc.retry
    if retry:
        meta["attempt"] = retry[0]
        meta["retry_of"] = retry[1]
    return meta


def _section_accesses(triples):
    """Access set for ``(owner, key, write)`` array sections.

    Returns None (→ the work item becomes an inline barrier) when any
    section cannot be proven to be a view into its owner — advanced
    indexing yields a copy, whose address says nothing about the owner.
    """
    out = []
    for owner, key, write in triples:
        view = owner if key is None else owner[key]
        if view is not owner and view.base is None:
            return None
        acc = hx.array_access(view, write)
        if acc is None:
            return None
        out.append(acc)
    return tuple(out)


class Device:
    """One simulated accelerator attached to a socket link."""

    def __init__(self, sim: Simulator, device_id: int, spec: DeviceSpec,
                 link: Resource, link_spec: LinkSpec,
                 staging: Resource, host_spec: HostSpec,
                 cost_model: CostModel, trace: tr.Trace,
                 tools: Optional[ToolRegistry] = None,
                 network: Optional[Resource] = None,
                 network_spec: Optional[NetworkLinkSpec] = None,
                 node_id: int = 0):
        self.sim = sim
        #: OMPT-style dispatch target; an empty registry is falsy, so every
        #: dispatch site below is a no-op truthiness check when untooled
        self.tools = tools if tools is not None else ToolRegistry()
        self.device_id = device_id
        self.spec = spec
        self.link = link
        self.link_spec = link_spec
        self.staging = staging
        self.host_spec = host_spec
        #: inter-node network link (FIFO shared by this node's devices), or
        #: None on the root node / single-node topologies.  When set, every
        #: transfer's bytes additionally traverse it (host-as-carrier: the
        #: host arrays live on the root node).
        self.network = network
        self.network_spec = network_spec
        self.node_id = node_id
        self.cost_model = cost_model
        self.trace = trace
        self.allocator = DeviceAllocator(spec.memory_bytes, device_id)
        #: fault source consulted at the top of every device op, or None
        #: (set by the runtime when fault injection is configured)
        self.fault_injector: Optional[FaultInjector] = None
        #: once True, every new operation fails immediately with
        #: :class:`DeviceLostError` — the device is gone for good
        self.lost = False
        #: the device's single in-order execution queue (copies + kernels)
        self.queue = Resource(sim, 1, name=f"gpu{device_id}")
        self._free_waiters: list = []
        # counters used by benchmark reports
        self.h2d_bytes = 0.0
        self.d2h_bytes = 0.0
        self.net_bytes = 0.0
        self.kernels_launched = 0
        self.memcpy_calls = 0

    # -- memory -----------------------------------------------------------------

    def allocate(self, shape, dtype=np.float64,
                 virtual_bytes: Optional[float] = None,
                 label: str = "") -> Allocation:
        """Allocate a device buffer (instantaneous; see DESIGN.md)."""
        alloc = self.allocator.allocate(shape, dtype=dtype,
                                        virtual_bytes=virtual_bytes,
                                        label=label)
        tools = self.tools
        if tools:
            tools.dispatch(DATA_OP, op="alloc", device=self.device_id,
                           bytes=alloc.virtual_bytes, name=label,
                           time=self.sim.now)
        return alloc

    def free(self, alloc: Allocation) -> None:
        self.allocator.free(alloc)
        tools = self.tools
        if tools:
            tools.dispatch(DATA_OP, op="free", device=self.device_id,
                           bytes=alloc.virtual_bytes, name=alloc.label,
                           time=self.sim.now)
        waiters, self._free_waiters = self._free_waiters, []
        for ev in waiters:
            ev.trigger(None)

    def synchronize(self) -> Generator:
        """Wait until every operation issued to this device so far completes.

        Models the device-wide synchronization cudaMalloc/cudaFree perform:
        a queue slot is claimed behind everything currently enqueued and
        released immediately once granted.
        """
        req = self.queue.request(tag="device-sync")
        yield req
        self.queue.release(req)

    def wait_for_free(self):
        """An event that triggers at the next :meth:`free` on this device.

        Used by the data environment's back-pressure path: an ``enter``
        that transiently exhausts device memory (e.g. the Double Buffering
        recursion prefetching a half whose predecessor has not drained yet)
        blocks until storage is released, then retries — instead of
        failing like a bare ``cudaMalloc`` would.
        """
        ev = self.sim.event()
        self._free_waiters.append(ev)
        return ev

    # -- fault surfacing -----------------------------------------------------------

    def _check_fault(self, op: str, name: str) -> None:
        """Raise the typed fault for *op* if the injector fires (or the
        device is already lost).

        Called at the very top of every device operation, *before* any
        resource request — a raised fault can never leave a queue, link or
        staging slot held.
        """
        if self.lost:
            raise DeviceLostError(
                f"device {self.device_id} is lost",
                device=self.device_id, op=op, name=name)
        inj = self.fault_injector
        if inj is None:
            return
        rule = inj.draw(op, self.device_id, node=self.node_id)
        if rule is None:
            return
        tools = self.tools
        if tools:
            tools.dispatch(FAULT_EVENT, kind="inject", fault=rule.op_class,
                           device=self.device_id, op=op, name=name,
                           time=self.sim.now)
        if rule.op_class == "node":
            self.lost = True
            raise NodeLostError(
                f"node {self.node_id} lost "
                f"(injected at {op} {name!r} on device {self.device_id})",
                device=self.device_id, op=op, name=name,
                node=self.node_id)
        if rule.op_class == "device":
            self.lost = True
            raise DeviceLostError(
                f"device {self.device_id} lost "
                f"(injected at {op} {name!r})",
                device=self.device_id, op=op, name=name)
        if op == "kernel":
            raise KernelFaultError(
                f"injected kernel-launch fault on device "
                f"{self.device_id} ({name!r})",
                device=self.device_id, op=op, name=name)
        raise TransferFaultError(
            f"injected {op} fault on device {self.device_id} ({name!r})",
            device=self.device_id, op=op, name=name)

    # -- staging helper ------------------------------------------------------------

    def _staging_time(self, virtual_bytes: float) -> float:
        return virtual_bytes / self.host_spec.staging_bandwidth_bytes_per_s

    # -- inter-node network hop ----------------------------------------------------

    def _network_hop(self, name: str, op, nbytes: float) -> Generator:
        """Carry *nbytes* across this node's inter-node link (FIFO).

        Returns ``(net_start, net_end)``.  Messages serialize on the
        node's single network resource — per-message latency and wire
        time are both paid while the link is held, so concurrent halo
        exchanges from one node's devices queue behind each other (the
        cluster-scale analogue of the shared socket wire).  The root-side
        DRAM landing is folded into the message cost; only the node-local
        staging buffer is modeled as a separate resource.
        """
        cost = self.cost_model.network_transfer(self.network_spec, nbytes)
        req = self.network.request(tag=name)
        req.owner = op
        yield req
        net_start = self.sim.now
        try:
            total = cost.latency + cost.wire_time
            if total > 0:
                yield self.sim.timeout(total)
        finally:
            net_end = self.sim.now
            self.network.release(req)
        self.net_bytes += cost.bytes
        return net_start, net_end

    # -- real work (decide here, execute via the backend) --------------------------
    #
    # The two helpers below are the decide/do split for transfers: shapes
    # and access sets are computed inline (decisions), the actual byte
    # movement goes through Simulator.run_work, which either runs it on
    # the spot (serial) or defers it into the parallel backend's window.

    def _snapshot_sections(self, sections, name: str):
        """Allocate snapshot buffers for ``(owner, key)`` sections and
        defer the reads that fill them."""
        snaps = [np.empty_like(src[sk]) for src, sk in sections]

        def work() -> None:
            for snap, (src, sk) in zip(snaps, sections):
                np.copyto(snap, src[sk])

        def accesses():
            acc = _section_accesses(
                [(src, sk, False) for src, sk in sections])
            if acc is None:
                return None
            return acc + tuple(hx.array_access(s, write=True) for s in snaps)

        self.sim.run_work(work, accesses, name=name)
        return snaps

    def _commit_sections(self, targets, snapshots, name: str) -> None:
        """Defer the writes ``owner[key] = snapshot`` for paired lists."""
        def work() -> None:
            for (dst, dk), snap in zip(targets, snapshots):
                dst[dk] = snap

        def accesses():
            acc = _section_accesses(
                [(dst, dk, True) for dst, dk in targets])
            if acc is None:
                return None
            return acc + tuple(hx.array_access(s, write=False)
                               for s in snapshots)

        self.sim.run_work(work, accesses, name=name)

    # -- transfers ---------------------------------------------------------------

    def copy_h2d(self, src: np.ndarray, src_key: Any,
                 dst: np.ndarray, dst_key: Any,
                 name: str = "memcpy") -> Generator:
        """One host-to-device memcpy of ``src[src_key] -> dst[dst_key]``."""
        yield from self._copy_h2d_batch([(src, src_key, dst, dst_key)], name,
                                        fused=False)

    def copy_d2h(self, src: np.ndarray, src_key: Any,
                 dst: np.ndarray, dst_key: Any,
                 name: str = "memcpy") -> Generator:
        """One device-to-host memcpy (see :meth:`copy_h2d`)."""
        yield from self._copy_d2h_batch([(src, src_key, dst, dst_key)], name,
                                        fused=False)

    def copy_h2d_batch(self, copies, name: str = "memcpy-batch") -> Generator:
        """A fused host-to-device transfer of several array sections.

        Pays the per-call latency once and stages/wires the summed bytes in
        one go — the counterfactual to the paper's 12 sequential memcpy
        calls per chunk (Section VI-B discusses this granularity problem;
        the ablation benchmark quantifies it).
        """
        yield from self._copy_h2d_batch(list(copies), name, fused=True)

    def copy_d2h_batch(self, copies, name: str = "memcpy-batch") -> Generator:
        """Fused device-to-host transfer (see :meth:`copy_h2d_batch`)."""
        yield from self._copy_d2h_batch(list(copies), name, fused=True)

    def _copy_h2d_batch(self, copies, name: str, fused: bool) -> Generator:
        if not copies:
            return
        self._check_fault("h2d", name)
        proc = self.sim.current_process
        rec = self.sim.recorder
        op = rec.op_begin(proc) if rec is not None else None
        nbytes = sum(src[sk].nbytes for src, sk, _d, _dk in copies)
        cost = self.cost_model.transfer(self.link_spec, nbytes)
        issue_ts = self.sim.now
        # Claim the stream slot at ISSUE time: like a CUDA stream, the
        # operation's position in the device's in-order queue is fixed when
        # it is enqueued, not when its staging happens to finish.  This is
        # what pins a buffer's kernels *behind* the next buffer's already
        # issued transfers (the paper's Fig. 4 interleaving).
        queue_req = self.queue.request(tag=name)
        queue_req.owner = op
        if cost.latency > 0:
            yield self.sim.timeout(cost.latency)
        # Stage: snapshot the host sections through the shared staging path.
        staging_req = self.staging.request(tag=name)
        staging_req.owner = op
        yield staging_req
        st = self._staging_time(cost.bytes)
        if fused and len(copies) > 1:
            # A fused transfer pipelines its own staging with its wire (the
            # DMA streams a piece while the host stages the next): only the
            # lead-in piece is staged up front; the remainder occupies the
            # staging path concurrently with the wire (helper below).
            lead = st / len(copies)
        else:
            lead = st
        rest = st - lead
        try:
            if lead > 0:
                yield self.sim.timeout(lead)
            snapshots = self._snapshot_sections(
                [(src, sk) for src, sk, _d, _dk in copies],
                name=f"{name}:stage")
        finally:
            self.staging.release(staging_req)
        # Inter-node hop: staged bytes travel root host -> this node's
        # staging buffer before the local DMA can stream them.
        net_meta = {}
        if self.network is not None:
            net_start, net_end = yield from self._network_hop(name, op,
                                                              nbytes)
            net_meta = {"net_start": net_start, "net_end": net_end,
                        "node": self.node_id}
        # Wire: device queue + socket link, in order.
        ready_ts = self.sim.now
        yield queue_req
        start = self.sim.now
        try:
            link_req = self.link.request(tag=name)
            link_req.owner = op
            yield link_req
            wire_start = self.sim.now
            helper = None
            if rest > 0:
                def hold_staging() -> Generator:
                    req2 = self.staging.request(tag=f"{name}:pipeline")
                    yield req2
                    try:
                        yield self.sim.timeout(rest)
                    finally:
                        self.staging.release(req2)

                helper = self.sim.process(hold_staging())
                helper.work_safe = True
            try:
                if cost.wire_time > 0:
                    yield self.sim.timeout(cost.wire_time)
            finally:
                wire_end = self.sim.now
                self.link.release(link_req)
            if helper is not None:
                yield helper
            self._commit_sections(
                [(dst, dk) for _s, _sk, dst, dk in copies], snapshots,
                name=f"{name}:commit")
        finally:
            self.queue.release(queue_req)
        self.memcpy_calls += 1
        self.h2d_bytes += cost.bytes
        idx = self.trace.record(tr.H2D, name, lane=self.queue.name,
                                start=start, end=self.sim.now,
                                device=self.device_id, bytes=cost.bytes,
                                issue=issue_ts, ready=ready_ts,
                                wire_start=wire_start, wire_end=wire_end,
                                fused=len(copies) if fused else 0,
                                **net_meta, **_prov_meta(proc))
        if rec is not None:
            rec.op_end(op, proc, idx)
        tools = self.tools
        if tools:
            tools.dispatch(DATA_OP, op="h2d", device=self.device_id,
                           bytes=cost.bytes, name=name, start=start,
                           end=self.sim.now, wire_start=wire_start,
                           wire_end=wire_end, time=self.sim.now)

    def _copy_d2h_batch(self, copies, name: str, fused: bool) -> Generator:
        if not copies:
            return
        self._check_fault("d2h", name)
        proc = self.sim.current_process
        rec = self.sim.recorder
        op = rec.op_begin(proc) if rec is not None else None
        nbytes = sum(src[sk].nbytes for src, sk, _d, _dk in copies)
        cost = self.cost_model.transfer(self.link_spec, nbytes)
        issue_ts = self.sim.now
        st = self._staging_time(cost.bytes)
        if fused and len(copies) > 1:
            # mirrored pipelining: the host drains staged pieces while the
            # DMA still streams; only the trailing piece stages afterwards
            tail = st / len(copies)
        else:
            tail = st
        rest = st - tail
        # Stream slot claimed at issue time (see _copy_h2d_batch).
        queue_req = self.queue.request(tag=name)
        queue_req.owner = op
        if cost.latency > 0:
            yield self.sim.timeout(cost.latency)
        # Wire: device queue + socket link; snapshot the device sections.
        ready_ts = self.sim.now
        yield queue_req
        start = self.sim.now
        try:
            link_req = self.link.request(tag=name)
            link_req.owner = op
            yield link_req
            wire_start = self.sim.now
            helper = None
            if rest > 0:
                def hold_staging() -> Generator:
                    req2 = self.staging.request(tag=f"{name}:pipeline")
                    yield req2
                    try:
                        yield self.sim.timeout(rest)
                    finally:
                        self.staging.release(req2)

                helper = self.sim.process(hold_staging())
                helper.work_safe = True
            try:
                if cost.wire_time > 0:
                    yield self.sim.timeout(cost.wire_time)
            finally:
                wire_end = self.sim.now
                self.link.release(link_req)
            if helper is not None:
                yield helper
            snapshots = self._snapshot_sections(
                [(src, sk) for src, sk, _d, _dk in copies],
                name=f"{name}:stage")
        finally:
            self.queue.release(queue_req)
        # Inter-node hop: the drained bytes travel this node's staging
        # buffer -> root host before the host-side commit.
        net_meta = {}
        if self.network is not None:
            net_start, net_end = yield from self._network_hop(name, op,
                                                              nbytes)
            net_meta = {"net_start": net_start, "net_end": net_end,
                        "node": self.node_id}
        # Stage the trailing piece back into host memory.
        staging_req = self.staging.request(tag=name)
        staging_req.owner = op
        yield staging_req
        try:
            if tail > 0:
                yield self.sim.timeout(tail)
            self._commit_sections(
                [(dst, dk) for _s, _sk, dst, dk in copies], snapshots,
                name=f"{name}:commit")
        finally:
            self.staging.release(staging_req)
        self.memcpy_calls += 1
        self.d2h_bytes += cost.bytes
        # ``done`` > ``end`` for D2H: the trailing staging piece drains on
        # the host after the device queue slot is released.
        idx = self.trace.record(tr.D2H, name, lane=self.queue.name,
                                start=start, end=wire_end,
                                device=self.device_id, bytes=cost.bytes,
                                issue=issue_ts, ready=ready_ts,
                                wire_start=wire_start, wire_end=wire_end,
                                done=self.sim.now,
                                fused=len(copies) if fused else 0,
                                **net_meta, **_prov_meta(proc))
        if rec is not None:
            rec.op_end(op, proc, idx)
        tools = self.tools
        if tools:
            # end matches the trace record (wire_end): the tail staging
            # piece happens on the host side, off the device queue
            tools.dispatch(DATA_OP, op="d2h", device=self.device_id,
                           bytes=cost.bytes, name=name, start=start,
                           end=wire_end, wire_start=wire_start,
                           wire_end=wire_end, time=self.sim.now)

    # -- kernels ------------------------------------------------------------------

    def launch_kernel(self, spec: KernelSpec, lo: int, hi: int,
                      env: Mapping[str, Any],
                      launch: LaunchConfig = LaunchConfig(),
                      iterations: Optional[float] = None) -> Generator:
        """Run *spec* over global iterations ``[lo, hi)`` on this device.

        ``iterations`` overrides the cost-model iteration count when one
        loop iteration covers more work than a single index step; the
        functional body always receives the global bounds.
        """
        if hi < lo:
            raise ValueError(f"empty-negative kernel range [{lo}, {hi})")
        self._check_fault("kernel", spec.name)
        proc = self.sim.current_process
        rec = self.sim.recorder
        op = rec.op_begin(proc) if rec is not None else None
        issue_ts = self.sim.now
        iters = float(iterations) if iterations is not None else float(hi - lo)
        cost = self.cost_model.kernel(self.spec, iters,
                                      num_teams=launch.num_teams,
                                      threads_per_team=launch.threads_per_team,
                                      simd=launch.simd,
                                      work_per_iter=spec.work_per_iter)
        tools = self.tools
        if tools:
            tools.dispatch(KERNEL_LAUNCH, device=self.device_id,
                           name=spec.name, lo=lo, hi=hi, time=self.sim.now)
        # Host-side dispatch/marshalling happens before the kernel claims
        # its stream slot — a concurrently issued memcpy wins the race to
        # the queue (see DeviceSpec.kernel_issue_latency).
        if self.spec.kernel_issue_latency > 0:
            yield self.sim.timeout(self.spec.kernel_issue_latency)
        ready_ts = self.sim.now
        req = self.queue.request(tag=spec.name)
        req.owner = op
        yield req
        start = self.sim.now
        try:
            if cost.total > 0:
                yield self.sim.timeout(cost.total)
            # The functional body is the op's real work: run it through the
            # backend (inline when serial).  Its access set conservatively
            # writes every array reachable from the env and the spec's
            # bound scalars — kernel bodies touch arrays only via their env.
            self.sim.run_work(
                lambda: spec.run(lo, hi, env),
                lambda: hx.env_accesses(env, spec.scalars),
                name=spec.name)
        finally:
            self.queue.release(req)
        self.kernels_launched += 1
        idx = self.trace.record(tr.KERNEL, spec.name, lane=self.queue.name,
                                start=start, end=self.sim.now,
                                device=self.device_id,
                                lo=lo, hi=hi, iterations=cost.iterations,
                                issue=issue_ts, ready=ready_ts,
                                **_prov_meta(proc))
        if rec is not None:
            rec.op_end(op, proc, idx)
        tools = self.tools
        if tools:
            tools.dispatch(KERNEL_COMPLETE, device=self.device_id,
                           name=spec.name, start=start, end=self.sim.now,
                           time=self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Device {self.device_id} ({self.spec.name})>"
