"""Capacity-accounted device memory.

Buffers are plain NumPy arrays (that is what kernels execute on), but the
allocator accounts *virtual* bytes — the size the buffer would have at the
paper's full problem scale — so a scaled-down functional run still exercises
the paper's memory regime (problem ≈ 10× device capacity, buffers sized to
fill a 16 GB V100).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.util.errors import OmpAllocationError


@dataclass
class Allocation:
    """One live device buffer."""

    alloc_id: int
    array: np.ndarray
    virtual_bytes: float
    label: str = ""

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


class DeviceAllocator:
    """First-fit-free bump accounting of device memory.

    Only byte *accounting* is needed (buffers live in host RAM as NumPy
    arrays); fragmentation is not modelled, matching how ``cudaMalloc``
    behaves for the large streaming buffers the paper uses.
    """

    def __init__(self, capacity_bytes: float, device_id: int = -1):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.device_id = device_id
        self.used_bytes: float = 0.0
        self.peak_bytes: float = 0.0
        self._allocations: Dict[int, Allocation] = {}
        self._next_id = 0

    # -- allocation ------------------------------------------------------------

    def allocate(self, shape, dtype=np.float64,
                 virtual_bytes: Optional[float] = None,
                 label: str = "") -> Allocation:
        """Allocate a buffer of *shape*; account *virtual_bytes* against the
        capacity (defaults to the functional size)."""
        array = np.empty(shape, dtype=dtype)
        vbytes = float(virtual_bytes) if virtual_bytes is not None else float(array.nbytes)
        if vbytes < 0:
            raise ValueError("negative virtual size")
        if self.used_bytes + vbytes > self.capacity_bytes:
            raise OmpAllocationError(
                f"device {self.device_id}: out of memory allocating "
                f"{vbytes:.3e} B ({label or 'buffer'}); "
                f"used {self.used_bytes:.3e} of {self.capacity_bytes:.3e} B",
                requested=vbytes, capacity=self.capacity_bytes)
        self._next_id += 1
        alloc = Allocation(alloc_id=self._next_id, array=array,
                           virtual_bytes=vbytes, label=label)
        self._allocations[alloc.alloc_id] = alloc
        self.used_bytes += vbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return alloc

    def free(self, alloc: Allocation) -> None:
        if alloc.alloc_id not in self._allocations:
            raise OmpAllocationError(
                f"device {self.device_id}: double free of allocation "
                f"{alloc.alloc_id} ({alloc.label})")
        del self._allocations[alloc.alloc_id]
        self.used_bytes -= alloc.virtual_bytes

    # -- introspection -----------------------------------------------------------

    @property
    def live_allocations(self) -> int:
        return len(self._allocations)

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DeviceAllocator dev={self.device_id} "
                f"used={self.used_bytes:.3e}/{self.capacity_bytes:.3e}B "
                f"live={self.live_allocations}>")
