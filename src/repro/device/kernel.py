"""Kernel descriptors and launch configuration.

A :class:`KernelSpec` is the Python analogue of the structured block under a
``target`` / ``target spread`` directive: a body callable invoked with the
(global) chunk bounds and the mapped variables, plus the cost-model metadata
(how much arithmetic one loop iteration represents).

A :class:`LaunchConfig` carries the intra-device parallelism clauses of the
combined directive (``num_teams``, ``thread_limit``/``parallel for`` threads,
``simd``) — the paper's levels 2-4 of parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional


#: Signature of a kernel body: ``body(lo, hi, env)`` iterates global indices
#: ``lo .. hi-1`` using the :class:`~repro.device.views.GlobalView` objects
#: in ``env`` (a name -> view mapping, plus any scalar firstprivates).
KernelBody = Callable[[int, int, Mapping[str, Any]], None]


@dataclass(frozen=True)
class LaunchConfig:
    """Intra-device parallelism requested by the combined directive."""

    num_teams: Optional[int] = None
    threads_per_team: Optional[int] = None
    simd: bool = True

    def __post_init__(self) -> None:
        if self.num_teams is not None and self.num_teams < 1:
            raise ValueError("num_teams must be >= 1")
        if self.threads_per_team is not None and self.threads_per_team < 1:
            raise ValueError("threads_per_team must be >= 1")


@dataclass(frozen=True)
class KernelSpec:
    """A named device kernel.

    ``work_per_iter`` scales the cost model: a loop iteration of the Somier
    forces stencil does roughly 6 spring evaluations over an N² plane, while
    the pointwise kernels do O(N²) lighter work; callers encode that here so
    simulated kernel times keep realistic ratios.
    """

    name: str
    body: KernelBody
    work_per_iter: float = 1.0
    scalars: Dict[str, Any] = field(default_factory=dict)

    def with_scalars(self, **scalars: Any) -> "KernelSpec":
        """A copy of the spec with extra firstprivate scalars."""
        merged = dict(self.scalars)
        merged.update(scalars)
        return KernelSpec(name=self.name, body=self.body,
                          work_per_iter=self.work_per_iter, scalars=merged)

    def run(self, lo: int, hi: int, env: Mapping[str, Any]) -> None:
        """Execute the body functionally (called at simulated completion)."""
        merged: Dict[str, Any] = dict(self.scalars)
        merged.update(env)
        self.body(lo, hi, merged)
