"""Global-index views over device-local buffers.

When the runtime maps ``A[omp_spread_start-1 : omp_spread_size+2]`` to a
device, the device buffer holds only that section, but kernel code — exactly
like the loop bodies in the paper's listings — is written in *global*
indices.  :class:`GlobalView` performs the index translation along the
distributed axis (axis 0), so a kernel body reads naturally::

    B[i] = A[i - 1] + A[i] + A[i + 1]      # i is a global index

Out-of-section accesses raise ``IndexError`` — the analogue of a device
segfault when a kernel touches unmapped memory, which is precisely the bug
class the spread directives' halo arithmetic exists to prevent.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np


class GlobalView:
    """A NumPy-array wrapper that translates axis-0 indices by an offset.

    ``view[g]`` accesses ``buffer[g - offset]``; slices are translated the
    same way.  Axes beyond 0 are passed through untouched.  Negative and
    open-ended indices are rejected on axis 0 because they are ambiguous in
    global coordinates.
    """

    __slots__ = ("buffer", "offset", "name")

    def __init__(self, buffer: np.ndarray, offset: int, name: str = ""):
        self.buffer = buffer
        self.offset = int(offset)
        self.name = name

    # -- geometry ---------------------------------------------------------------

    @property
    def start(self) -> int:
        """First valid global index on axis 0."""
        return self.offset

    @property
    def stop(self) -> int:
        """One past the last valid global index on axis 0."""
        return self.offset + self.buffer.shape[0]

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.buffer.shape

    @property
    def dtype(self):
        return self.buffer.dtype

    # -- index translation ---------------------------------------------------------

    def _translate(self, key0: Any) -> Any:
        if isinstance(key0, (int, np.integer)):
            g = int(key0)
            if g < 0:
                raise IndexError(
                    f"{self.name or 'view'}: negative global index {g}")
            local = g - self.offset
            if not 0 <= local < self.buffer.shape[0]:
                raise IndexError(
                    f"{self.name or 'view'}: global index {g} outside mapped "
                    f"section [{self.start}:{self.stop})")
            return local
        if isinstance(key0, slice):
            if key0.step not in (None, 1):
                raise IndexError("GlobalView slices must have step 1")
            if key0.start is None or key0.stop is None:
                raise IndexError(
                    "GlobalView slices must be fully bounded (global "
                    "coordinates have no implicit ends)")
            g0, g1 = int(key0.start), int(key0.stop)
            if g0 < 0 or g1 < g0:
                raise IndexError(f"bad global slice [{g0}:{g1}]")
            lo, hi = g0 - self.offset, g1 - self.offset
            if lo < 0 or hi > self.buffer.shape[0]:
                raise IndexError(
                    f"{self.name or 'view'}: global slice [{g0}:{g1}) outside "
                    f"mapped section [{self.start}:{self.stop})")
            return slice(lo, hi)
        raise IndexError(
            f"unsupported axis-0 index {key0!r} (int or bounded slice only)")

    def _translate_key(self, key: Any) -> Any:
        if isinstance(key, tuple):
            if not key:
                return key
            return (self._translate(key[0]),) + tuple(key[1:])
        return self._translate(key)

    def __getitem__(self, key: Any) -> np.ndarray:
        return self.buffer[self._translate_key(key)]

    def __setitem__(self, key: Any, value: Any) -> None:
        self.buffer[self._translate_key(key)] = value

    def local(self) -> np.ndarray:
        """The raw device-local buffer (for whole-section operations)."""
        return self.buffer

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<GlobalView {self.name!r} global=[{self.start}:{self.stop}) "
                f"shape={self.buffer.shape}>")
