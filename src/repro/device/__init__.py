"""Simulated accelerator devices.

A :class:`Device` owns a capacity-limited memory allocator (NumPy-backed
buffers with *virtual* byte accounting) and a single in-order execution
queue — copies and kernels run one at a time in issue order, like work
enqueued on a CUDA stream.  Transfers additionally stage through the
node-wide host staging path and occupy the socket's shared FIFO link for
their wire time (see :mod:`repro.sim.topology` and DESIGN.md §4).

Functional execution and timing are decoupled: copies and kernels really run
on NumPy arrays when their simulated interval completes, while the virtual
clock is charged through :mod:`repro.sim.costmodel`.
"""

from repro.device.memory import DeviceAllocator, Allocation
from repro.device.views import GlobalView
from repro.device.kernel import KernelSpec, LaunchConfig
from repro.device.device import Device

__all__ = [
    "DeviceAllocator",
    "Allocation",
    "GlobalView",
    "KernelSpec",
    "LaunchConfig",
    "Device",
]
