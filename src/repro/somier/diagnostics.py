"""Physics diagnostics for Somier runs.

The paper treats Somier purely as a performance workload; for a library
release the physics deserves observability too.  These helpers compute the
energies of a state on the host:

* kinetic energy ``0.5 * m * sum |v|^2`` over interior nodes;
* elastic potential energy ``0.5 * k * sum (|d| - L0)^2`` over every
  spring (each of the 3 axis directions, counted once);
* their sum, which an exact integrator would conserve.

The explicit-Euler scheme drifts slightly (energy grows O(dt) per step);
the test suite bounds that drift, which catches both kernel bugs (wrong
forces explode instantly) and decomposition bugs (a lost halo row shows up
as an energy jump).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.somier.state import SomierState


@dataclass(frozen=True)
class EnergyReport:
    kinetic: float
    potential: float

    @property
    def total(self) -> float:
        return self.kinetic + self.potential


def kinetic_energy(state: SomierState) -> float:
    """``0.5 m sum |v|^2`` (boundary nodes have v = 0 by construction)."""
    cfg = state.config
    vx = state.grids["vel_x"]
    vy = state.grids["vel_y"]
    vz = state.grids["vel_z"]
    return 0.5 * cfg.mass * float((vx * vx + vy * vy + vz * vz).sum())


def potential_energy(state: SomierState) -> float:
    """Elastic energy of all axis springs, each counted once."""
    cfg = state.config
    px = state.grids["pos_x"]
    py = state.grids["pos_y"]
    pz = state.grids["pos_z"]
    total = 0.0
    for axis in (0, 1, 2):
        sl_lo = [slice(None)] * 3
        sl_hi = [slice(None)] * 3
        sl_lo[axis] = slice(0, -1)
        sl_hi[axis] = slice(1, None)
        lo, hi = tuple(sl_lo), tuple(sl_hi)
        dx = px[hi] - px[lo]
        dy = py[hi] - py[lo]
        dz = pz[hi] - pz[lo]
        dist = np.sqrt(dx * dx + dy * dy + dz * dz)
        stretch = dist - cfg.rest_length
        total += float((stretch * stretch).sum())
    return 0.5 * cfg.k_spring * total


def energy(state: SomierState) -> EnergyReport:
    return EnergyReport(kinetic=kinetic_energy(state),
                        potential=potential_energy(state))


def energy_history(states: List[SomierState]) -> List[EnergyReport]:
    return [energy(s) for s in states]
