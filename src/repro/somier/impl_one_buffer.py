"""One Buffer with the ``target spread`` directive set (Listing 10).

Per buffer: every device gets ``chunk = buffer_size / num_devices`` rows;
mapping happens through ``target enter/exit data spread`` inside taskgroups
(the paper's global barriers), and the five kernels run as asynchronous
``target spread teams distribute parallel for`` chained per chunk with the
``depend`` clause.

With ``opts.data_depend`` (the §IX extension evaluated by the ablation
benchmark) the taskgroup barriers are dropped and the data directives carry
Listing-13-style chunk-level depends instead, letting each chunk start
computing as soon as *its* data landed.
"""

from __future__ import annotations

import math
from typing import Callable, Generator

from repro.somier import impl_common as common
from repro.somier.kernels import SomierKernels
from repro.somier.plan import BufferPlan
from repro.somier.state import SomierState
from repro.spread.schedule import HierarchicalStaticSchedule, spread_schedule
from repro.spread.spread_data import (
    target_enter_data_spread,
    target_exit_data_spread,
)
from repro.spread.spread_target import (
    target_spread_teams_distribute_parallel_for,
)


def process_buffer(omp, state: SomierState, kernels: SomierKernels,
                   blo: int, bsize: int, opts: common.RunOpts,
                   after_enter=None) -> Generator:
    """Map-compute-unmap one buffer (shared with the half-buffer impls).

    ``after_enter`` is an optional callback invoked between the enter
    mapping and the kernel launches — Double Buffering uses it to spawn the
    recursive task that dispatches the next half's transfers.
    """
    devices = opts.devices
    range_ = (blo, bsize)
    if opts.groups:
        # Cluster run: nodes first, then each node's devices.  The data
        # directives reuse the same schedule so resident chunks line up
        # with the kernel chunks exactly as in the flat case.
        chunk = None
        sched = HierarchicalStaticSchedule(opts.groups)
    else:
        # each device gets a chunk from the buffer
        chunk = math.ceil(bsize / len(devices))
        sched = spread_schedule("static", chunk)

    # map data from host to devices asynchronously
    if opts.data_depend:
        yield from target_enter_data_spread(
            omp, devices=devices, range_=range_, chunk_size=chunk,
            schedule=sched if chunk is None else None,
            maps=common.enter_maps(state), nowait=True,
            depends=common.enter_depends(state),
            fuse_transfers=opts.fuse_transfers)
    else:
        tg = omp.taskgroup_begin()
        yield from target_enter_data_spread(
            omp, devices=devices, range_=range_, chunk_size=chunk,
            schedule=sched if chunk is None else None,
            maps=common.enter_maps(state), nowait=True,
            fuse_transfers=opts.fuse_transfers)
        yield from omp.taskgroup_end(tg)

    if after_enter is not None:
        after_enter()

    # perform computation on the devices asynchronously
    for select, maps_of, deps_of in common.kernel_table(state):
        yield from target_spread_teams_distribute_parallel_for(
            omp, kernel=select(kernels), lo=blo, hi=blo + bsize,
            devices=devices, schedule=sched,
            maps=maps_of(state), nowait=True, depends=deps_of(state),
            fuse_transfers=opts.fuse_transfers)

    # map results from devices to host asynchronously
    if opts.data_depend:
        yield from target_exit_data_spread(
            omp, devices=devices, range_=range_, chunk_size=chunk,
            schedule=sched if chunk is None else None,
            maps=common.exit_maps(state), nowait=True,
            depends=common.exit_depends(state),
            fuse_transfers=opts.fuse_transfers)
    else:
        tg = omp.taskgroup_begin()
        yield from target_exit_data_spread(
            omp, devices=devices, range_=range_, chunk_size=chunk,
            schedule=sched if chunk is None else None,
            maps=common.exit_maps(state), nowait=True,
            fuse_transfers=opts.fuse_transfers)
        yield from omp.taskgroup_end(tg)


def build_program(state: SomierState, kernels: SomierKernels,
                  plan: BufferPlan, opts: common.RunOpts) -> Callable:
    """The host program for the One Buffer spread implementation."""
    cfg = state.config

    def program(omp) -> Generator:
        for _step in range(cfg.steps):
            for blo, bsize in plan.buffers:
                yield from process_buffer(omp, state, kernels, blo, bsize,
                                          opts)
            if opts.data_depend:
                # no taskgroup barriers were used; settle the step before
                # the host folds the partials
                yield from omp.taskwait()
            state.record_centers()

    return program
