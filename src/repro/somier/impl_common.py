"""Shared map/dependence tables for the Somier implementations.

One source of truth for how the 12 grids (+ the partials buffer) are mapped
and how the five kernels depend on each other at chunk level, used by all
four implementations (the baseline materializes the symbolic sections with
concrete buffer bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.device.kernel import KernelSpec
from repro.openmp.depend import Dep
from repro.openmp.mapping import Map, MapClause, Var
from repro.somier.kernels import SomierKernels
from repro.somier.state import SomierState
from repro.spread.sections import omp_spread_size, omp_spread_start

S = omp_spread_start
Z = omp_spread_size

#: Chunk section of the position grids: one halo row on each side.
POS_SECTION = (S - 1, Z + 2)
#: Chunk section of everything else: the exact chunk.
CHUNK_SECTION = (S, Z)


@dataclass
class RunOpts:
    """Per-run options shared by the implementations.

    ``groups`` is the per-node device grouping on cluster topologies
    (each inner list is one node's share of the devices clause, in clause
    order); when set, the implementations distribute hierarchically —
    nodes first, then each node's devices — instead of flat round-robin.
    """

    devices: List[int]
    data_depend: bool = False
    fuse_transfers: bool = False
    groups: Optional[List[List[int]]] = None


def grid_vars(state: SomierState, prefix: str) -> List[Var]:
    return [state.var(f"{prefix}_{c}") for c in ("x", "y", "z")]


def enter_maps(state: SomierState) -> List[MapClause]:
    """``target enter data [spread]``: all 12 grids copied in (the paper's
    12 memcpy calls per chunk) + the partials buffer allocated."""
    maps: List[MapClause] = []
    for var in grid_vars(state, "pos"):
        maps.append(Map.to(var, POS_SECTION))
    for prefix in ("vel", "acc", "force"):
        for var in grid_vars(state, prefix):
            maps.append(Map.to(var, CHUNK_SECTION))
    maps.append(Map.alloc(state.var("partials"), CHUNK_SECTION))
    return maps


def exit_maps(state: SomierState) -> List[MapClause]:
    """``target exit data [spread]``: all 12 grids + partials copied back.

    Positions map ``from`` over the exact chunk (Listing 6 does the same);
    each chunk's halo rows are copied back by the neighbouring chunks that
    own them, and positions entered with the halo section, so the
    refcounted entry is found by containment.
    """
    maps: List[MapClause] = []
    for prefix in ("pos", "vel", "acc", "force"):
        for var in grid_vars(state, prefix):
            maps.append(Map.from_(var, CHUNK_SECTION))
    maps.append(Map.from_(state.var("partials"), CHUNK_SECTION))
    return maps


def enter_depends(state: SomierState) -> List[Dep]:
    """Listing-13-style depends for the data_depend extension: the enter
    directive *produces* the mapped sections.

    Positions declare the exact chunk, not the halo section: the chunks
    tile the range, so a consumer's halo-wide ``in`` still overlaps the
    neighbouring chunks' ``out`` records, while halo-wide ``out`` records
    would make adjacent enters conflict with each other and serialize the
    whole fan-out.
    """
    deps: List[Dep] = []
    for prefix in ("pos", "vel", "acc", "force"):
        for var in grid_vars(state, prefix):
            deps.append(Dep.out(var, CHUNK_SECTION))
    deps.append(Dep.out(state.var("partials"), CHUNK_SECTION))
    # The enter also *reads* the host halo rows of the positions, which a
    # neighbouring buffer's exit may still be writing back.
    for var in grid_vars(state, "pos"):
        deps.append(Dep.in_(var, POS_SECTION))
    return deps


def exit_depends(state: SomierState) -> List[Dep]:
    """The exit directive *writes the host copy* of the sections it copies
    back — ``out``, so later enters reading them (halo included) order
    after it."""
    deps: List[Dep] = []
    for prefix in ("pos", "vel", "acc", "force"):
        for var in grid_vars(state, prefix):
            deps.append(Dep.out(var, CHUNK_SECTION))
    deps.append(Dep.out(state.var("partials"), CHUNK_SECTION))
    return deps


#: (kernel selector, maps builder, depends builder) per kernel, in order.
KernelEntry = Tuple[Callable[[SomierKernels], KernelSpec],
                    Callable[[SomierState], List[MapClause]],
                    Callable[[SomierState], List[Dep]]]


def kernel_table(state: SomierState) -> List[KernelEntry]:
    """Maps and chunk-level depends of the five kernels (Listing 10)."""
    pos = grid_vars(state, "pos")
    vel = grid_vars(state, "vel")
    acc = grid_vars(state, "acc")
    force = grid_vars(state, "force")
    partials = state.var("partials")

    def forces_maps(_s):
        return ([Map.to(v, POS_SECTION) for v in pos]
                + [Map.from_(v, CHUNK_SECTION) for v in force])

    def forces_deps(_s):
        return ([Dep.in_(v, POS_SECTION) for v in pos]
                + [Dep.out(v, CHUNK_SECTION) for v in force])

    def acc_maps(_s):
        return ([Map.to(v, CHUNK_SECTION) for v in force]
                + [Map.from_(v, CHUNK_SECTION) for v in acc])

    def acc_deps(_s):
        return ([Dep.in_(v, CHUNK_SECTION) for v in force]
                + [Dep.out(v, CHUNK_SECTION) for v in acc])

    def vel_maps(_s):
        return ([Map.to(v, CHUNK_SECTION) for v in acc]
                + [Map.tofrom(v, CHUNK_SECTION) for v in vel])

    def vel_deps(_s):
        return ([Dep.in_(v, CHUNK_SECTION) for v in acc]
                + [Dep.inout(v, CHUNK_SECTION) for v in vel])

    def pos_maps(_s):
        return ([Map.to(v, CHUNK_SECTION) for v in vel]
                + [Map.tofrom(v, CHUNK_SECTION) for v in pos])

    def pos_deps(_s):
        return ([Dep.in_(v, CHUNK_SECTION) for v in vel]
                + [Dep.inout(v, CHUNK_SECTION) for v in pos])

    def centers_maps(_s):
        return ([Map.to(v, CHUNK_SECTION) for v in pos]
                + [Map.from_(partials, CHUNK_SECTION)])

    def centers_deps(_s):
        return ([Dep.in_(v, CHUNK_SECTION) for v in pos]
                + [Dep.out(partials, CHUNK_SECTION)])

    return [
        (lambda k: k.forces, forces_maps, forces_deps),
        (lambda k: k.accelerations, acc_maps, acc_deps),
        (lambda k: k.velocities, vel_maps, vel_deps),
        (lambda k: k.positions, pos_maps, pos_deps),
        (lambda k: k.centers, centers_maps, centers_deps),
    ]


def materialize_maps(maps: Sequence[MapClause], lo: int,
                     size: int) -> List[MapClause]:
    """Evaluate symbolic sections with concrete buffer bounds (baseline)."""
    out: List[MapClause] = []
    for clause in maps:
        start_e, len_e = clause.section
        start = start_e.evaluate(lo, size) if hasattr(start_e, "evaluate") else int(start_e)
        length = len_e.evaluate(lo, size) if hasattr(len_e, "evaluate") else int(len_e)
        out.append(MapClause(clause.map_type, clause.var, (start, length)))
    return out
