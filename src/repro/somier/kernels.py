"""The five Somier kernels.

Kernel bodies are written once and executed both on simulated devices
(through :class:`~repro.device.views.GlobalView` over the mapped chunk) and
by the sequential reference (over the raw host arrays) — global-index slicing
is identical in both cases, which is what makes the bit-for-bit verification
of the multi-device decompositions meaningful.

Cost weights (``work_per_iter``, in units of "N^2 cells x flop weight"):
the forces stencil evaluates 6 springs per cell, the pointwise kernels a
couple of flops; the centers kernel one pass.  The absolute scale is set by
``DeviceSpec.iters_per_second`` in the machine calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

import numpy as np

from repro.device.kernel import KernelSpec
from repro.somier.config import SomierConfig

#: Neighbour offsets of the 6 axis springs.
_NEIGHBOURS = ((-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0),
               (0, 0, -1), (0, 0, 1))


def forces_body(lo: int, hi: int, env: Mapping) -> None:
    """Spring forces on interior nodes of rows ``[lo, hi)``.

    ``F = sum over neighbours of k * (|d| - L0) * d / |d|`` with ``d`` the
    vector to the neighbour.  Whole rows of the force grids are zeroed
    first so boundary cells (and thus accelerations/velocities there) stay
    exactly zero.
    """
    n = env["N"]
    k_spring = env["K_spring"]
    rest = env["L0"]
    px, py, pz = env["pos_x"], env["pos_y"], env["pos_z"]
    fx, fy, fz = env["force_x"], env["force_y"], env["force_z"]

    fx[lo:hi] = 0.0
    fy[lo:hi] = 0.0
    fz[lo:hi] = 0.0

    cx = px[lo:hi, 1:n - 1, 1:n - 1]
    cy = py[lo:hi, 1:n - 1, 1:n - 1]
    cz = pz[lo:hi, 1:n - 1, 1:n - 1]
    acc_x = np.zeros_like(cx)
    acc_y = np.zeros_like(cy)
    acc_z = np.zeros_like(cz)
    for di, dj, dk in _NEIGHBOURS:
        qx = px[lo + di:hi + di, 1 + dj:n - 1 + dj, 1 + dk:n - 1 + dk]
        qy = py[lo + di:hi + di, 1 + dj:n - 1 + dj, 1 + dk:n - 1 + dk]
        qz = pz[lo + di:hi + di, 1 + dj:n - 1 + dj, 1 + dk:n - 1 + dk]
        dx = qx - cx
        dy = qy - cy
        dz = qz - cz
        dist = np.sqrt(dx * dx + dy * dy + dz * dz)
        coef = k_spring * (1.0 - rest / dist)
        acc_x += coef * dx
        acc_y += coef * dy
        acc_z += coef * dz
    fx[lo:hi, 1:n - 1, 1:n - 1] = acc_x
    fy[lo:hi, 1:n - 1, 1:n - 1] = acc_y
    fz[lo:hi, 1:n - 1, 1:n - 1] = acc_z


def accelerations_body(lo: int, hi: int, env: Mapping) -> None:
    """``a = F / m`` over whole rows (boundary forces are zero)."""
    inv_mass = 1.0 / env["mass"]
    for c in ("x", "y", "z"):
        env[f"acc_{c}"][lo:hi] = env[f"force_{c}"][lo:hi] * inv_mass


def velocities_body(lo: int, hi: int, env: Mapping) -> None:
    """``v += dt * a`` (explicit Euler)."""
    dt = env["dt"]
    for c in ("x", "y", "z"):
        env[f"vel_{c}"][lo:hi] = env[f"vel_{c}"][lo:hi] + dt * env[f"acc_{c}"][lo:hi]


def positions_body(lo: int, hi: int, env: Mapping) -> None:
    """``x += dt * v`` (fixed boundaries have v = 0)."""
    dt = env["dt"]
    for c in ("x", "y", "z"):
        env[f"pos_{c}"][lo:hi] = env[f"pos_{c}"][lo:hi] + dt * env[f"vel_{c}"][lo:hi]


def centers_body(lo: int, hi: int, env: Mapping) -> None:
    """Per-row partial sums of the positions (manual reduction, step 1).

    Step 2 — folding the rows into the three center coordinates — happens
    on the host (``SomierState.reduce_centers``), in row order, so the
    result is identical no matter how rows were distributed over devices.
    """
    part = env["partials"]
    part[lo:hi, 0] = env["pos_x"][lo:hi].sum(axis=(1, 2))
    part[lo:hi, 1] = env["pos_y"][lo:hi].sum(axis=(1, 2))
    part[lo:hi, 2] = env["pos_z"][lo:hi].sum(axis=(1, 2))


@dataclass(frozen=True)
class SomierKernels:
    """The five kernels, parameterized for one problem configuration."""

    forces: KernelSpec
    accelerations: KernelSpec
    velocities: KernelSpec
    positions: KernelSpec
    centers: KernelSpec

    def in_order(self) -> List[KernelSpec]:
        """Per-buffer execution order (Listing 9/10)."""
        return [self.forces, self.accelerations, self.velocities,
                self.positions, self.centers]


def make_kernels(config: SomierConfig) -> SomierKernels:
    """Build the kernel set for *config*.

    ``work_per_iter`` counts N^2 cells per row iteration times a flop
    weight per kernel (forces ~6 spring evaluations, pointwise ~1).
    """
    plane = float(config.n) ** 2
    scalars = {
        "N": config.n,
        "K_spring": config.k_spring,
        "L0": config.rest_length,
        "mass": config.mass,
        "dt": config.dt,
    }
    return SomierKernels(
        forces=KernelSpec("forces", forces_body,
                          work_per_iter=6.0 * plane, scalars=scalars),
        accelerations=KernelSpec("accelerations", accelerations_body,
                                 work_per_iter=1.0 * plane, scalars=scalars),
        velocities=KernelSpec("velocities", velocities_body,
                              work_per_iter=1.0 * plane, scalars=scalars),
        positions=KernelSpec("positions", positions_body,
                             work_per_iter=1.0 * plane, scalars=scalars),
        centers=KernelSpec("centers", centers_body,
                           work_per_iter=1.0 * plane, scalars=scalars),
    )
