"""Somier state: the 12 component grids + the manual-reduction buffer.

Each of the 4 variables (positions, velocities, accelerations, forces) is
stored as 3 separate component grids of shape ``(N, N, N)`` — exactly the
layout the paper describes ("each of the 4 variables of the problem required
3 3D-grids"), and the reason one mapped chunk costs 12 memcpy calls.

``partials`` is the manual-reduction buffer for the centers kernel: one row
of 3 partial sums per grid row, distributed and mapped like everything else,
reduced on the host (paper: "we implemented a manual reduction for this
kernel").
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.openmp.mapping import Var
from repro.somier.config import SomierConfig

#: The 12 grid names, in the canonical (variable-major) mapping order.
GRID_NAMES = [
    "pos_x", "pos_y", "pos_z",
    "vel_x", "vel_y", "vel_z",
    "acc_x", "acc_y", "acc_z",
    "force_x", "force_y", "force_z",
]


class SomierState:
    """Host-side arrays of one Somier problem instance."""

    def __init__(self, config: SomierConfig):
        self.config = config
        n = config.n
        self.grids: Dict[str, np.ndarray] = {
            name: np.zeros((n, n, n), dtype=np.float64) for name in GRID_NAMES
        }
        #: per-row partial sums for the centers reduction, shape (N, 3)
        self.partials = np.zeros((n, 3), dtype=np.float64)
        #: per-step centers history, appended by the driver, shape (steps, 3)
        self.centers: List[np.ndarray] = []
        self.vars: Dict[str, Var] = {
            name: Var(name, arr) for name, arr in self.grids.items()
        }
        self.vars["partials"] = Var("partials", self.partials)
        self._initialize()

    # -- initial condition ----------------------------------------------------

    def _initialize(self) -> None:
        """Rest lattice + a smooth vertical displacement (zero at the
        boundary, so fixed boundary nodes start at their rest position)."""
        cfg = self.config
        n = cfg.n
        idx = np.arange(n, dtype=np.float64) * cfg.spacing
        self.grids["pos_x"][:] = idx[:, None, None]
        self.grids["pos_y"][:] = idx[None, :, None]
        self.grids["pos_z"][:] = idx[None, None, :]
        if cfg.amplitude != 0.0:
            s = np.sin(np.pi * np.arange(n) / (n - 1))
            bump = cfg.amplitude * (s[:, None, None] * s[None, :, None]
                                    * s[None, None, :])
            self.grids["pos_z"] += bump

    # -- convenience -------------------------------------------------------------

    def var(self, name: str) -> Var:
        return self.vars[name]

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Deep copies of all grids (for test comparisons)."""
        out = {name: arr.copy() for name, arr in self.grids.items()}
        out["partials"] = self.partials.copy()
        return out

    def copy(self) -> "SomierState":
        """An independent state with identical contents."""
        other = SomierState(self.config)
        for name, arr in self.grids.items():
            other.grids[name][:] = arr
        other.partials[:] = self.partials
        other.centers = [c.copy() for c in self.centers]
        return other

    def reduce_centers(self) -> np.ndarray:
        """Host-side fold of the per-row partials (the manual reduction)."""
        interior = self.config.n ** 2 * (self.config.n - 2)
        return self.partials.sum(axis=0) / interior

    def record_centers(self) -> None:
        self.centers.append(self.reduce_centers())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SomierState n={self.config.n} steps_done={len(self.centers)}>"
