"""Baseline: One Buffer at a time with the existing ``target`` directives.

Listing 9 of the paper: the problem is split into buffers that fully occupy
*one* device's memory; per buffer the data is mapped in, the five kernels
run with full intra-device parallelism, and the results are mapped out —
everything synchronously on a single device.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.openmp.target import (
    target_enter_data,
    target_exit_data,
    target_teams_distribute_parallel_for,
)
from repro.somier import impl_common as common
from repro.somier.kernels import SomierKernels
from repro.somier.plan import BufferPlan
from repro.somier.state import SomierState
from repro.util.errors import OmpSemaError


def build_program(state: SomierState, kernels: SomierKernels,
                  plan: BufferPlan, opts: common.RunOpts) -> Callable:
    """The host program for the ``target`` baseline."""
    if len(opts.devices) != 1:
        raise OmpSemaError(
            "the target baseline uses exactly one device (the existing "
            "directives cannot spread)")
    device = opts.devices[0]
    enter_template = common.enter_maps(state)
    exit_template = common.exit_maps(state)
    table = common.kernel_table(state)
    cfg = state.config

    def program(omp) -> Generator:
        for _step in range(cfg.steps):
            for blo, bsize in plan.buffers:
                # map data from host to device
                yield from target_enter_data(
                    omp, device=device,
                    maps=common.materialize_maps(enter_template, blo, bsize))
                # perform kernel computations on the device
                for select, maps_of, _deps_of in table:
                    yield from target_teams_distribute_parallel_for(
                        omp, device=device, kernel=select(kernels),
                        lo=blo, hi=blo + bsize,
                        maps=common.materialize_maps(maps_of(state), blo,
                                                     bsize))
                # map results back to the host
                yield from target_exit_data(
                    omp, device=device,
                    maps=common.materialize_maps(exit_template, blo, bsize))
            state.record_centers()

    return program
