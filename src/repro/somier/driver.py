"""Somier run driver: wires a problem, machine and implementation together.

``run_somier("one_buffer", config, devices=[1, 0, 3, 2], ...)`` builds the
runtime, plans the buffers against the (virtual) device capacity, executes
the chosen implementation and returns a :class:`SomierResult` carrying the
virtual execution time, the centers history, the trace and transfer/kernel
statistics the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.obs.builtin import MetricsTool
from repro.obs.tool import Tool
from repro.openmp.runtime import OpenMPRuntime
from repro.sim.costmodel import CostModel
from repro.sim.topology import NodeTopology, cte_power_node, machine_from_env
from repro.somier import impl_common as common
from repro.somier import (
    impl_double_buffering,
    impl_one_buffer,
    impl_target,
    impl_two_buffers,
)
from repro.somier.config import SomierConfig
from repro.somier.kernels import make_kernels
from repro.somier.plan import BufferPlan, plan_buffers
from repro.somier.state import SomierState
from repro.spread import extensions as ext
from repro.util.errors import OmpRuntimeError

#: implementation name -> program builder
IMPLEMENTATIONS = {
    "target": impl_target.build_program,
    "one_buffer": impl_one_buffer.build_program,
    "two_buffers": impl_two_buffers.build_program,
    "double_buffering": impl_double_buffering.build_program,
}

#: implementations that keep two half-buffer chunks resident per device
_HALF_BUFFER_IMPLS = {"two_buffers", "double_buffering"}


@dataclass
class SomierResult:
    """Everything a benchmark or test needs from one Somier run."""

    impl: str
    devices: List[int]
    config: SomierConfig
    plan: BufferPlan
    elapsed: float
    centers: np.ndarray
    state: SomierState
    runtime: OpenMPRuntime
    stats: Dict[str, float] = field(default_factory=dict)
    #: snapshot of the first registered MetricsTool, if any tool was passed
    metrics: Optional[Dict[str, Any]] = None


def run_somier(impl: str, config: SomierConfig,
               devices: Optional[Sequence[int]] = None,
               topology: Optional[NodeTopology] = None,
               cost_model: Optional[CostModel] = None,
               fill: float = 0.85,
               fuse_transfers: bool = False,
               data_depend: bool = False,
               taskgroup_global_drain: bool = True,
               trace: bool = True,
               plan_cache: bool = True,
               macro_ops: Optional[bool] = None,
               fused_timeline: Optional[bool] = None,
               workers: Optional[int] = None,
               faults: Optional[str] = None,
               fault_seed: Optional[int] = None,
               sanitize=None,
               analyze: Optional[bool] = None,
               tools: Sequence[Tool] = ()) -> SomierResult:
    """Run one Somier experiment; see the module docstring.

    ``devices`` defaults to every device of the topology, in id order; the
    ``target`` baseline requires exactly one.  ``topology=None`` consults
    ``REPRO_MACHINE`` (e.g. ``cluster:4x4`` — see
    :func:`repro.sim.topology.parse_machine_spec`) before falling back to
    the paper's four-GPU CTE-POWER node; on cluster topologies the spread
    implementations distribute hierarchically (nodes, then GPUs).  ``fill`` bounds how much of
    a device's (virtual) memory a resident chunk may use.
    ``taskgroup_global_drain=False`` switches the runtime to spec-pure
    taskgroups (members only) instead of the paper's all-device barrier —
    the counterfactual the global-drain ablation benchmark measures.
    ``tools`` are observability tools registered with the runtime before
    the program starts; if any is a :class:`MetricsTool`, its snapshot
    lands on ``SomierResult.metrics``.  ``plan_cache=False`` (CLI
    ``--no-plan-cache``) disables spread launch-plan replay.
    ``macro_ops=False`` (CLI ``--no-macro-ops``) keeps the plan cache but
    disables compiling cached plans into macro-op replay programs; None
    consults ``REPRO_MACRO_OPS`` — see :mod:`repro.spread.macro`.
    ``fused_timeline=False`` (CLI ``--no-fused-timeline``) keeps macro
    replay but runs every chunk as a generator process instead of a fused
    timeline walker; None consults ``REPRO_FUSED_TIMELINE`` — see
    :mod:`repro.sim.timeline`.
    ``workers`` (CLI ``--workers``) sizes the parallel host execution
    backend; None consults ``REPRO_WORKERS``, and 1 (the default) keeps
    the serial inline path.  Results and traces are identical either way.
    ``faults``/``fault_seed`` (CLI ``--faults``/``--fault-seed``) enable
    seeded fault injection; None consults ``REPRO_FAULTS`` and
    ``REPRO_FAULT_SEED`` — see :mod:`repro.sim.faults`.
    ``sanitize`` (CLI ``--sanitize``) enables the interval race sanitizer;
    None consults ``REPRO_SANITIZE`` — see :mod:`repro.analysis.sanitizer`.
    ``analyze`` (CLI ``--analyze`` / ``repro analyze``) attaches the causal
    recorder for critical-path analysis; None consults ``REPRO_ANALYZE``.
    Explicit ``analyze=True`` implies tracing; env-armed analysis respects
    ``trace=False`` and silently skips recording.  Results and traces are
    identical either way — see :mod:`repro.obs.critpath`.
    """
    if impl not in IMPLEMENTATIONS:
        raise OmpRuntimeError(
            f"unknown Somier implementation {impl!r} "
            f"(available: {sorted(IMPLEMENTATIONS)})")
    topo = topology
    if topo is None:
        try:
            topo = machine_from_env()
        except ValueError as err:
            raise OmpRuntimeError(str(err)) from err
    if topo is None:
        topo = cte_power_node(4)
    rt = OpenMPRuntime(topology=topo, cost_model=cost_model,
                       trace_enabled=trace or analyze is True,
                       taskgroup_global_drain=taskgroup_global_drain,
                       plan_cache=plan_cache, macro_ops=macro_ops,
                       fused_timeline=fused_timeline,
                       workers=workers,
                       faults=faults, fault_seed=fault_seed,
                       sanitize=sanitize, analyze=analyze)
    devs = list(devices) if devices is not None else list(range(topo.num_devices))
    for tool in tools:
        rt.tools.register(tool)
    if data_depend:
        ext.enable(rt, data_depend=True)
    capacity = min(topo.device_specs[d].memory_bytes for d in devs)
    concurrent = 2 if impl in _HALF_BUFFER_IMPLS else 1
    plan = plan_buffers(config, len(devs), capacity,
                        scale=rt.cost_model.scale, fill=fill,
                        concurrent_chunks=concurrent)
    state = SomierState(config)
    kernels = make_kernels(config)
    groups = None
    if getattr(topo, "num_nodes", 1) > 1:
        # Cluster topology: group the devices clause per node (clause
        # order preserved inside each group) so the implementations spread
        # hierarchically — nodes first, then each node's devices.
        groups = [g for g in
                  ([d for d in devs if topo.node_of(d) == n]
                   for n in range(topo.num_nodes))
                  if g]
    opts = common.RunOpts(devices=devs, data_depend=data_depend,
                          fuse_transfers=fuse_transfers, groups=groups)
    program = IMPLEMENTATIONS[impl](state, kernels, plan, opts)
    rt.run(program)

    stats = {
        "h2d_bytes": sum(rt.devices[d].h2d_bytes for d in devs),
        "d2h_bytes": sum(rt.devices[d].d2h_bytes for d in devs),
        "memcpy_calls": sum(rt.devices[d].memcpy_calls for d in devs),
        "kernels_launched": sum(rt.devices[d].kernels_launched for d in devs),
        "tasks": rt.task_count,
        "plan_cache_hits": rt.plan_cache.hits,
        "plan_cache_misses": rt.plan_cache.misses,
        "macro_compiles": rt.plan_cache.macro_compiles,
        "macro_replays": rt.plan_cache.macro_replays,
        "workers": rt.workers,
    }
    engine = rt.sim.engine_stats()
    stats.update({
        "engine_events_scheduled": engine["events_scheduled"],
        "engine_dispatches": engine["dispatches"],
        "engine_events_dispatched": engine["events_dispatched"],
        "engine_mean_batch": engine["mean_batch"],
        "engine_fused_segments": engine["fused_segments"],
    })
    if rt.fault_injector is not None or rt.lost_devices:
        stats.update({
            "faults_injected": (rt.fault_injector.injected
                                if rt.fault_injector is not None else 0),
            "fault_retries": rt.fault_retries,
            "fault_failovers": rt.fault_failovers,
            "devices_lost": len(rt.lost_devices),
        })
    if rt.sanitizer is not None:
        stats.update({
            "sanitizer_ops": rt.sanitizer.ops_recorded,
            "sanitizer_checks": rt.sanitizer.access_checks,
            "sanitizer_races": rt.sanitizer.races,
        })
    if rt.causal is not None:
        # Counters only — the analysis itself (critical path, attribution,
        # what-if) is on-demand via rt.analysis(), off the run's hot path.
        stats.update({
            "causal_ops": rt.causal.ops,
            "causal_dep_edges": rt.causal.dep_edge_count,
            "causal_res_edges": len(rt.causal.res_edges),
        })
    if rt.executor is not None:
        stats.update({
            "executor_epochs": rt.executor.epochs,
            "executor_parallel_ops": rt.executor.parallel_ops,
            "executor_serial_ops": rt.executor.serial_ops,
            "executor_inline_fallbacks": rt.executor.inline_fallbacks,
            "executor_inline_small_ops": rt.executor.inline_small_ops,
            "executor_inline_small_bytes": rt.executor.inline_small_bytes,
            "executor_min_bytes": rt.executor.min_bytes,
            "executor_utilization": rt.executor.utilization,
        })
    for t in tools:
        if isinstance(t, MetricsTool):
            t.observe_engine(engine)
    metrics = next((t.snapshot() for t in tools
                    if isinstance(t, MetricsTool)), None)
    return SomierResult(impl=impl, devices=devs, config=config, plan=plan,
                        elapsed=rt.elapsed,
                        centers=np.array(state.centers), state=state,
                        runtime=rt, stats=stats, metrics=metrics)
