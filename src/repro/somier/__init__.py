"""The Somier mini-app (paper Section V).

Somier simulates a 3-D grid of springs: per time step it computes **forces**
(a stencil over neighbouring cells, requiring halos), **accelerations**,
**velocities** and **positions** (pointwise), plus a **centers** reduction
over the positions (implemented manually, as in the paper: per-row partial
sums reduced on the host).

Four implementations are provided, matching Section V:

* ``target`` — the baseline: One Buffer at a time on a single device with
  the existing ``target`` directives (Listing 9);
* ``one_buffer`` — One Buffer with the ``target spread`` set (Listing 10);
* ``two_buffers`` — two half buffers in flight via ``taskloop
  num_tasks(2)`` (Listing 11);
* ``double_buffering`` — recursive routine + ``task`` (Listing 12).

Every implementation is verified against :mod:`repro.somier.reference`,
which executes the same buffered sweep sequentially on the host with the
same kernel bodies — One Buffer runs must match bit-for-bit.
"""

from repro.somier.config import SomierConfig
from repro.somier.state import SomierState
from repro.somier.kernels import SomierKernels, make_kernels
from repro.somier.plan import BufferPlan, plan_buffers
from repro.somier.reference import run_reference
from repro.somier.driver import run_somier, SomierResult, IMPLEMENTATIONS
from repro.somier.diagnostics import EnergyReport, energy

__all__ = [
    "SomierConfig",
    "SomierState",
    "SomierKernels",
    "make_kernels",
    "BufferPlan",
    "plan_buffers",
    "run_reference",
    "run_somier",
    "SomierResult",
    "IMPLEMENTATIONS",
    "EnergyReport",
    "energy",
]
