"""Sequential reference: the same buffered sweep on the host.

The reference executes exactly the semantics the buffered implementations
have: per time step, buffers are processed in order and the five kernels run
per buffer (so a buffer's forces see the positions *already updated* by the
previous buffer in this step through the lower halo row, and the
not-yet-updated ones above — just like the device versions, whose data is
mapped after the previous buffer's copy-back).

Because the identical kernel bodies run on the raw host arrays, any
difference between a device run and this reference isolates a defect (or a
genuine race, for the half-buffer variants without cross-buffer
dependences) in the runtime machinery, not in the numerics.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.somier.config import SomierConfig
from repro.somier.kernels import make_kernels
from repro.somier.state import SomierState


def _host_env(state: SomierState) -> dict:
    env = dict(state.grids)
    env["partials"] = state.partials
    return env


def run_reference(state: SomierState,
                  buffers: Sequence[Tuple[int, int]],
                  steps: int | None = None) -> SomierState:
    """Advance *state* in place using the buffered sequential sweep.

    ``buffers`` is the slab decomposition ((start_row, row_count) pairs) —
    pass ``plan.buffers`` to mirror the One Buffer implementations or
    ``plan.halves()`` to mirror the half-buffer ones.  Returns the state
    for chaining; per-step centers are recorded on it.
    """
    config = state.config
    nsteps = steps if steps is not None else config.steps
    kernels = make_kernels(config)
    env = _host_env(state)
    order = kernels.in_order()
    for _step in range(nsteps):
        for start, size in buffers:
            lo, hi = start, start + size
            for spec in order:
                spec.run(lo, hi, env)
        state.record_centers()
    return state


def run_reference_fresh(config: SomierConfig,
                        buffers: Sequence[Tuple[int, int]]) -> SomierState:
    """Convenience: build a fresh state and run the reference on it."""
    state = SomierState(config)
    return run_reference(state, buffers)
