"""Buffer planning: splitting a bigger-than-device problem into slabs.

The paper sizes the problem to ~10x the memory of one GPU and processes it
in buffers: the baseline uses buffers "that fully occupy the device memory";
the spread versions use buffers "that sum up the total amount of memory of
the devices", each device receiving ``chunk = buffer_size / num_devices``
rows (Listing 10 line 5).

The planner works in *virtual* bytes (the cost model's scale applied to the
functional row size), so a scaled-down functional grid reproduces the
paper's buffer counts against the real 16 GB V100 capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.somier.config import SomierConfig
from repro.util.errors import OmpAllocationError


@dataclass(frozen=True)
class BufferPlan:
    """The slab decomposition of the interior row range."""

    buffers: Tuple[Tuple[int, int], ...]  # (start_row, row_count) pairs
    chunk_rows: int                       # per-device rows within a buffer
    num_devices: int

    @property
    def num_buffers(self) -> int:
        return len(self.buffers)

    @property
    def rows_per_buffer(self) -> int:
        return self.buffers[0][1] if self.buffers else 0

    def halves(self) -> List[Tuple[int, int]]:
        """Half-buffer decomposition (Two Buffers / Double Buffering).

        Each buffer splits into two halves; odd-row buffers put the extra
        row in the first half.
        """
        out: List[Tuple[int, int]] = []
        for start, size in self.buffers:
            first = (size + 1) // 2
            second = size - first
            out.append((start, first))
            if second:
                out.append((start + first, second))
        return out


def chunk_footprint_bytes(config: SomierConfig, chunk_rows: int) -> int:
    """Functional device bytes of one mapped chunk of *chunk_rows* rows.

    3 position grids carry a 2-row halo; the other 9 grids and the
    partials row-buffer map the exact chunk.
    """
    plane = config.n ** 2 * 8
    pos = 3 * (chunk_rows + 2) * plane
    others = 9 * chunk_rows * plane
    partials = chunk_rows * 3 * 8
    return pos + others + partials


def plan_buffers(config: SomierConfig, num_devices: int,
                 capacity_bytes: float, scale: float = 1.0,
                 fill: float = 0.85,
                 concurrent_chunks: int = 1) -> BufferPlan:
    """Choose the largest chunk (rows per device) that fits the device.

    ``concurrent_chunks`` is 1 for One Buffer and 2 for the half-buffer
    implementations (two chunks of half the rows live on a device at once,
    which costs two extra halo rows of the position grids).

    Raises :class:`OmpAllocationError` if even a single row does not fit —
    the problem genuinely exceeds what the machine can process.
    """
    if num_devices < 1:
        raise ValueError("need at least one device")
    if not 0 < fill <= 1:
        raise ValueError("fill must be in (0, 1]")
    if concurrent_chunks < 1:
        raise ValueError("concurrent_chunks must be >= 1")
    budget = capacity_bytes * fill
    total_rows = config.loop_hi - config.loop_lo

    def fits(chunk_rows: int) -> bool:
        per = math.ceil(chunk_rows / concurrent_chunks)
        needed = concurrent_chunks * chunk_footprint_bytes(config, per) * scale
        return needed <= budget

    if not fits(1):
        raise OmpAllocationError(
            f"Somier n={config.n}: one chunk row "
            f"({chunk_footprint_bytes(config, 1) * scale:.3e} virtual B) "
            f"exceeds the device budget ({budget:.3e} B)")
    chunk = 1
    while chunk < total_rows and fits(chunk + 1):
        chunk += 1
    chunk = min(chunk, math.ceil(total_rows / num_devices))

    rows_per_buffer = min(chunk * num_devices, total_rows)
    buffers: List[Tuple[int, int]] = []
    pos = config.loop_lo
    while pos < config.loop_hi:
        size = min(rows_per_buffer, config.loop_hi - pos)
        buffers.append((pos, size))
        pos += size
    return BufferPlan(buffers=tuple(buffers), chunk_rows=chunk,
                      num_devices=num_devices)
