"""Double Buffering: recursive routine + ``task`` (Listing 12).

Instead of a ``taskloop``, a recursive routine processes half buffers: it
maps its half in, spawns an asynchronous task that recurses into the *next*
half (so that half's transfers are dispatched while this half computes),
runs the kernels, and maps its half out.  The recursion gives explicit
control over when the next half's transfers are issued — the paper's attempt
to force transfer/compute overlap.

A per-step taskgroup around the initial call collects the whole recursion
(descendant tasks inherit the open group), providing the end-of-step
synchronization the time loop needs.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.somier import impl_common as common
from repro.somier.impl_one_buffer import process_buffer
from repro.somier.kernels import SomierKernels
from repro.somier.plan import BufferPlan
from repro.somier.state import SomierState


def build_program(state: SomierState, kernels: SomierKernels,
                  plan: BufferPlan, opts: common.RunOpts) -> Callable:
    """The host program for the Double Buffering implementation."""
    cfg = state.config
    halves = plan.halves()

    def foobar(ctx, index: int) -> Generator:
        hlo, hsize = halves[index]

        def spawn_next() -> None:
            # the routine calls itself inside an asynchronous task
            if index + 1 < len(halves):
                ctx.task(foobar, index + 1, name=f"foobar#{index + 1}")

        yield from process_buffer(ctx, state, kernels, hlo, hsize, opts,
                                  after_enter=spawn_next)

    def program(omp) -> Generator:
        for _step in range(cfg.steps):
            tg = omp.taskgroup_begin()
            yield from foobar(omp, 0)
            yield from omp.taskgroup_end(tg)
            state.record_centers()

    def program_data_depend(omp) -> Generator:
        # §IX mode: the recursion (whose purpose was prefetching the next
        # half) is subsumed by chunk-level dependences; directives are
        # created in half order so every cross-half halo edge is resolved
        # (dependences are matched at task creation time).
        for _step in range(cfg.steps):
            for hlo, hsize in halves:
                yield from process_buffer(omp, state, kernels, hlo, hsize,
                                          opts)
            yield from omp.taskwait()
            state.record_centers()

    return program_data_depend if opts.data_depend else program
