"""Two Buffers: two half buffers in flight via ``taskloop`` (Listing 11).

Each buffer is split in half; a ``taskloop num_tasks(2)`` processes the
halves with two concurrent host tasks, so at any time two half buffers can
be transferring/computing — the hope being that one half's transfers overlap
the other's kernels.  (The paper finds they mostly *interleave* instead,
Section VI-B.)

The paper notes this version cannot run on a single device: consecutive
half-buffer halos would overlap-extend each other's mapped position
sections, which OpenMP forbids.  Our data environment raises
:class:`~repro.util.errors.OmpMappingError` in exactly that case.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.somier import impl_common as common
from repro.somier.impl_one_buffer import process_buffer
from repro.somier.kernels import SomierKernels
from repro.somier.plan import BufferPlan
from repro.somier.state import SomierState


def build_program(state: SomierState, kernels: SomierKernels,
                  plan: BufferPlan, opts: common.RunOpts) -> Callable:
    """The host program for the Two Buffers implementation."""
    cfg = state.config
    halves = plan.halves()
    # "Process 2 half buffers at a time": deal the halves so the two
    # taskloop tasks advance through *adjacent* halves in lockstep (task A
    # gets even-indexed halves, task B odd-indexed).  This is what makes a
    # device hold sections of two consecutive buffers simultaneously — and
    # why a single-GPU run dies on the halo-overlap mapping error (§V-B).
    dealt = halves[0::2] + halves[1::2]

    def half_body(ctx, half) -> Generator:
        hlo, hsize = half
        yield from process_buffer(ctx, state, kernels, hlo, hsize, opts)

    def program(omp) -> Generator:
        for _step in range(cfg.steps):
            # process 2 half buffers at a time (implicit taskgroup at end)
            yield from omp.taskloop(dealt, half_body, num_tasks=2)
            state.record_centers()

    def program_data_depend(omp) -> Generator:
        # §IX mode: chunk-level dependences replace both the taskgroup
        # barriers *and* the taskloop — directives are created in half
        # order (dependences are resolved at task creation, so program
        # order must cover every cross-half halo edge) and all concurrency
        # comes from the dependence graph.
        for _step in range(cfg.steps):
            for hlo, hsize in halves:
                yield from process_buffer(omp, state, kernels, hlo, hsize,
                                          opts)
            yield from omp.taskwait()
            state.record_centers()

    return program_data_depend if opts.data_depend else program
