"""Somier problem configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SomierConfig:
    """Physical and numerical parameters of the spring-grid simulation.

    The defaults give a stable explicit-Euler integration (the natural
    frequency of a node is ``sqrt(6*k_spring/mass)``; ``dt`` must stay well
    under ``2/omega``).  Boundary nodes are fixed; the initial condition is
    the rest lattice with a smooth vertical displacement that vanishes at
    the boundary.
    """

    n: int = 24
    steps: int = 4
    dt: float = 0.01
    mass: float = 1.0
    k_spring: float = 10.0
    rest_length: float = 1.0
    spacing: float = 1.0
    amplitude: float = 0.1

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ValueError("Somier grid needs n >= 4 (interior + halo)")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.dt <= 0 or self.mass <= 0 or self.k_spring < 0:
            raise ValueError("dt/mass must be positive, k_spring >= 0")
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")

    @property
    def loop_lo(self) -> int:
        """First interior row (the paper's loops run ``1 .. N-1``)."""
        return 1

    @property
    def loop_hi(self) -> int:
        """One past the last interior row."""
        return self.n - 1

    @property
    def grid_bytes(self) -> int:
        """Functional bytes of one component grid."""
        return self.n ** 3 * 8

    @property
    def total_bytes(self) -> int:
        """Functional bytes of the full problem (4 variables x 3 grids)."""
        return 12 * self.grid_bytes
