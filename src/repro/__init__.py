"""repro — a simulated multi-device OpenMP runtime reproducing the
``target spread`` directive set of Torres, Ferrer & Teruel (IPDPS-W 2022).

Public API layers (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event simulator + node topology.
* :mod:`repro.device` — simulated accelerators (memory, DMA, kernels).
* :mod:`repro.openmp` — OpenMP host runtime: tasks, dependences, device data
  environments, and the standard single-device ``target`` directives.
* :mod:`repro.spread` — the paper's contribution: the ``target spread``
  directive set.
* :mod:`repro.pragma` — a pragma-string compiler frontend (lexer, parser,
  sema, codegen) mirroring the paper's Clang implementation.
* :mod:`repro.somier` — the Somier mini-app and its paper implementations.
* :mod:`repro.bench` — experiment harness regenerating the paper's tables
  and figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
