"""Error hierarchy for the simulated OpenMP runtime and directive frontend.

The hierarchy mirrors the stages of the paper's implementation (Section
III-C): lexical/parse errors, semantic errors, and runtime errors raised by
the device data environment or the scheduler.
"""

from __future__ import annotations


class OmpError(Exception):
    """Base class for every error raised by the repro OpenMP stack."""


def _located(message: str, source: str, offset: int | None) -> str:
    """Append a caret line pointing at *offset* inside *source*."""
    if source and offset is not None:
        caret = " " * offset + "^"
        message = f"{message}\n  {source}\n  {caret}"
    return message


class OmpSyntaxError(OmpError):
    """A pragma string failed to tokenize or parse.

    Carries the offending source text and the character offset, so test
    suites and users can point at the failing clause.
    """

    def __init__(self, message: str, source: str = "", offset: int | None = None):
        self.source = source
        self.offset = offset
        super().__init__(_located(message, source, offset))


class OmpSemaError(OmpError):
    """A directive is syntactically valid but semantically ill-formed.

    Examples reproduced from the paper: ``spread_schedule`` with a
    non-``static`` kind, ``depend`` on ``target enter data spread``
    (unsupported), ``nowait`` on ``target data spread`` (unsupported),
    a ``target spread`` whose associated block is not a loop.

    Like :class:`OmpSyntaxError`, optionally carries the pragma text and
    the offset of the offending clause/section for caret rendering.
    """

    def __init__(self, message: str, source: str = "", offset: int | None = None):
        self.source = source
        self.offset = offset
        super().__init__(_located(message, source, offset))


class OmpRuntimeError(OmpError):
    """Generic runtime failure (bad device id, invalid state, ...)."""


class OmpDeviceError(OmpRuntimeError):
    """A device id is out of range or a device operation is invalid."""


class OmpMappingError(OmpRuntimeError):
    """Illegal data-environment manipulation.

    The OpenMP specification forbids extending an array section that is
    already (partially) present on a device.  The paper relies on this rule:
    the Two Buffers and Double Buffering Somier implementations cannot run on
    a single GPU because consecutive half-buffer halos would overlap-extend
    each other's mapped sections (Section V-B).
    """


class OmpAllocationError(OmpRuntimeError):
    """Device memory capacity exceeded.

    ``requested`` and ``capacity`` (virtual bytes) let callers distinguish
    a transient exhaustion (another buffer still resident — the runtime may
    back-pressure and retry once memory frees) from a request that can
    never succeed.
    """

    def __init__(self, message: str, requested: float = 0.0,
                 capacity: float = 0.0):
        super().__init__(message)
        self.requested = requested
        self.capacity = capacity

    @property
    def can_ever_fit(self) -> bool:
        return self.requested <= self.capacity


class OmpScheduleError(OmpRuntimeError):
    """Invalid spread schedule specification (bad chunk size, empty device
    list, unknown schedule kind at runtime level)."""


class DeviceFaultError(OmpRuntimeError):
    """An injected device-operation failure (see :mod:`repro.sim.faults`).

    Carries the device id, the op class (``h2d``/``d2h``/``kernel``) and
    the op name so retry/failover layers and tools can attribute it.
    ``retryable`` distinguishes transient faults (a resubmitted transfer or
    launch may succeed) from terminal ones (the device is gone).
    """

    retryable = True

    def __init__(self, message: str, device: int | None = None,
                 op: str = "", name: str = ""):
        super().__init__(message)
        self.device = device
        self.op = op
        self.name = name


class TransferFaultError(DeviceFaultError):
    """An H2D/D2H memcpy failed (injected); the transfer may be retried."""


class KernelFaultError(DeviceFaultError):
    """A kernel launch failed (injected); the launch may be retried."""


class DeviceLostError(DeviceFaultError):
    """The whole device is gone (injected); its resident data is lost.

    Never retryable on the same device — recovery is spread-level failover
    onto the surviving devices (:mod:`repro.spread.failover`).
    """

    retryable = False


class NodeLostError(DeviceLostError):
    """A whole cluster node is gone (injected): every device it hosts is
    lost at once, along with their resident data and the node's staging
    buffer.  Recovery is the same spread-level failover as a single
    device loss, applied to all of the node's devices — surviving nodes
    absorb the lost node's chunk shares.

    ``device`` names the device whose operation surfaced the loss;
    ``node`` names the lost node.
    """

    def __init__(self, message: str, device: int | None = None,
                 op: str = "", name: str = "", node: int | None = None):
        super().__init__(message, device=device, op=op, name=name)
        self.node = node


class SpreadExecutionError(OmpRuntimeError):
    """A spread directive cannot make progress: every device in its
    ``devices(...)`` clause has been lost, so there is nowhere left to
    re-spread the remaining chunks."""


class DataRaceError(OmpRuntimeError):
    """The race sanitizer found conflicting unordered accesses.

    Raised at the end of :meth:`repro.openmp.runtime.OpenMPRuntime.run`
    when the sanitizer runs in ``strict`` mode; the individual
    :class:`repro.analysis.sanitizer.RaceReport` records stay available on
    ``rt.sanitizer.reports`` either way.
    """
