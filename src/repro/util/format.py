"""Human-readable formatting helpers for benchmark tables and traces."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_hms(seconds: float) -> str:
    """Format seconds in the paper's ``XmY.ZZZs`` style (e.g. ``17m40.231s``)."""
    if seconds < 0:
        return "-" + format_hms(-seconds)
    minutes = int(seconds // 60)
    rem = seconds - minutes * 60
    if minutes == 0:
        return f"{rem:.3f}s"
    return f"{minutes}m{rem:06.3f}s"


def format_bytes(n: float) -> str:
    """Format a byte count with binary-ish units, GB = 1e9 as in the paper."""
    for unit, factor in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(n) >= factor:
            return f"{n / factor:.2f} {unit}"
    return f"{n:.0f} B"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table (used by the bench harness)."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt_row(list(headers)), sep]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
