"""Half-open integer interval algebra.

Array sections in OpenMP map clauses are contiguous element ranges.  The
device data environment needs exact overlap/containment/extension queries to
implement the present-table rules (Section II/III of the paper and the OpenMP
spec's restriction against extending an already-mapped section).

All intervals are half-open ``[start, stop)`` over Python ints.

Besides the scalar :class:`Interval` algebra, the module provides NumPy
*batch* helpers over packed ``(n, 2)`` bound arrays — the representation the
macro-op replay engine (:mod:`repro.spread.macro`) and the executor's wave
planner (:mod:`repro.sim.executor`) use, where per-op Python loops would
dominate.  The batch predicates reproduce the scalar semantics exactly
(empty intervals never overlap, contain everything and are contained
everywhere); ``tests/util/test_intervals.py`` cross-checks them against the
scalar implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open integer interval ``[start, stop)``.

    Empty intervals (``start >= stop``) are permitted and behave as the
    empty set.
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or not isinstance(self.stop, int):
            raise TypeError("Interval bounds must be ints")

    # -- basic predicates ---------------------------------------------------

    @property
    def empty(self) -> bool:
        return self.start >= self.stop

    def __len__(self) -> int:
        return max(0, self.stop - self.start)

    def __contains__(self, point: int) -> bool:
        return self.start <= point < self.stop

    def contains(self, other: "Interval") -> bool:
        """True if *other* is a (possibly equal) sub-interval of self."""
        if other.empty:
            return True
        return self.start <= other.start and other.stop <= self.stop

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one element."""
        if self.empty or other.empty:
            return False
        return self.start < other.stop and other.start < self.stop

    def extends(self, other: "Interval") -> bool:
        """True if self overlaps *other* but is not contained in it.

        This is exactly the situation the OpenMP present table must reject:
        a new section that partially covers an existing entry and reaches
        beyond it ("extension of an existing array section").
        """
        return self.overlaps(other) and not other.contains(self)

    def adjacent(self, other: "Interval") -> bool:
        """True if the intervals touch without overlapping."""
        if self.empty or other.empty:
            return False
        return self.stop == other.start or other.stop == self.start

    # -- algebra ------------------------------------------------------------

    def intersection(self, other: "Interval") -> "Interval":
        return Interval(max(self.start, other.start), min(self.stop, other.stop))

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (not a set union)."""
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.start, other.start), max(self.stop, other.stop))

    def shift(self, delta: int) -> "Interval":
        return Interval(self.start + delta, self.stop + delta)

    def clamp(self, lo: int, hi: int) -> "Interval":
        """Clip the interval to ``[lo, hi)``."""
        return Interval(max(self.start, lo), min(self.stop, hi))

    def split_at(self, point: int) -> Tuple["Interval", "Interval"]:
        """Split into ``[start, point)`` and ``[point, stop)`` (clamped)."""
        p = min(max(point, self.start), self.stop)
        return Interval(self.start, p), Interval(p, self.stop)

    def as_slice(self) -> slice:
        return slice(self.start, self.stop)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}:{self.stop})"


class IntervalSet:
    """A canonical set of disjoint, sorted, non-adjacent intervals.

    Used by allocators and by trace analysis (busy-time computation).  All
    mutating operations keep the canonical form.
    """

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._ivs: List[Interval] = []
        for iv in intervals:
            self.add(iv)

    # -- construction / mutation --------------------------------------------

    def add(self, iv: Interval) -> None:
        """Insert an interval, merging with overlapping/adjacent entries."""
        if iv.empty:
            return
        merged_start, merged_stop = iv.start, iv.stop
        keep: List[Interval] = []
        for existing in self._ivs:
            if existing.stop < merged_start or existing.start > merged_stop:
                keep.append(existing)
            else:
                merged_start = min(merged_start, existing.start)
                merged_stop = max(merged_stop, existing.stop)
        keep.append(Interval(merged_start, merged_stop))
        keep.sort()
        self._ivs = keep

    def remove(self, iv: Interval) -> None:
        """Subtract an interval from the set."""
        if iv.empty:
            return
        out: List[Interval] = []
        for existing in self._ivs:
            if not existing.overlaps(iv):
                out.append(existing)
                continue
            left = Interval(existing.start, min(existing.stop, iv.start))
            right = Interval(max(existing.start, iv.stop), existing.stop)
            if not left.empty:
                out.append(left)
            if not right.empty:
                out.append(right)
        self._ivs = out

    # -- queries --------------------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def total(self) -> int:
        """Total number of covered elements."""
        return sum(len(iv) for iv in self._ivs)

    def covers(self, iv: Interval) -> bool:
        """True if *iv* is fully covered by the set."""
        if iv.empty:
            return True
        for existing in self._ivs:
            if existing.contains(iv):
                return True
        return False

    def overlaps(self, iv: Interval) -> bool:
        return any(existing.overlaps(iv) for existing in self._ivs)

    def find_overlapping(self, iv: Interval) -> List[Interval]:
        return [existing for existing in self._ivs if existing.overlaps(iv)]

    def first_gap(self, size: int, lo: int = 0, hi: Optional[int] = None) -> Optional[int]:
        """First-fit search: smallest start >= lo of a free gap of *size*.

        The set is interpreted as *occupied* space inside ``[lo, hi)``.
        Returns None if no gap exists.
        """
        if size <= 0:
            return lo
        cursor = lo
        for existing in self._ivs:
            if existing.stop <= cursor:
                continue
            if existing.start - cursor >= size:
                return cursor
            cursor = max(cursor, existing.stop)
        if hi is None or hi - cursor >= size:
            return cursor
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "IntervalSet(" + ", ".join(map(repr, self._ivs)) + ")"


# -- NumPy batch helpers ------------------------------------------------------
#
# Packed representation: an ``(n, 2)`` int64 array of ``[start, stop)`` bound
# pairs.  The helpers below are drop-in batch versions of the scalar
# predicates above; keeping them next to the scalar algebra (rather than in
# each consumer) is what lets the macro-op compiler, the executor wave
# planner and ``benchmarks/bench_intervals.py`` share one audited
# implementation.


def pack_intervals(intervals: Sequence[Interval]) -> np.ndarray:
    """Pack a sequence of :class:`Interval` into an ``(n, 2)`` int64 array."""
    n = len(intervals)
    out = np.empty((n, 2), dtype=np.int64)
    for i, iv in enumerate(intervals):
        out[i, 0] = iv.start
        out[i, 1] = iv.stop
    return out


def unpack_intervals(packed: np.ndarray) -> List[Interval]:
    """Inverse of :func:`pack_intervals` (bounds cast back to Python ints)."""
    return [Interval(int(lo), int(hi)) for lo, hi in packed]


def batch_widths(packed: np.ndarray) -> np.ndarray:
    """Element counts per packed interval (empty intervals clamp to 0)."""
    return np.maximum(packed[:, 1] - packed[:, 0], 0)


def batch_overlap_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(n, m)`` bool matrix: does ``a[i]`` overlap ``b[j]``?

    Matches :meth:`Interval.overlaps` exactly — empty intervals on either
    side never overlap anything.
    """
    a_start = a[:, 0:1]
    a_stop = a[:, 1:2]
    b_start = b[:, 0].reshape(1, -1)
    b_stop = b[:, 1].reshape(1, -1)
    return ((a_start < a_stop) & (b_start < b_stop)
            & (a_start < b_stop) & (b_start < a_stop))


def batch_any_overlap(a: np.ndarray, b: np.ndarray) -> bool:
    """True if any interval in *a* overlaps any interval in *b*."""
    if a.shape[0] == 0 or b.shape[0] == 0:
        return False
    return bool(batch_overlap_matrix(a, b).any())


def batch_contains(container: np.ndarray, items: np.ndarray) -> np.ndarray:
    """``(n, m)`` bool matrix: does ``container[i]`` contain ``items[j]``?

    Matches :meth:`Interval.contains` — empty items are contained
    everywhere (they are the empty set).
    """
    c_start = container[:, 0:1]
    c_stop = container[:, 1:2]
    i_start = items[:, 0].reshape(1, -1)
    i_stop = items[:, 1].reshape(1, -1)
    empty_item = i_start >= i_stop
    return empty_item | ((c_start <= i_start) & (i_stop <= c_stop))
