"""Shared utilities: error hierarchy, interval algebra, formatting helpers."""

from repro.util.errors import (
    OmpError,
    OmpSyntaxError,
    OmpSemaError,
    OmpRuntimeError,
    OmpMappingError,
    OmpDeviceError,
    OmpAllocationError,
    OmpScheduleError,
)
from repro.util.intervals import Interval, IntervalSet
from repro.util.format import format_hms, format_bytes, format_table

__all__ = [
    "OmpError",
    "OmpSyntaxError",
    "OmpSemaError",
    "OmpRuntimeError",
    "OmpMappingError",
    "OmpDeviceError",
    "OmpAllocationError",
    "OmpScheduleError",
    "Interval",
    "IntervalSet",
    "format_hms",
    "format_bytes",
    "format_table",
]
