"""Uniform parsing for the ``REPRO_*`` environment knobs.

Every runtime toggle that can come from the environment goes through the
two helpers below, so empty strings, junk values and out-of-range numbers
fail the same way everywhere: a :class:`ValueError` whose message names
the variable and the offending value.  Callers that surface knob errors
as :class:`~repro.util.errors.OmpRuntimeError` wrap the ValueError at the
call site — the *message* stays uniform either way.

Conventions shared by all knobs:

* an unset variable means "use the default";
* an empty (or whitespace-only) value also means "use the default", so
  CI matrix legs can pass ``REPRO_X=`` to mean "leave it alone";
* anything else must parse, or the run fails fast instead of silently
  picking a behavior the user did not ask for.
"""

from __future__ import annotations

import os
from typing import Optional

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def env_raw(name: str) -> Optional[str]:
    """The stripped value of *name*, or ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if raw is None:
        return None
    raw = raw.strip()
    return raw if raw else None


def env_flag(name: str, default: bool = False) -> bool:
    """Parse a boolean knob: 1/0, true/false, yes/no, on/off.

    Raises :class:`ValueError` on anything else — a junk value must not
    silently count as "enabled" (or "disabled").
    """
    raw = env_raw(name)
    if raw is None:
        return default
    val = raw.lower()
    if val in _TRUE:
        return True
    if val in _FALSE:
        return False
    raise ValueError(
        f"{name}={raw!r}: expected a boolean "
        f"(one of 1/0, true/false, yes/no, on/off)")


def env_int(name: str, default: Optional[int] = None,
            minimum: Optional[int] = None) -> Optional[int]:
    """Parse an integer knob, optionally enforcing a lower bound."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r}: expected an integer") from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name}={raw!r}: must be >= {minimum}")
    return value
