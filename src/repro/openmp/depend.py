"""Data-based dependence resolution for the ``depend`` clause.

The paper's ``depend`` follows the *data-flow* proposal it cites (Maroñas et
al., IWOMP 2021): dependences are expressed on **array sections**, not on
iteration numbers, and are evaluated per chunk — ``depend(out:
B[omp_spread_start : omp_spread_size])`` creates one dependence record per
chunk task.

Semantics implemented (matching OpenMP task dependences):

* an ``in`` dependence conflicts with every earlier ``out``/``inout`` whose
  section overlaps;
* an ``out``/``inout`` dependence conflicts with every earlier record
  (reader or writer) whose section overlaps;
* resolution happens at task **creation** time in program order, so the
  resulting graph is deterministic.

Records whose section is fully covered by a newer writer are pruned — any
future conflict with them is transitively enforced through the newer writer
— keeping the tracker O(active frontier) for the regular chunked access
patterns of the benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.openmp.mapping import Var
from repro.sim.engine import Event
from repro.util.errors import OmpSemaError
from repro.util.intervals import Interval


class DepKind(enum.Enum):
    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def writes(self) -> bool:
        return self in (DepKind.OUT, DepKind.INOUT)


@dataclass(frozen=True)
class Dep:
    """One dependence item: a kind, a variable and a section.

    ``section`` follows map-clause conventions: a ``(start, length)`` pair of
    ints or spread expressions, or ``None`` for the whole array.
    """

    kind: DepKind
    var: Var
    section: "object" = None

    @staticmethod
    def in_(var: Var, section=None) -> "Dep":
        return Dep(DepKind.IN, var, section)

    @staticmethod
    def out(var: Var, section=None) -> "Dep":
        return Dep(DepKind.OUT, var, section)

    @staticmethod
    def inout(var: Var, section=None) -> "Dep":
        return Dep(DepKind.INOUT, var, section)


class _Frontier:
    """Per-variable access frontier as parallel packed arrays.

    ``bounds`` is an ``(capacity, 2)`` int64 array of half-open sections,
    ``writes`` the matching bool array and ``events`` the matching Python
    list of task events; ``n`` records live.  The representation mirrors
    the batch helpers in :mod:`repro.util.intervals`: one vectorized mask
    replaces the per-record ``Interval.overlaps`` loop that dominated
    resolution on wide frontiers (hundreds of live records per variable in
    the chunked steady state).  ``single`` caches the lone record as plain
    Python scalars when ``n == 1`` so the covering-writer fast path stays
    allocation- and NumPy-free.
    """

    __slots__ = ("bounds", "writes", "events", "n", "single")

    def __init__(self) -> None:
        self.bounds = np.empty((8, 2), dtype=np.int64)
        self.writes = np.empty(8, dtype=bool)
        self.events: List[Event] = []
        self.n = 0
        self.single = None  # (start, stop, writes) iff n == 1

    def append(self, start: int, stop: int, writes: bool,
               event: Event) -> None:
        n = self.n
        if n == len(self.writes):
            self.bounds = np.concatenate(
                [self.bounds, np.empty_like(self.bounds)])
            self.writes = np.concatenate(
                [self.writes, np.empty_like(self.writes)])
        self.bounds[n, 0] = start
        self.bounds[n, 1] = stop
        self.writes[n] = writes
        self.events.append(event)
        self.n = n + 1
        self.single = (start, stop, writes) if n == 0 else None


#: A dependence resolved to a concrete interval.
ConcreteDep = Tuple[DepKind, Var, Interval]


class _DepGroup:
    """One variable's depend clauses across a whole compiled program.

    Everything derivable from the static clauses is precomputed once at
    compile time — the hot resolve pass against a live frontier is then a
    handful of elementwise comparisons on these cached columns.
    """

    __slots__ = ("var_key", "sec_list", "wr_list", "s_col", "e_col",
                 "wr_col", "live_col", "gids", "recs",
                 "wsec0", "wsec1")

    def __init__(self, var_key, secs, wrs, gids, recs) -> None:
        self.var_key = var_key
        self.sec_list = secs                 # [(start, stop)] per dep
        self.wr_list = wrs                   # [bool] per dep
        sec = np.array(secs, dtype=np.int64)
        wr = np.array(wrs, dtype=bool)
        self.s_col = sec[:, 0:1]             # (k, 1) starts
        self.e_col = sec[:, 1:2]             # (k, 1) stops
        self.wr_col = wr[:, None]            # (k, 1) write flags
        self.live_col = self.s_col < self.e_col   # non-empty sections
        self.gids = gids
        self.recs = recs
        wsec = sec[wr]                       # writer sections, group order
        self.wsec0 = wsec[:, 0:1]
        self.wsec1 = wsec[:, 1:2]


class CompiledDeps:
    """The flattened depend clauses of a whole compiled program.

    Macro replay resolves every record's dependences against the
    pre-directive frontier and only then registers the new tasks (the
    two-phase protocol), so the per-record ``resolve`` calls of one
    directive can be batched into a single vectorized pass per variable.
    ``groups`` holds one :class:`_DepGroup` per variable, deps in global
    registration order (record order, clause order within a record);
    ``record_gids`` maps each record back to its dep ids so per-record
    wait lists are reconstructed with the original deduplication order.
    """

    __slots__ = ("groups", "record_gids", "total")

    def __init__(self, groups, record_gids, total: int) -> None:
        self.groups = groups
        self.record_gids = record_gids
        self.total = total


def compile_deps(records) -> "CompiledDeps | None":
    """Flatten the ``deps`` of a record sequence; ``None`` if dep-free."""
    raw: Dict[int, tuple] = {}
    record_gids: List[List[int]] = []
    gid = 0
    for ri, rec in enumerate(records):
        gids: List[int] = []
        for kind, var, interval in rec.deps:
            g = raw.get(var.key)
            if g is None:
                g = raw[var.key] = ([], [], [], [])
            g[0].append((interval.start, interval.stop))
            g[1].append(kind.writes)
            g[2].append(gid)
            g[3].append(ri)
            gids.append(gid)
            gid += 1
        record_gids.append(gids)
    if gid == 0:
        return None
    groups = [_DepGroup(key, secs, wrs, dep_ids, rec_ids)
              for key, (secs, wrs, dep_ids, rec_ids) in raw.items()]
    return CompiledDeps(groups, record_gids, gid)


#: resolve_compiled hit-table entry for a dependence with no conflicts.
_NO_HITS = (False, ())


class DependTracker:
    """Program-order registry of section reads/writes per variable."""

    def __init__(self) -> None:
        self._records: Dict[int, _Frontier] = {}
        # statistics
        self.resolved_edges = 0
        self.fast_resolves = 0

    def resolve(self, deps: Sequence[ConcreteDep]) -> List[Event]:
        """Compute the wait-set for a task about to be created.

        Must be called in task-creation order, immediately followed by
        :meth:`register` with the new task's event.  Returns the
        (deduplicated) list of events the new task must wait for.
        """
        waits: List[Event] = []
        seen: set = set()
        for kind, var, section in deps:
            f = self._records.get(var.key)
            if f is None or f.n == 0:
                continue
            s, e = section.start, section.stop
            if f.n == 1:
                # Common steady-state shape after writer pruning: one
                # covering writer per variable.  It conflicts with every
                # dependence kind, so the overlap scan collapses to a
                # single containment check.
                rs, re_, rw = f.single
                if rw and (s >= e or (rs <= s and e <= re_)):
                    self.fast_resolves += 1
                    ev = f.events[0]
                    if id(ev) not in seen:
                        seen.add(id(ev))
                        waits.append(ev)
                    continue
                # Scalar overlap scan of the single record.
                if rs < re_ and s < e and rs < e and s < re_:
                    if kind.writes or rw:
                        ev = f.events[0]
                        if id(ev) not in seen:
                            seen.add(id(ev))
                            waits.append(ev)
                continue
            if s >= e:
                continue  # empty sections overlap nothing
            n = f.n
            b = f.bounds[:n]
            conflict = (b[:, 0] < b[:, 1]) & (b[:, 0] < e) & (s < b[:, 1])
            if not kind.writes:
                conflict &= f.writes[:n]
            events = f.events
            for i in np.flatnonzero(conflict):
                ev = events[i]
                if id(ev) not in seen:
                    seen.add(id(ev))
                    waits.append(ev)
        self.resolved_edges += len(waits)
        return waits

    def register(self, deps: Sequence[ConcreteDep], event: Event) -> None:
        """Record the new task's reads/writes (writers prune covered
        records — any future conflict is transitively enforced)."""
        for kind, var, section in deps:
            f = self._records.get(var.key)
            if f is None:
                f = self._records[var.key] = _Frontier()
            n = f.n
            if kind.writes and n:
                s, e = section.start, section.stop
                b = f.bounds[:n]
                # section.contains(record): empty records are covered by
                # anything, non-empty ones need full inclusion.
                covered = (b[:, 0] >= b[:, 1]) | \
                          ((s <= b[:, 0]) & (b[:, 1] <= e))
                if covered.any():
                    keep = np.flatnonzero(~covered)
                    k = len(keep)
                    f.bounds[:k] = b[keep]
                    f.writes[:k] = f.writes[keep]
                    events = f.events
                    f.events = [events[i] for i in keep]
                    f.n = k
                    f.single = None  # append() below refreshes it
            f.append(section.start, section.stop, kind.writes, event)

    def resolve_compiled(self, cd: CompiledDeps) -> List:
        """Batched :meth:`resolve` for a whole directive's records.

        Semantically identical — same wait lists in the same order, same
        ``fast_resolves``/``resolved_edges`` increments — to calling
        ``resolve(rec.deps)`` for each record in order, which is valid
        because replay registers nothing until every record has resolved.
        One conflict matrix per variable replaces per-record mask
        rebuilds.  Returns one wait list per record (``None`` for
        dep-free records, which the sequential path never resolves).
        """
        hits: List[tuple] = [_NO_HITS] * cd.total
        for grp in cd.groups:
            f = self._records.get(grp.var_key)
            if f is None or f.n == 0:
                continue
            gids = grp.gids
            if f.n == 1:
                rs, re_, rw = f.single
                ev0 = (f.events[0],)
                for (s, e), w, g in zip(grp.sec_list, grp.wr_list, gids):
                    if rw and (s >= e or (rs <= s and e <= re_)):
                        hits[g] = (True, ev0)
                    elif rs < re_ and s < e and rs < e and s < re_ \
                            and (w or rw):
                        hits[g] = (False, ev0)
                continue
            n = f.n
            b = f.bounds[:n]
            b0 = b[:, 0]
            b1 = b[:, 1]
            # (k, n) conflict matrix in five elementwise passes over the
            # precompiled dep columns: live non-empty record, section
            # overlap, and reader deps only conflict with writer records.
            conflict = (b0 < b1) & (b0 < grp.e_col) & (grp.s_col < b1)
            conflict &= grp.live_col
            conflict &= grp.wr_col | f.writes[:n]
            rows, cols = np.nonzero(conflict)
            if not len(rows):
                continue
            events = f.events
            per_dep: dict = {}
            for r, c in zip(rows.tolist(), cols.tolist()):
                g = gids[r]
                lst = per_dep.get(g)
                if lst is None:
                    per_dep[g] = [events[c]]
                else:
                    lst.append(events[c])
            for g, evs in per_dep.items():
                hits[g] = (False, evs)
        out: List = []
        for gids in cd.record_gids:
            if not gids:
                out.append(None)
                continue
            waits: List[Event] = []
            seen: set = set()
            for g in gids:
                fast, evs = hits[g]
                if fast:
                    self.fast_resolves += 1
                for ev in evs:
                    i = id(ev)
                    if i not in seen:
                        seen.add(i)
                        waits.append(ev)
            self.resolved_edges += len(waits)
            out.append(waits)
        return out

    def register_compiled(self, cd: CompiledDeps,
                          events: Sequence[Event]) -> None:
        """Batched :meth:`register` of a directive's tasks (*events* is
        indexed by record).

        Net-identical to sequential registration: records already on a
        frontier can only be pruned (never re-added), so pruning by *any*
        of the batch's writers equals incremental pruning; interactions
        among the batch's own records (a later writer covering an earlier
        record of the same directive) replay scalar, in global clause
        order.  Relative order of survivors — old before new — matches
        the append/compact order of the sequential path.
        """
        for grp in cd.groups:
            f = self._records.get(grp.var_key)
            if f is None:
                f = self._records[grp.var_key] = _Frontier()
            n = f.n
            if n and len(grp.wsec0):
                b = f.bounds[:n]
                b0 = b[:, 0]
                b1 = b[:, 1]
                covered = (b0 >= b1) | \
                    ((grp.wsec0 <= b0) & (b1 <= grp.wsec1)).any(axis=0)
                if covered.any():
                    keep = np.flatnonzero(~covered)
                    k = len(keep)
                    f.bounds[:k] = b[keep]
                    f.writes[:k] = f.writes[keep]
                    old_events = f.events
                    f.events = [old_events[i] for i in keep]
                    f.n = k
                    f.single = None  # append() below refreshes it
            new: List[tuple] = []
            for (s, e), w, ri in zip(grp.sec_list, grp.wr_list, grp.recs):
                if w and new:
                    new = [r for r in new
                           if not (r[0] >= r[1] or (s <= r[0] and r[1] <= e))]
                new.append((s, e, w, events[ri]))
            for s, e, w, ev in new:
                f.append(s, e, w, ev)

    def resolve_and_register(self, deps: Sequence[ConcreteDep],
                             event: Event) -> List[Event]:
        """Convenience: :meth:`resolve` then :meth:`register`."""
        waits = self.resolve(deps)
        self.register(deps, event)
        return waits

    def frontier_size(self, var: Var) -> int:
        f = self._records.get(var.key)
        return f.n if f is not None else 0

    def clear(self) -> None:
        self._records.clear()


def concretize_deps(deps: Iterable[Dep],
                    spread_start=None, spread_size=None) -> List[ConcreteDep]:
    """Evaluate dependence sections for a particular chunk."""
    from repro.openmp.mapping import concretize_section

    out: List[ConcreteDep] = []
    for dep in deps:
        if not isinstance(dep, Dep):
            raise OmpSemaError(f"expected Dep, got {dep!r}")
        interval = concretize_section(dep.var, dep.section,
                                      spread_start=spread_start,
                                      spread_size=spread_size)
        out.append((dep.kind, dep.var, interval))
    return out
