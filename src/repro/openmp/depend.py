"""Data-based dependence resolution for the ``depend`` clause.

The paper's ``depend`` follows the *data-flow* proposal it cites (Maroñas et
al., IWOMP 2021): dependences are expressed on **array sections**, not on
iteration numbers, and are evaluated per chunk — ``depend(out:
B[omp_spread_start : omp_spread_size])`` creates one dependence record per
chunk task.

Semantics implemented (matching OpenMP task dependences):

* an ``in`` dependence conflicts with every earlier ``out``/``inout`` whose
  section overlaps;
* an ``out``/``inout`` dependence conflicts with every earlier record
  (reader or writer) whose section overlaps;
* resolution happens at task **creation** time in program order, so the
  resulting graph is deterministic.

Records whose section is fully covered by a newer writer are pruned — any
future conflict with them is transitively enforced through the newer writer
— keeping the tracker O(active frontier) for the regular chunked access
patterns of the benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.openmp.mapping import Var
from repro.sim.engine import Event
from repro.util.errors import OmpSemaError
from repro.util.intervals import Interval


class DepKind(enum.Enum):
    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def writes(self) -> bool:
        return self in (DepKind.OUT, DepKind.INOUT)


@dataclass(frozen=True)
class Dep:
    """One dependence item: a kind, a variable and a section.

    ``section`` follows map-clause conventions: a ``(start, length)`` pair of
    ints or spread expressions, or ``None`` for the whole array.
    """

    kind: DepKind
    var: Var
    section: "object" = None

    @staticmethod
    def in_(var: Var, section=None) -> "Dep":
        return Dep(DepKind.IN, var, section)

    @staticmethod
    def out(var: Var, section=None) -> "Dep":
        return Dep(DepKind.OUT, var, section)

    @staticmethod
    def inout(var: Var, section=None) -> "Dep":
        return Dep(DepKind.INOUT, var, section)


@dataclass
class _Record:
    section: Interval
    writes: bool
    event: Event


#: A dependence resolved to a concrete interval.
ConcreteDep = Tuple[DepKind, Var, Interval]


class DependTracker:
    """Program-order registry of section reads/writes per variable."""

    def __init__(self) -> None:
        self._records: Dict[int, List[_Record]] = {}
        # statistics
        self.resolved_edges = 0
        self.fast_resolves = 0

    def resolve(self, deps: Sequence[ConcreteDep]) -> List[Event]:
        """Compute the wait-set for a task about to be created.

        Must be called in task-creation order, immediately followed by
        :meth:`register` with the new task's event.  Returns the
        (deduplicated) list of events the new task must wait for.
        """
        waits: List[Event] = []
        seen: set = set()
        for kind, var, section in deps:
            records = self._records.get(var.key, ())
            if len(records) == 1:
                # Common steady-state shape after writer pruning: one
                # covering writer per variable.  It conflicts with every
                # dependence kind, so the overlap scan collapses to a
                # single containment check.
                rec = records[0]
                if rec.writes and rec.section.contains(section):
                    self.fast_resolves += 1
                    if id(rec.event) not in seen:
                        seen.add(id(rec.event))
                        waits.append(rec.event)
                    continue
            for rec in records:
                if not rec.section.overlaps(section):
                    continue
                if kind.writes or rec.writes:
                    if id(rec.event) not in seen:
                        seen.add(id(rec.event))
                        waits.append(rec.event)
        self.resolved_edges += len(waits)
        return waits

    def register(self, deps: Sequence[ConcreteDep], event: Event) -> None:
        """Record the new task's reads/writes (writers prune covered
        records — any future conflict is transitively enforced)."""
        for kind, var, section in deps:
            lst = self._records.setdefault(var.key, [])
            if kind.writes:
                lst[:] = [r for r in lst if not section.contains(r.section)]
            lst.append(_Record(section=section, writes=kind.writes,
                               event=event))

    def resolve_and_register(self, deps: Sequence[ConcreteDep],
                             event: Event) -> List[Event]:
        """Convenience: :meth:`resolve` then :meth:`register`."""
        waits = self.resolve(deps)
        self.register(deps, event)
        return waits

    def frontier_size(self, var: Var) -> int:
        return len(self._records.get(var.key, ()))

    def clear(self) -> None:
        self._records.clear()


def concretize_deps(deps: Iterable[Dep],
                    spread_start=None, spread_size=None) -> List[ConcreteDep]:
    """Evaluate dependence sections for a particular chunk."""
    from repro.openmp.mapping import concretize_section

    out: List[ConcreteDep] = []
    for dep in deps:
        if not isinstance(dep, Dep):
            raise OmpSemaError(f"expected Dep, got {dep!r}")
        interval = concretize_section(dep.var, dep.section,
                                      spread_start=spread_start,
                                      spread_size=spread_size)
        out.append((dep.kind, dep.var, interval))
    return out
