"""The OpenMP runtime object: devices, ICVs and the run loop.

:class:`OpenMPRuntime` assembles the whole simulated node — simulator, trace,
socket links, devices, per-device data environments, and the dependence
tracker — and drives host programs (generator functions taking a
:class:`~repro.openmp.tasks.TaskCtx`).

Typical use::

    rt = OpenMPRuntime(topology=cte_power_node(4))

    def program(omp):
        yield from target_enter_data(omp, device=0, maps=[Map.to(A)])
        ...

    rt.run(program)
    print(rt.elapsed, rt.trace.to_ascii())
"""

from __future__ import annotations

import os
from typing import Any, Callable, Generator, List, Optional, Union

from repro.device.device import Device
from repro.obs.tool import FAULT_EVENT, ToolRegistry
from repro.openmp.dataenv import DeviceDataEnv
from repro.openmp.depend import DependTracker
from repro.openmp.tasks import TaskCtx
from repro.sim.costmodel import CostModel
from repro.sim.engine import Process, Simulator
from repro.sim.executor import HostExecutor, resolve_executor_min_bytes
from repro.sim.faults import FaultInjector, FaultRule, RetryPolicy
from repro.sim.resources import Resource
from repro.sim.topology import NodeTopology, cte_power_node, machine_from_env
from repro.sim.trace import Trace
from repro.spread.plan_cache import SpreadPlanCache
from repro.util import envknobs
from repro.util.errors import OmpDeviceError, OmpRuntimeError


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize and validate the ``workers`` knob.

    ``None`` consults the ``REPRO_WORKERS`` environment variable (so CI can
    flip the whole suite onto the parallel backend), defaulting to 1 — the
    serial path.  Anything that is not a positive integer is rejected.
    """
    if workers is None:
        try:
            workers = envknobs.env_int("REPRO_WORKERS", default=1,
                                       minimum=1)
        except ValueError as err:
            raise OmpRuntimeError(str(err))
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise OmpRuntimeError(
            f"workers must be a positive integer, got {workers!r}")
    if workers < 1:
        raise OmpRuntimeError(
            f"workers must be >= 1 (1 = serial execution), got {workers}")
    return workers


def resolve_macro_ops(macro_ops: Optional[bool]) -> bool:
    """Normalize the ``macro_ops`` knob (the macro-op replay engine).

    ``None`` consults the ``REPRO_MACRO_OPS`` environment variable (so CI
    can force the object path: ``REPRO_MACRO_OPS=0``), defaulting to **on**
    — replay is bit-identical to the object path and only engages when
    nothing observable is skipped (see :func:`repro.spread.macro.engaged`).
    """
    if macro_ops is None:
        try:
            return envknobs.env_flag("REPRO_MACRO_OPS", default=True)
        except ValueError as err:
            raise OmpRuntimeError(str(err))
    return bool(macro_ops)


def resolve_fused_timeline(fused_timeline: Optional[bool]) -> bool:
    """Normalize the ``fused_timeline`` knob (the fused-timeline engine).

    ``None`` consults the ``REPRO_FUSED_TIMELINE`` environment variable
    (CI ablation: ``REPRO_FUSED_TIMELINE=0``), defaulting to **on** —
    fused execution is bit-identical to the generator path and only
    engages for macro-replayed steady-state kernel chunks nothing else
    observes (see :mod:`repro.sim.timeline`).
    """
    if fused_timeline is None:
        try:
            return envknobs.env_flag("REPRO_FUSED_TIMELINE", default=True)
        except ValueError as err:
            raise OmpRuntimeError(str(err))
    return bool(fused_timeline)


def resolve_analyze(analyze: Optional[bool]) -> bool:
    """Normalize the ``analyze`` knob.

    ``None`` consults the ``REPRO_ANALYZE`` environment variable (so CI can
    run the whole suite with causal-edge recording on), defaulting to off.
    """
    if analyze is None:
        try:
            return envknobs.env_flag("REPRO_ANALYZE", default=False)
        except ValueError as err:
            raise OmpRuntimeError(str(err))
    return bool(analyze)


#: types accepted by the ``faults`` knob
FaultsSpec = Union[None, str, FaultInjector, "list[FaultRule]",
                   "tuple[FaultRule, ...]"]


def resolve_faults(faults: FaultsSpec,
                   fault_seed: Optional[int]) -> Optional[FaultInjector]:
    """Normalize the ``faults`` knob to a :class:`FaultInjector` (or None).

    ``None`` consults the ``REPRO_FAULTS`` environment variable (so CI can
    run the whole suite with a low-rate spec), with ``REPRO_FAULT_SEED``
    supplying the seed when ``fault_seed`` is not given; an empty/unset
    variable disables injection.  A string is parsed with the
    :func:`repro.sim.faults.parse_fault_spec` grammar; a ready-made
    injector passes through; a rule sequence is wrapped.
    """
    if fault_seed is None:
        try:
            fault_seed = envknobs.env_int("REPRO_FAULT_SEED", default=0)
        except ValueError as err:
            raise OmpRuntimeError(str(err))
    if not isinstance(fault_seed, int) or isinstance(fault_seed, bool):
        raise OmpRuntimeError(
            f"fault_seed must be an integer, got {fault_seed!r}")
    source = "faults"
    if faults is None:
        faults = envknobs.env_raw("REPRO_FAULTS")
        if faults is None:
            return None
        source = "REPRO_FAULTS"
    if isinstance(faults, FaultInjector):
        return faults
    try:
        if isinstance(faults, str):
            return FaultInjector.from_spec(faults, seed=fault_seed)
        return FaultInjector(tuple(faults), seed=fault_seed)
    except (ValueError, TypeError) as err:
        raise OmpRuntimeError(f"invalid {source} spec: {err}")


class OpenMPRuntime:
    """A fully wired simulated node plus the OpenMP host runtime state."""

    def __init__(self, topology: Optional[NodeTopology] = None,
                 cost_model: Optional[CostModel] = None,
                 trace_enabled: bool = True,
                 taskgroup_global_drain: bool = True,
                 plan_cache: bool = True,
                 macro_ops: Optional[bool] = None,
                 fused_timeline: Optional[bool] = None,
                 workers: Optional[int] = None,
                 executor_min_bytes: Optional[int] = None,
                 faults: FaultsSpec = None,
                 fault_seed: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 sanitize=None,
                 analyze: Optional[bool] = None):
        if topology is None:
            try:
                topology = machine_from_env()
            except ValueError as err:
                raise OmpRuntimeError(str(err))
        self.topology = topology if topology is not None else cte_power_node(4)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.sim = Simulator()
        self.trace = Trace(enabled=trace_enabled)
        #: OMPT-style tool registry; empty (and falsy) until a tool
        #: registers, so instrumented code paths stay zero-cost by default
        self.tools = ToolRegistry(runtime=self)
        self.links: List[Resource] = [
            Resource(self.sim, capacity=1, name=spec.name)
            for spec in self.topology.link_specs
        ]
        #: number of cluster nodes (1 on a plain NodeTopology)
        self.num_nodes = getattr(self.topology, "num_nodes", 1)
        if self.num_nodes > 1:
            # Per-node host staging buffers: devices of one node contend
            # with each other, never with another node's transfers.  The
            # root node (0) keeps the bare host_spec name so single-node
            # trace lanes stay recognizable in cluster traces too.
            self.stagings: List[Resource] = [
                Resource(self.sim, capacity=1,
                         name=(self.topology.host_spec_of(n).name if n == 0
                               else f"node{n}:"
                                    f"{self.topology.host_spec_of(n).name}"))
                for n in range(self.num_nodes)
            ]
            #: one inter-node network link per non-root node (FIFO); the
            #: root node holds the host arrays and needs no hop
            self.networks: List[Optional[Resource]] = [None] + [
                Resource(self.sim, capacity=1, name=f"node{n}:network")
                for n in range(1, self.num_nodes)
            ]
        else:
            self.stagings = [Resource(self.sim, capacity=1,
                                      name=self.topology.host_spec.name)]
            self.networks = [None]
        self.staging = self.stagings[0]
        net_spec = getattr(self.topology, "network_spec", None)
        node_of = (self.topology.node_of if self.num_nodes > 1
                   else (lambda d: 0))
        self.devices: List[Device] = []
        for d in range(self.topology.num_devices):
            node = node_of(d)
            self.devices.append(Device(
                self.sim, d, self.topology.device_specs[d],
                self.links[self.topology.socket_of(d)],
                self.topology.link_of(d),
                self.stagings[node], self.topology.host_spec_of(node)
                if self.num_nodes > 1 else self.topology.host_spec,
                self.cost_model, self.trace, tools=self.tools,
                network=self.networks[node],
                network_spec=net_spec if node > 0 else None,
                node_id=node))
        self.dataenvs: List[DeviceDataEnv] = [
            DeviceDataEnv(dev) for dev in self.devices
        ]
        self.depend = DependTracker()
        #: spread launch-plan cache (replay of repeated directives);
        #: ``plan_cache=False`` (CLI ``--no-plan-cache``) forces every
        #: directive down the full lowering path.
        self.plan_cache = SpreadPlanCache(enabled=plan_cache)
        #: macro-op replay engine (repro.spread.macro): cached spread plans
        #: are compiled to flat programs and replayed by a tight
        #: interpreter loop.  ``macro_ops=False`` (CLI ``--no-macro-ops``,
        #: env ``REPRO_MACRO_OPS=0``) forces the object path.
        self.macro_ops = resolve_macro_ops(macro_ops)
        #: fused-timeline engine (repro.sim.timeline): macro-replayed
        #: steady-state kernel chunks execute as precomputed virtual-time
        #: walkers instead of generator processes.  ``fused_timeline=False``
        #: (CLI ``--no-fused-timeline``, env ``REPRO_FUSED_TIMELINE=0``)
        #: forces the generator path.
        self.fused_timeline = resolve_fused_timeline(fused_timeline)
        #: parallel host execution backend (repro.sim.executor): with
        #: ``workers > 1`` the real NumPy work of kernels and transfers
        #: runs on a thread pool; 1 keeps the serial inline path.
        #: ``executor_min_bytes`` (env ``REPRO_EXECUTOR_MIN_BYTES``) is the
        #: bytes-per-op floor below which ops run inline instead of
        #: crossing the pool boundary.
        self.workers = resolve_workers(workers)
        self.executor: Optional[HostExecutor] = None
        if self.workers > 1:
            try:
                min_bytes = resolve_executor_min_bytes(executor_min_bytes)
            except ValueError as err:
                raise OmpRuntimeError(str(err))
            self.executor = HostExecutor(self.workers, tools=self.tools,
                                         min_bytes=min_bytes)
            self.sim.set_executor(self.executor)
        #: deterministic fault source shared by all devices (or None);
        #: ``faults``/``fault_seed`` default to $REPRO_FAULTS and
        #: $REPRO_FAULT_SEED (see :mod:`repro.sim.faults` for the grammar)
        self.fault_injector = resolve_faults(faults, fault_seed)
        for dev in self.devices:
            dev.fault_injector = self.fault_injector
        #: transient faults (transfer/kernel) are retried per this policy,
        #: with the backoff charged to virtual time
        self.retry_policy = retry if retry is not None else RetryPolicy()
        self._lost_devices: set = set()
        self._lost_nodes: set = set()
        # resilience counters mirrored into SomierResult.stats
        self.fault_retries = 0
        self.fault_failovers = 0
        self.default_device = 0
        #: reproduce the paper's taskgroup behaviour: closing a taskgroup
        #: that contains device operations drains *all* devices ("a barrier
        #: that synchronizes all devices", Discussion section).
        self.taskgroup_global_drain = taskgroup_global_drain
        #: interval race sanitizer (repro.analysis.sanitizer) or None;
        #: ``sanitize`` defaults to $REPRO_SANITIZE ("1"/"on"/"strict").
        #: Lazily imported so unsanitized runs never load the analysis
        #: package.
        self.sanitizer = None
        if sanitize is not None or os.environ.get("REPRO_SANITIZE"):
            from repro.analysis.sanitizer import (RaceSanitizer,
                                                  resolve_sanitize)

            mode = resolve_sanitize(sanitize)
            if mode is not None:
                self.sanitizer = RaceSanitizer(rt=self,
                                               strict=mode == "strict")
                self.sanitizer.install(self.sim)
        #: directive ids are allocated here — always, tools or not — so
        #: trace provenance and the critical-path analyzer see the same
        #: ids the tool registry dispatches.
        self._directive_seq = 0
        self.directive_info: dict = {}
        # interned {"kind":…, "name":…} dicts — warm launches allocate a
        # directive id per call, and the info payload repeats endlessly
        self._info_memo: dict = {}
        #: causal recorder (repro.obs.critpath) or None; ``analyze``
        #: defaults to $REPRO_ANALYZE.  Recording needs the trace for op
        #: binding: explicitly asking for analysis without a trace is an
        #: error, while env-driven analysis silently skips untraced runs.
        self.causal = None
        if resolve_analyze(analyze):
            if not trace_enabled:
                if analyze is not None:
                    raise OmpRuntimeError(
                        "analyze=True requires trace_enabled=True")
            else:
                from repro.obs.critpath import CausalRecorder

                self.causal = CausalRecorder()
                self.causal.install(self.sim)
        self._tasks: List[Process] = []
        self._device_ops: List[Process] = []
        self._ran = False

    # -- device access ----------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def device(self, device_id: int) -> Device:
        if not 0 <= device_id < self.num_devices:
            raise OmpDeviceError(
                f"device id {device_id} out of range (node has "
                f"{self.num_devices} devices)")
        return self.devices[device_id]

    def dataenv(self, device_id: int) -> DeviceDataEnv:
        self.device(device_id)  # bounds check
        return self.dataenvs[device_id]

    # -- device loss --------------------------------------------------------------

    @property
    def lost_devices(self) -> "frozenset[int]":
        return frozenset(self._lost_devices)

    def is_lost(self, device_id: int) -> bool:
        return device_id in self._lost_devices

    def mark_device_lost(self, device_id: int, op: str = "",
                         name: str = "") -> None:
        """Take *device_id* out of service (idempotent).

        The device is flagged so every further operation on it fails fast;
        its present table is purged (resident data is unrecoverable, no
        copy-backs); and every cached spread plan that routed chunks to it
        is invalidated.  Spread-level failover
        (:mod:`repro.spread.failover`) re-routes the device's remaining
        chunks onto the survivors.
        """
        self.device(device_id)  # bounds check
        if device_id in self._lost_devices:
            return
        self._lost_devices.add(device_id)
        self.devices[device_id].lost = True
        purged = self.dataenvs[device_id].purge()
        dropped = self.plan_cache.invalidate_device(device_id)
        tools = self.tools
        if tools:
            tools.dispatch(FAULT_EVENT, kind="device_lost",
                           device=device_id, op=op, name=name,
                           purged_entries=purged, dropped_plans=dropped,
                           survivors=self.num_devices - len(
                               self._lost_devices),
                           time=self.sim.now)

    @property
    def lost_nodes(self) -> "frozenset[int]":
        return frozenset(self._lost_nodes)

    def is_node_lost(self, node_id: int) -> bool:
        return node_id in self._lost_nodes

    def mark_node_lost(self, node_id: int, op: str = "",
                       name: str = "") -> None:
        """Take a whole cluster node out of service (idempotent).

        Every device the node hosts is flagged lost and its present table
        purged; every cached spread plan routing chunks to *any* of them
        is invalidated in one cache pass
        (:meth:`~repro.spread.plan_cache.SpreadPlanCache.invalidate_node`).
        Spread-level failover then re-routes the node's whole chunk share
        onto the surviving nodes' devices, chunk by chunk, with the usual
        routing formula.
        """
        if not 0 <= node_id < self.num_nodes:
            raise OmpDeviceError(
                f"node id {node_id} out of range (cluster has "
                f"{self.num_nodes} nodes)")
        if node_id in self._lost_nodes:
            return
        self._lost_nodes.add(node_id)
        node_devs = tuple(self.topology.node_devices(node_id))
        purged = 0
        for d in node_devs:
            if d in self._lost_devices:
                continue
            self._lost_devices.add(d)
            self.devices[d].lost = True
            purged += self.dataenvs[d].purge()
        dropped = self.plan_cache.invalidate_node(node_devs)
        tools = self.tools
        if tools:
            tools.dispatch(FAULT_EVENT, kind="node_lost", node=node_id,
                           devices=node_devs, op=op, name=name,
                           purged_entries=purged, dropped_plans=dropped,
                           survivors=self.num_devices - len(
                               self._lost_devices),
                           time=self.sim.now)

    # -- bookkeeping -------------------------------------------------------------

    def next_directive_id(self, kind: str = "", name: str = "") -> int:
        """Allocate the next directive id (sequential in program order).

        Every directive layer draws from this counter whether or not tools
        are registered, so trace events always carry stable ``directive``
        provenance and tooled runs see the very same ids.
        """
        self._directive_seq += 1
        did = self._directive_seq
        info = self._info_memo.get((kind, name))
        if info is None:
            info = {"kind": kind, "name": name}
            self._info_memo[(kind, name)] = info
        self.directive_info[did] = info
        return did

    def directive_info_for(self, kind: str, name: str = "") -> dict:
        """The interned info dict for a directive kind/name pair.

        Allocating no id; pair with :meth:`alloc_directive_id` on paths
        that resolve the info once and reuse it (macro-op replay caches it
        on the compiled program).
        """
        key = (kind, name)
        info = self._info_memo.get(key)
        if info is None:
            info = {"kind": kind, "name": name}
            self._info_memo[key] = info
        return info

    def alloc_directive_id(self, info: dict) -> int:
        """Allocate the next directive id for a pre-resolved info dict.

        Equivalent to :meth:`next_directive_id` with the memo lookup
        hoisted out — the macro-replay hot path calls this with the info
        cached on the program.
        """
        self._directive_seq += 1
        did = self._directive_seq
        self.directive_info[did] = info
        return did

    def analysis(self):
        """A :class:`repro.obs.critpath.CritPathAnalysis` over this run.

        Requires the runtime to have been built with ``analyze=True`` (or
        ``REPRO_ANALYZE=1``) so causal edges were recorded.
        """
        if self.causal is None:
            raise OmpRuntimeError(
                "no causal recording: construct the runtime with "
                "analyze=True (or set REPRO_ANALYZE=1) to use analysis()")
        from repro.obs.critpath import CritPathAnalysis

        return CritPathAnalysis(self.trace, self.causal,
                                directive_info=self.directive_info,
                                num_devices=self.num_devices)

    def note_task(self, proc: Process) -> None:
        self._tasks.append(proc)

    def note_device_op(self, proc: Process) -> None:
        self._device_ops.append(proc)

    def note_tasks(self, procs: List[Process]) -> None:
        """Batch variant of :meth:`note_task` (macro-op replay)."""
        self._tasks.extend(procs)

    def note_device_ops(self, procs: List[Process]) -> None:
        """Batch variant of :meth:`note_device_op` (macro-op replay)."""
        self._device_ops.extend(procs)

    def pending_device_ops(self) -> List[Process]:
        """Device operations still in flight (pruned on access)."""
        self._device_ops = [p for p in self._device_ops if not p.processed]
        return list(self._device_ops)

    @property
    def elapsed(self) -> float:
        """Virtual seconds elapsed so far."""
        return self.sim.now

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    # -- execution ----------------------------------------------------------------

    def run(self, program: Callable[..., Generator], *args: Any) -> Any:
        """Execute *program(ctx, \\*args)* to completion; returns its value.

        A runtime instance runs one program (its virtual clock and trace
        cover that program's execution); create a fresh runtime per
        experiment.
        """
        if self._ran:
            raise OmpRuntimeError(
                "this runtime already ran a program; create a new one")
        self._ran = True
        root = TaskCtx(self, parent=None)
        main = self.sim.process(program(root, *args), name="main")
        if self.sanitizer is not None:
            root._san_proc = main
        self._tasks.append(main)
        try:
            result = self.sim.run(until=main)
            # Drain stragglers (nowait tasks nobody joined).
            self.sim.run()
            self._raise_lost_failures()
            if self.sanitizer is not None and self.sanitizer.strict \
                    and self.sanitizer.reports:
                from repro.util.errors import DataRaceError

                raise DataRaceError(self.sanitizer.summary())
            return result
        finally:
            if self.executor is not None:
                self.executor.shutdown()

    def _raise_lost_failures(self) -> None:
        unfinished = [p for p in self._tasks if not p.triggered]
        if unfinished:
            names = ", ".join(p.name for p in unfinished[:5])
            raise OmpRuntimeError(
                f"{len(unfinished)} task(s) never completed (deadlock?): "
                f"{names}")
        for proc in self._tasks:
            if not proc.ok:
                raise proc.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<OpenMPRuntime devices={self.num_devices} "
                f"t={self.sim.now:.6f}s tasks={len(self._tasks)}>")
