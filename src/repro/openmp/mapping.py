"""Map clauses and array sections.

A :class:`Var` names a host NumPy array so directives, dependences and kernel
environments can refer to it (the analogue of a C identifier).  A
:class:`MapClause` is one entry of a ``map`` clause: a map type, a variable,
and an array section over the distributed axis (axis 0).

Sections are ``(start, length)`` pairs — OpenMP's ``A[start : length]``
syntax — whose components may be plain ints or the symbolic spread
expressions built from ``omp_spread_start`` / ``omp_spread_size``
(:mod:`repro.spread.sections`).  :func:`concretize_section` evaluates a
section for a particular chunk and bounds-checks it against the array.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.util.errors import OmpSemaError
from repro.util.intervals import Interval


class Var:
    """A named host array (identity-keyed).

    Two ``Var`` objects are distinct mapping targets even if they wrap the
    same NumPy array — just as two C pointers of different names would be
    after aliasing analysis gives up.  Keep one ``Var`` per logical array.
    """

    __slots__ = ("name", "array", "key", "extent")

    def __init__(self, name: str, array: np.ndarray):
        if not isinstance(array, np.ndarray):
            raise TypeError(f"Var {name!r}: expected ndarray, got {type(array)}")
        if array.ndim < 1:
            raise ValueError(f"Var {name!r}: zero-dimensional arrays cannot be sectioned")
        self.name = name
        self.array = array
        # Precomputed: both sit on the directive hot path (cache-key
        # signatures, present-table lookups) where a property call per
        # access was measurable.  NumPy arrays cannot change shape[0]
        # behind a live view, so snapshotting the extent is safe.
        self.key: int = id(self)
        self.extent: int = array.shape[0]

    @property
    def row_nbytes(self) -> int:
        """Bytes per axis-0 element (one 'row')."""
        return self.array.nbytes // max(1, self.array.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Var({self.name!r}, shape={self.array.shape}, dtype={self.array.dtype})"


class MapType(enum.Enum):
    """OpenMP map types relevant to the paper's directives."""

    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"
    RELEASE = "release"
    DELETE = "delete"

    @property
    def copies_in(self) -> bool:
        return self in (MapType.TO, MapType.TOFROM)

    @property
    def copies_out(self) -> bool:
        return self in (MapType.FROM, MapType.TOFROM)


#: A section component: a plain int or a symbolic spread expression
#: (anything exposing ``evaluate(spread_start, spread_size) -> int``).
SectionExpr = Union[int, "object"]

#: ``(start, length)`` in OpenMP array-section style, or None = whole array.
Section = Optional[Tuple[SectionExpr, SectionExpr]]


class MapClause:
    """One variable of a ``map`` clause.

    Hand-written immutable-by-convention class rather than a frozen
    dataclass: map clauses are constructed on every directive call (the
    pragma-style API builds the list inline), and the frozen-dataclass
    ``object.__setattr__`` protocol tripled construction cost on the warm
    launch path.  Equality/hash/repr match the previous dataclass.
    """

    __slots__ = ("map_type", "var", "section")

    def __init__(self, map_type: MapType, var: Var,
                 section: Section = None) -> None:
        if section is not None and len(section) != 2:
            raise OmpSemaError(
                f"map({map_type.value}: {var.name}): section must "
                "be a (start, length) pair")
        self.map_type = map_type
        self.var = var
        self.section = section

    def __eq__(self, other: object) -> bool:
        if other.__class__ is MapClause:
            return (self.map_type == other.map_type and self.var == other.var
                    and self.section == other.section)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.map_type, self.var, self.section))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MapClause(map_type={self.map_type!r}, var={self.var!r}, "
                f"section={self.section!r})")


class Map:
    """Constructors mirroring the pragma syntax: ``Map.to(A, (s, l))``."""

    @staticmethod
    def to(var: Var, section: Section = None) -> MapClause:
        return MapClause(MapType.TO, var, section)

    @staticmethod
    def from_(var: Var, section: Section = None) -> MapClause:
        return MapClause(MapType.FROM, var, section)

    @staticmethod
    def tofrom(var: Var, section: Section = None) -> MapClause:
        return MapClause(MapType.TOFROM, var, section)

    @staticmethod
    def alloc(var: Var, section: Section = None) -> MapClause:
        return MapClause(MapType.ALLOC, var, section)

    @staticmethod
    def release(var: Var, section: Section = None) -> MapClause:
        return MapClause(MapType.RELEASE, var, section)

    @staticmethod
    def delete(var: Var, section: Section = None) -> MapClause:
        return MapClause(MapType.DELETE, var, section)


def _eval_expr(expr: SectionExpr, spread_start: Optional[int],
               spread_size: Optional[int], what: str) -> int:
    if isinstance(expr, (int, np.integer)):
        return int(expr)
    evaluate = getattr(expr, "evaluate", None)
    if evaluate is None:
        raise OmpSemaError(f"{what}: unsupported section expression {expr!r}")
    if spread_start is None or spread_size is None:
        raise OmpSemaError(
            f"{what}: omp_spread_start/omp_spread_size are only defined "
            "inside spread directives")
    return int(evaluate(spread_start, spread_size))


def concretize_section(var: Var, section: Section,
                       spread_start: Optional[int] = None,
                       spread_size: Optional[int] = None) -> Interval:
    """Evaluate *section* for one chunk and bounds-check it.

    Returns the half-open :class:`Interval` over axis 0.  ``None`` means the
    whole array.  Sections reaching outside the array raise
    :class:`OmpSemaError` — the directive's halo arithmetic must stay in
    bounds (the paper's listings guarantee this by construction for the
    first/last chunks of the ``1..N-1`` iteration space).
    """
    if section is None:
        return Interval(0, var.extent)
    what = f"section of {var.name!r}"
    start = _eval_expr(section[0], spread_start, spread_size, what)
    length = _eval_expr(section[1], spread_start, spread_size, what)
    if length < 0:
        raise OmpSemaError(f"{what}: negative length {length}")
    if start < 0 or start + length > var.extent:
        raise OmpSemaError(
            f"{what}: [{start}:{start + length}) outside array extent "
            f"[0:{var.extent})")
    return Interval(start, start + length)


def validate_unique_vars(maps: Sequence[MapClause], directive: str) -> None:
    """Reject a directive mapping the same Var twice (ambiguous sections)."""
    seen = set()
    for clause in maps:
        if clause.var.key in seen:
            raise OmpSemaError(
                f"{directive}: variable {clause.var.name!r} appears in more "
                "than one map clause")
        seen.add(clause.var.key)
