"""The existing single-device ``target`` directive set (the paper's baseline).

Each function is the lowering of one pragma from Section II of the paper:

=============================================  =======================================
Pragma                                          Function
=============================================  =======================================
``#pragma omp target device(d) ...``            :func:`target`
``... teams distribute parallel for [simd]``    :func:`target_teams_distribute_parallel_for`
``#pragma omp target data device(d) map(...)``  :func:`target_data` (+ ``.end()``)
``#pragma omp target enter data ...``           :func:`target_enter_data`
``#pragma omp target exit data ...``            :func:`target_exit_data`
``#pragma omp target update ...``               :func:`target_update`
=============================================  =======================================

All functions are generators driven with ``yield from`` inside a host
program; with ``nowait=True`` they return the spawned task immediately.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence, Tuple

from repro.device.kernel import KernelSpec, LaunchConfig
from repro.openmp import exec_ops
from repro.openmp.depend import Dep, concretize_deps
from repro.openmp.mapping import (
    MapClause,
    Var,
    concretize_section,
    validate_unique_vars,
)
from repro.openmp.tasks import TaskCtx
from repro.util.errors import OmpSemaError


def _concretize_maps(maps: Sequence[MapClause], directive: str):
    validate_unique_vars(maps, directive)
    return [(clause, concretize_section(clause.var, clause.section))
            for clause in maps]


def target(ctx: TaskCtx, device: int, kernel: KernelSpec,
           lo: int, hi: int, maps: Sequence[MapClause] = (),
           nowait: bool = False, depends: Sequence[Dep] = (),
           iterations: Optional[float] = None,
           launch: Optional[LaunchConfig] = None) -> Generator:
    """``#pragma omp target device(device)`` over iterations ``[lo, hi)``.

    Without a launch configuration the region executes serially on the
    device (one team, one thread — exactly what a bare ``target`` does);
    use :func:`target_teams_distribute_parallel_for` for the combined
    directive.
    """
    exec_ops.region_map_types(maps, "target")
    concrete = _concretize_maps(maps, "target")
    cdeps = concretize_deps(depends)
    cfg = launch if launch is not None else LaunchConfig(
        num_teams=1, threads_per_team=1, simd=False)
    tools = ctx.rt.tools
    did = ctx.rt.next_directive_id("target", kernel.name)
    if tools:
        tools.directive_begin("target", did=did, device=device,
                              name=kernel.name, lo=lo, hi=hi,
                              time=ctx.rt.sim.now)
    op = exec_ops.kernel_op(ctx.rt, device, kernel, lo, hi, concrete,
                            launch=cfg, iterations=iterations,
                            label=f"target@{device}")
    proc = exec_ops.submit_op(ctx, device, op, concrete_maps=concrete,
                              concrete_deps=cdeps,
                              name=f"target:{kernel.name}@{device}",
                              directive_id=did)
    if not nowait:
        yield proc
    if tools:
        tools.directive_end(did, time=ctx.rt.sim.now)
    return proc


def target_teams_distribute_parallel_for(
        ctx: TaskCtx, device: int, kernel: KernelSpec,
        lo: int, hi: int, maps: Sequence[MapClause] = (),
        num_teams: Optional[int] = None,
        threads_per_team: Optional[int] = None,
        simd: bool = True,
        nowait: bool = False, depends: Sequence[Dep] = (),
        iterations: Optional[float] = None) -> Generator:
    """``#pragma omp target teams distribute parallel for [simd]``.

    The combined directive of Listing 2: full intra-device parallelism
    (teams x threads x vector lanes), still one device.
    """
    launch = LaunchConfig(num_teams=num_teams,
                          threads_per_team=threads_per_team, simd=simd)
    result = yield from target(ctx, device, kernel, lo, hi, maps=maps,
                               nowait=nowait, depends=depends,
                               iterations=iterations, launch=launch)
    return result


class TargetDataRegion:
    """Handle for a structured ``target data`` region (close with ``end``)."""

    def __init__(self, ctx: TaskCtx, device: int, concrete_maps,
                 directive_id=None):
        self._ctx = ctx
        self._device = device
        self._concrete = concrete_maps
        self._closed = False
        self._directive_id = directive_id

    def end(self) -> Generator:
        """Exit the region: copy-backs for ``from``/``tofrom`` maps."""
        if self._closed:
            raise OmpSemaError("target data region already closed")
        self._closed = True
        op = exec_ops.exit_op(self._ctx.rt, self._device, self._concrete,
                              label=f"target-data-end@{self._device}")
        proc = exec_ops.submit_op(self._ctx, self._device, op,
                                  concrete_maps=self._concrete,
                                  name=f"target-data-end@{self._device}",
                                  directive_id=self._directive_id)
        yield proc
        if self._directive_id is not None:
            tools = self._ctx.rt.tools
            if tools:
                tools.directive_end(self._directive_id,
                                    time=self._ctx.rt.sim.now)
        return proc


def target_data(ctx: TaskCtx, device: int,
                maps: Sequence[MapClause]) -> Generator:
    """``#pragma omp target data device(d) map(...)``.

    Structured data region: synchronous mapping at entry, copy-backs when
    the returned region's ``end()`` is driven.  Matching the original
    directive, there is no ``nowait`` and no ``depend`` (Listing 5 prose).
    """
    exec_ops.region_map_types(maps, "target data")
    concrete = _concretize_maps(maps, "target data")
    tools = ctx.rt.tools
    did = ctx.rt.next_directive_id("target data")
    if tools:
        # directive_end fires when the returned region's end() is driven —
        # a structured region's window spans its whole body
        tools.directive_begin("target data", did=did, device=device,
                              time=ctx.rt.sim.now)
    op = exec_ops.enter_op(ctx.rt, device, concrete,
                           label=f"target-data@{device}")
    proc = exec_ops.submit_op(ctx, device, op, concrete_maps=concrete,
                              name=f"target-data@{device}",
                              directive_id=did)
    yield proc
    return TargetDataRegion(ctx, device, concrete, directive_id=did)


def target_enter_data(ctx: TaskCtx, device: int,
                      maps: Sequence[MapClause],
                      nowait: bool = False,
                      depends: Sequence[Dep] = ()) -> Generator:
    """``#pragma omp target enter data device(d) [nowait] map(to/alloc: ...)``."""
    exec_ops.enter_map_types(maps, "target enter data")
    concrete = _concretize_maps(maps, "target enter data")
    cdeps = concretize_deps(depends)
    tools = ctx.rt.tools
    did = ctx.rt.next_directive_id("target enter data")
    if tools:
        tools.directive_begin("target enter data", did=did, device=device,
                              time=ctx.rt.sim.now)
    op = exec_ops.enter_op(ctx.rt, device, concrete,
                           label=f"enter-data@{device}")
    proc = exec_ops.submit_op(ctx, device, op, concrete_maps=concrete,
                              concrete_deps=cdeps,
                              name=f"enter-data@{device}",
                              directive_id=did)
    if not nowait:
        yield proc
    if tools:
        tools.directive_end(did, time=ctx.rt.sim.now)
    return proc


def target_exit_data(ctx: TaskCtx, device: int,
                     maps: Sequence[MapClause],
                     nowait: bool = False,
                     depends: Sequence[Dep] = ()) -> Generator:
    """``#pragma omp target exit data device(d) [nowait] map(from/release/delete: ...)``."""
    exec_ops.exit_map_types(maps, "target exit data")
    concrete = _concretize_maps(maps, "target exit data")
    cdeps = concretize_deps(depends)
    tools = ctx.rt.tools
    did = ctx.rt.next_directive_id("target exit data")
    if tools:
        tools.directive_begin("target exit data", did=did, device=device,
                              time=ctx.rt.sim.now)
    op = exec_ops.exit_op(ctx.rt, device, concrete,
                          label=f"exit-data@{device}")
    proc = exec_ops.submit_op(ctx, device, op, concrete_maps=concrete,
                              concrete_deps=cdeps,
                              name=f"exit-data@{device}",
                              directive_id=did)
    if not nowait:
        yield proc
    if tools:
        tools.directive_end(did, time=ctx.rt.sim.now)
    return proc


def target_update(ctx: TaskCtx, device: int,
                  to: Sequence[Tuple[Var, object]] = (),
                  from_: Sequence[Tuple[Var, object]] = (),
                  nowait: bool = False,
                  depends: Sequence[Dep] = ()) -> Generator:
    """``#pragma omp target update device(d) [nowait] to(...) from(...)``.

    ``to``/``from_`` are sequences of ``(Var, section)`` pairs; sections use
    map-clause conventions (``None`` = whole array).  Every section must
    already be present on the device.
    """
    if not to and not from_:
        raise OmpSemaError("target update: needs at least one to()/from()")
    to_c = [(var, concretize_section(var, section)) for var, section in to]
    from_c = [(var, concretize_section(var, section)) for var, section in from_]
    cdeps = concretize_deps(depends)
    # Per-entry consistency uses pseudo map clauses over the same sections.
    from repro.openmp.mapping import Map
    pseudo = ([(Map.to(var), interval) for var, interval in to_c] +
              [(Map.from_(var), interval) for var, interval in from_c])
    tools = ctx.rt.tools
    did = ctx.rt.next_directive_id("target update")
    if tools:
        tools.directive_begin("target update", did=did, device=device,
                              time=ctx.rt.sim.now)
    op = exec_ops.update_op(ctx.rt, device, to_c, from_c,
                            label=f"update@{device}")
    proc = exec_ops.submit_op(ctx, device, op, concrete_maps=pseudo,
                              concrete_deps=cdeps,
                              name=f"update@{device}",
                              directive_id=did)
    if not nowait:
        yield proc
    if tools:
        tools.directive_end(did, time=ctx.rt.sim.now)
    return proc
