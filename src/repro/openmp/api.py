"""The classic ``omp_*`` query API, bound to a runtime.

The paper's host code uses the standard device-query functions (e.g. the
Somier listings compute ``chunk = buffer_size / num_devices`` from the
device count).  :class:`OmpApi` exposes them over an
:class:`~repro.openmp.runtime.OpenMPRuntime`, with the same semantics the
spec gives them.
"""

from __future__ import annotations

from repro.openmp.runtime import OpenMPRuntime


class OmpApi:
    """``omp_get_num_devices()`` and friends for a simulated node."""

    def __init__(self, rt: OpenMPRuntime):
        self._rt = rt

    # -- device queries ----------------------------------------------------

    def omp_get_num_devices(self) -> int:
        """Number of non-host devices available for offloading."""
        return self._rt.num_devices

    def omp_get_initial_device(self) -> int:
        """The host device number (one past the last accelerator)."""
        return self._rt.num_devices

    def omp_get_default_device(self) -> int:
        return self._rt.default_device

    def omp_set_default_device(self, device_num: int) -> None:
        self._rt.device(device_num)  # bounds check
        self._rt.default_device = device_num

    def omp_is_initial_device(self) -> bool:
        """Host code always runs on the initial device here."""
        return True

    # -- device memory queries (extensions mirroring omp_target_* info) -----

    def omp_get_device_memory(self, device_num: int) -> float:
        """Total (virtual) memory of a device in bytes."""
        return self._rt.device(device_num).spec.memory_bytes

    def omp_get_device_free_memory(self, device_num: int) -> float:
        """Currently free (virtual) memory of a device in bytes."""
        return self._rt.device(device_num).allocator.free_bytes

    def omp_target_is_present(self, var, device_num: int,
                              section=None) -> bool:
        """Whether (a section of) *var* is mapped on the device.

        ``section`` follows map-clause conventions (``None`` = whole
        array); partial presence counts as absent, matching how device code
        would fault on the unmapped part.
        """
        from repro.openmp.mapping import concretize_section
        from repro.util.errors import OmpMappingError

        env = self._rt.dataenv(device_num)
        interval = concretize_section(var, section)
        try:
            return env.lookup(var, interval) is not None
        except OmpMappingError:
            return False

    # -- time ------------------------------------------------------------------

    def omp_get_wtime(self) -> float:
        """The virtual wall clock (seconds)."""
        return self._rt.sim.now


def api(rt: OpenMPRuntime) -> OmpApi:
    """Convenience constructor: ``omp = api(rt)``."""
    return OmpApi(rt)
