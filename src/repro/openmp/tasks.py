"""Explicit tasks, taskwait, taskgroup and taskloop.

Host programs are generator functions; a :class:`TaskCtx` is their handle to
the tasking runtime — the analogue of "the current implicit/explicit task" in
OpenMP.  Creating a task spawns a new simulator process bound to a child
context; blocking constructs (``taskwait``, the end of a ``taskgroup``) are
generators driven with ``yield from``.

Taskgroup semantics follow the spec closely enough for the paper's patterns:
a group collects every task (and device operation) created while it is open
by the current task *or its descendants*, and ``taskgroup_end`` blocks until
all of them — including ones spawned while waiting, e.g. by the Double
Buffering recursion — have completed.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence

from repro.obs.tool import (DEPENDENCE_RESOLVED, TASK_COMPLETE, TASK_CREATE,
                            TASK_SCHEDULE)
from repro.openmp.depend import ConcreteDep
from repro.sim.engine import Event, Process
from repro.util.errors import OmpRuntimeError


class Taskgroup:
    """An open task group collecting member completion events.

    When the group contains *device operations* and the runtime's
    ``taskgroup_global_drain`` flag is set (the default — it reproduces the
    behaviour the paper describes: the taskgroup barrier "synchronizes all
    devices", all chunks on all devices must have landed before computation
    starts), closing the group additionally waits for every device
    operation in flight anywhere in the runtime, not just the members.
    The §IX ``data_depend`` extension exists precisely to remove this
    global barrier.
    """

    def __init__(self, rt) -> None:
        self.rt = rt
        self.sim = rt.sim
        self.members: List[Event] = []
        self.has_device_ops = False
        self.closed = False

    def add(self, event: Event, device_op: bool = False) -> None:
        self.members.append(event)
        if device_op:
            self.has_device_ops = True

    def wait(self) -> Generator:
        """Block until every member (including late arrivals) completes."""
        while True:
            pending = [ev for ev in self.members if not ev.processed]
            if (self.has_device_ops
                    and getattr(self.rt, "taskgroup_global_drain", False)):
                seen = set(id(ev) for ev in pending)
                for ev in self.rt.pending_device_ops():
                    if id(ev) not in seen:
                        pending.append(ev)
            if not pending:
                return
            yield self.sim.all_of(pending)


class TaskCtx:
    """The current task's view of the runtime.

    Directive functions (:mod:`repro.openmp.target`, :mod:`repro.spread`)
    take a ``TaskCtx`` as their first argument — it stands in for the
    implicit "current team/task" context a pragma would see.
    """

    def __init__(self, rt, parent: Optional["TaskCtx"],
                 groups: Sequence[Taskgroup] = ()):
        self.rt = rt
        self.parent = parent
        self.groups: List[Taskgroup] = list(groups)
        self.children: List[Event] = []
        self.name = "main" if parent is None else "task"
        # The simulator process currently executing this context's body;
        # the race sanitizer seeds new tasks from its clock.  Set by
        # OpenMPRuntime.run for the root context and by task() for
        # explicit children; stays None when the sanitizer is off.
        self._san_proc: Optional[Process] = None

    # -- properties -------------------------------------------------------------

    @property
    def sim(self):
        return self.rt.sim

    # -- explicit tasks -----------------------------------------------------------

    def task(self, fn: Callable[..., Generator], *args: Any,
             name: str = "") -> Process:
        """``#pragma omp task`` — spawn *fn(child_ctx, \\*args)* asynchronously.

        The child context inherits the currently open taskgroups, so tasks
        spawned by descendants still synchronize at the enclosing
        ``taskgroup_end`` (required by the Double Buffering recursion).
        """
        child = TaskCtx(self.rt, self, self.groups)
        child.name = name or getattr(fn, "__name__", "task")
        tools = self.rt.tools
        tid = None
        if tools:
            tid = tools.next_task_id()
            tools.dispatch(TASK_CREATE, task=tid, name=child.name,
                           kind="explicit", device=None, directive=None,
                           deferred=False, time=self.sim.now)

        def body() -> Generator:
            self._task_scheduled(tid, child.name)
            try:
                overhead = self.rt.cost_model.host_task_overhead
                if overhead > 0:
                    yield self.sim.timeout(overhead)
                result = yield from fn(child, *args)
                return result
            finally:
                self._task_completed(tid, child.name)

        proc = self.sim.process(body(), name=child.name)
        san = self.rt.sanitizer
        if san is not None:
            child._san_proc = proc
            san.seed(proc, self._san_proc)
        self._register_child(proc)
        return proc

    def submit(self, opgen: Generator, name: str = "",
               concrete_deps: Sequence[ConcreteDep] = (),
               extra_waits: Iterable[Event] = (),
               inflight_registrars: Iterable[Callable[[Event], None]] = (),
               device: Optional[int] = None,
               directive_id: Optional[int] = None,
               ) -> Process:
        """Spawn a *device operation* task (used by the directive layer).

        ``concrete_deps`` go through the runtime's dependence tracker in
        creation order; ``extra_waits`` are additional events to wait for
        (e.g. per-entry consistency: a D2H copy waits for kernels still
        writing that device buffer).  ``inflight_registrars`` are callbacks
        receiving the new task's event, letting data-environment entries
        record it as in flight.  ``device``/``directive_id`` only label the
        tool callbacks (which device the op targets, which directive spawned
        it) — they do not affect execution.
        """
        deps = list(concrete_deps)
        waits = list(self.rt.depend.resolve(deps)) if deps else []
        tools = self.rt.tools
        if tools and deps:
            tools.dispatch(DEPENDENCE_RESOLVED, task=None, name=name,
                           edges=len(waits), deps=len(deps),
                           time=self.sim.now)
        for ev in extra_waits:
            if not ev.processed and ev not in waits:
                waits.append(ev)
        task_name = name or "device-op"
        tid = None
        if tools:
            tid = tools.next_task_id()
            tools.dispatch(TASK_CREATE, task=tid, name=task_name,
                           kind="device_op", device=device,
                           directive=directive_id, deferred=bool(waits),
                           time=self.sim.now)

        def body() -> Generator:
            self._task_scheduled(tid, task_name)
            try:
                overhead = self.rt.cost_model.host_task_overhead
                if overhead > 0:
                    yield self.sim.timeout(overhead)
                if waits:
                    yield self.sim.all_of(waits)
                result = yield from opgen
                return result
            finally:
                self._task_completed(tid, task_name)

        proc = self.sim.process(body(), name=task_name)
        # Device-operation bodies only register deferred real work — they
        # never observe host arrays inline — so resuming them must not
        # close the parallel backend's work window (see Process.work_safe).
        proc.work_safe = True
        san = self.rt.sanitizer
        if san is not None:
            # Every happens-before source of this op is fixed here: the
            # submitter's history plus the wait-set (depend edges and
            # per-buffer in-flight waits).
            san.seed(proc, self._san_proc, waits)
        if deps:
            self.rt.depend.register(deps, proc)
        for registrar in inflight_registrars:
            registrar(proc)
        self._register_child(proc, device_op=True)
        self.rt.note_device_op(proc)
        return proc

    def _task_scheduled(self, tid: Optional[int], name: str) -> None:
        """Fire ``task_schedule`` as a task body first runs (if tooled)."""
        if tid is None:
            return
        tools = self.rt.tools
        if tools:
            tools.dispatch(TASK_SCHEDULE, task=tid, name=name,
                           time=self.sim.now)

    def _task_completed(self, tid: Optional[int], name: str) -> None:
        """Fire ``task_complete`` (from a finally: failed tasks close too)."""
        if tid is None:
            return
        tools = self.rt.tools
        if tools:
            tools.dispatch(TASK_COMPLETE, task=tid, name=name,
                           time=self.sim.now)

    def _register_child(self, proc: Process, device_op: bool = False) -> None:
        self.children.append(proc)
        for group in self.groups:
            group.add(proc, device_op=device_op)
        self.rt.note_task(proc)

    # -- synchronization -------------------------------------------------------------

    def taskwait(self) -> Generator:
        """``#pragma omp taskwait`` — wait for *direct* children created so
        far (not descendants)."""
        # Prune completed children while scanning: a processed event can
        # never block a later taskwait, and the list otherwise grows with
        # every task this context ever spawned — the scan was quadratic
        # over a long-running program.  (_processed is Event's backing
        # slot; the property call was a measurable share of the scan.)
        snapshot = [ev for ev in self.children if not ev._processed]
        self.children[:] = snapshot
        if snapshot:
            yield self.sim.all_of(snapshot)

    def taskgroup_begin(self) -> Taskgroup:
        """Open a ``taskgroup`` region (close with :meth:`taskgroup_end`)."""
        group = Taskgroup(self.rt)
        self.groups.append(group)
        return group

    def taskgroup_end(self, group: Taskgroup) -> Generator:
        """Close the innermost taskgroup and wait for all its members."""
        if not self.groups or self.groups[-1] is not group:
            raise OmpRuntimeError(
                "taskgroup_end: groups must be closed innermost-first")
        self.groups.pop()
        group.closed = True
        yield from group.wait()

    # -- taskloop ----------------------------------------------------------------

    def taskloop(self, iterations: Sequence[Any],
                 body: Callable[..., Generator],
                 num_tasks: Optional[int] = None,
                 grainsize: Optional[int] = None,
                 nogroup: bool = False) -> Generator:
        """``#pragma omp taskloop`` over an explicit iteration sequence.

        Iterations are divided into contiguous chunks — ``num_tasks`` evenly
        sized groups (the paper's ``num_tasks(2)``) or chunks of
        ``grainsize`` — and each chunk becomes one task running its
        iterations sequentially via ``yield from body(ctx, item)``.  Unless
        ``nogroup``, an implicit taskgroup waits for all generated tasks.
        """
        items = list(iterations)
        if num_tasks is not None and grainsize is not None:
            raise OmpRuntimeError("taskloop: num_tasks and grainsize are "
                                  "mutually exclusive")
        if num_tasks is None and grainsize is None:
            num_tasks = len(items) or 1
        if num_tasks is not None:
            if num_tasks < 1:
                raise OmpRuntimeError("taskloop: num_tasks must be >= 1")
            n = min(num_tasks, len(items)) or 1
            base, rem = divmod(len(items), n)
            chunks = []
            pos = 0
            for t in range(n):
                size = base + (1 if t < rem else 0)
                chunks.append(items[pos:pos + size])
                pos += size
        else:
            if grainsize < 1:  # type: ignore[operator]
                raise OmpRuntimeError("taskloop: grainsize must be >= 1")
            chunks = [items[i:i + grainsize]
                      for i in range(0, len(items), grainsize)]

        def chunk_task(ctx: "TaskCtx", chunk: List[Any]) -> Generator:
            for item in chunk:
                yield from body(ctx, item)

        group = None if nogroup else self.taskgroup_begin()
        for chunk in chunks:
            if chunk:
                self.task(chunk_task, chunk, name="taskloop-chunk")
        if group is not None:
            yield from self.taskgroup_end(group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TaskCtx {self.name!r} children={len(self.children)}>"
