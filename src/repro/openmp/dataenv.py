"""Per-device data environments (the libomptarget "present table").

Implements the OpenMP 5.x reference-counted mapping rules the paper's
evaluation leans on:

* mapping a section already present (contained in an existing entry) only
  increments the entry's reference count — no copy;
* mapping a section that **overlaps but extends** an existing entry is
  illegal (:class:`~repro.util.errors.OmpMappingError`).  This is the rule
  that forbids the Two Buffers / Double Buffering Somier variants on a
  single GPU: consecutive half-buffer halos would overlap-extend each other
  (paper Section V-B);
* unmapping decrements; at zero the copy-back (for ``from``/``tofrom``)
  happens and the device buffer is freed;
* ``target update`` requires presence and copies without touching counts.

The environment performs only *metadata* operations (allocation accounting is
instantaneous); the directive layer issues the simulated copies that the
plans returned here call for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.device.device import Device
from repro.device.views import GlobalView
from repro.obs.tool import DATA_OP
from repro.openmp.mapping import Var
from repro.util.errors import OmpMappingError
from repro.util.intervals import Interval


@dataclass
class MappedEntry:
    """One present-table entry: a mapped section of one host array.

    ``inflight`` holds the completion events of device operations (copies
    and kernels) still pending on this buffer.  New operations on the entry
    wait for all of them — the per-buffer analogue of CUDA stream ordering,
    which is how the paper's runtime keeps exit-data copies from racing the
    kernels that produce their data (its ``depend`` support for data
    directives being future work, Section IX).
    """

    var: Var
    section: Interval
    alloc: "object"  # repro.device.memory.Allocation
    refcount: int = 1
    inflight: List["object"] = field(default_factory=list)

    @property
    def buffer(self):
        return self.alloc.array

    def wait_list(self) -> List["object"]:
        """Unfinished operations currently pending on this buffer.

        Prunes completed events in place and returns the pruned list
        itself; callers only read it (``waits.extend(...)``), so the extra
        defensive copy the hot submit path used to pay is dropped.
        """
        inflight = self.inflight
        if inflight:
            inflight[:] = [ev for ev in inflight if not ev.processed]
        return inflight

    def track(self, event: "object") -> None:
        self.inflight.append(event)

    def local_slice(self, section: Interval) -> slice:
        """Device-buffer slice corresponding to a global *section*."""
        if not self.section.contains(section):
            raise OmpMappingError(
                f"{self.var.name}: section {section} not contained in "
                f"mapped entry {self.section}")
        return slice(section.start - self.section.start,
                     section.stop - self.section.start)

    def host_slice(self, section: Interval) -> slice:
        return section.as_slice()

    def view(self) -> GlobalView:
        return GlobalView(self.buffer, self.section.start, name=self.var.name)


class DeviceDataEnv:
    """The present table of one device.

    ``scratch=True`` marks a throwaway environment used for failover
    re-execution (see :func:`repro.openmp.exec_ops.kernel_op`): its
    buffers are zero-copy host-backed scratch — transfer and kernel time
    are charged as usual, but no *device* capacity is consumed.  Charging
    capacity would deadlock: the survivor's resident chunks only free at
    the exit-data barrier, which in turn waits for the re-routed chunk.
    """

    def __init__(self, device: Device, scratch: bool = False):
        self.device = device
        self.scratch = scratch
        self._entries: Dict[int, List[MappedEntry]] = {}
        # Last-hit memo: var.key -> the entry that satisfied the last
        # lookup/enter.  Safe because the overlap-extension rule keeps a
        # variable's entries pairwise disjoint — at most one entry can
        # contain any section, so a memoized containment hit is always the
        # same entry the linear scan would find.
        self._memo: Dict[int, MappedEntry] = {}
        # Structural epoch: bumped whenever the set of entries changes
        # (insert, remove, purge) — NOT on refcount-only traffic.  The
        # macro-op replay engine (repro.spread.macro) validates its cached
        # entry/view resolutions against this counter: as long as the epoch
        # is unchanged, every entry object it captured is still live and
        # still covers the same section.
        self.epoch = 0
        # statistics for benchmark reports
        self.enter_count = 0
        self.reuse_count = 0
        self.memo_hits = 0
        self.slow_lookups = 0

    # -- lookup ---------------------------------------------------------------

    def entries_of(self, var: Var) -> List[MappedEntry]:
        return list(self._entries.get(var.key, ()))

    def lookup(self, var: Var, section: Interval) -> Optional[MappedEntry]:
        """The entry containing *section*, or None if absent.

        A section that only *partially* hits existing entries is an error:
        device code would fault on the unmapped part.
        """
        memo = self._memo.get(var.key)
        if memo is not None and memo.section.contains(section):
            self.memo_hits += 1
            tools = self.device.tools
            if tools:
                tools.dispatch(DATA_OP, op="present_memo_hit",
                               device=self.device.device_id, name=var.name,
                               time=self.device.sim.now)
            return memo
        self.slow_lookups += 1
        lst = self._entries.get(var.key, ())
        for entry in lst:
            if entry.section.contains(section):
                self._memo[var.key] = entry
                return entry
        for entry in lst:
            if entry.section.overlaps(section):
                raise OmpMappingError(
                    f"device {self.device.device_id}: section {section} of "
                    f"{var.name!r} is only partially present "
                    f"(existing entry {entry.section})")
        return None

    def require(self, var: Var, section: Interval) -> MappedEntry:
        entry = self.lookup(var, section)
        if entry is None:
            raise OmpMappingError(
                f"device {self.device.device_id}: {var.name!r} section "
                f"{section} is not present (map it first)")
        return entry

    # -- mapping --------------------------------------------------------------

    def enter(self, var: Var, section: Interval) -> Tuple[MappedEntry, bool]:
        """Map *section* in; returns ``(entry, is_new)``.

        ``is_new`` tells the caller whether a ``to``/``tofrom`` copy-in must
        be issued.  Raises :class:`OmpMappingError` on an overlap-extension,
        reproducing the OpenMP restriction the paper relies on.
        """
        if section.empty:
            raise OmpMappingError(
                f"cannot map empty section of {var.name!r}")
        memo = self._memo.get(var.key)
        if memo is not None and memo.section.contains(section):
            # Same outcome as the scan below (entries are disjoint), same
            # present_hit record — only the linear scan is skipped.
            memo.refcount += 1
            self.reuse_count += 1
            self.memo_hits += 1
            tools = self.device.tools
            if tools:
                tools.dispatch(DATA_OP, op="present_hit",
                               device=self.device.device_id,
                               name=var.name,
                               refcount=memo.refcount,
                               time=self.device.sim.now)
            return memo, False
        self.slow_lookups += 1
        # NOTE: the entry list is only inserted into the table *after* the
        # allocation succeeds — ``allocate`` can raise (capacity), and a
        # failed enter must leave the table exactly as it found it (no
        # empty lists corrupting is_empty()/live_entries).
        lst = self._entries.get(var.key, ())
        for entry in lst:
            if entry.section.contains(section):
                self._memo[var.key] = entry
                entry.refcount += 1
                self.reuse_count += 1
                tools = self.device.tools
                if tools:
                    tools.dispatch(DATA_OP, op="present_hit",
                                   device=self.device.device_id,
                                   name=var.name,
                                   refcount=entry.refcount,
                                   time=self.device.sim.now)
                return entry, False
        for entry in lst:
            if entry.section.overlaps(section):
                raise OmpMappingError(
                    f"device {self.device.device_id}: mapping {var.name!r} "
                    f"section {section} would extend the existing mapped "
                    f"section {entry.section}; extending a present array "
                    f"section is forbidden by OpenMP")
        shape = (len(section),) + var.array.shape[1:]
        nbytes = len(section) * var.row_nbytes
        alloc = self.device.allocate(
            shape, dtype=var.array.dtype,
            virtual_bytes=0.0 if self.scratch
            else self.device.cost_model.virtual_bytes(nbytes),
            label=f"{var.name}[{section.start}:{section.stop}]")
        entry = MappedEntry(var=var, section=section, alloc=alloc, refcount=1)
        self._entries.setdefault(var.key, []).append(entry)
        self._memo[var.key] = entry
        self.epoch += 1
        self.enter_count += 1
        tools = self.device.tools
        if tools:
            tools.dispatch(DATA_OP, op="present_miss",
                           device=self.device.device_id, name=var.name,
                           bytes=alloc.virtual_bytes,
                           time=self.device.sim.now)
        return entry, True

    def exit(self, var: Var, section: Interval,
             force_delete: bool = False) -> Tuple[MappedEntry, bool]:
        """Unmap *section*; returns ``(entry, deleted)``.

        The entry containing the section has its refcount decremented
        (``force_delete`` zeroes it, for ``map(delete: ...)``).  When it
        reaches zero the entry is removed from the table; the caller is
        responsible for the copy-back (if the map type asks for one) and
        must then call :meth:`release_storage`.
        """
        entry = self.require(var, section)
        if force_delete:
            entry.refcount = 0
        else:
            entry.refcount -= 1
        tools = self.device.tools
        if entry.refcount <= 0:
            self._entries[var.key].remove(entry)
            if not self._entries[var.key]:
                del self._entries[var.key]
            if self._memo.get(var.key) is entry:
                del self._memo[var.key]
            self.epoch += 1
            if tools:
                tools.dispatch(DATA_OP, op="delete",
                               device=self.device.device_id, name=var.name,
                               bytes=entry.alloc.virtual_bytes,
                               time=self.device.sim.now)
            return entry, True
        if tools:
            tools.dispatch(DATA_OP, op="release",
                           device=self.device.device_id, name=var.name,
                           refcount=entry.refcount,
                           time=self.device.sim.now)
        return entry, False

    def release_storage(self, entry: MappedEntry) -> None:
        """Free the device buffer of a deleted entry (post copy-back)."""
        self.device.free(entry.alloc)

    def purge(self) -> int:
        """Drop every entry without copy-back; returns how many were live.

        Called when the device is *lost*: its resident data is gone, so
        there is nothing to copy back — entries, in-flight tracking and the
        last-hit memo are all discarded, and the storage accounting is
        released so the allocator and metrics stay consistent.
        """
        count = 0
        entries = [e for lst in self._entries.values() for e in lst]
        self._entries.clear()
        self._memo.clear()
        self.epoch += 1
        for entry in entries:
            count += 1
            self.device.free(entry.alloc)
        return count

    # -- introspection -----------------------------------------------------------

    @property
    def live_entries(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def is_empty(self) -> bool:
        return not self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DeviceDataEnv dev={self.device.device_id} "
                f"entries={self.live_entries}>")
