"""OpenMP host runtime substrate.

This package reproduces the pieces of libomp/libomptarget the paper's
evaluation depends on:

* :mod:`repro.openmp.runtime` — the runtime object (ICVs, devices, run loop);
* :mod:`repro.openmp.tasks` — explicit tasks, ``taskwait``, ``taskgroup``,
  ``taskloop``;
* :mod:`repro.openmp.depend` — data-based dependence resolution for the
  ``depend`` clause;
* :mod:`repro.openmp.mapping` — ``map`` clauses and array sections;
* :mod:`repro.openmp.dataenv` — per-device data environments with OpenMP
  present-table semantics (refcounts, the illegal-extension rule);
* :mod:`repro.openmp.target` — the *existing* single-device directives the
  paper compares against: ``target``, ``target data``, ``target
  enter/exit data``, ``target update`` and the combined
  ``target teams distribute parallel for``.

Host programs are generator functions receiving a :class:`TaskCtx`; directive
functions are generators driven with ``yield from`` (the simulated analogue
of reaching a pragma).
"""

from repro.openmp.mapping import Var, MapType, MapClause, Map, concretize_section
from repro.openmp.dataenv import DeviceDataEnv, MappedEntry
from repro.openmp.depend import DependTracker, Dep
from repro.openmp.tasks import TaskCtx, Taskgroup
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.target import (
    target,
    target_teams_distribute_parallel_for,
    target_data,
    target_enter_data,
    target_exit_data,
    target_update,
)

__all__ = [
    "Var",
    "MapType",
    "MapClause",
    "Map",
    "concretize_section",
    "DeviceDataEnv",
    "MappedEntry",
    "DependTracker",
    "Dep",
    "TaskCtx",
    "Taskgroup",
    "OpenMPRuntime",
    "target",
    "target_teams_distribute_parallel_for",
    "target_data",
    "target_enter_data",
    "target_exit_data",
    "target_update",
]
