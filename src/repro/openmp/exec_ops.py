"""Shared lowering machinery for target-style directives.

Both the baseline single-device directives (:mod:`repro.openmp.target`) and
the paper's spread directives (:mod:`repro.spread`) lower to the same three
device-operation shapes, implemented here as generator *ops* plus submit
helpers that wire dependences and per-entry consistency:

* **enter** — present-table enter for each map clause; copy-in for new
  ``to``/``tofrom`` entries;
* **exit** — present-table exit; copy-back for ``from``/``tofrom`` entries
  whose refcount reached zero, then storage release;
* **kernel** — implicit enter, kernel launch with global-index views,
  implicit exit (OpenMP ``target`` construct semantics);
* **update** — presence-required copies without refcount changes.

Per-entry consistency: at submit time, any already-present entry touched by
the new operation contributes its in-flight operations to the wait set, and
the new operation is recorded on the entry.  This reproduces the per-buffer
stream ordering of the paper's runtime (kernels before the copy-back that
reads them) without imposing any cross-buffer synchronization.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from repro.device.kernel import KernelSpec, LaunchConfig
from repro.obs.tool import DEPENDENCE_RESOLVED, FAULT_EVENT, TARGET_SUBMIT
from repro.openmp.dataenv import DeviceDataEnv, MappedEntry
from repro.openmp.depend import ConcreteDep
from repro.openmp.mapping import MapClause, MapType, Var
from repro.openmp.tasks import TaskCtx
from repro.sim import timeline as _timeline
from repro.sim.engine import Process
from repro.util.errors import DeviceFaultError, OmpMappingError, OmpSemaError
from repro.util.intervals import Interval

#: A map clause whose section has been evaluated for a specific chunk.
ConcreteMap = Tuple[MapClause, Interval]


# ---------------------------------------------------------------------------
# validation helpers
# ---------------------------------------------------------------------------

_ENTER_TYPES = (MapType.TO, MapType.ALLOC)
_EXIT_TYPES = (MapType.FROM, MapType.RELEASE, MapType.DELETE)
_REGION_TYPES = (MapType.TO, MapType.FROM, MapType.TOFROM, MapType.ALLOC)


def check_map_types(maps: Sequence[MapClause], allowed: Sequence[MapType],
                    directive: str) -> None:
    for clause in maps:
        if clause.map_type not in allowed:
            allowed_names = "/".join(t.value for t in allowed)
            raise OmpSemaError(
                f"{directive}: map type {clause.map_type.value!r} not "
                f"allowed here (expected {allowed_names})")


def enter_map_types(maps: Sequence[MapClause], directive: str) -> None:
    check_map_types(maps, _ENTER_TYPES, directive)


def exit_map_types(maps: Sequence[MapClause], directive: str) -> None:
    check_map_types(maps, _EXIT_TYPES, directive)


def region_map_types(maps: Sequence[MapClause], directive: str) -> None:
    check_map_types(maps, _REGION_TYPES, directive)


# ---------------------------------------------------------------------------
# consistency wiring
# ---------------------------------------------------------------------------

def gather_entry_waits(rt, device_id: int,
                       concrete_maps: Sequence[ConcreteMap]):
    """In-flight events of already-present entries + their registrars.

    Entries that do not exist yet (the op itself will create them) simply
    contribute nothing; ordering for those flows through explicit ``depend``
    clauses, exactly as in the paper's model.
    """
    env = rt.dataenv(device_id)
    waits = []
    entries: List[MappedEntry] = []
    for clause, interval in concrete_maps:
        try:
            entry = env.lookup(clause.var, interval)
        except OmpMappingError:
            entry = None  # partial presence: the op will raise at execution
        if entry is not None:
            waits.extend(entry.wait_list())
            entries.append(entry)

    if not entries:
        # Nothing to track: skip allocating a closure per submitted chunk.
        return waits, ()

    def registrar(event) -> None:
        for entry in entries:
            entry.track(event)

    return waits, [registrar]


def kernel_accesses(rt, device_id: int,
                    concrete_maps: Sequence[ConcreteMap]):
    """Residency-precise sanitizer footprint of one kernel op.

    Sections already resident on *device_id* at submit time make the
    kernel's implicit-entry copy-in a present hit — no host read happens —
    so their reads are dropped from the recorded footprint.  The resilient
    launch path uses this: a failed-over sibling's standalone write-back
    genuinely writes the host, and the default over-approximated halo
    reads of healthy chunks would spuriously race against it.

    Residency is the present table *or* the sanitizer's submit-order
    entered set: a depend-ordered prefetch enter (§IX ``data_depend``) is
    submitted nowait and has not populated the table yet, but it is
    ordered before this kernel, so the copy-in is still a present hit.
    """
    from repro.analysis.sanitizer import accesses_from_maps
    san = rt.sanitizer
    env = rt.dataenv(device_id)
    resident = set()
    for i, (clause, interval) in enumerate(concrete_maps):
        try:
            if env.lookup(clause.var, interval) is not None:
                resident.add(i)
                continue
        except OmpMappingError:
            pass
        if san is not None and san.entered_covers(device_id,
                                                  clause.var.name, interval):
            resident.add(i)
    return accesses_from_maps(concrete_maps, resident=resident)


# ---------------------------------------------------------------------------
# fault retry
# ---------------------------------------------------------------------------

def _run_with_retry(rt, device_id: int, factory, op: str,
                    name: str) -> Generator:
    """Re-attempt a device operation on transient injected faults.

    *factory* builds a fresh op generator per attempt (a generator cannot
    be restarted).  Retryable :class:`DeviceFaultError`\\ s are retried up
    to ``rt.retry_policy.max_attempts`` with the policy's exponential
    backoff charged to virtual time; a non-retryable fault (device loss)
    or an exhausted budget propagates to the caller — for spread chunks
    that is the failover layer (:mod:`repro.spread.failover`).

    Safe to re-run because a fault fires at the *top* of a device op,
    before any resource is acquired or array byte is moved.
    """
    policy = rt.retry_policy
    attempt = 1
    # Tag the executing process so re-attempted ops carry
    # ``attempt``/``retry_of`` trace meta (their own attribution bucket).
    proc = rt.sim.current_process
    while True:
        try:
            result = yield from factory()
            if proc is not None:
                proc.retry = 0
            return result
        except DeviceFaultError as err:
            if not err.retryable:
                if proc is not None:
                    proc.retry = 0
                raise
            tools = rt.tools
            if attempt >= policy.max_attempts:
                if tools:
                    tools.dispatch(FAULT_EVENT, kind="giveup",
                                   device=device_id, op=op, name=name,
                                   attempts=attempt, time=rt.sim.now)
                if proc is not None:
                    proc.retry = 0
                raise
            delay = policy.delay(attempt)
            rt.fault_retries += 1
            if tools:
                tools.dispatch(FAULT_EVENT, kind="retry", device=device_id,
                               op=op, name=name, attempt=attempt,
                               delay=delay, time=rt.sim.now)
            if delay > 0:
                yield rt.sim.timeout(delay)
            attempt += 1
            if proc is not None:
                proc.retry = (attempt - 1, f"{op}:{name}")


def _maybe_retry(rt, device_id: int, factory, op: str, name: str) -> Generator:
    """The retry wrapper, engaged only when faults can actually occur.

    Without an injector the factory's generator is returned as-is — the
    zero-fault hot path pays one attribute check, no extra generator frame.
    """
    if rt.fault_injector is None:
        return factory()
    return _run_with_retry(rt, device_id, factory, op, name)


# ---------------------------------------------------------------------------
# operation generators
# ---------------------------------------------------------------------------

def _enter_backpressured(rt, device_id: int, clause: MapClause,
                         interval: Interval,
                         env: Optional[DeviceDataEnv] = None) -> Generator:
    """``env.enter`` with back-pressure on transient memory exhaustion.

    A request that could never fit (bigger than the whole device) raises
    immediately; otherwise the op blocks until another buffer frees storage
    and retries — the behaviour a pooling runtime exhibits when, e.g., the
    Double Buffering recursion prefetches ahead of the drain.
    """
    from repro.util.errors import OmpAllocationError

    if env is None:
        env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    while True:
        try:
            return env.enter(clause.var, interval)
        except OmpAllocationError as err:
            if not err.can_ever_fit:
                raise
            yield dev.wait_for_free()


def _maybe_alloc_sync(rt, device_id: int,
                      concrete_maps: Sequence[ConcreteMap],
                      env: Optional[DeviceDataEnv] = None) -> Generator:
    """Charge cudaMalloc costs for the maps that will allocate.

    On the simulated device (as on real CUDA) an allocation synchronizes
    the device queue and costs a fixed latency per call.  Maps that are
    already present allocate nothing and stay free.
    """
    if env is None:
        env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    spec = dev.spec
    absent = 0
    for clause, interval in concrete_maps:
        try:
            if env.lookup(clause.var, interval) is None:
                absent += 1
        except OmpMappingError:
            absent += 1  # partial presence: enter() will raise properly
    if absent:
        if spec.alloc_sync:
            yield from dev.synchronize()
        if spec.alloc_latency > 0:
            yield dev.sim.timeout(spec.alloc_latency * absent)


def _release_with_sync(rt, device_id: int,
                       to_release: Sequence[MappedEntry],
                       env: Optional[DeviceDataEnv] = None) -> Generator:
    """cudaFree: device-wide synchronization + per-call latency, then the
    actual storage release (which wakes back-pressured enters)."""
    if not to_release:
        return
    dev = rt.device(device_id)
    spec = dev.spec
    if spec.free_sync:
        yield from dev.synchronize()
    if spec.free_latency > 0:
        yield dev.sim.timeout(spec.free_latency * len(to_release))
    if env is None:
        env = rt.dataenv(device_id)
    for entry in to_release:
        env.release_storage(entry)


def enter_op(rt, device_id: int, concrete_maps: Sequence[ConcreteMap],
             fuse_transfers: bool = False, label: str = "") -> Generator:
    """Present-table enter + copy-in transfers for one device."""
    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    yield from _maybe_alloc_sync(rt, device_id, concrete_maps)
    copies = []
    for clause, interval in concrete_maps:
        entry, is_new = yield from _enter_backpressured(rt, device_id,
                                                        clause, interval)
        if is_new and clause.map_type.copies_in:
            copies.append((clause.var.array, interval.as_slice(),
                           entry.buffer, entry.local_slice(interval),
                           clause.var.name))
    yield from _issue_copies(rt, dev, copies, h2d=True, fuse=fuse_transfers,
                             label=label)


def exit_op(rt, device_id: int, concrete_maps: Sequence[ConcreteMap],
            fuse_transfers: bool = False, label: str = "") -> Generator:
    """Present-table exit + copy-back transfers + storage release.

    Validation is two-phase: every clause's presence is checked *before*
    the first refcount is touched, so a malformed exit leaves the present
    table untouched instead of half-unmapped.  (A failed-over chunk never
    reaches this op: its re-routed exit is a no-op — the chunk has no
    residency on the replacement device, and any entry that *would* match
    belongs to the survivor's own chunks.)
    """
    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    for clause, interval in concrete_maps:
        env.require(clause.var, interval)
    copies = []
    to_release: List[MappedEntry] = []
    for clause, interval in concrete_maps:
        force = clause.map_type is MapType.DELETE
        entry, deleted = env.exit(clause.var, interval, force_delete=force)
        if deleted:
            if clause.map_type.copies_out:
                copies.append((entry.buffer, entry.local_slice(interval),
                               clause.var.array, interval.as_slice(),
                               clause.var.name))
            to_release.append(entry)
    yield from _issue_copies(rt, dev, copies, h2d=False, fuse=fuse_transfers,
                             label=label)
    yield from _release_with_sync(rt, device_id, to_release)


def update_op(rt, device_id: int,
              to_sections: Sequence[Tuple[Var, Interval]],
              from_sections: Sequence[Tuple[Var, Interval]],
              fuse_transfers: bool = False, label: str = "") -> Generator:
    """``target update`` copies; every section must already be present.

    (A failed-over chunk never reaches this op: its re-routed update is a
    no-op — the host copy is authoritative for the lost chunk, and an
    ``update from`` against a survivor's own halo'd entry would copy
    stale halo rows over newer host data.)
    """
    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    h2d = []
    for var, interval in to_sections:
        entry = env.require(var, interval)
        h2d.append((var.array, interval.as_slice(),
                    entry.buffer, entry.local_slice(interval), var.name))
    d2h = []
    for var, interval in from_sections:
        entry = env.require(var, interval)
        d2h.append((entry.buffer, entry.local_slice(interval),
                    var.array, interval.as_slice(), var.name))
    yield from _issue_copies(rt, dev, h2d, h2d=True, fuse=fuse_transfers,
                             label=label)
    yield from _issue_copies(rt, dev, d2h, h2d=False, fuse=fuse_transfers,
                             label=label)


def kernel_op(rt, device_id: int, kernel: KernelSpec, lo: int, hi: int,
              concrete_maps: Sequence[ConcreteMap],
              launch: LaunchConfig = LaunchConfig(),
              iterations: Optional[float] = None,
              fuse_transfers: bool = False, label: str = "",
              extra_env=None, standalone: bool = False) -> Generator:
    """The ``target`` construct: implicit enter, launch, implicit exit.

    ``extra_env`` adds non-mapped objects to the kernel environment (used by
    the reduction extension for per-chunk partial buffers).

    ``standalone=True`` (failover: the chunk was re-routed off a lost
    device) runs the whole op against a throwaway private data environment
    instead of the device's shared present table.  The op becomes fully
    self-contained, with the host carrying the chunk's data between
    kernels: *every* map copies in from the host (``alloc`` included — the
    host array is the best surviving approximation of the lost device's
    state), and the implicit exit copies back each map's intersection with
    the chunk's owned range ``[lo, hi)`` regardless of map type.  Owned
    rows only: halo rows belong to neighbour chunks that are still
    resident elsewhere, and writing them back would clobber newer host
    data with this chunk's stale copy.  This also sidesteps the
    overlap-extension rule a re-routed halo'd section would hit in the
    survivor's shared table.  The throwaway env is ``scratch``: its
    buffers cost transfer/kernel time but no device capacity (see
    :class:`DeviceDataEnv`) — the survivor's own resident chunks free only
    at a barrier that waits for this very op, so charging capacity could
    never make progress.
    """
    env = DeviceDataEnv(rt.device(device_id), scratch=True) if standalone \
        else rt.dataenv(device_id)
    dev = rt.device(device_id)
    # Implicit entry phase.
    yield from _maybe_alloc_sync(rt, device_id, concrete_maps, env=env)
    copies = []
    held: List[ConcreteMap] = []
    for clause, interval in concrete_maps:
        entry, is_new = yield from _enter_backpressured(rt, device_id,
                                                        clause, interval,
                                                        env=env)
        held.append((clause, interval))
        if is_new and (standalone or clause.map_type.copies_in):
            copies.append((clause.var.array, interval.as_slice(),
                           entry.buffer, entry.local_slice(interval),
                           clause.var.name))
    yield from _issue_copies(rt, dev, copies, h2d=True, fuse=fuse_transfers,
                             label=label)
    # Kernel launch on the mapped views.
    kenv = {}
    for clause, interval in concrete_maps:
        entry = env.require(clause.var, interval)
        kenv[clause.var.name] = entry.view()
    if extra_env:
        kenv.update(extra_env)
    yield from _maybe_retry(
        rt, device_id,
        lambda: dev.launch_kernel(kernel, lo, hi, kenv, launch=launch,
                                  iterations=iterations),
        "kernel", kernel.name)
    # Implicit exit phase.
    owned = Interval(lo, hi)
    copyback = []
    to_release: List[MappedEntry] = []
    for clause, interval in held:
        entry, deleted = env.exit(clause.var, interval)
        if deleted:
            if standalone:
                back = interval.intersection(owned)
                if not back.empty:
                    copyback.append((entry.buffer, entry.local_slice(back),
                                     clause.var.array, back.as_slice(),
                                     clause.var.name))
            elif clause.map_type.copies_out:
                copyback.append((entry.buffer, entry.local_slice(interval),
                                 clause.var.array, interval.as_slice(),
                                 clause.var.name))
            to_release.append(entry)
    yield from _issue_copies(rt, dev, copyback, h2d=False,
                             fuse=fuse_transfers, label=label)
    yield from _release_with_sync(rt, device_id, to_release, env=env)


def _issue_copies(rt, dev, copies, h2d: bool, fuse: bool,
                  label: str) -> Generator:
    if not copies:
        return
    op = "h2d" if h2d else "d2h"
    if fuse and len(copies) > 1:
        batch = [(src, sk, dst, dk) for src, sk, dst, dk, _name in copies]
        name = f"{label or 'map'}(fused x{len(batch)})"
        if h2d:
            factory = lambda: dev.copy_h2d_batch(batch, name=name)  # noqa: E731
        else:
            factory = lambda: dev.copy_d2h_batch(batch, name=name)  # noqa: E731
        yield from _maybe_retry(rt, dev.device_id, factory, op, name)
        return
    # Issue all memcpys at once (what a runtime enqueuing async copies
    # does); the staging path and the device queue serialize them, but the
    # next copy's staging pipelines with the current one's wire time.
    sim = dev.sim
    if (rt.fused_timeline and rt.fault_injector is None
            and sim.recorder is None and sim.cp_hook is None
            and sim.san_hook is None and not dev.tools and not dev.lost
            and dev.network is None):
        # Fused-timeline copy walkers: the identical copy protocol (same
        # resource claims, same timed segments, same trace records) with
        # no generator frames — see repro.sim.timeline._CopyProc.  Any
        # per-op observer (faults, recorder, sanitizer, tools) keeps the
        # generator sub-processes below.  Devices behind an inter-node
        # network link keep the generator path too: the walkers don't
        # model the network hop, and bit-identity beats frame savings.
        cls = _timeline.CopyH2D if h2d else _timeline.CopyD2H
        prefix = label or "map"
        walkers = [cls.spawn(sim, dev, src, sk, dst, dk, f"{prefix}:{vname}")
                   for src, sk, dst, dk, vname in copies]
        yield sim.all_of(walkers)
        return
    procs = []
    for src, sk, dst, dk, vname in copies:
        name = f"{label or 'map'}:{vname}"

        def factory(s=src, sl=sk, d=dst, dl=dk, n=name):
            return (dev.copy_h2d(s, sl, d, dl, name=n) if h2d
                    else dev.copy_d2h(s, sl, d, dl, name=n))

        # The retry wrapper rides inside the spawned process, so transient
        # faults are absorbed there; a DeviceLostError fails the process
        # and all_of re-raises it here (fail-fast), into the failover
        # layer for spread chunks.
        proc = dev.sim.process(
            _maybe_retry(rt, dev.device_id, factory, op, name), name=name)
        # pure copy machinery: real work goes through run_work, so these
        # resumptions need not close the parallel backend's work window
        proc.work_safe = True
        procs.append(proc)
    yield dev.sim.all_of(procs)


# ---------------------------------------------------------------------------
# submit helpers (create the device-op task with all wiring)
# ---------------------------------------------------------------------------

def submit_op(ctx: TaskCtx, device_id: int, opgen: Generator,
              concrete_maps: Sequence[ConcreteMap] = (),
              concrete_deps: Sequence[ConcreteDep] = (),
              name: str = "",
              directive_id: Optional[int] = None) -> Process:
    """Spawn a device operation with depend + per-entry consistency."""
    tools = ctx.rt.tools
    if tools:
        tools.dispatch(TARGET_SUBMIT, device=device_id, name=name,
                       directive=directive_id, time=ctx.rt.sim.now)
    waits, registrars = gather_entry_waits(ctx.rt, device_id, concrete_maps)
    proc = ctx.submit(opgen, name=name, concrete_deps=concrete_deps,
                      extra_waits=waits, inflight_registrars=registrars,
                      device=device_id, directive_id=directive_id)
    if directive_id is not None:
        # Trace provenance: the op body only runs once the event loop
        # steps it, so tagging after submit is race-free.
        proc.prov = (directive_id, None, None)
    san = ctx.rt.sanitizer
    if san is not None:
        from repro.analysis.sanitizer import accesses_from_maps

        san.record_op(proc, accesses_from_maps(concrete_maps),
                      device=device_id, directive=directive_id, name=name)
    return proc


def submit_spread(ctx: TaskCtx, items,
                  directive_id: Optional[int] = None) -> List[Process]:
    """Spawn the chunk tasks of one spread directive.

    ``items`` is a sequence of ``(device_id, opgen, concrete_maps,
    concrete_deps, name)`` tuples.  Unlike sequential :func:`submit_op`
    calls, all chunks resolve their dependences against the *pre-directive*
    tracker state and only then register their own records: sibling chunks
    of one directive are conceptually simultaneous and must not order
    against each other — their sections may overlap (position halos) yet
    they write distinct per-device copies.

    An item may carry an optional sixth element: the sanitizer footprint
    to record instead of the maps' default one.  Failover uses it — a
    re-routed data directive is a no-op (empty footprint) and a re-routed
    kernel runs standalone (every map read, owned rows written), so the
    planned maps no longer describe what touches the host.
    """
    rt = ctx.rt
    tools = rt.tools
    san = rt.sanitizer
    if san is not None:
        from repro.analysis.sanitizer import accesses_from_maps
    procs: List[Process] = []
    to_register = []
    for item in items:
        device_id, opgen, concrete_maps, concrete_deps, name = item[:5]
        accesses = item[5] if len(item) > 5 else None
        waits, registrars = gather_entry_waits(rt, device_id, concrete_maps)
        deps = list(concrete_deps)
        if deps:
            resolved = rt.depend.resolve(deps)
            if tools:
                tools.dispatch(DEPENDENCE_RESOLVED, task=None, name=name,
                               edges=len(resolved), deps=len(deps),
                               time=rt.sim.now)
            waits = list(waits) + resolved
        if tools:
            tools.dispatch(TARGET_SUBMIT, device=device_id, name=name,
                           directive=directive_id, time=rt.sim.now)
        proc = ctx.submit(opgen, name=name, extra_waits=waits,
                          inflight_registrars=registrars,
                          device=device_id, directive_id=directive_id)
        if san is not None:
            san.record_op(proc,
                          accesses_from_maps(concrete_maps)
                          if accesses is None else accesses,
                          device=device_id, directive=directive_id,
                          name=name)
        if deps:
            to_register.append((deps, proc))
        procs.append(proc)
    for deps, proc in to_register:
        rt.depend.register(deps, proc)
    return procs
