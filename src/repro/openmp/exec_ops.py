"""Shared lowering machinery for target-style directives.

Both the baseline single-device directives (:mod:`repro.openmp.target`) and
the paper's spread directives (:mod:`repro.spread`) lower to the same three
device-operation shapes, implemented here as generator *ops* plus submit
helpers that wire dependences and per-entry consistency:

* **enter** — present-table enter for each map clause; copy-in for new
  ``to``/``tofrom`` entries;
* **exit** — present-table exit; copy-back for ``from``/``tofrom`` entries
  whose refcount reached zero, then storage release;
* **kernel** — implicit enter, kernel launch with global-index views,
  implicit exit (OpenMP ``target`` construct semantics);
* **update** — presence-required copies without refcount changes.

Per-entry consistency: at submit time, any already-present entry touched by
the new operation contributes its in-flight operations to the wait set, and
the new operation is recorded on the entry.  This reproduces the per-buffer
stream ordering of the paper's runtime (kernels before the copy-back that
reads them) without imposing any cross-buffer synchronization.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from repro.device.kernel import KernelSpec, LaunchConfig
from repro.obs.tool import DEPENDENCE_RESOLVED, TARGET_SUBMIT
from repro.openmp.dataenv import MappedEntry
from repro.openmp.depend import ConcreteDep
from repro.openmp.mapping import MapClause, MapType, Var
from repro.openmp.tasks import TaskCtx
from repro.sim.engine import Process
from repro.util.errors import OmpMappingError, OmpSemaError
from repro.util.intervals import Interval

#: A map clause whose section has been evaluated for a specific chunk.
ConcreteMap = Tuple[MapClause, Interval]


# ---------------------------------------------------------------------------
# validation helpers
# ---------------------------------------------------------------------------

_ENTER_TYPES = (MapType.TO, MapType.ALLOC)
_EXIT_TYPES = (MapType.FROM, MapType.RELEASE, MapType.DELETE)
_REGION_TYPES = (MapType.TO, MapType.FROM, MapType.TOFROM, MapType.ALLOC)


def check_map_types(maps: Sequence[MapClause], allowed: Sequence[MapType],
                    directive: str) -> None:
    for clause in maps:
        if clause.map_type not in allowed:
            allowed_names = "/".join(t.value for t in allowed)
            raise OmpSemaError(
                f"{directive}: map type {clause.map_type.value!r} not "
                f"allowed here (expected {allowed_names})")


def enter_map_types(maps: Sequence[MapClause], directive: str) -> None:
    check_map_types(maps, _ENTER_TYPES, directive)


def exit_map_types(maps: Sequence[MapClause], directive: str) -> None:
    check_map_types(maps, _EXIT_TYPES, directive)


def region_map_types(maps: Sequence[MapClause], directive: str) -> None:
    check_map_types(maps, _REGION_TYPES, directive)


# ---------------------------------------------------------------------------
# consistency wiring
# ---------------------------------------------------------------------------

def gather_entry_waits(rt, device_id: int,
                       concrete_maps: Sequence[ConcreteMap]):
    """In-flight events of already-present entries + their registrars.

    Entries that do not exist yet (the op itself will create them) simply
    contribute nothing; ordering for those flows through explicit ``depend``
    clauses, exactly as in the paper's model.
    """
    env = rt.dataenv(device_id)
    waits = []
    entries: List[MappedEntry] = []
    for clause, interval in concrete_maps:
        try:
            entry = env.lookup(clause.var, interval)
        except OmpMappingError:
            entry = None  # partial presence: the op will raise at execution
        if entry is not None:
            waits.extend(entry.wait_list())
            entries.append(entry)

    if not entries:
        # Nothing to track: skip allocating a closure per submitted chunk.
        return waits, ()

    def registrar(event) -> None:
        for entry in entries:
            entry.track(event)

    return waits, [registrar]


# ---------------------------------------------------------------------------
# operation generators
# ---------------------------------------------------------------------------

def _enter_backpressured(rt, device_id: int, clause: MapClause,
                         interval: Interval) -> Generator:
    """``env.enter`` with back-pressure on transient memory exhaustion.

    A request that could never fit (bigger than the whole device) raises
    immediately; otherwise the op blocks until another buffer frees storage
    and retries — the behaviour a pooling runtime exhibits when, e.g., the
    Double Buffering recursion prefetches ahead of the drain.
    """
    from repro.util.errors import OmpAllocationError

    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    while True:
        try:
            return env.enter(clause.var, interval)
        except OmpAllocationError as err:
            if not err.can_ever_fit:
                raise
            yield dev.wait_for_free()


def _maybe_alloc_sync(rt, device_id: int,
                      concrete_maps: Sequence[ConcreteMap]) -> Generator:
    """Charge cudaMalloc costs for the maps that will allocate.

    On the simulated device (as on real CUDA) an allocation synchronizes
    the device queue and costs a fixed latency per call.  Maps that are
    already present allocate nothing and stay free.
    """
    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    spec = dev.spec
    absent = 0
    for clause, interval in concrete_maps:
        try:
            if env.lookup(clause.var, interval) is None:
                absent += 1
        except OmpMappingError:
            absent += 1  # partial presence: enter() will raise properly
    if absent:
        if spec.alloc_sync:
            yield from dev.synchronize()
        if spec.alloc_latency > 0:
            yield dev.sim.timeout(spec.alloc_latency * absent)


def _release_with_sync(rt, device_id: int,
                       to_release: Sequence[MappedEntry]) -> Generator:
    """cudaFree: device-wide synchronization + per-call latency, then the
    actual storage release (which wakes back-pressured enters)."""
    if not to_release:
        return
    dev = rt.device(device_id)
    spec = dev.spec
    if spec.free_sync:
        yield from dev.synchronize()
    if spec.free_latency > 0:
        yield dev.sim.timeout(spec.free_latency * len(to_release))
    env = rt.dataenv(device_id)
    for entry in to_release:
        env.release_storage(entry)


def enter_op(rt, device_id: int, concrete_maps: Sequence[ConcreteMap],
             fuse_transfers: bool = False, label: str = "") -> Generator:
    """Present-table enter + copy-in transfers for one device."""
    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    yield from _maybe_alloc_sync(rt, device_id, concrete_maps)
    copies = []
    for clause, interval in concrete_maps:
        entry, is_new = yield from _enter_backpressured(rt, device_id,
                                                        clause, interval)
        if is_new and clause.map_type.copies_in:
            copies.append((clause.var.array, interval.as_slice(),
                           entry.buffer, entry.local_slice(interval),
                           clause.var.name))
    yield from _issue_copies(dev, copies, h2d=True, fuse=fuse_transfers,
                             label=label)


def exit_op(rt, device_id: int, concrete_maps: Sequence[ConcreteMap],
            fuse_transfers: bool = False, label: str = "") -> Generator:
    """Present-table exit + copy-back transfers + storage release."""
    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    copies = []
    to_release: List[MappedEntry] = []
    for clause, interval in concrete_maps:
        force = clause.map_type is MapType.DELETE
        entry, deleted = env.exit(clause.var, interval, force_delete=force)
        if deleted:
            if clause.map_type.copies_out:
                copies.append((entry.buffer, entry.local_slice(interval),
                               clause.var.array, interval.as_slice(),
                               clause.var.name))
            to_release.append(entry)
    yield from _issue_copies(dev, copies, h2d=False, fuse=fuse_transfers,
                             label=label)
    yield from _release_with_sync(rt, device_id, to_release)


def update_op(rt, device_id: int,
              to_sections: Sequence[Tuple[Var, Interval]],
              from_sections: Sequence[Tuple[Var, Interval]],
              fuse_transfers: bool = False, label: str = "") -> Generator:
    """``target update`` copies; every section must already be present."""
    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    h2d = []
    for var, interval in to_sections:
        entry = env.require(var, interval)
        h2d.append((var.array, interval.as_slice(),
                    entry.buffer, entry.local_slice(interval), var.name))
    d2h = []
    for var, interval in from_sections:
        entry = env.require(var, interval)
        d2h.append((entry.buffer, entry.local_slice(interval),
                    var.array, interval.as_slice(), var.name))
    yield from _issue_copies(dev, h2d, h2d=True, fuse=fuse_transfers,
                             label=label)
    yield from _issue_copies(dev, d2h, h2d=False, fuse=fuse_transfers,
                             label=label)


def kernel_op(rt, device_id: int, kernel: KernelSpec, lo: int, hi: int,
              concrete_maps: Sequence[ConcreteMap],
              launch: LaunchConfig = LaunchConfig(),
              iterations: Optional[float] = None,
              fuse_transfers: bool = False, label: str = "",
              extra_env=None) -> Generator:
    """The ``target`` construct: implicit enter, launch, implicit exit.

    ``extra_env`` adds non-mapped objects to the kernel environment (used by
    the reduction extension for per-chunk partial buffers).
    """
    env = rt.dataenv(device_id)
    dev = rt.device(device_id)
    # Implicit entry phase.
    yield from _maybe_alloc_sync(rt, device_id, concrete_maps)
    copies = []
    held: List[ConcreteMap] = []
    for clause, interval in concrete_maps:
        entry, is_new = yield from _enter_backpressured(rt, device_id,
                                                        clause, interval)
        held.append((clause, interval))
        if is_new and clause.map_type.copies_in:
            copies.append((clause.var.array, interval.as_slice(),
                           entry.buffer, entry.local_slice(interval),
                           clause.var.name))
    yield from _issue_copies(dev, copies, h2d=True, fuse=fuse_transfers,
                             label=label)
    # Kernel launch on the mapped views.
    kenv = {}
    for clause, interval in concrete_maps:
        entry = env.require(clause.var, interval)
        kenv[clause.var.name] = entry.view()
    if extra_env:
        kenv.update(extra_env)
    yield from dev.launch_kernel(kernel, lo, hi, kenv, launch=launch,
                                 iterations=iterations)
    # Implicit exit phase.
    copyback = []
    to_release: List[MappedEntry] = []
    for clause, interval in held:
        entry, deleted = env.exit(clause.var, interval)
        if deleted:
            if clause.map_type.copies_out:
                copyback.append((entry.buffer, entry.local_slice(interval),
                                 clause.var.array, interval.as_slice(),
                                 clause.var.name))
            to_release.append(entry)
    yield from _issue_copies(dev, copyback, h2d=False, fuse=fuse_transfers,
                             label=label)
    yield from _release_with_sync(rt, device_id, to_release)


def _issue_copies(dev, copies, h2d: bool, fuse: bool, label: str) -> Generator:
    if not copies:
        return
    if fuse and len(copies) > 1:
        batch = [(src, sk, dst, dk) for src, sk, dst, dk, _name in copies]
        name = f"{label or 'map'}(fused x{len(batch)})"
        if h2d:
            yield from dev.copy_h2d_batch(batch, name=name)
        else:
            yield from dev.copy_d2h_batch(batch, name=name)
        return
    # Issue all memcpys at once (what a runtime enqueuing async copies
    # does); the staging path and the device queue serialize them, but the
    # next copy's staging pipelines with the current one's wire time.
    procs = []
    for src, sk, dst, dk, vname in copies:
        name = f"{label or 'map'}:{vname}"
        gen = (dev.copy_h2d(src, sk, dst, dk, name=name) if h2d
               else dev.copy_d2h(src, sk, dst, dk, name=name))
        proc = dev.sim.process(gen, name=name)
        # pure copy machinery: real work goes through run_work, so these
        # resumptions need not close the parallel backend's work window
        proc.work_safe = True
        procs.append(proc)
    yield dev.sim.all_of(procs)


# ---------------------------------------------------------------------------
# submit helpers (create the device-op task with all wiring)
# ---------------------------------------------------------------------------

def submit_op(ctx: TaskCtx, device_id: int, opgen: Generator,
              concrete_maps: Sequence[ConcreteMap] = (),
              concrete_deps: Sequence[ConcreteDep] = (),
              name: str = "",
              directive_id: Optional[int] = None) -> Process:
    """Spawn a device operation with depend + per-entry consistency."""
    tools = ctx.rt.tools
    if tools:
        tools.dispatch(TARGET_SUBMIT, device=device_id, name=name,
                       directive=directive_id, time=ctx.rt.sim.now)
    waits, registrars = gather_entry_waits(ctx.rt, device_id, concrete_maps)
    return ctx.submit(opgen, name=name, concrete_deps=concrete_deps,
                      extra_waits=waits, inflight_registrars=registrars,
                      device=device_id, directive_id=directive_id)


def submit_spread(ctx: TaskCtx, items,
                  directive_id: Optional[int] = None) -> List[Process]:
    """Spawn the chunk tasks of one spread directive.

    ``items`` is a sequence of ``(device_id, opgen, concrete_maps,
    concrete_deps, name)`` tuples.  Unlike sequential :func:`submit_op`
    calls, all chunks resolve their dependences against the *pre-directive*
    tracker state and only then register their own records: sibling chunks
    of one directive are conceptually simultaneous and must not order
    against each other — their sections may overlap (position halos) yet
    they write distinct per-device copies.
    """
    rt = ctx.rt
    tools = rt.tools
    procs: List[Process] = []
    to_register = []
    for device_id, opgen, concrete_maps, concrete_deps, name in items:
        waits, registrars = gather_entry_waits(rt, device_id, concrete_maps)
        deps = list(concrete_deps)
        if deps:
            resolved = rt.depend.resolve(deps)
            if tools:
                tools.dispatch(DEPENDENCE_RESOLVED, task=None, name=name,
                               edges=len(resolved), deps=len(deps),
                               time=rt.sim.now)
            waits = list(waits) + resolved
        if tools:
            tools.dispatch(TARGET_SUBMIT, device=device_id, name=name,
                           directive=directive_id, time=rt.sim.now)
        proc = ctx.submit(opgen, name=name, extra_waits=waits,
                          inflight_registrars=registrars,
                          device=device_id, directive_id=directive_id)
        if deps:
            to_register.append((deps, proc))
        procs.append(proc)
    for deps, proc in to_register:
        rt.depend.register(deps, proc)
    return procs
