"""Distributed power iteration — the §IX reduction clause doing real work.

Computes the dominant eigenpair of a symmetric matrix with the classic
iteration ``y = A x;  lambda = |y|;  x = y / lambda`` where the matrix rows
are spread over the devices:

* ``A`` (row-partitioned) stays **resident** for the whole solve
  (``target enter data spread`` once);
* each iteration broadcasts the current vector ``x`` to every chunk
  (``target update spread`` over a whole-vector section), runs the
  row-block mat-vec as a spread kernel, pulls each chunk's slice of ``y``
  back, and computes the norm with the cross-device **reduction clause**
  (``reductions=[Reduction("sum", ...)]``) over the freshly produced rows.

Validated against ``numpy.linalg.eigh``.  This is the "complex algorithms
that perform this kind of operations" use case the paper's §IX motivates
for the reduction clause.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.device.kernel import KernelSpec
from repro.openmp.mapping import Map, Var
from repro.openmp.runtime import OpenMPRuntime
from repro.sim.costmodel import CostModel
from repro.sim.topology import NodeTopology, cte_power_node
from repro.spread import extensions as ext
from repro.spread.reduction import Reduction
from repro.spread.schedule import spread_schedule
from repro.spread.sections import omp_spread_size as Z
from repro.spread.sections import omp_spread_start as S
from repro.spread.spread_data import (
    target_enter_data_spread,
    target_exit_data_spread,
    target_update_spread,
)
from repro.spread.spread_target import target_spread_teams_distribute_parallel_for


@dataclass(frozen=True)
class PowerIterationConfig:
    """A random symmetric test matrix with a planted dominant eigenpair."""

    n: int = 64
    iterations: int = 30
    seed: int = 7
    gap: float = 2.0  # dominant eigenvalue multiplier over the bulk

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ValueError("matrix needs n >= 4")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    def matrix(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        q, _ = np.linalg.qr(rng.standard_normal((self.n, self.n)))
        eigs = rng.uniform(0.1, 1.0, self.n)
        eigs[0] = self.gap  # dominant, well separated
        return (q * eigs) @ q.T

    def initial_vector(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 1)
        x = rng.standard_normal(self.n)
        return x / np.linalg.norm(x)


@dataclass
class PowerIterationResult:
    config: PowerIterationConfig
    devices: List[int]
    eigenvalue: float
    eigenvector: np.ndarray
    elapsed: float
    runtime: OpenMPRuntime
    stats: Dict[str, float] = field(default_factory=dict)

    def residual(self, A: np.ndarray) -> float:
        """``|A v - lambda v|`` of the computed pair."""
        return float(np.linalg.norm(
            A @ self.eigenvector - self.eigenvalue * self.eigenvector))


def run_power_iteration(config: PowerIterationConfig,
                        devices: Optional[Sequence[int]] = None,
                        topology: Optional[NodeTopology] = None,
                        cost_model: Optional[CostModel] = None,
                        trace: bool = False) -> PowerIterationResult:
    """Run the distributed power iteration; see the module docstring."""
    topo = topology if topology is not None else cte_power_node(4)
    rt = OpenMPRuntime(topology=topo, cost_model=cost_model,
                       trace_enabled=trace)
    ext.enable(rt, reduction=True)
    devs = list(devices) if devices is not None else list(range(topo.num_devices))

    n = config.n
    A = config.matrix()
    x = config.initial_vector()
    y = np.zeros(n)
    vA, vX, vY = Var("A", A), Var("x", x), Var("y", y)
    norm_sq = Var("norm_sq", np.zeros(1))
    chunk = math.ceil(n / len(devs))
    sched = spread_schedule("static", chunk)
    whole_vec = (0, n)  # constant section: every chunk maps the full vector

    def matvec_body(lo, hi, env):
        a, xx, yy = env["A"], env["x"], env["y"]
        yy[lo:hi] = a[lo:hi] @ xx[0:n]

    def normsq_body(lo, hi, env):
        env["norm_sq"][0] += float((env["y"][lo:hi] ** 2).sum())

    matvec = KernelSpec("matvec", matvec_body, work_per_iter=float(2 * n))
    normsq = KernelSpec("norm-sq", normsq_body, work_per_iter=float(n))

    eigenvalue = 0.0

    def program(omp):
        nonlocal eigenvalue
        # the matrix rows and the output slice stay resident; x is mapped
        # whole on every device (it is read in full by every row block)
        yield from target_enter_data_spread(
            omp, devices=devs, range_=(0, n), chunk_size=chunk,
            maps=[Map.to(vA, (S, Z)), Map.alloc(vY, (S, Z)),
                  Map.to(vX, whole_vec)])
        for _ in range(config.iterations):
            # broadcast the current x to every device's copy
            yield from target_update_spread(
                omp, devices=devs, range_=(0, n), chunk_size=chunk,
                to=[(vX, whole_vec)])
            # distributed mat-vec over the row blocks
            yield from target_spread_teams_distribute_parallel_for(
                omp, matvec, 0, n, devs, schedule=sched,
                maps=[Map.to(vA, (S, Z)), Map.to(vX, whole_vec),
                      Map.from_(vY, (S, Z))])
            # cross-device reduction clause: |y|^2
            norm_sq.array[0] = 0.0
            yield from target_spread_teams_distribute_parallel_for(
                omp, normsq, 0, n, devs, schedule=sched,
                maps=[Map.to(vY, (S, Z))],
                reductions=[Reduction("sum", norm_sq)])
            # pull y, normalize on the host, loop
            yield from target_update_spread(
                omp, devices=devs, range_=(0, n), chunk_size=chunk,
                from_=[(vY, (S, Z))])
            eigenvalue = math.sqrt(norm_sq.array[0])
            x[:] = y / eigenvalue
        yield from target_exit_data_spread(
            omp, devices=devs, range_=(0, n), chunk_size=chunk,
            maps=[Map.release(vA, (S, Z)), Map.release(vY, (S, Z)),
                  Map.release(vX, whole_vec)])

    rt.run(program)

    stats = {
        "h2d_bytes": sum(rt.devices[d].h2d_bytes for d in devs),
        "d2h_bytes": sum(rt.devices[d].d2h_bytes for d in devs),
        "memcpy_calls": sum(rt.devices[d].memcpy_calls for d in devs),
        "kernels_launched": sum(rt.devices[d].kernels_launched for d in devs),
    }
    return PowerIterationResult(config=config, devices=devs,
                                eigenvalue=eigenvalue, eigenvector=x.copy(),
                                elapsed=rt.elapsed, runtime=rt, stats=stats)
