"""2-D Jacobi heat diffusion over spread directives, two ways.

Somier (the paper's workload) remaps every buffer on every use because the
problem exceeds device memory.  Jacobi represents the complementary — and
very common — regime: the grid *fits*, so the data-management strategy is a
free choice:

* ``strategy="resident"`` — map both ping-pong buffers once
  (``target enter data spread`` with halos), then per iteration run the
  stencil and exchange **only the halo rows** through
  ``target update spread`` (Listing 7 doing real work: one ``from`` of
  each chunk's fresh rows, two one-row ``to`` pushes per chunk);
* ``strategy="remap"`` — Somier-style: ``target enter data spread`` /
  compute / ``target exit data spread`` around every iteration, paying the
  full grid both ways each time.

Both produce bit-for-bit the result of a plain NumPy Jacobi loop; the
benchmark quantifies the traffic and time gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.device.kernel import KernelSpec
from repro.openmp.mapping import Map, Var
from repro.openmp.runtime import OpenMPRuntime
from repro.sim.costmodel import CostModel
from repro.sim.topology import NodeTopology, cte_power_node
from repro.spread.schedule import spread_schedule
from repro.spread.sections import omp_spread_size as Z
from repro.spread.sections import omp_spread_start as S
from repro.spread.spread_data import (
    target_enter_data_spread,
    target_exit_data_spread,
    target_update_spread,
)
from repro.spread.spread_target import (
    target_spread_teams_distribute_parallel_for,
)
from repro.util.errors import OmpRuntimeError

_STRATEGIES = ("resident", "remap")


@dataclass(frozen=True)
class JacobiConfig:
    """Problem setup: an ``n x n`` grid with a hot top edge."""

    n: int = 64
    iterations: int = 20
    hot_value: float = 100.0

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ValueError("Jacobi grid needs n >= 4")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    def initial_grid(self) -> np.ndarray:
        u = np.zeros((self.n, self.n))
        u[0, :] = self.hot_value
        return u

    def reference(self) -> np.ndarray:
        """The plain single-array NumPy solver."""
        n = self.n
        u = self.initial_grid()
        v = u.copy()
        for _ in range(self.iterations):
            v[1:n - 1, 1:n - 1] = 0.25 * (u[0:n - 2, 1:n - 1]
                                          + u[2:n, 1:n - 1]
                                          + u[1:n - 1, 0:n - 2]
                                          + u[1:n - 1, 2:n])
            u, v = v, u
        return u


@dataclass
class JacobiResult:
    config: JacobiConfig
    strategy: str
    devices: List[int]
    grid: np.ndarray
    elapsed: float
    runtime: OpenMPRuntime
    stats: Dict[str, float] = field(default_factory=dict)


def _stencil_kernel(n: int, src_name: str, dst_name: str) -> KernelSpec:
    def body(lo, hi, env, s=src_name, d=dst_name):
        u, v = env[s], env[d]
        v[lo:hi, 1:n - 1] = 0.25 * (u[lo - 1:hi - 1, 1:n - 1]
                                    + u[lo + 1:hi + 1, 1:n - 1]
                                    + u[lo:hi, 0:n - 2]
                                    + u[lo:hi, 2:n])

    return KernelSpec("jacobi", body, work_per_iter=float(n) * 4.0)


def run_jacobi(config: JacobiConfig,
               strategy: str = "resident",
               devices: Optional[Sequence[int]] = None,
               topology: Optional[NodeTopology] = None,
               cost_model: Optional[CostModel] = None,
               trace: bool = False) -> JacobiResult:
    """Solve the heat equation with the chosen data-management strategy."""
    if strategy not in _STRATEGIES:
        raise OmpRuntimeError(
            f"unknown Jacobi strategy {strategy!r} "
            f"(available: {_STRATEGIES})")
    topo = topology if topology is not None else cte_power_node(4)
    rt = OpenMPRuntime(topology=topo, cost_model=cost_model,
                       trace_enabled=trace)
    devs = list(devices) if devices is not None else list(range(topo.num_devices))

    n = config.n
    U = config.initial_grid()
    V = U.copy()
    vU, vV = Var("U", U), Var("V", V)
    chunk = math.ceil((n - 2) / len(devs))
    range_ = (1, n - 2)
    sched = spread_schedule("static", chunk)
    halo = (S - 1, Z + 2)
    exact = (S, Z)

    def resident_program(omp):
        yield from target_enter_data_spread(
            omp, devices=devs, range_=range_, chunk_size=chunk,
            maps=[Map.to(vU, halo), Map.to(vV, halo)])
        src, dst = vU, vV
        for _ in range(config.iterations):
            yield from target_spread_teams_distribute_parallel_for(
                omp, _stencil_kernel(n, src.name, dst.name), 1, n - 1,
                devs, schedule=sched,
                maps=[Map.to(src, halo), Map.to(dst, halo)])
            # true halo exchange: pull only each chunk's two EDGE rows to
            # the host, then push each chunk's two HALO rows back down —
            # O(rows) traffic per iteration instead of O(grid)
            yield from target_update_spread(
                omp, devices=devs, range_=range_, chunk_size=chunk,
                from_=[(dst, (S, 1))])
            yield from target_update_spread(
                omp, devices=devs, range_=range_, chunk_size=chunk,
                from_=[(dst, (S + Z - 1, 1))])
            yield from target_update_spread(
                omp, devices=devs, range_=range_, chunk_size=chunk,
                to=[(dst, (S - 1, 1))])
            yield from target_update_spread(
                omp, devices=devs, range_=range_, chunk_size=chunk,
                to=[(dst, (S + Z, 1))])
            src, dst = dst, src
        # src holds the final field after the last swap: copy its rows
        # back; the scratch buffer is just released
        yield from target_exit_data_spread(
            omp, devices=devs, range_=range_, chunk_size=chunk,
            maps=[Map.from_(src, exact), Map.release(dst, halo)])

    def remap_program(omp):
        src, dst = vU, vV
        for _ in range(config.iterations):
            # dst must be copied in too: the stencil leaves its boundary
            # columns untouched and the exit copies whole rows back
            yield from target_enter_data_spread(
                omp, devices=devs, range_=range_, chunk_size=chunk,
                maps=[Map.to(src, halo), Map.to(dst, exact)])
            yield from target_spread_teams_distribute_parallel_for(
                omp, _stencil_kernel(n, src.name, dst.name), 1, n - 1,
                devs, schedule=sched,
                maps=[Map.to(src, halo), Map.to(dst, exact)])
            yield from target_exit_data_spread(
                omp, devices=devs, range_=range_, chunk_size=chunk,
                maps=[Map.release(src, halo), Map.from_(dst, exact)])
            src, dst = dst, src

    rt.run(resident_program if strategy == "resident" else remap_program)

    result_grid = U if config.iterations % 2 == 0 else V
    stats = {
        "h2d_bytes": sum(rt.devices[d].h2d_bytes for d in devs),
        "d2h_bytes": sum(rt.devices[d].d2h_bytes for d in devs),
        "memcpy_calls": sum(rt.devices[d].memcpy_calls for d in devs),
        "kernels_launched": sum(rt.devices[d].kernels_launched for d in devs),
    }
    return JacobiResult(config=config, strategy=strategy, devices=devs,
                        grid=result_grid, elapsed=rt.elapsed, runtime=rt,
                        stats=stats)
