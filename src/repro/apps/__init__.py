"""Additional workloads built on the spread directives.

The paper evaluates one mini-app (Somier, `repro.somier`).  This package
holds further workloads that exercise different directive usage patterns —
currently :mod:`repro.apps.jacobi`, a 2-D heat-diffusion solver comparing
*data-resident* halo exchange (``target update spread``) against
*per-iteration remapping* (``target enter/exit data spread``).
"""

from repro.apps.jacobi import JacobiConfig, JacobiResult, run_jacobi
from repro.apps.power_iteration import (
    PowerIterationConfig,
    PowerIterationResult,
    run_power_iteration,
)

__all__ = [
    "JacobiConfig",
    "JacobiResult",
    "run_jacobi",
    "PowerIterationConfig",
    "PowerIterationResult",
    "run_power_iteration",
]
