"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``somier``   — run one Somier experiment and print the result
                 (implementation, device count, optional extensions, trace);
* ``stats``    — run a Somier experiment with the metrics tool attached and
                 print the per-directive / per-device profiling report;
* ``analyze``  — run a Somier experiment with the causal recorder attached
                 and print the critical-path / bottleneck-attribution /
                 what-if report (``--json`` for the machine-readable
                 ``repro-critpath-1`` payload);
* ``table1``   — regenerate the paper's Table I;
* ``table2``   — regenerate the paper's Table II;
* ``listing3`` — print the chunk distribution of the paper's worked example
                 for a given range/chunk/device list;
* ``check``    — parse + semantically check a pragma string (a tiny
                 "compiler driver" exposing the frontend diagnostics);
* ``lint``     — run the spreadlint static analyzer over ``.omp`` program
                 listings; ``--machine`` pins the shape, ``--sarif``
                 writes a code-scanning report, and ``machine *``
                 programs get a machine-parametric (∀N) verdict
                 (see docs/static-analysis.md);
* ``lint-fuzz`` — differential verification: seeded random programs,
                 static linter vs the runtime race sanitizer across
                 machine shapes; exits nonzero on any unsound
                 disagreement.

Exit codes follow compiler-driver convention: 0 on success (or
warnings-only lint), 1 when any error diagnostic is emitted, 2 on usage
errors.

Examples::

    python -m repro somier --impl one_buffer --gpus 4 --steps 8 --trace
    python -m repro somier --steps 2 --profile --trace-json /tmp/t.json
    python -m repro somier --steps 2 --sanitize
    python -m repro stats --impl one_buffer --gpus 4
    python -m repro analyze --gpus 4 --json
    python -m repro analyze --gpus 4 --trace-json /tmp/flow.json
    python -m repro table1 --n-functional 64
    python -m repro listing3 --lo 1 --hi 13 --chunk 4 --devices 2,0,1
    python -m repro check "omp target spread devices(0,1) nowait"
    python -m repro lint examples/omp tests/fixtures/lint/good
    python -m repro lint --expect tests/fixtures/lint/bad
    python -m repro lint --machine cluster:2x2 --json examples/omp
    python -m repro lint --sarif lint.sarif examples/omp
    python -m repro lint-fuzz --seed 0 --count 200
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bench import harness, machines
from repro.sim.topology import MACHINE_ENV
from repro.somier import SomierState, run_reference, run_somier
from repro.spread.schedule import StaticSchedule
from repro.util import envknobs
from repro.util.errors import OmpError, OmpRuntimeError
from repro.util.format import format_hms, format_table


def _devices_arg(text: str) -> List[int]:
    try:
        return [int(x) for x in text.split(",") if x != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"devices must be a comma-separated id list, got {text!r}")


def _resolve_machine(args):
    """(topology, cost model, devices) for a run.

    ``--machine`` wins, then an explicit ``--gpus``, then
    ``$REPRO_MACHINE``, then the 4-GPU paper node.  With a machine spec
    the devices clause defaults to every device in id order
    (``--devices`` still overrides).
    """
    spec = getattr(args, "machine", None)
    if spec is None and args.gpus is None:
        spec = envknobs.env_raw(MACHINE_ENV)
    if spec is not None:
        try:
            topo, cm = machines.machine_for_spec(
                spec, n_functional=args.n_functional)
        except ValueError as err:
            raise OmpRuntimeError(str(err)) from err
        devices = args.devices if args.devices else list(
            range(topo.num_devices))
    else:
        gpus = args.gpus if args.gpus is not None else 4
        topo, cm = machines.paper_machine(gpus,
                                          n_functional=args.n_functional)
        devices = (args.devices if args.devices
                   else machines.paper_devices(gpus))
    return topo, cm, devices


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated multi-device OpenMP: the target spread "
                    "directive set (Torres et al., IPDPS-W 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("somier", help="run one Somier experiment")
    p.add_argument("--impl", default="one_buffer",
                   choices=["target", "one_buffer", "two_buffers",
                            "double_buffering"])
    p.add_argument("--gpus", type=int, default=None, choices=[1, 2, 3, 4],
                   help="paper-node GPU count (default 4); giving it "
                        "explicitly overrides $REPRO_MACHINE")
    p.add_argument("--machine", metavar="SPEC", default=None,
                   help="simulated machine: 'cte-power[:N]' or "
                        "'cluster:NxM' (N nodes x M GPUs; overrides "
                        "--gpus; default: $REPRO_MACHINE or the "
                        "CTE-POWER node) — see docs/cluster.md")
    p.add_argument("--devices", type=_devices_arg, default=None,
                   help="explicit device order, e.g. 1,0,3,2")
    p.add_argument("--n-functional", type=int, default=48,
                   help="functional grid edge standing in for 1200")
    p.add_argument("--steps", type=int, default=8)
    p.add_argument("--data-depend", action="store_true",
                   help="enable the §IX depend-on-data-directives extension")
    p.add_argument("--fuse-transfers", action="store_true",
                   help="coalesce each chunk's memcpys into one call")
    p.add_argument("--no-plan-cache", action="store_true",
                   help="disable spread launch-plan caching (replay); "
                        "every directive takes the full lowering path")
    p.add_argument("--no-macro-ops", action="store_true",
                   help="keep the plan cache but disable macro-op replay "
                        "(compiled flat replay programs for cache hits; "
                        "default: $REPRO_MACRO_OPS or on)")
    p.add_argument("--no-fused-timeline", action="store_true",
                   help="keep macro replay but run chunks as generator "
                        "processes instead of fused timeline walkers "
                        "(default: $REPRO_FUSED_TIMELINE or on)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="size of the parallel host execution backend "
                        "(real kernel/memcpy work on N threads; default: "
                        "$REPRO_WORKERS or 1 = serial). Results and traces "
                        "are identical for any N.")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject seeded faults, e.g. 'transfer:0.01' or "
                        "'device@1:#3' (default: $REPRO_FAULTS or off); "
                        "see docs/robustness.md")
    p.add_argument("--fault-seed", type=int, default=None, metavar="N",
                   help="fault-injection RNG seed (default: "
                        "$REPRO_FAULT_SEED or 0)")
    p.add_argument("--sanitize", nargs="?", const="on", default=None,
                   choices=["on", "strict"], metavar="MODE",
                   help="enable the interval race sanitizer (MODE 'strict' "
                        "also fails the run on races; default: "
                        "$REPRO_SANITIZE or off)")
    p.add_argument("--analyze", action="store_true",
                   help="attach the causal recorder and print the "
                        "parallelism-slackness line (implies tracing; see "
                        "'repro analyze' for the full report)")
    p.add_argument("--trace", action="store_true",
                   help="print an ASCII timeline of the run")
    p.add_argument("--verify", action="store_true",
                   help="check the result against the sequential reference")
    p.add_argument("--profile", action="store_true",
                   help="attach the metrics tool and print the "
                        "per-directive/per-device profiling report")
    p.add_argument("--trace-json", metavar="PATH", default=None,
                   help="write the Chrome-trace JSON (with nested "
                        "directive spans when profiling) to PATH")
    p.add_argument("--metrics-json", metavar="PATH", default=None,
                   help="write the profile report JSON to PATH")

    p = sub.add_parser("stats",
                       help="run Somier with the metrics tool and print "
                            "the profiling report")
    p.add_argument("--impl", default="one_buffer",
                   choices=["target", "one_buffer", "two_buffers",
                            "double_buffering"])
    p.add_argument("--gpus", type=int, default=None, choices=[1, 2, 3, 4],
                   help="paper-node GPU count (default 4); giving it "
                        "explicitly overrides $REPRO_MACHINE")
    p.add_argument("--machine", metavar="SPEC", default=None,
                   help="simulated machine: 'cte-power[:N]' or "
                        "'cluster:NxM' (N nodes x M GPUs; overrides "
                        "--gpus; default: $REPRO_MACHINE or the "
                        "CTE-POWER node) — see docs/cluster.md")
    p.add_argument("--devices", type=_devices_arg, default=None)
    p.add_argument("--n-functional", type=int, default=48)
    p.add_argument("--steps", type=int, default=8)
    p.add_argument("--data-depend", action="store_true")
    p.add_argument("--fuse-transfers", action="store_true")
    p.add_argument("--no-plan-cache", action="store_true")
    p.add_argument("--no-macro-ops", action="store_true",
                   help="disable macro-op replay of plan-cache hits "
                        "(default: $REPRO_MACRO_OPS or on)")
    p.add_argument("--no-fused-timeline", action="store_true",
                   help="disable fused-timeline walkers "
                        "(default: $REPRO_FUSED_TIMELINE or on)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="parallel host backend width (default: "
                        "$REPRO_WORKERS or 1)")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject seeded faults (default: $REPRO_FAULTS "
                        "or off)")
    p.add_argument("--fault-seed", type=int, default=None, metavar="N",
                   help="fault-injection RNG seed (default: "
                        "$REPRO_FAULT_SEED or 0)")
    p.add_argument("--sanitize", nargs="?", const="on", default=None,
                   choices=["on", "strict"], metavar="MODE",
                   help="enable the interval race sanitizer (default: "
                        "$REPRO_SANITIZE or off)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text tables")
    p.add_argument("--full", action="store_true",
                   help="also print the raw metrics catalogue")

    p = sub.add_parser("analyze",
                       help="run Somier with the causal recorder and print "
                            "the critical-path / bottleneck report")
    p.add_argument("--impl", default="one_buffer",
                   choices=["target", "one_buffer", "two_buffers",
                            "double_buffering"])
    p.add_argument("--gpus", type=int, default=None, choices=[1, 2, 3, 4],
                   help="paper-node GPU count (default 4); giving it "
                        "explicitly overrides $REPRO_MACHINE")
    p.add_argument("--machine", metavar="SPEC", default=None,
                   help="simulated machine: 'cte-power[:N]' or "
                        "'cluster:NxM' (N nodes x M GPUs; overrides "
                        "--gpus; default: $REPRO_MACHINE or the "
                        "CTE-POWER node) — see docs/cluster.md")
    p.add_argument("--devices", type=_devices_arg, default=None)
    p.add_argument("--n-functional", type=int, default=48)
    p.add_argument("--steps", type=int, default=8)
    p.add_argument("--data-depend", action="store_true")
    p.add_argument("--fuse-transfers", action="store_true")
    p.add_argument("--no-plan-cache", action="store_true")
    p.add_argument("--no-macro-ops", action="store_true",
                   help="disable macro-op replay of plan-cache hits "
                        "(default: $REPRO_MACRO_OPS or on)")
    p.add_argument("--no-fused-timeline", action="store_true",
                   help="disable fused-timeline walkers "
                        "(default: $REPRO_FUSED_TIMELINE or on)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="parallel host backend width (default: "
                        "$REPRO_WORKERS or 1)")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject seeded faults (default: $REPRO_FAULTS "
                        "or off)")
    p.add_argument("--fault-seed", type=int, default=None, metavar="N",
                   help="fault-injection RNG seed (default: "
                        "$REPRO_FAULT_SEED or 0)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro-critpath-1 JSON payload instead of "
                        "the text report")
    p.add_argument("--top", type=int, default=8, metavar="N",
                   help="path segments / stragglers listed in the text "
                        "report (default: 8)")
    p.add_argument("--trace-json", metavar="PATH", default=None,
                   help="write the Chrome-trace JSON with causal flow "
                        "arrows (Perfetto renders them as s/f arrows) "
                        "to PATH")

    for name, help_text in (("table1", "regenerate the paper's Table I"),
                            ("table2", "regenerate the paper's Table II")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--n-functional", type=int, default=96)
        p.add_argument("--steps", type=int, default=machines.PAPER_STEPS)

    p = sub.add_parser("listing3",
                       help="print a static spread distribution")
    p.add_argument("--lo", type=int, default=1)
    p.add_argument("--hi", type=int, default=13)
    p.add_argument("--chunk", type=int, default=4)
    p.add_argument("--devices", type=_devices_arg, default=[2, 0, 1])

    p = sub.add_parser("check", help="parse + check a pragma string")
    p.add_argument("pragma", help="the directive text (quote it)")
    p.add_argument("--extensions", type=str, default="",
                   help="comma-separated extension flags to enable "
                        "(data_depend,schedules,reduction)")

    p = sub.add_parser("lint",
                       help="run the spreadlint static analyzer over "
                            ".omp program listings")
    p.add_argument("paths", nargs="+", metavar="PATH",
                   help=".omp files, or directories scanned recursively")
    p.add_argument("--json", action="store_true",
                   help="emit diagnostics as JSON")
    p.add_argument("--expect", action="store_true",
                   help="fixture mode: every file must emit (at least) the "
                        "codes its '// expect: SL...' comments announce; "
                        "files without annotations must lint clean")
    p.add_argument("--machine", metavar="SPEC", default=None,
                   help="lint for this machine: 'cluster:NxM', "
                        "'cte-power[:N]' or 'gpus:N' (overrides any "
                        "'machine' statement in the file; default: "
                        "$REPRO_MACHINE, else the file's own statement, "
                        "else the 4-GPU CTE-POWER node)")
    p.add_argument("--sarif", metavar="FILE", default=None,
                   help="also write the diagnostics as a SARIF 2.1.0 "
                        "report to FILE ('-' for stdout) for "
                        "code-scanning upload")

    p = sub.add_parser("lint-fuzz",
                       help="differential verification: seeded random .omp "
                            "programs, static linter vs runtime race "
                            "sanitizer across machine shapes")
    p.add_argument("--seed", type=int, default=0,
                   help="base RNG seed (program i uses seed+i; default 0)")
    p.add_argument("--count", type=int, default=50,
                   help="number of random programs to check (default 50)")
    p.add_argument("--json", action="store_true",
                   help="emit the per-program comparison as JSON")

    p = sub.add_parser("machine",
                       help="describe the calibrated simulated node")
    p.add_argument("--gpus", type=int, default=None, choices=[1, 2, 3, 4],
                   help="paper-node GPU count (default 4); giving it "
                        "explicitly overrides $REPRO_MACHINE")
    p.add_argument("--machine", metavar="SPEC", default=None,
                   help="simulated machine: 'cte-power[:N]' or "
                        "'cluster:NxM' (N nodes x M GPUs; overrides "
                        "--gpus; default: $REPRO_MACHINE or the "
                        "CTE-POWER node) — see docs/cluster.md")

    return parser


def cmd_somier(args) -> int:
    from repro.obs import Profiler

    topo, cm, devices = _resolve_machine(args)
    cfg = machines.paper_somier_config(n_functional=args.n_functional,
                                       steps=args.steps)
    profiling = args.profile or args.trace_json or args.metrics_json
    prof = Profiler() if profiling else None
    res = run_somier(args.impl, cfg, devices=devices, topology=topo,
                     cost_model=cm, data_depend=args.data_depend,
                     fuse_transfers=args.fuse_transfers,
                     trace=args.trace or bool(args.trace_json),
                     plan_cache=not args.no_plan_cache,
                     macro_ops=False if args.no_macro_ops else None,
                     fused_timeline=(False if args.no_fused_timeline
                                     else None),
                     workers=args.workers,
                     faults=args.faults, fault_seed=args.fault_seed,
                     sanitize=args.sanitize,
                     analyze=args.analyze or None,
                     tools=prof.tools if prof else ())
    print(f"{args.impl} on {len(devices)} device(s) {devices}: "
          f"{format_hms(res.elapsed)} virtual")
    print(f"plan: {res.plan.num_buffers} buffer(s) x "
          f"{res.plan.rows_per_buffer} rows (chunk {res.plan.chunk_rows})")
    print(f"traffic: {res.stats['h2d_bytes'] / 1e9:.1f} GB H2D, "
          f"{res.stats['d2h_bytes'] / 1e9:.1f} GB D2H in "
          f"{res.stats['memcpy_calls']} memcpys; "
          f"{res.stats['kernels_launched']} kernels")
    centers = res.centers[-1]
    print(f"final centers: ({centers[0]:.6f}, {centers[1]:.6f}, "
          f"{centers[2]:.6f})")
    if res.runtime.sanitizer is not None:
        print(res.runtime.sanitizer.summary())
    if res.runtime.causal is not None:
        print(res.runtime.analysis().summary_line())
    if args.verify:
        import numpy as np

        buffers = (res.plan.buffers if args.impl in ("target", "one_buffer")
                   else res.plan.halves())
        ref = SomierState(cfg)
        run_reference(ref, buffers)
        exact = all(np.array_equal(res.state.grids[k], ref.grids[k])
                    for k in ref.grids)
        worst = max(abs(res.state.grids[k] - ref.grids[k]).max()
                    for k in ref.grids)
        print(f"verification vs sequential reference: "
              f"{'bitwise identical' if exact else f'max deviation {worst:.3e}'}")
    if args.trace:
        print()
        print(res.runtime.trace.to_ascii(width=100))
    if prof is not None:
        report = prof.report(makespan=res.elapsed)
        if args.profile:
            print()
            print(report.render_text())
        if args.trace_json:
            flows = (res.runtime.analysis().flow_records()
                     if res.runtime.causal is not None else ())
            with open(args.trace_json, "w") as f:
                f.write(prof.chrome_trace(res.runtime.trace,
                                          extra_records=flows))
            print(f"chrome trace written to {args.trace_json}")
        if args.metrics_json:
            with open(args.metrics_json, "w") as f:
                f.write(report.to_json(indent=2))
            print(f"profile JSON written to {args.metrics_json}")
    return 0


def cmd_stats(args) -> int:
    from repro.obs import Profiler

    topo, cm, devices = _resolve_machine(args)
    cfg = machines.paper_somier_config(n_functional=args.n_functional,
                                       steps=args.steps)
    prof = Profiler()
    res = run_somier(args.impl, cfg, devices=devices, topology=topo,
                     cost_model=cm, data_depend=args.data_depend,
                     fuse_transfers=args.fuse_transfers,
                     plan_cache=not args.no_plan_cache,
                     macro_ops=False if args.no_macro_ops else None,
                     fused_timeline=(False if args.no_fused_timeline
                                     else None),
                     workers=args.workers,
                     faults=args.faults, fault_seed=args.fault_seed,
                     sanitize=args.sanitize, analyze=True,
                     tools=prof.tools)
    analysis = res.runtime.analysis()
    report = prof.report(makespan=res.elapsed,
                         critpath=analysis.headline())
    if args.json:
        print(report.to_json(indent=2))
        return 0
    print(f"{args.impl} on {len(devices)} device(s) {devices}: "
          f"{format_hms(res.elapsed)} virtual")
    print()
    print(report.render_text())
    print(analysis.summary_line())
    if args.full:
        print()
        print(prof.registry.render_text())
    return 0


def cmd_analyze(args) -> int:
    from repro.obs import Profiler

    topo, cm, devices = _resolve_machine(args)
    cfg = machines.paper_somier_config(n_functional=args.n_functional,
                                       steps=args.steps)
    prof = Profiler() if args.trace_json else None
    res = run_somier(args.impl, cfg, devices=devices, topology=topo,
                     cost_model=cm, data_depend=args.data_depend,
                     fuse_transfers=args.fuse_transfers,
                     plan_cache=not args.no_plan_cache,
                     macro_ops=False if args.no_macro_ops else None,
                     fused_timeline=(False if args.no_fused_timeline
                                     else None),
                     workers=args.workers,
                     faults=args.faults, fault_seed=args.fault_seed,
                     analyze=True,
                     tools=prof.tools if prof else ())
    analysis = res.runtime.analysis()
    if args.trace_json:
        # span forest (pid 1) + causal flow arrows, like somier --trace-json
        with open(args.trace_json, "w") as f:
            f.write(prof.chrome_trace(res.runtime.trace,
                                      extra_records=analysis.flow_records()))
    if args.json:
        print(analysis.to_json(indent=2))
        return 0
    print(f"{args.impl} on {len(devices)} device(s) {devices}: "
          f"{format_hms(res.elapsed)} virtual")
    print()
    print(analysis.render_text(top=args.top))
    if args.trace_json:
        print(f"chrome trace written to {args.trace_json}")
    return 0


def cmd_table(args, table: int) -> int:
    run = harness.run_table1 if table == 1 else harness.run_table2
    exps = run(n_functional=args.n_functional, steps=args.steps)
    print(harness.format_experiments(
        exps, f"TABLE {'I' if table == 1 else 'II'} "
              f"(functional {args.n_functional}^3, {args.steps} steps)"))
    return 0


def cmd_listing3(args) -> int:
    chunks = StaticSchedule(args.chunk).chunks(args.lo, args.hi,
                                               args.devices)
    rows = [(f"{c.interval.start}..{c.interval.stop - 1}", c.device)
            for c in chunks]
    print(format_table(["iterations", "device"], rows))
    return 0


def cmd_check(args) -> int:
    from repro.pragma import check_directive, parse_pragma, unparse_directive
    from repro.spread.extensions import Extensions

    flags = {f: True for f in args.extensions.split(",") if f}
    try:
        ext = Extensions(**flags)
    except TypeError:
        print(f"unknown extension in {args.extensions!r}", file=sys.stderr)
        return 2
    try:
        directive = parse_pragma(args.pragma)
        check_directive(directive, extensions=ext)
    except OmpError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    print(f"OK: {directive.kind.value}")
    print(f"normalized: {unparse_directive(directive)}")
    return 0


def _sarif_report(entries) -> dict:
    """Render ``(path, diagnostics)`` pairs as a SARIF 2.1.0 report."""
    from repro.analysis.diagnostics import CATALOG, Severity

    levels = {Severity.ERROR: "error", Severity.WARNING: "warning"}
    rules = [{"id": code,
              "shortDescription": {"text": summary},
              "defaultConfiguration": {"level": levels.get(sev, "note")}}
             for code, (sev, summary) in sorted(CATALOG.items())]
    results = []
    for fpath, diags in entries:
        for d in diags:
            region = {"startLine": max(d.line, 1)}
            if d.offset is not None:
                region["startColumn"] = d.offset + 1
                if d.length:
                    region["endColumn"] = d.offset + 1 + d.length
            results.append({
                "ruleId": d.code,
                "level": levels.get(d.severity, "note"),
                "message": {"text": d.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": fpath.replace("\\", "/")},
                    "region": region}}]})
    return {"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{"tool": {"driver": {"name": "spreadlint",
                                          "rules": rules}},
                      "results": results}]}


def cmd_lint(args) -> int:
    import json as json_mod
    import os

    from repro.analysis.diagnostics import Severity
    from repro.analysis.linter import lint_machine_for
    from repro.analysis.program import parse_program
    from repro.analysis.symbolic import lint_source_verdict

    machine = args.machine or envknobs.env_raw(MACHINE_ENV)
    if machine is not None:
        try:
            lint_machine_for(machine)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2

    files: List[str] = []
    for path in args.paths:
        if os.path.isdir(path):
            found = sorted(
                os.path.join(root, fn)
                for root, _dirs, fns in os.walk(path)
                for fn in fns if fn.endswith(".omp"))
            if not found:
                print(f"error: no .omp files under {path!r}", file=sys.stderr)
                return 2
            files.extend(found)
        elif os.path.isfile(path):
            files.append(path)
        else:
            print(f"error: no such file or directory: {path!r}",
                  file=sys.stderr)
            return 2

    exit_code = 0
    payload = []
    sarif_entries = []
    errors = warnings = 0
    for fpath in files:
        with open(fpath) as f:
            source = f.read()
        verdict = lint_source_verdict(source, path=fpath, machine=machine)
        diags = verdict.diagnostics
        emitted = {d.code for d in diags}
        errors += sum(1 for d in diags if d.severity is Severity.ERROR)
        warnings += sum(1 for d in diags if d.severity is Severity.WARNING)
        entry = {"path": fpath,
                 "verdict": verdict.to_dict(),
                 "diagnostics": [d.to_dict() for d in diags]}
        sarif_entries.append((fpath, diags))
        if args.expect:
            program, _ = parse_program(source, path=fpath)
            expected = set(program.expected_codes)
            missing = sorted(expected - emitted)
            # A file with annotations must emit every announced code; a
            # file without them must lint completely clean.
            ok = not missing if expected else not diags
            entry["expected"] = sorted(expected)
            entry["ok"] = ok
            if not ok:
                exit_code = 1
            if not args.json:
                if ok:
                    detail = (f"emits {', '.join(sorted(expected))}"
                              if expected else "clean")
                    print(f"PASS {fpath}: {detail}")
                elif missing:
                    print(f"FAIL {fpath}: missing expected "
                          f"{', '.join(missing)} (emitted: "
                          f"{', '.join(sorted(emitted)) or 'none'})")
                else:
                    print(f"FAIL {fpath}: expected a clean program, got "
                          f"{', '.join(sorted(emitted))}")
                    for diag in diags:
                        print(diag.render())
        else:
            if not verdict.clean:
                exit_code = 1
            if not args.json:
                for diag in diags:
                    print(diag.render())
                if verdict.forall:
                    state = "race-free" if verdict.clean else "findings hold"
                    print(f"{fpath}: verified ∀N: {state} for "
                          f"{verdict.universe} [{verdict.proof}]")
                for note in verdict.notes:
                    print(f"{fpath}: note: {note}")
        payload.append(entry)
    if args.sarif:
        sarif = json_mod.dumps(_sarif_report(sarif_entries), indent=2)
        if args.sarif == "-":
            print(sarif)
        else:
            with open(args.sarif, "w") as f:
                f.write(sarif + "\n")
    if args.json:
        print(json_mod.dumps({"files": payload, "errors": errors,
                              "warnings": warnings}, indent=2))
    elif not args.expect:
        print(f"{len(files)} file(s): {errors} error(s), "
              f"{warnings} warning(s)")
    return exit_code


def cmd_lint_fuzz(args) -> int:
    import json as json_mod

    from repro.analysis.diffcheck import run_diffcheck

    summary = run_diffcheck(seed=args.seed, count=args.count)
    if args.json:
        print(json_mod.dumps({
            "seed": args.seed,
            "count": summary.count,
            "shapes": summary.shapes,
            "unsound": [{"seed": r.seed, "source": r.source,
                         "outcomes": [o.to_dict() for o in r.outcomes]}
                        for r in summary.unsound],
            "imprecise_seeds": [r.seed for r in summary.imprecise],
            "ok": summary.ok,
        }, indent=2))
    else:
        print(summary.render())
    return 0 if summary.ok else 1


def cmd_machine(args) -> int:
    from repro.util.format import format_bytes

    spec = args.machine
    if spec is None and args.gpus is None:
        spec = envknobs.env_raw(MACHINE_ENV)
    if spec is not None:
        try:
            topo, cm = machines.machine_for_spec(spec)
        except ValueError as err:
            raise OmpRuntimeError(str(err)) from err
    else:
        topo, cm = machines.paper_machine(
            args.gpus if args.gpus is not None else 4)
    if getattr(topo, "num_nodes", 1) > 1:
        net = topo.network_spec
        print(f"cluster of {topo.num_nodes} node(s), "
              f"{topo.num_devices} device(s) total")
        print(f"  network (per non-root node): "
              f"{net.bandwidth_bytes_per_s / 1e9:.1f} GB/s, "
              f"per-message latency {net.per_message_latency * 1e6:.1f} us")
        for n in range(topo.num_nodes):
            print(f"  node {n}: devices {topo.node_devices(n)}"
                  f"{' (root: hosts the arrays)' if n == 0 else ''}")
        sockets = [(s, devs) for s, devs in enumerate(topo.sockets)
                   if topo.node_of(devs[0]) == 0]
    else:
        print(f"CTE-POWER-like node, {topo.num_devices} device(s), "
              f"{len(topo.sockets)} socket(s)")
        sockets = list(enumerate(topo.sockets))
    for s, devs in sockets:
        link = topo.link_specs[s]
        print(f"  socket {s}: devices {devs}, link "
              f"{link.bandwidth_bytes_per_s / 1e9:.1f} GB/s, "
              f"per-call latency {link.per_call_latency * 1e6:.0f} us")
    host = topo.host_spec
    print(f"  host staging (shared): "
          f"{host.staging_bandwidth_bytes_per_s / 1e9:.1f} GB/s")
    spec = topo.device_specs[0]
    print(f"  device: {spec.name}, {format_bytes(spec.memory_bytes)} "
          f"memory, {spec.num_sms} SMs x {spec.max_threads_per_sm} "
          f"threads, SIMD {spec.simd_width}")
    print(f"  kernel throughput {spec.iters_per_second:.2e} work-units/s, "
          f"dispatch latency {spec.kernel_issue_latency * 1e6:.0f} us")
    print(f"  cudaMalloc/cudaFree: device-sync + "
          f"{spec.alloc_latency * 1e6:.0f}/{spec.free_latency * 1e6:.0f} us")
    print(f"  cost-model scale: {cm.scale:.1f} "
          f"(functional 96^3 stands in for 1200^3)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "somier":
            return cmd_somier(args)
        if args.command == "stats":
            return cmd_stats(args)
        if args.command == "analyze":
            return cmd_analyze(args)
        if args.command == "table1":
            return cmd_table(args, 1)
        if args.command == "table2":
            return cmd_table(args, 2)
        if args.command == "listing3":
            return cmd_listing3(args)
        if args.command == "check":
            return cmd_check(args)
        if args.command == "lint":
            return cmd_lint(args)
        if args.command == "lint-fuzz":
            return cmd_lint_fuzz(args)
        if args.command == "machine":
            return cmd_machine(args)
    except OmpError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except OSError as err:
        # e.g. an unwritable --trace-json/--metrics-json destination
        print(f"error: {err}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
