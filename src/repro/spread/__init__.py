"""The paper's contribution: the ``target spread`` directive set.

These directives add a *multi-device* level of parallelism on top of the
standard offloading model (paper Fig. 1):

1. multiple devices        — ``target spread``           (this package)
2. multiple teams          — ``teams distribute``
3. multiple threads        — ``parallel for``
4. multiple vector lanes   — ``simd``

Public surface:

* :data:`omp_spread_start` / :data:`omp_spread_size` — the special symbolic
  identifiers used in map/depend sections (Section III-B.1);
* :func:`spread_schedule` + schedule classes — ``spread_schedule(static, c)``
  round-robin chunking (plus the irregular/dynamic extensions of §IX);
* :func:`target_spread` / :func:`target_spread_teams_distribute_parallel_for`
  — the executable directives;
* :func:`target_data_spread`, :func:`target_enter_data_spread`,
  :func:`target_exit_data_spread`, :func:`target_update_spread` — the data
  directives;
* :class:`Reduction` — the future-work cross-device reduction clause
  (extension, disabled unless the runtime opts in).
"""

from repro.spread.sections import (
    omp_spread_start,
    omp_spread_size,
    SpreadExpr,
    spread_section,
)
from repro.spread.schedule import (
    Chunk,
    SpreadSchedule,
    StaticSchedule,
    IrregularStaticSchedule,
    DynamicSchedule,
    spread_schedule,
    validate_devices,
)
from repro.spread.extensions import Extensions
from repro.spread.spread_target import (
    target_spread,
    target_spread_teams_distribute_parallel_for,
    SpreadHandle,
)
from repro.spread.spread_data import (
    target_data_spread,
    target_enter_data_spread,
    target_exit_data_spread,
    target_update_spread,
)
from repro.spread.reduction import Reduction

__all__ = [
    "omp_spread_start",
    "omp_spread_size",
    "SpreadExpr",
    "spread_section",
    "Chunk",
    "SpreadSchedule",
    "StaticSchedule",
    "IrregularStaticSchedule",
    "DynamicSchedule",
    "spread_schedule",
    "validate_devices",
    "Extensions",
    "target_spread",
    "target_spread_teams_distribute_parallel_for",
    "SpreadHandle",
    "target_data_spread",
    "target_enter_data_spread",
    "target_exit_data_spread",
    "target_update_spread",
    "Reduction",
]
