"""The executable spread directives.

``target spread`` (Listing 3) offloads a loop over multiple devices: the
iteration range is chunked by the ``spread_schedule`` clause and each chunk
becomes one device task — implicit map semantics, explicit per-chunk
``depend``, optional ``nowait``.  The combined
``target spread teams distribute parallel for`` (Listing 4) additionally
applies the intra-device clauses *per device* (each device gets
``num_teams`` teams, etc.).

Restrictions reproduced from the paper:

* the associated block must be a loop — inherent here: the API takes the
  loop bounds and a kernel body;
* only the ``static`` schedule is supported (extensions gated);
* the ``devices`` list order, not the ids, determines distribution.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.device.kernel import KernelSpec, LaunchConfig
from repro.openmp import exec_ops
from repro.openmp.depend import Dep, concretize_deps
from repro.openmp.mapping import (
    MapClause,
    concretize_section,
    validate_unique_vars,
)
from repro.openmp.tasks import TaskCtx
from repro.sim.engine import Process
from repro.spread import extensions as ext
from repro.spread import failover as fo
from repro.spread import macro
from repro.spread import plan_cache as pc
from repro.spread.reduction import Reduction
from repro.spread.schedule import (
    Chunk,
    DynamicSchedule,
    SpreadSchedule,
    StaticSchedule,
    validate_devices,
)
from repro.util.errors import (
    DeviceLostError,
    OmpSemaError,
    SpreadExecutionError,
)


class SpreadHandle:
    """The tasks fanned out by one spread directive (one per chunk)."""

    def __init__(self, ctx: TaskCtx, procs: Sequence[Process],
                 chunks: Sequence[Chunk]):
        self._ctx = ctx
        self.procs = list(procs)
        self.chunks = list(chunks)
        #: chunks still queued when every worker retired (dynamic schedule
        #: under device loss); empty for the static schedule
        self.unfinished: Sequence[Chunk] = ()

    @classmethod
    def _replayed(cls, ctx: TaskCtx, procs: List[Process],
                  chunks: Sequence[Chunk]) -> "SpreadHandle":
        """Adopt the macro-replay interpreter's lists without copying.

        *procs* is the fresh list :func:`repro.spread.macro.replay_exec`
        built for this launch and *chunks* the plan's immutable tuple, so
        the defensive copies of ``__init__`` are pure allocation churn here.
        """
        self = cls.__new__(cls)
        self._ctx = ctx
        self.procs = procs
        self.chunks = chunks
        self.unfinished = ()
        return self

    def wait(self) -> Generator:
        """Block until every chunk task has completed."""
        pending = [p for p in self.procs if not p._processed]
        if pending:
            yield self._ctx.sim.all_of(pending)

    @property
    def done(self) -> bool:
        return all(p.processed for p in self.procs)

    def __len__(self) -> int:
        return len(self.procs)


def _concretize_for_chunk(maps: Sequence[MapClause], chunk: Chunk):
    return [(clause, concretize_section(clause.var, clause.section,
                                        spread_start=chunk.start,
                                        spread_size=chunk.size))
            for clause in maps]


# Directive-call defaults, hoisted: both were rebuilt on every call, which
# is pure allocation churn on the warm launch path.
_DEFAULT_STATIC = StaticSchedule(None)
_DEFAULT_LAUNCH = LaunchConfig(num_teams=1, threads_per_team=1, simd=False)

# Launch configurations are immutable; the combined directive memoizes them
# per (num_teams, threads_per_team, simd) triple.
_LAUNCH_CFGS: dict = {}


def _launch_config(num_teams, threads_per_team, simd) -> LaunchConfig:
    key = (num_teams, threads_per_team, simd)
    cfg = _LAUNCH_CFGS.get(key)
    if cfg is None:
        cfg = LaunchConfig(num_teams=num_teams,
                           threads_per_team=threads_per_team, simd=simd)
        _LAUNCH_CFGS[key] = cfg
    return cfg


# All-default combined directive (no teams/threads clause, simd on): the
# common case skips the memo-dict key build entirely.
_DEFAULT_TEAMS_CFG = _launch_config(None, None, True)


def target_spread(ctx: TaskCtx, kernel: KernelSpec, lo: int, hi: int,
                  devices: Sequence[int],
                  schedule: Optional[SpreadSchedule] = None,
                  maps: Sequence[MapClause] = (),
                  nowait: bool = False,
                  depends: Sequence[Dep] = (),
                  launch: Optional[LaunchConfig] = None,
                  reductions: Sequence[Reduction] = (),
                  fuse_transfers: bool = False) -> Generator:
    """``#pragma omp target spread`` over the loop ``[lo, hi)``.

    Map and depend sections may use ``omp_spread_start`` /
    ``omp_spread_size``; they are evaluated per chunk.  Without a launch
    configuration each chunk executes serially on its device (bare
    ``target spread``); the combined directive saturates the device.

    Returns a :class:`SpreadHandle`; with ``nowait`` the handle is returned
    immediately and synchronization is the caller's job (``taskwait`` /
    ``taskgroup``), exactly as the paper describes.
    """
    rt = ctx.rt
    sched = schedule if schedule is not None else _DEFAULT_STATIC
    if sched.is_extension:
        ext.require(rt, "schedules",
                    f"spread_schedule({sched.kind}, ...)")
    if reductions:
        ext.require(rt, "reduction", "the reduction clause on target spread")
        if nowait:
            raise OmpSemaError(
                "target spread: reduction requires synchronous execution "
                "(drop nowait)")
    cfg = launch if launch is not None else _DEFAULT_LAUNCH

    cache = rt.plan_cache
    key = (pc.exec_key(kernel, lo, hi, devices, sched.signature, maps,
                       depends)
           if cache.enabled else None)
    cell = cache.lookup(key)
    plan = cell[0] if cell is not None else None
    if plan is None:
        # Cold path: full validation + lowering (and, for the dynamic
        # schedule, direct launch — its chunk→device assignment happens at
        # execution time, so there is no replayable plan).
        devs = validate_devices(devices, rt.num_devices)
        validate_unique_vars(maps, "target spread")
        exec_ops.region_map_types(maps, "target spread")
        chunks = sched.chunks(lo, hi, devs)
        if isinstance(sched, DynamicSchedule):
            if depends:
                raise OmpSemaError(
                    "target spread: depend is not supported with the "
                    "dynamic schedule extension")
            handle = yield from _run_dynamic(ctx, kernel, chunks, devs,
                                             maps, cfg, nowait, reductions,
                                             fuse_transfers, lo, hi)
            return handle
        plan = _build_exec_plan(kernel, devs, chunks, maps, depends)
        cache.store(key, plan)
        pc.note_plan_cache(rt, "target spread", key, hit=False)
    else:
        if rt.tools:
            pc.note_plan_cache(rt, "target spread", key, hit=True)
        # Macro-op replay: interpret the compiled flat program instead of
        # rebuilding the per-chunk object graph.  Engages only when the
        # result is observationally identical (no tools/sanitizer/faults/
        # reductions — see repro.spread.macro).
        if not reductions and macro.engaged(rt):
            # Steady-state inline of macro.program_for: the compiled
            # program already sits in the cell, so skip the closure and
            # call frame it would cost on every launch.
            prog = cell[1]
            if prog is None:
                prog = macro.program_for(cache, cell,
                                         lambda: macro.compile_exec(plan))
            elif prog is False:
                prog = None
            else:
                cache.macro_replays += 1
            if prog is not None:
                info = prog.info
                if info is None:
                    prog.info = info = rt.directive_info_for(
                        "target spread", kernel.name)
                did = rt.alloc_directive_id(info)
                procs = macro.replay_exec(ctx, prog, kernel, cfg,
                                          fuse_transfers, did)
                handle = SpreadHandle._replayed(ctx, procs, plan.chunks)
                if not nowait:
                    yield from handle.wait()
                return handle

    tools = rt.tools
    did = rt.next_directive_id("target spread", kernel.name)
    if tools:
        tools.directive_begin("target spread", did=did, name=kernel.name,
                              devices=list(plan.devices), lo=lo, hi=hi,
                              time=rt.sim.now)
    handle = _launch_static(ctx, kernel, plan, cfg, reductions,
                            fuse_transfers, directive_id=did)
    if reductions:
        yield from handle.wait()
        _fold_reductions(handle, reductions)
    elif not nowait:
        yield from handle.wait()
    if tools:
        tools.directive_end(did, chunks=len(handle.chunks),
                            time=rt.sim.now)
    return handle


def _run_dynamic(ctx: TaskCtx, kernel: KernelSpec, chunks: Sequence[Chunk],
                 devs: Sequence[int], maps: Sequence[MapClause],
                 cfg: LaunchConfig, nowait: bool,
                 reductions: Sequence[Reduction], fuse_transfers: bool,
                 lo: int, hi: int) -> Generator:
    """The uncached dynamic-schedule execution of ``target spread``."""
    rt = ctx.rt
    tools = rt.tools
    did = rt.next_directive_id("target spread", kernel.name)
    if tools:
        tools.directive_begin("target spread", did=did, name=kernel.name,
                              devices=list(devs), lo=lo, hi=hi,
                              time=rt.sim.now)
    handle = _launch_dynamic(ctx, kernel, chunks, devs, maps, cfg,
                             fuse_transfers, directive_id=did)
    if reductions:
        yield from handle.wait()
        _fold_reductions(handle, reductions)
    elif not nowait:
        yield from handle.wait()
    if not nowait and handle.unfinished:
        # Every worker retired (device loss) with chunks still queued.
        raise SpreadExecutionError(
            f"target spread ({kernel.name}): {len(handle.unfinished)} "
            f"chunk(s) left unexecuted after device loss")
    if tools:
        tools.directive_end(did, chunks=len(handle.chunks),
                            time=rt.sim.now)
    return handle


def target_spread_teams_distribute_parallel_for(
        ctx: TaskCtx, kernel: KernelSpec, lo: int, hi: int,
        devices: Sequence[int],
        schedule: Optional[SpreadSchedule] = None,
        maps: Sequence[MapClause] = (),
        num_teams: Optional[int] = None,
        threads_per_team: Optional[int] = None,
        simd: bool = True,
        nowait: bool = False,
        depends: Sequence[Dep] = (),
        reductions: Sequence[Reduction] = (),
        fuse_transfers: bool = False) -> Generator:
    """``#pragma omp target spread teams distribute parallel for [simd]``.

    The intra-device clauses apply per device: every device runs its chunk
    with ``num_teams`` teams of ``threads_per_team`` threads (Listing 4).
    """
    launch = (_DEFAULT_TEAMS_CFG
              if num_teams is None and threads_per_team is None and simd
              else _launch_config(num_teams, threads_per_team, simd))
    handle = yield from target_spread(ctx, kernel, lo, hi, devices,
                                      schedule=schedule, maps=maps,
                                      nowait=nowait, depends=depends,
                                      launch=launch, reductions=reductions,
                                      fuse_transfers=fuse_transfers)
    return handle


# ---------------------------------------------------------------------------
# static fan-out (plan-driven: lowered once, replayed on cache hits)
# ---------------------------------------------------------------------------

def _build_exec_plan(kernel: KernelSpec, devs: Sequence[int],
                     chunks: Sequence[Chunk], maps: Sequence[MapClause],
                     depends: Sequence[Dep]) -> pc.SpreadPlan:
    """Lower a static spread directive to its replayable plan."""
    chunk_plans = []
    for chunk in chunks:
        concrete = tuple(_concretize_for_chunk(maps, chunk))
        cdeps = tuple(concretize_deps(depends, spread_start=chunk.start,
                                      spread_size=chunk.size))
        chunk_plans.append(pc.ChunkPlan(
            chunk=chunk, maps=concrete, deps=cdeps,
            name=f"spread:{kernel.name}#{chunk.index}@{chunk.device}",
            label=f"spread@{chunk.device}"))
    return pc.SpreadPlan(devices=tuple(devs), chunks=tuple(chunks),
                         chunk_plans=tuple(chunk_plans), anchors=(kernel,))


def _launch_static(ctx: TaskCtx, kernel: KernelSpec, plan: pc.SpreadPlan,
                   cfg: LaunchConfig, reductions: Sequence[Reduction],
                   fuse_transfers: bool,
                   directive_id: Optional[int] = None) -> SpreadHandle:
    rt = ctx.rt
    resilient = rt.fault_injector is not None or rt.lost_devices
    items = []
    provs = []  # (chunk_index, rerouted_from) aligned with items
    for cp in plan.chunk_plans:
        chunk = cp.chunk
        if not resilient:
            # Zero-fault hot path: identical to the pre-failover launch.
            if reductions:
                op = _chunk_op_with_reductions(rt, chunk, chunk.device,
                                               kernel, cp.maps, cfg,
                                               reductions, fuse_transfers)
            else:
                op = exec_ops.kernel_op(rt, chunk.device, kernel,
                                        chunk.start, chunk.interval.stop,
                                        cp.maps, launch=cfg,
                                        fuse_transfers=fuse_transfers,
                                        label=cp.label)
            items.append((chunk.device, op, cp.maps, cp.deps, cp.name))
            provs.append((chunk.index, None))
            continue

        def op_factory(device_id, rerouted, cp=cp, chunk=chunk):
            if reductions:
                return _chunk_op_with_reductions(
                    rt, chunk, device_id, kernel, cp.maps, cfg, reductions,
                    fuse_transfers, standalone=rerouted)
            return exec_ops.kernel_op(
                rt, device_id, kernel, chunk.start, chunk.interval.stop,
                cp.maps, launch=cfg, fuse_transfers=fuse_transfers,
                label=cp.label, standalone=rerouted)

        device_id, rerouted = fo.route_chunk(rt, chunk, plan.devices,
                                             name=cp.name)
        op = fo.failover_op(rt, chunk, plan.devices, op_factory,
                            name=cp.name, initial=(device_id, rerouted))
        accesses = None
        if rt.sanitizer is not None:
            if rerouted:
                # A re-routed chunk runs standalone: its host footprint is
                # the scratch-env one, not what the planned map types say.
                from repro.analysis.sanitizer import standalone_accesses
                accesses = standalone_accesses(cp.maps, chunk.start,
                                               chunk.interval.stop)
            else:
                accesses = exec_ops.kernel_accesses(rt, device_id, cp.maps)
        items.append((device_id, op, cp.maps, cp.deps, cp.name, accesses))
        provs.append((chunk.index, chunk.device if rerouted else None))
    procs = exec_ops.submit_spread(ctx, items, directive_id=directive_id)
    for proc, (chunk_index, rerouted_from) in zip(procs, provs):
        proc.prov = (directive_id, chunk_index, rerouted_from)
    return SpreadHandle(ctx, procs, plan.chunks)


# ---------------------------------------------------------------------------
# dynamic schedule (extension): one worker per device pulls chunks
# ---------------------------------------------------------------------------

def _launch_dynamic(ctx: TaskCtx, kernel: KernelSpec,
                    chunks: Sequence[Chunk], devices: Sequence[int],
                    maps: Sequence[MapClause], cfg: LaunchConfig,
                    fuse_transfers: bool,
                    directive_id: Optional[int] = None) -> SpreadHandle:
    rt = ctx.rt
    queue = deque(chunks)
    assigned: List[Chunk] = []

    def worker(device_id: int, cell: List[Process]) -> Generator:
        # Dynamic failover is naturally work-stealing shaped: a worker
        # whose device dies puts the chunk back and retires; the surviving
        # workers drain the queue.  ``cell`` holds the worker's own process
        # (filled right after submit) so the sanitizer can attribute each
        # pulled chunk's footprint to it.
        while queue:
            if rt.is_lost(device_id):
                return
            chunk = queue.popleft()
            record = Chunk(index=chunk.index, interval=chunk.interval,
                           device=device_id)
            assigned.append(record)
            # Per-pulled-chunk provenance: the worker process runs each
            # chunk's ops inline, so re-tagging before the op is exact.
            # Dynamic assignment is scheduling, not failover — no
            # rerouted_from tag.
            cell[0].prov = (directive_id, chunk.index, None)
            concrete = _concretize_for_chunk(maps, chunk)
            san = rt.sanitizer
            if san is not None:
                from repro.analysis.sanitizer import accesses_from_maps

                san.record_op(cell[0], accesses_from_maps(concrete),
                              device=device_id, directive=directive_id,
                              name=f"spread-dyn:{kernel.name}"
                                   f"#{chunk.index}@{device_id}")
            try:
                yield from exec_ops.kernel_op(
                    rt, device_id, kernel, chunk.start, chunk.interval.stop,
                    concrete, launch=cfg, fuse_transfers=fuse_transfers,
                    label=f"spread-dyn@{device_id}")
            except DeviceLostError as err:
                fo.mark_loss(rt, err, device_id)
                assigned.remove(record)
                queue.append(chunk)
                return

    procs = []
    for d in devices:
        if rt.is_lost(d):
            continue
        cell: List[Process] = []
        proc = ctx.submit(worker(d, cell),
                          name=f"spread-dyn:{kernel.name}@{d}",
                          device=d, directive_id=directive_id)
        cell.append(proc)
        procs.append(proc)
    if not procs:
        raise SpreadExecutionError(
            f"target spread ({kernel.name}): all devices of the clause "
            f"{sorted(set(devices))} are lost")
    handle = SpreadHandle(ctx, procs, assigned)
    handle.unfinished = queue
    return handle


# ---------------------------------------------------------------------------
# reduction plumbing
# ---------------------------------------------------------------------------

def _chunk_op_with_reductions(rt, chunk: Chunk, device_id: int,
                              kernel: KernelSpec,
                              concrete_maps, cfg: LaunchConfig,
                              reductions: Sequence[Reduction],
                              fuse_transfers: bool,
                              standalone: bool = False) -> Generator:
    dev = rt.device(device_id)
    partial_allocs = []
    extra_env = {}
    for red in reductions:
        alloc = dev.allocate(red.var.array.shape, dtype=red.var.array.dtype,
                             label=f"reduction:{red.var.name}")
        alloc.array[...] = red.identity
        extra_env[red.var.name] = alloc.array
        partial_allocs.append((red, alloc))
    yield from exec_ops.kernel_op(rt, device_id, kernel,
                                  chunk.start, chunk.interval.stop,
                                  concrete_maps, launch=cfg,
                                  fuse_transfers=fuse_transfers,
                                  label=f"spread@{device_id}",
                                  extra_env=extra_env,
                                  standalone=standalone)
    staged = []
    for red, alloc in partial_allocs:
        staging = np.empty_like(alloc.array)
        name = f"reduction:{red.var.name}"
        yield from exec_ops._maybe_retry(
            rt, device_id,
            lambda a=alloc, s=staging, n=name: dev.copy_d2h(
                a.array, slice(None), s, slice(None), name=n),
            "d2h", name)
        dev.free(alloc)
        staged.append(staging)
    return staged


def _fold_reductions(handle: SpreadHandle,
                     reductions: Sequence[Reduction]) -> None:
    # Each chunk task returned its staged partials; fold them in chunk
    # order so the result is independent of execution interleaving.
    ordered = sorted(zip(handle.chunks, handle.procs),
                     key=lambda pair: pair[0].index)
    for r, red in enumerate(reductions):
        partials = [proc.value[r] for _chunk, proc in ordered]
        red.fold_into_host(partials)
