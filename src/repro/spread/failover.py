"""Spread-level failover: re-route a lost device's chunks to survivors.

When fault injection marks a device *lost* mid-run
(:meth:`~repro.openmp.runtime.OpenMPRuntime.mark_device_lost`), the spread
directives keep going: every chunk that would run on a lost device is
re-routed — at launch time, per chunk — onto a surviving device, down to a
single survivor.  Only when **no** device survives does the directive fail,
with a clean :class:`~repro.util.errors.SpreadExecutionError`.

Design notes
------------

* **Launch-time re-routing, not devices-clause filtering.**  Dropping the
  lost device from the clause and re-chunking would shift *healthy* chunks
  onto different devices, away from their resident data.  Instead every
  directive keeps its original chunking and only the chunks of lost
  devices move.

* **One routing formula everywhere.**  A moved chunk lands on
  ``sorted(survivors)[chunk.index % len(survivors)]``.  Every directive —
  enter, kernel, update, exit — computes the same replacement for the same
  chunk, so a failed-over chunk keeps one consistent home for as long as
  the survivor set is stable.

* **The host carries the data.**  A lost device's present table is purged
  (its bytes are gone), so a re-routed chunk starts cold: its kernel's
  implicit enter re-maps from the host copy, and the implicit exit copies
  results straight back to the host.  Re-routed *data* directives
  (enter/exit/update spread) are complete no-ops: the lost chunk has no
  residency on the replacement (kernels use private scratch envs), so any
  present-table entry a lookup would find there belongs to the survivor's
  *own* chunks — e.g. a halo'd section that happens to contain the lost
  chunk's rows — and releasing or copying from it would corrupt the
  survivor's state.  The host copy is authoritative for re-routed chunks.
  Consequence: results are bit-identical to the fault-free run whenever
  the host copy of the chunk's inputs is current at the moment of loss
  (see ``docs/robustness.md`` for the caveat).
"""

from __future__ import annotations

from typing import Generator, Sequence, Tuple

from repro.obs.tool import FAULT_EVENT
from repro.util.errors import (DeviceLostError, NodeLostError,
                               SpreadExecutionError)


def survivors_of(rt, devices: Sequence[int]) -> Tuple[int, ...]:
    """The devices of the clause still alive, sorted.

    Sorted — not clause order — so executable spreads (clause-order device
    tuples) and data spreads (sorted tuples) route a moved chunk to the
    same survivor.
    """
    return tuple(sorted(d for d in set(devices) if not rt.is_lost(d)))


def route_chunk(rt, chunk, devices: Sequence[int],
                name: str = "") -> Tuple[int, bool]:
    """The device *chunk* should run on now: ``(device_id, rerouted)``.

    The chunk's assigned device while it lives; otherwise the survivor at
    ``chunk.index % len(survivors)``.  Raises
    :class:`SpreadExecutionError` when the clause has no survivors left.
    """
    if not rt.is_lost(chunk.device):
        return chunk.device, False
    survivors = survivors_of(rt, devices)
    if not survivors:
        raise SpreadExecutionError(
            f"no surviving device for chunk {chunk.index} "
            f"({name or 'spread'}): all of {sorted(set(devices))} are lost")
    replacement = survivors[chunk.index % len(survivors)]
    rt.fault_failovers += 1
    tools = rt.tools
    if tools:
        tools.dispatch(FAULT_EVENT, kind="failover", device=replacement,
                       from_device=chunk.device, chunk=chunk.index,
                       op="route", name=name, time=rt.sim.now)
    return replacement, True


def failover_op(rt, chunk, devices: Sequence[int], op_factory,
                name: str = "", initial=None) -> Generator:
    """Run one chunk's op with device-loss failover.

    ``op_factory(device_id, rerouted)`` builds the chunk's op generator
    for a given target device (``rerouted=True`` → run self-contained, or
    not at all for data directives; see the module docstring).  The first
    attempt runs at
    *initial* — the ``(device_id, rerouted)`` the caller got from
    :func:`route_chunk` at submit time — or wherever a fresh routing
    points.  If the device dies *mid-op* (a non-retryable
    :class:`DeviceLostError` escapes the retry layer), the device is
    marked lost and the op is rebuilt on the next survivor, until it
    completes or no device remains.
    """
    route = initial
    while True:
        if route is None:
            route = route_chunk(rt, chunk, devices, name=name)
        device_id, rerouted = route
        route = None
        if rt.is_lost(device_id):
            # Routed at submit time, device died before we ran: re-route.
            continue
        if rerouted:
            # Keep trace provenance current across re-routing: the op runs
            # in this same process, only its target device changed.
            cur = rt.sim.current_process
            if cur is not None and cur.prov is not None:
                cur.prov = cur.prov[:2] + (chunk.device,)
        try:
            return (yield from op_factory(device_id, rerouted))
        except DeviceLostError as err:
            # A NodeLostError takes the whole node's devices down at
            # once; a plain device loss takes only the one device.
            mark_loss(rt, err, device_id, name=name)


def mark_loss(rt, err: DeviceLostError, fallback_device: int,
              name: str = "") -> None:
    """Record a loss surfaced as *err*: the whole node for a
    :class:`NodeLostError`, the single device otherwise."""
    if isinstance(err, NodeLostError) and err.node is not None:
        rt.mark_node_lost(err.node, op=err.op, name=name or err.name)
        return
    lost = err.device if err.device is not None else fallback_device
    rt.mark_device_lost(lost, op=err.op, name=name or err.name)
