"""The spread data directives (Listings 5-8 of the paper).

All four distribute data mappings over multiple devices with a **static
round-robin** distribution driven by the ``range`` and ``chunk_size``
clauses (there is no ``spread_schedule`` clause here — the paper fixes the
policy so data placement is reproducible):

* ``target data spread`` — structured region (enter at the directive,
  copy-backs at region end); no ``nowait``, no ``depend``;
* ``target enter data spread`` / ``target exit data spread`` — unstructured,
  asynchronous via ``nowait``; ``depend`` is §IX future work (gated);
* ``target update spread`` — distributed updates of present data,
  asynchronous via ``nowait``; ``depend`` gated likewise.

``range`` follows OpenMP array-section convention: ``range(1:N-2)`` is
``range_=(1, N-2)`` — start 1, *length* N-2.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from repro.openmp import exec_ops
from repro.openmp.depend import Dep, concretize_deps
from repro.openmp.mapping import (
    MapClause,
    Var,
    concretize_section,
    validate_unique_vars,
)
from repro.openmp.tasks import TaskCtx
from repro.spread import extensions as ext
from repro.spread.schedule import Chunk, StaticSchedule, validate_devices
from repro.spread.spread_target import SpreadHandle
from repro.util.errors import OmpSemaError


def _data_chunks(ctx: TaskCtx, devices: Sequence[int],
                 range_: Tuple[int, int],
                 chunk_size: Optional[int]) -> List[Chunk]:
    devs = validate_devices(devices, ctx.rt.num_devices)
    start, length = int(range_[0]), int(range_[1])
    if length < 0:
        raise OmpSemaError(f"range({start}:{length}): negative length")
    return StaticSchedule(chunk_size).chunks(start, start + length, devs)


def _check_data_depends(ctx: TaskCtx, depends: Sequence[Dep],
                        directive: str) -> None:
    if depends:
        ext.require(ctx.rt, "data_depend",
                    f"the depend clause on {directive}")


def _concretize(maps: Sequence[MapClause], chunk: Chunk):
    return [(clause, concretize_section(clause.var, clause.section,
                                        spread_start=chunk.start,
                                        spread_size=chunk.size))
            for clause in maps]


def _fan_out(ctx: TaskCtx, chunks: Sequence[Chunk],
             maps: Sequence[MapClause], depends: Sequence[Dep],
             op_factory, name: str, nowait: bool,
             fuse_transfers: bool,
             directive_id: Optional[int] = None) -> Generator:
    items = []
    for chunk in chunks:
        concrete = _concretize(maps, chunk)
        cdeps = concretize_deps(depends, spread_start=chunk.start,
                                spread_size=chunk.size)
        op = op_factory(chunk, concrete)
        items.append((chunk.device, op, concrete, cdeps,
                      f"{name}#{chunk.index}@{chunk.device}"))
    procs = exec_ops.submit_spread(ctx, items, directive_id=directive_id)
    handle = SpreadHandle(ctx, procs, chunks)
    if not nowait:
        yield from handle.wait()
    return handle


def _directive_begin(ctx: TaskCtx, kind: str, chunks: Sequence[Chunk]):
    tools = ctx.rt.tools
    if not tools:
        return None
    return tools.directive_begin(kind,
                                 devices=sorted({c.device for c in chunks}),
                                 time=ctx.rt.sim.now)


def _directive_end(ctx: TaskCtx, did: Optional[int],
                   chunks: Sequence[Chunk]) -> None:
    if did is not None:
        tools = ctx.rt.tools
        if tools:
            tools.directive_end(did, chunks=len(chunks), time=ctx.rt.sim.now)


def target_enter_data_spread(ctx: TaskCtx, devices: Sequence[int],
                             range_: Tuple[int, int],
                             chunk_size: Optional[int],
                             maps: Sequence[MapClause],
                             nowait: bool = False,
                             depends: Sequence[Dep] = (),
                             fuse_transfers: bool = False) -> Generator:
    """``#pragma omp target enter data spread devices(...) range(...)
    chunk_size(...) [nowait] map(to/alloc: ...)`` (Listing 6)."""
    exec_ops.enter_map_types(maps, "target enter data spread")
    validate_unique_vars(maps, "target enter data spread")
    _check_data_depends(ctx, depends, "target enter data spread")
    chunks = _data_chunks(ctx, devices, range_, chunk_size)

    def factory(chunk: Chunk, concrete):
        return exec_ops.enter_op(ctx.rt, chunk.device, concrete,
                                 fuse_transfers=fuse_transfers,
                                 label=f"enter-spread@{chunk.device}")

    did = _directive_begin(ctx, "target enter data spread", chunks)
    handle = yield from _fan_out(ctx, chunks, maps, depends, factory,
                                 "enter-spread", nowait, fuse_transfers,
                                 directive_id=did)
    _directive_end(ctx, did, chunks)
    return handle


def target_exit_data_spread(ctx: TaskCtx, devices: Sequence[int],
                            range_: Tuple[int, int],
                            chunk_size: Optional[int],
                            maps: Sequence[MapClause],
                            nowait: bool = False,
                            depends: Sequence[Dep] = (),
                            fuse_transfers: bool = False) -> Generator:
    """``#pragma omp target exit data spread ... map(from/release/delete: ...)``."""
    exec_ops.exit_map_types(maps, "target exit data spread")
    validate_unique_vars(maps, "target exit data spread")
    _check_data_depends(ctx, depends, "target exit data spread")
    chunks = _data_chunks(ctx, devices, range_, chunk_size)

    def factory(chunk: Chunk, concrete):
        return exec_ops.exit_op(ctx.rt, chunk.device, concrete,
                                fuse_transfers=fuse_transfers,
                                label=f"exit-spread@{chunk.device}")

    did = _directive_begin(ctx, "target exit data spread", chunks)
    handle = yield from _fan_out(ctx, chunks, maps, depends, factory,
                                 "exit-spread", nowait, fuse_transfers,
                                 directive_id=did)
    _directive_end(ctx, did, chunks)
    return handle


class SpreadDataRegion:
    """Handle for a structured ``target data spread`` region."""

    def __init__(self, ctx: TaskCtx, chunks: Sequence[Chunk],
                 maps: Sequence[MapClause], fuse_transfers: bool,
                 directive_id: Optional[int] = None):
        self._ctx = ctx
        self._chunks = list(chunks)
        self._maps = list(maps)
        self._fuse = fuse_transfers
        self._closed = False
        self._directive_id = directive_id

    def end(self) -> Generator:
        """Leave the region: distributed copy-backs, synchronously."""
        if self._closed:
            raise OmpSemaError("target data spread region already closed")
        self._closed = True

        def factory(chunk: Chunk, concrete):
            return exec_ops.exit_op(self._ctx.rt, chunk.device, concrete,
                                    fuse_transfers=self._fuse,
                                    label=f"data-spread-end@{chunk.device}")

        handle = yield from _fan_out(self._ctx, self._chunks, self._maps,
                                     (), factory, "data-spread-end",
                                     nowait=False,
                                     fuse_transfers=self._fuse,
                                     directive_id=self._directive_id)
        _directive_end(self._ctx, self._directive_id, self._chunks)
        return handle


def target_data_spread(ctx: TaskCtx, devices: Sequence[int],
                       range_: Tuple[int, int],
                       chunk_size: Optional[int],
                       maps: Sequence[MapClause],
                       fuse_transfers: bool = False) -> Generator:
    """``#pragma omp target data spread devices(...) range(...)
    chunk_size(...) map(...)`` (Listing 5).

    Structured and synchronous: like its predecessor, the directive
    supports neither ``nowait`` nor ``depend`` (paper Section III-B.3);
    mappings distribute round-robin and stay valid until the returned
    region's ``end()`` is driven.
    """
    exec_ops.region_map_types(maps, "target data spread")
    validate_unique_vars(maps, "target data spread")
    chunks = _data_chunks(ctx, devices, range_, chunk_size)

    def factory(chunk: Chunk, concrete):
        return exec_ops.enter_op(ctx.rt, chunk.device, concrete,
                                 fuse_transfers=fuse_transfers,
                                 label=f"data-spread@{chunk.device}")

    did = _directive_begin(ctx, "target data spread", chunks)
    yield from _fan_out(ctx, chunks, maps, (), factory, "data-spread",
                        nowait=False, fuse_transfers=fuse_transfers,
                        directive_id=did)
    return SpreadDataRegion(ctx, chunks, maps, fuse_transfers,
                            directive_id=did)


def target_update_spread(ctx: TaskCtx, devices: Sequence[int],
                         range_: Tuple[int, int],
                         chunk_size: Optional[int],
                         to: Sequence[Tuple[Var, object]] = (),
                         from_: Sequence[Tuple[Var, object]] = (),
                         nowait: bool = False,
                         depends: Sequence[Dep] = (),
                         fuse_transfers: bool = False) -> Generator:
    """``#pragma omp target update spread devices(...) range(...)
    chunk_size(...) [nowait] to(...) from(...)`` (Listing 7).

    Sections use ``omp_spread_start``/``omp_spread_size`` and must already
    be present on the owning device.
    """
    if not to and not from_:
        raise OmpSemaError(
            "target update spread: needs at least one to()/from()")
    _check_data_depends(ctx, depends, "target update spread")
    chunks = _data_chunks(ctx, devices, range_, chunk_size)
    from repro.openmp.mapping import Map

    items = []
    for chunk in chunks:
        to_c = [(var, concretize_section(var, section,
                                         spread_start=chunk.start,
                                         spread_size=chunk.size))
                for var, section in to]
        from_c = [(var, concretize_section(var, section,
                                           spread_start=chunk.start,
                                           spread_size=chunk.size))
                  for var, section in from_]
        pseudo = ([(Map.to(var), iv) for var, iv in to_c] +
                  [(Map.from_(var), iv) for var, iv in from_c])
        cdeps = concretize_deps(depends, spread_start=chunk.start,
                                spread_size=chunk.size)
        op = exec_ops.update_op(ctx.rt, chunk.device, to_c, from_c,
                                fuse_transfers=fuse_transfers,
                                label=f"update-spread@{chunk.device}")
        items.append((chunk.device, op, pseudo, cdeps,
                      f"update-spread#{chunk.index}@{chunk.device}"))
    did = _directive_begin(ctx, "target update spread", chunks)
    procs = exec_ops.submit_spread(ctx, items, directive_id=did)
    handle = SpreadHandle(ctx, procs, chunks)
    if not nowait:
        yield from handle.wait()
    _directive_end(ctx, did, chunks)
    return handle
