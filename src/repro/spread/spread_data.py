"""The spread data directives (Listings 5-8 of the paper).

All four distribute data mappings over multiple devices with a **static
round-robin** distribution driven by the ``range`` and ``chunk_size``
clauses (there is no ``spread_schedule`` clause here — the paper fixes the
policy so data placement is reproducible; the cluster extension may pass
an explicit *static* ``schedule`` such as
:class:`~repro.spread.schedule.HierarchicalStaticSchedule` so data
placement follows the same two-level split as the kernels):

* ``target data spread`` — structured region (enter at the directive,
  copy-backs at region end); no ``nowait``, no ``depend``;
* ``target enter data spread`` / ``target exit data spread`` — unstructured,
  asynchronous via ``nowait``; ``depend`` is §IX future work (gated);
* ``target update spread`` — distributed updates of present data,
  asynchronous via ``nowait``; ``depend`` gated likewise.

``range`` follows OpenMP array-section convention: ``range(1:N-2)`` is
``range_=(1, N-2)`` — start 1, *length* N-2.

Like the executable directives, each data directive lowers through the
runtime's :class:`~repro.spread.plan_cache.SpreadPlanCache`: the chunking
and per-chunk section concretization are computed on first execution and
replayed bit-identically on structurally identical invocations.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from repro.openmp import exec_ops
from repro.openmp.depend import Dep, concretize_deps
from repro.openmp.mapping import (
    Map,
    MapClause,
    Var,
    concretize_section,
    validate_unique_vars,
)
from repro.openmp.tasks import TaskCtx
from repro.spread import extensions as ext
from repro.spread import failover as fo
from repro.spread import macro
from repro.spread import plan_cache as pc
from repro.spread.schedule import Chunk, StaticSchedule, validate_devices
from repro.spread.spread_target import SpreadHandle
from repro.util.errors import OmpSemaError


def _data_chunks(ctx: TaskCtx, devices: Sequence[int],
                 range_: Tuple[int, int],
                 chunk_size: Optional[int],
                 schedule=None) -> List[Chunk]:
    devs = validate_devices(devices, ctx.rt.num_devices)
    start, length = int(range_[0]), int(range_[1])
    if length < 0:
        raise OmpSemaError(f"range({start}:{length}): negative length")
    sched = schedule if schedule is not None else StaticSchedule(chunk_size)
    if sched.signature is None:
        raise OmpSemaError(
            "data spread distribution must be reproducible: the schedule "
            f"kind {sched.kind!r} assigns devices at execution time")
    return sched.chunks(start, start + length, devs)


def _chunk_key(chunk_size: Optional[int], schedule) -> object:
    """The chunking component of a data-directive cache key.

    An explicit schedule replaces the bare chunk size with its structural
    signature, so two directives chunked differently never share a plan.
    """
    if schedule is None:
        return chunk_size
    return ("sched", schedule.signature)


def _check_data_depends(ctx: TaskCtx, depends: Sequence[Dep],
                        directive: str) -> None:
    if depends:
        ext.require(ctx.rt, "data_depend",
                    f"the depend clause on {directive}")


def _concretize(maps: Sequence[MapClause], chunk: Chunk):
    return [(clause, concretize_section(clause.var, clause.section,
                                        spread_start=chunk.start,
                                        spread_size=chunk.size))
            for clause in maps]


def _build_data_plan(chunks: Sequence[Chunk], maps: Sequence[MapClause],
                     depends: Sequence[Dep], name: str) -> pc.SpreadPlan:
    """Lower one data directive to its replayable plan."""
    chunk_plans = []
    for chunk in chunks:
        concrete = tuple(_concretize(maps, chunk))
        cdeps = tuple(concretize_deps(depends, spread_start=chunk.start,
                                      spread_size=chunk.size))
        chunk_plans.append(pc.ChunkPlan(
            chunk=chunk, maps=concrete, deps=cdeps,
            name=f"{name}#{chunk.index}@{chunk.device}"))
    return pc.SpreadPlan(devices=tuple(sorted({c.device for c in chunks})),
                         chunks=tuple(chunks),
                         chunk_plans=tuple(chunk_plans))


def _note_residency(san, residency: Optional[str], device_id: int,
                    concrete_maps) -> None:
    """Tell the sanitizer a data directive moved sections in or out."""
    if san is None or residency is None:
        return
    if residency == "enter":
        san.note_enter(device_id, concrete_maps)
    else:
        san.note_exit(device_id, concrete_maps)


def _noop_op() -> Generator:
    """Placeholder op for a re-routed chunk's skipped data directive.

    A chunk re-routed off a lost device establishes no residency on its
    replacement (its kernels run standalone; the host carries its data),
    so enter-style directives degrade to an empty task — present for
    dependence wiring and trace structure, moving no bytes.
    """
    return
    yield  # pragma: no cover - makes this a generator


def _fan_out(ctx: TaskCtx, plan: pc.SpreadPlan, op_factory, nowait: bool,
             directive_id: Optional[int] = None,
             residency: Optional[str] = None) -> Generator:
    """Submit one op per chunk plan; ``op_factory(chunk, concrete,
    device_id, rerouted)`` builds the op for the (possibly failed-over)
    target device.  ``residency`` ("enter"/"exit") tells the sanitizer
    which way this directive moves the submit-order present set."""
    rt = ctx.rt
    san = rt.sanitizer
    resilient = rt.fault_injector is not None or rt.lost_devices
    items = []
    provs = []  # (chunk_index, rerouted_from) aligned with items
    for cp in plan.chunk_plans:
        if not resilient:
            # Zero-fault hot path: no routing, no failover wrapper.
            op = op_factory(cp.chunk, cp.maps, cp.chunk.device, False)
            items.append((cp.chunk.device, op, cp.maps, cp.deps, cp.name))
            provs.append((cp.chunk.index, None))
            _note_residency(san, residency, cp.chunk.device, cp.maps)
            continue

        def factory(device_id, rerouted, cp=cp):
            return op_factory(cp.chunk, cp.maps, device_id, rerouted)

        device_id, rerouted = fo.route_chunk(rt, cp.chunk, plan.devices,
                                             name=cp.name)
        op = fo.failover_op(rt, cp.chunk, plan.devices, factory,
                            name=cp.name, initial=(device_id, rerouted))
        # A re-routed data directive is a no-op (see repro.spread.failover):
        # it moves no host bytes, so its sanitizer footprint is empty and
        # it establishes no residency on the replacement device.
        items.append((device_id, op, cp.maps, cp.deps, cp.name,
                      [] if rerouted else None))
        provs.append((cp.chunk.index, cp.chunk.device if rerouted else None))
        if not rerouted:
            _note_residency(san, residency, device_id, cp.maps)
    procs = exec_ops.submit_spread(ctx, items, directive_id=directive_id)
    for proc, (chunk_index, rerouted_from) in zip(procs, provs):
        proc.prov = (directive_id, chunk_index, rerouted_from)
    handle = SpreadHandle(ctx, procs, plan.chunks)
    if not nowait:
        yield from handle.wait()
    return handle


def _directive_begin(ctx: TaskCtx, kind: str, chunks: Sequence[Chunk]) -> int:
    did = ctx.rt.next_directive_id(kind)
    tools = ctx.rt.tools
    if tools:
        tools.directive_begin(kind, did=did,
                              devices=sorted({c.device for c in chunks}),
                              time=ctx.rt.sim.now)
    return did


def _directive_end(ctx: TaskCtx, did: Optional[int],
                   chunks: Sequence[Chunk]) -> None:
    if did is not None:
        tools = ctx.rt.tools
        if tools:
            tools.directive_end(did, chunks=len(chunks), time=ctx.rt.sim.now)


def target_enter_data_spread(ctx: TaskCtx, devices: Sequence[int],
                             range_: Tuple[int, int],
                             chunk_size: Optional[int],
                             maps: Sequence[MapClause],
                             nowait: bool = False,
                             depends: Sequence[Dep] = (),
                             fuse_transfers: bool = False,
                             schedule=None) -> Generator:
    """``#pragma omp target enter data spread devices(...) range(...)
    chunk_size(...) [nowait] map(to/alloc: ...)`` (Listing 6)."""
    rt = ctx.rt
    kind = "target enter data spread"
    cache = rt.plan_cache
    key = (pc.data_key(kind, devices, range_,
                       _chunk_key(chunk_size, schedule), maps, depends)
           if cache.enabled else None)
    cell = cache.lookup(key)
    plan = cell[0] if cell is not None else None
    if plan is None:
        exec_ops.enter_map_types(maps, kind)
        validate_unique_vars(maps, kind)
        _check_data_depends(ctx, depends, kind)
        chunks = _data_chunks(ctx, devices, range_, chunk_size, schedule)
        plan = _build_data_plan(chunks, maps, depends, "enter-spread")
        cache.store(key, plan)
        pc.note_plan_cache(rt, kind, key, hit=False)
    else:
        if rt.tools:
            pc.note_plan_cache(rt, kind, key, hit=True)
        if macro.engaged(rt):
            prog = macro.program_for(cache, cell, lambda: macro.compile_data(
                plan, macro.OP_ENTER, "enter-spread"))
            if prog is not None:
                info = prog.info
                if info is None:
                    prog.info = info = rt.directive_info_for(kind)
                did = rt.alloc_directive_id(info)
                procs = macro.replay_data(ctx, prog, fuse_transfers, did)
                handle = SpreadHandle(ctx, procs, plan.chunks)
                if not nowait:
                    yield from handle.wait()
                return handle

    def factory(chunk: Chunk, concrete, device_id: int, rerouted: bool):
        if rerouted:
            return _noop_op()
        return exec_ops.enter_op(rt, device_id, concrete,
                                 fuse_transfers=fuse_transfers,
                                 label=f"enter-spread@{device_id}")

    did = _directive_begin(ctx, kind, plan.chunks)
    handle = yield from _fan_out(ctx, plan, factory, nowait,
                                 directive_id=did, residency="enter")
    _directive_end(ctx, did, plan.chunks)
    return handle


def target_exit_data_spread(ctx: TaskCtx, devices: Sequence[int],
                            range_: Tuple[int, int],
                            chunk_size: Optional[int],
                            maps: Sequence[MapClause],
                            nowait: bool = False,
                            depends: Sequence[Dep] = (),
                            fuse_transfers: bool = False,
                            schedule=None) -> Generator:
    """``#pragma omp target exit data spread ... map(from/release/delete: ...)``."""
    rt = ctx.rt
    kind = "target exit data spread"
    cache = rt.plan_cache
    key = (pc.data_key(kind, devices, range_,
                       _chunk_key(chunk_size, schedule), maps, depends)
           if cache.enabled else None)
    cell = cache.lookup(key)
    plan = cell[0] if cell is not None else None
    if plan is None:
        exec_ops.exit_map_types(maps, kind)
        validate_unique_vars(maps, kind)
        _check_data_depends(ctx, depends, kind)
        chunks = _data_chunks(ctx, devices, range_, chunk_size, schedule)
        plan = _build_data_plan(chunks, maps, depends, "exit-spread")
        cache.store(key, plan)
        pc.note_plan_cache(rt, kind, key, hit=False)
    else:
        if rt.tools:
            pc.note_plan_cache(rt, kind, key, hit=True)
        if macro.engaged(rt):
            prog = macro.program_for(cache, cell, lambda: macro.compile_data(
                plan, macro.OP_EXIT, "exit-spread"))
            if prog is not None:
                info = prog.info
                if info is None:
                    prog.info = info = rt.directive_info_for(kind)
                did = rt.alloc_directive_id(info)
                procs = macro.replay_data(ctx, prog, fuse_transfers, did)
                handle = SpreadHandle(ctx, procs, plan.chunks)
                if not nowait:
                    yield from handle.wait()
                return handle

    def factory(chunk: Chunk, concrete, device_id: int, rerouted: bool):
        if rerouted:
            # The chunk's data died with its device; nothing of it is
            # resident on the replacement (re-routed enters are no-ops,
            # standalone kernels use private scratch).  Any entry a
            # lookup would find here belongs to the *survivor's own*
            # chunks — e.g. a halo'd section containing this chunk's
            # rows — and releasing it would corrupt the survivor.
            return _noop_op()
        return exec_ops.exit_op(rt, device_id, concrete,
                                fuse_transfers=fuse_transfers,
                                label=f"exit-spread@{device_id}")

    did = _directive_begin(ctx, kind, plan.chunks)
    handle = yield from _fan_out(ctx, plan, factory, nowait,
                                 directive_id=did, residency="exit")
    _directive_end(ctx, did, plan.chunks)
    return handle


class SpreadDataRegion:
    """Handle for a structured ``target data spread`` region."""

    def __init__(self, ctx: TaskCtx, end_plan: pc.SpreadPlan,
                 fuse_transfers: bool,
                 directive_id: Optional[int] = None,
                 end_prog=None):
        self._ctx = ctx
        self._end_plan = end_plan
        self._fuse = fuse_transfers
        self._closed = False
        self._directive_id = directive_id
        # Compiled macro program for the region end, when the enter half
        # replayed through the macro engine.  end() re-checks engagement:
        # a device loss inside the region must fall back to the object
        # path (which routes around the lost device).
        self._end_prog = end_prog

    def end(self) -> Generator:
        """Leave the region: distributed copy-backs, synchronously."""
        if self._closed:
            raise OmpSemaError("target data spread region already closed")
        self._closed = True
        rt = self._ctx.rt
        if self._end_prog is not None and macro.engaged(rt):
            procs = macro.replay_data(self._ctx, self._end_prog, self._fuse,
                                      self._directive_id)
            handle = SpreadHandle(self._ctx, procs, self._end_plan.chunks)
            yield from handle.wait()
            _directive_end(self._ctx, self._directive_id,
                           self._end_plan.chunks)
            return handle

        def factory(chunk: Chunk, concrete, device_id: int, rerouted: bool):
            if rerouted:
                # See target_exit_data_spread: a re-routed exit must not
                # touch the survivor's own entries.
                return _noop_op()
            return exec_ops.exit_op(rt, device_id, concrete,
                                    fuse_transfers=self._fuse,
                                    label=f"data-spread-end@{device_id}")

        handle = yield from _fan_out(self._ctx, self._end_plan, factory,
                                     nowait=False,
                                     directive_id=self._directive_id,
                                     residency="exit")
        _directive_end(self._ctx, self._directive_id, self._end_plan.chunks)
        return handle


def _compile_region(plans):
    """Compile both halves of a ``target data spread`` region, or neither.

    The cached value is the (enter, end) program pair; a ``None`` from
    either half (e.g. malformed bounds) vetoes the whole region so the
    two halves can never disagree about which path they run on.
    """
    enter_plan, end_plan = plans
    enter_prog = macro.compile_data(enter_plan, macro.OP_ENTER, "data-spread")
    if enter_prog is None:
        return None
    end_prog = macro.compile_data(end_plan, macro.OP_EXIT, "data-spread-end")
    if end_prog is None:
        return None
    return (enter_prog, end_prog)


def target_data_spread(ctx: TaskCtx, devices: Sequence[int],
                       range_: Tuple[int, int],
                       chunk_size: Optional[int],
                       maps: Sequence[MapClause],
                       fuse_transfers: bool = False,
                       schedule=None) -> Generator:
    """``#pragma omp target data spread devices(...) range(...)
    chunk_size(...) map(...)`` (Listing 5).

    Structured and synchronous: like its predecessor, the directive
    supports neither ``nowait`` nor ``depend`` (paper Section III-B.3);
    mappings distribute round-robin and stay valid until the returned
    region's ``end()`` is driven.
    """
    rt = ctx.rt
    kind = "target data spread"
    cache = rt.plan_cache
    key = (pc.data_key(kind, devices, range_,
                       _chunk_key(chunk_size, schedule), maps)
           if cache.enabled else None)
    cell = cache.lookup(key)
    plans = cell[0] if cell is not None else None
    if plans is None:
        exec_ops.region_map_types(maps, kind)
        validate_unique_vars(maps, kind)
        chunks = _data_chunks(ctx, devices, range_, chunk_size, schedule)
        # The region end reuses the same chunks/maps lowering under its own
        # task names, so both halves are lowered (and cached) together.
        plans = (_build_data_plan(chunks, maps, (), "data-spread"),
                 _build_data_plan(chunks, maps, (), "data-spread-end"))
        cache.store(key, plans)
        pc.note_plan_cache(rt, kind, key, hit=False)
    else:
        if rt.tools:
            pc.note_plan_cache(rt, kind, key, hit=True)
        if macro.engaged(rt):
            progs = macro.program_for(cache, cell,
                                      lambda: _compile_region(plans))
            if progs is not None:
                enter_prog, end_prog = progs
                info = enter_prog.info
                if info is None:
                    enter_prog.info = info = rt.directive_info_for(kind)
                did = rt.alloc_directive_id(info)
                procs = macro.replay_data(ctx, enter_prog, fuse_transfers,
                                          did)
                handle = SpreadHandle(ctx, procs, plans[0].chunks)
                yield from handle.wait()
                return SpreadDataRegion(ctx, plans[1], fuse_transfers,
                                        directive_id=did, end_prog=end_prog)
    enter_plan, end_plan = plans

    def factory(chunk: Chunk, concrete, device_id: int, rerouted: bool):
        if rerouted:
            return _noop_op()
        return exec_ops.enter_op(rt, device_id, concrete,
                                 fuse_transfers=fuse_transfers,
                                 label=f"data-spread@{device_id}")

    did = _directive_begin(ctx, kind, enter_plan.chunks)
    yield from _fan_out(ctx, enter_plan, factory, nowait=False,
                        directive_id=did, residency="enter")
    return SpreadDataRegion(ctx, end_plan, fuse_transfers,
                            directive_id=did)


def target_update_spread(ctx: TaskCtx, devices: Sequence[int],
                         range_: Tuple[int, int],
                         chunk_size: Optional[int],
                         to: Sequence[Tuple[Var, object]] = (),
                         from_: Sequence[Tuple[Var, object]] = (),
                         nowait: bool = False,
                         depends: Sequence[Dep] = (),
                         fuse_transfers: bool = False,
                         schedule=None) -> Generator:
    """``#pragma omp target update spread devices(...) range(...)
    chunk_size(...) [nowait] to(...) from(...)`` (Listing 7).

    Sections use ``omp_spread_start``/``omp_spread_size`` and must already
    be present on the owning device.
    """
    rt = ctx.rt
    kind = "target update spread"
    cache = rt.plan_cache
    key = (pc.update_key(devices, range_,
                         _chunk_key(chunk_size, schedule), to, from_,
                         depends)
           if cache.enabled else None)
    cell = cache.lookup(key)
    plan = cell[0] if cell is not None else None
    if plan is None:
        if not to and not from_:
            raise OmpSemaError(
                "target update spread: needs at least one to()/from()")
        _check_data_depends(ctx, depends, kind)
        chunks = _data_chunks(ctx, devices, range_, chunk_size, schedule)
        chunk_plans = []
        for chunk in chunks:
            to_c = tuple((var, concretize_section(var, section,
                                                  spread_start=chunk.start,
                                                  spread_size=chunk.size))
                         for var, section in to)
            from_c = tuple((var, concretize_section(var, section,
                                                    spread_start=chunk.start,
                                                    spread_size=chunk.size))
                           for var, section in from_)
            pseudo = tuple([(Map.to(var), iv) for var, iv in to_c] +
                           [(Map.from_(var), iv) for var, iv in from_c])
            cdeps = tuple(concretize_deps(depends, spread_start=chunk.start,
                                          spread_size=chunk.size))
            chunk_plans.append(pc.ChunkPlan(
                chunk=chunk, maps=pseudo, deps=cdeps,
                name=f"update-spread#{chunk.index}@{chunk.device}",
                extra=(to_c, from_c)))
        plan = pc.SpreadPlan(devices=tuple(sorted({c.device for c in chunks})),
                             chunks=tuple(chunks),
                             chunk_plans=tuple(chunk_plans))
        cache.store(key, plan)
        pc.note_plan_cache(rt, kind, key, hit=False)
    else:
        if rt.tools:
            pc.note_plan_cache(rt, kind, key, hit=True)
        if macro.engaged(rt):
            prog = macro.program_for(cache, cell,
                                     lambda: macro.compile_update(plan))
            if prog is not None:
                info = prog.info
                if info is None:
                    prog.info = info = rt.directive_info_for(kind)
                did = rt.alloc_directive_id(info)
                procs = macro.replay_data(ctx, prog, fuse_transfers, did)
                handle = SpreadHandle(ctx, procs, plan.chunks)
                if not nowait:
                    yield from handle.wait()
                return handle

    resilient = rt.fault_injector is not None or rt.lost_devices
    items = []
    provs = []  # (chunk_index, rerouted_from) aligned with items
    for cp in plan.chunk_plans:
        to_c, from_c = cp.extra
        if not resilient:
            op = exec_ops.update_op(rt, cp.chunk.device, to_c, from_c,
                                    fuse_transfers=fuse_transfers,
                                    label=f"update-spread@{cp.chunk.device}")
            items.append((cp.chunk.device, op, cp.maps, cp.deps, cp.name))
            provs.append((cp.chunk.index, None))
            continue

        def factory(device_id, rerouted, to_c=to_c, from_c=from_c):
            if rerouted:
                # A re-routed update is a no-op: the lost chunk has no
                # residency anywhere and the host copy is authoritative.
                # An ``update from`` that hit a survivor's own halo'd
                # entry would even copy *stale* halo rows over newer
                # host data.
                return _noop_op()
            return exec_ops.update_op(rt, device_id, to_c, from_c,
                                      fuse_transfers=fuse_transfers,
                                      label=f"update-spread@{device_id}")

        device_id, rerouted = fo.route_chunk(rt, cp.chunk, plan.devices,
                                             name=cp.name)
        op = fo.failover_op(rt, cp.chunk, plan.devices, factory,
                            name=cp.name, initial=(device_id, rerouted))
        # Re-routed updates are no-ops too: empty sanitizer footprint.
        items.append((device_id, op, cp.maps, cp.deps, cp.name,
                      [] if rerouted else None))
        provs.append((cp.chunk.index, cp.chunk.device if rerouted else None))
    did = _directive_begin(ctx, kind, plan.chunks)
    procs = exec_ops.submit_spread(ctx, items, directive_id=did)
    for proc, (chunk_index, rerouted_from) in zip(procs, provs):
        proc.prov = (did, chunk_index, rerouted_from)
    handle = SpreadHandle(ctx, procs, plan.chunks)
    if not nowait:
        yield from handle.wait()
    _directive_end(ctx, did, plan.chunks)
    return handle
