"""Cross-device reduction clause (paper §IX future work).

The paper's Somier evaluation implements the centers reduction *manually*
(per-device partial buffers combined on the host) because the prototype has
no ``reduction`` clause for spread directives.  This module provides the
clause as a gated extension: each chunk gets a zero-initialized partial
buffer on its device, the kernel accumulates into it through the environment,
partials are copied back and combined on the host **in chunk order** (so the
result is deterministic regardless of execution interleaving).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.openmp.mapping import Var
from repro.util.errors import OmpSemaError

_OPS: Dict[str, Dict[str, object]] = {
    "+": {"identity": 0.0, "combine": np.add},
    "sum": {"identity": 0.0, "combine": np.add},
    "*": {"identity": 1.0, "combine": np.multiply},
    "prod": {"identity": 1.0, "combine": np.multiply},
    "min": {"identity": np.inf, "combine": np.minimum},
    "max": {"identity": -np.inf, "combine": np.maximum},
}


@dataclass(frozen=True)
class Reduction:
    """``reduction(op: var)`` for a spread directive.

    ``var.array`` is the host accumulation target; kernels see a
    device-local partial of the same shape under ``var.name`` and must
    accumulate into it (e.g. ``env["centers"] += ...``).
    """

    op: str
    var: Var

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise OmpSemaError(
                f"reduction: unsupported operator {self.op!r} "
                f"(supported: {sorted(_OPS)})")

    @property
    def identity(self) -> float:
        return float(_OPS[self.op]["identity"])  # type: ignore[arg-type]

    @property
    def combine(self) -> Callable:
        return _OPS[self.op]["combine"]  # type: ignore[return-value]

    def fold_into_host(self, partials) -> None:
        """Combine chunk partials into the host array, in chunk order."""
        combine = self.combine
        acc = self.var.array
        for partial in partials:
            combine(acc, partial, out=acc)
